"""Offline solvers: brute force, DP, explicit Figure-1 graph, and the
paper's O(T log m) binary-search algorithm (Section 2)."""

from .backward import prefix_bounds, solve_backward_lcp
from .binary_search import solve_binary_search, window_states, windowed_dp
from .bruteforce import enumerate_optima, solve_bruteforce
from .convex_program import lp_relaxation_cost, solve_lp
from .dp import dp_value_table, solve_dp, solve_dp_quadratic
from .fractional import (FractionalResult, ceil_schedule, floor_schedule,
                         make_fractional_optimum, solve_fractional)
from .graph import (LayeredGraph, build_graph, edge_count, solve_graph,
                    to_networkx, vertex_count)
from .restricted import solve_restricted
from .result import OfflineResult

__all__ = [
    "OfflineResult",
    "solve_bruteforce", "enumerate_optima",
    "solve_dp", "solve_dp_quadratic", "dp_value_table",
    "LayeredGraph", "build_graph", "solve_graph", "to_networkx",
    "vertex_count", "edge_count",
    "solve_binary_search", "windowed_dp", "window_states",
    "solve_lp", "lp_relaxation_cost",
    "solve_backward_lcp", "prefix_bounds",
    "solve_restricted",
    "FractionalResult", "solve_fractional", "make_fractional_optimum",
    "floor_schedule", "ceil_schedule",
]
