"""Tests for the Section 5 lower-bound constructions (Theorems 4–10)."""

import numpy as np
import pytest

from repro.lower_bounds import (ContinuousAdversary,
                                DeterministicDiscreteAdversary,
                                RestrictedDiscreteAdversary, play_dilated_game,
                                play_game, play_randomized_game, ratio_curve,
                                restricted_rows)
from repro.online import (LCP, AlgorithmB, FollowTheMinimizer,
                          MemorylessBalance, ThresholdFractional)


def theorem4_bound(eps: float, T: int) -> float:
    """The explicit bound from the proof of Theorem 4:
    ratio >= 3 - eps - (2(1-eps) + 4) / (T eps / 2 + 2)."""
    return 3 - eps - (2 * (1 - eps) + 4) / (T * eps / 2 + 2)


class TestTheorem4:
    def test_lcp_ratio_meets_proof_bound(self):
        for eps in (0.2, 0.1, 0.05):
            adv = DeterministicDiscreteAdversary(eps)
            T = min(adv.horizon(), 20000)
            res = play_game(adv, LCP(), T)
            assert res.ratio >= theorem4_bound(eps, T) - 1e-9, eps

    def test_follow_minimizer_also_bounded_below(self):
        """The bound holds for ANY deterministic algorithm."""
        eps = 0.1
        adv = DeterministicDiscreteAdversary(eps)
        T = min(adv.horizon(), 5000)
        res = play_game(adv, FollowTheMinimizer(), T)
        assert res.ratio >= theorem4_bound(eps, T) - 1e-9

    def test_ratio_monotone_toward_three(self):
        curve = ratio_curve(DeterministicDiscreteAdversary, LCP,
                            [0.2, 0.1, 0.05], T_cap=20000)
        ratios = [row["ratio"] for row in curve]
        assert ratios[-1] > 2.8
        assert ratios[-1] >= ratios[0] - 1e-9

    def test_adversary_behavior(self):
        adv = DeterministicDiscreteAdversary(0.5)
        np.testing.assert_allclose(adv.next_function(0), [0.5, 0.0])
        np.testing.assert_allclose(adv.next_function(1), [0.0, 0.5])

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            DeterministicDiscreteAdversary(0.0)


class TestTheorem5Restricted:
    def test_restricted_rows_realize_hinges(self):
        rows = restricted_rows(0.3)
        # phi0-encoding: eps|x-1| on {1,2}; phi1-encoding: eps|x-2|.
        assert rows["phi0"][1] == pytest.approx(0.0)
        assert rows["phi0"][2] == pytest.approx(0.3)
        assert rows["phi1"][1] == pytest.approx(0.3)
        assert rows["phi1"][2] == pytest.approx(0.0)

    def test_rows_match_perspective_formula(self):
        """x * f(lambda/x) with f(z) = eps|1-2z| reproduces the rows."""
        eps = 0.25
        rows = restricted_rows(eps)
        f = rows["f"]
        for x in (1, 2):
            assert x * f(rows["load_phi0"] / x) == pytest.approx(
                rows["phi0"][x])
            assert x * f(rows["load_phi1"] / x) == pytest.approx(
                rows["phi1"][x])

    def test_lcp_ratio_approaches_three_in_restricted_model(self):
        for eps, floor_ratio in ((0.1, 2.7), (0.05, 2.85)):
            adv = RestrictedDiscreteAdversary(eps)
            T = min(adv.horizon(), 20000)
            res = play_game(adv, LCP(), T)
            assert res.ratio >= floor_ratio, eps

    def test_play_stays_feasible(self):
        """LCP never uses the infeasible state 0 after the start."""
        adv = RestrictedDiscreteAdversary(0.1)
        res = play_game(adv, LCP(), 500)
        assert np.all(res.schedule >= 1)


class TestTheorem6Continuous:
    def test_algorithm_B_ratio_near_two(self):
        for eps, floor_ratio in ((0.2, 1.8), (0.05, 1.93)):
            adv = ContinuousAdversary(eps)
            res = play_game(adv, AlgorithmB(), min(adv.horizon(), 30000))
            assert res.ratio >= floor_ratio

    def test_other_fractional_algorithms_no_better(self):
        """Lemma 23: any fractional algorithm pays at least B's cost, so
        its ratio on this adversary is also ~2 or worse."""
        eps = 0.1
        for make in (MemorylessBalance, ThresholdFractional):
            adv = ContinuousAdversary(eps)
            res = play_game(adv, make(), 8000)
            assert res.ratio >= 1.85, make

    def test_adversary_pushes_up_at_start(self):
        adv = ContinuousAdversary(0.2)
        row = adv.next_function(0.0)
        np.testing.assert_allclose(row, [0.2, 0.0])  # phi_1

    def test_adversary_punishes_above_B(self):
        adv = ContinuousAdversary(0.2)
        adv.next_function(0.0)  # B moves to 0.1
        row = adv.next_function(0.9)  # way above B
        np.testing.assert_allclose(row, [0.0, 0.2])  # phi_0

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            ContinuousAdversary(0.0)
        with pytest.raises(ValueError):
            ContinuousAdversary(1.5)


class TestTheorem8Randomized:
    def test_rounded_threshold_ratio_near_two(self):
        for eps, floor_ratio in ((0.2, 1.8), (0.05, 1.93)):
            adv = ContinuousAdversary(eps)
            res = play_randomized_game(adv, ThresholdFractional(),
                                       min(adv.horizon(), 30000))
            assert res.ratio >= floor_ratio

    def test_expected_cost_equals_fractional_cost(self):
        """Lemma 24 is tight for our rounding: E[C(X)] = C(x-bar)."""
        eps = 0.1
        adv = ContinuousAdversary(eps)
        frac = play_game(ContinuousAdversary(eps), ThresholdFractional(),
                         3000)
        rand = play_randomized_game(adv, ThresholdFractional(), 3000)
        assert rand.algorithm_cost == pytest.approx(frac.algorithm_cost,
                                                    rel=1e-9)

    def test_requires_fractional_inner(self):
        adv = ContinuousAdversary(0.1)
        with pytest.raises(ValueError):
            play_randomized_game(adv, LCP(), 10)


class TestTheorem10PredictionWindow:
    def test_dilation_defeats_lookahead(self):
        """LCP with window w on the (n*w)-dilated game still meets the
        Theorem 4 bound shape (ratio close to the no-window ratio)."""
        eps = 0.1
        blocks = 2000
        base = play_game(DeterministicDiscreteAdversary(eps), LCP(), blocks)
        for w in (1, 3):
            repeat = 4 * w
            dil = play_dilated_game(DeterministicDiscreteAdversary(eps),
                                    LCP(lookahead=w), blocks=blocks,
                                    repeat=repeat)
            assert dil.ratio >= base.ratio - 0.35, w

    def test_dilated_game_without_lookahead_matches_plain(self):
        """With w = 0, dilation only rescales: the ratio is essentially
        unchanged."""
        eps = 0.1
        a = play_game(DeterministicDiscreteAdversary(eps), LCP(), 1000)
        b = play_dilated_game(DeterministicDiscreteAdversary(eps), LCP(),
                              blocks=1000, repeat=5)
        assert b.ratio == pytest.approx(a.ratio, abs=0.25)

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            play_dilated_game(DeterministicDiscreteAdversary(0.1), LCP(),
                              blocks=10, repeat=0)


class TestGameMechanics:
    def test_game_result_fields(self):
        adv = DeterministicDiscreteAdversary(0.2)
        res = play_game(adv, LCP(), 50)
        assert res.instance.T == 50
        assert res.schedule.shape == (50,)
        assert res.ratio == pytest.approx(res.algorithm_cost / res.opt_cost)

    def test_default_horizon_used(self):
        adv = DeterministicDiscreteAdversary(0.5)
        res = play_game(adv, LCP())
        assert res.instance.T == adv.horizon()
