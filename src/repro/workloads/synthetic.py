"""Synthetic load-trace generators.

The experimental evaluation the paper builds on (Lin et al. [22, 24])
uses two proprietary production traces (an MSR data-center trace and a
Hotmail trace) characterized by strong diurnal structure with a
peak-to-mean ratio (PMR) around 2–5 and bursty noise.  Those traces are
not redistributable, so — per the reproduction's substitution policy —
this module generates seeded synthetic equivalents whose knobs (PMR,
noise level, burstiness, period) span the regimes the originals occupy.

Every generator returns a float64 array of non-negative loads of length
``T``; loads are in *server units* (a load of 12.3 wants roughly a dozen
active servers).  Use :mod:`repro.workloads.traces` to turn loads into
problem instances.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diurnal_loads",
    "bursty_loads",
    "random_walk_loads",
    "onoff_loads",
    "sawtooth_loads",
    "constant_loads",
    "msr_like_loads",
    "hotmail_like_loads",
    "regime_switching_loads",
    "compose_loads",
    "peak_to_mean_ratio",
    "random_convex_instance",
]


def _rng(rng) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def diurnal_loads(T: int, *, peak: float, period: int = 24,
                  base_frac: float = 0.3, noise: float = 0.05,
                  rng=None) -> np.ndarray:
    """Sinusoidal day/night pattern with multiplicative noise.

    ``base_frac`` sets the trough as a fraction of ``peak``; ``noise`` is
    the standard deviation of the multiplicative perturbation.
    """
    if peak <= 0 or not 0 <= base_frac <= 1:
        raise ValueError("need peak > 0 and base_frac in [0, 1]")
    g = _rng(rng)
    t = np.arange(T, dtype=np.float64)
    mid = 0.5 * (1 + base_frac)
    amp = 0.5 * (1 - base_frac)
    shape = mid + amp * np.sin(2 * np.pi * t / period - np.pi / 2)
    loads = peak * shape
    if noise > 0:
        loads = loads * np.maximum(1.0 + noise * g.standard_normal(T), 0.0)
    return np.clip(loads, 0.0, None)


def bursty_loads(T: int, *, peak: float, base_frac: float = 0.2,
                 burst_prob: float = 0.05, burst_len: int = 5,
                 rng=None) -> np.ndarray:
    """Low base load with short flash-crowd bursts to ``peak``."""
    g = _rng(rng)
    loads = np.full(T, peak * base_frac, dtype=np.float64)
    t = 0
    while t < T:
        if g.random() < burst_prob:
            span = min(1 + g.integers(burst_len), T - t)
            loads[t:t + span] = peak * (0.8 + 0.2 * g.random())
            t += span
        else:
            t += 1
    return loads


def random_walk_loads(T: int, *, peak: float, step_frac: float = 0.05,
                      rng=None) -> np.ndarray:
    """Reflected random walk on ``[0, peak]`` (slowly wandering demand)."""
    g = _rng(rng)
    steps = g.uniform(-step_frac, step_frac, size=T) * peak
    loads = np.empty(T, dtype=np.float64)
    x = 0.5 * peak
    for t in range(T):
        x += steps[t]
        if x < 0:
            x = -x
        if x > peak:
            x = 2 * peak - x
        loads[t] = x
    return loads


def onoff_loads(T: int, *, peak: float, p_on: float = 0.1,
                p_off: float = 0.1, base_frac: float = 0.1,
                rng=None) -> np.ndarray:
    """Two-state Markov-modulated demand (MMPP-like on/off source)."""
    g = _rng(rng)
    loads = np.empty(T, dtype=np.float64)
    on = False
    for t in range(T):
        if on and g.random() < p_off:
            on = False
        elif not on and g.random() < p_on:
            on = True
        loads[t] = peak if on else peak * base_frac
    return loads


def sawtooth_loads(T: int, *, peak: float, period: int = 10) -> np.ndarray:
    """Deterministic sawtooth — the oscillation that punishes eager
    algorithms with switching cost."""
    t = np.arange(T, dtype=np.float64)
    return peak * (t % period) / max(period - 1, 1)


def constant_loads(T: int, level: float) -> np.ndarray:
    """Constant demand (static provisioning is optimal here)."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return np.full(T, float(level))


def msr_like_loads(T: int, *, peak: float = 40.0, rng=None) -> np.ndarray:
    """MSR-trace-like shape: strong diurnal cycle (PMR ~ 2) plus mild
    noise and occasional half-day lulls."""
    g = _rng(rng)
    loads = diurnal_loads(T, peak=peak, period=24, base_frac=0.45,
                          noise=0.08, rng=g)
    # Occasional maintenance lulls.
    for start in range(0, T, 24 * 7):
        if g.random() < 0.3:
            lo = start + int(g.integers(0, 24))
            loads[lo:lo + 12] *= 0.5
    return loads


def hotmail_like_loads(T: int, *, peak: float = 60.0, rng=None) -> np.ndarray:
    """Hotmail-trace-like shape: spikier diurnal cycle (PMR ~ 4-5) with a
    weekly modulation and bursts."""
    g = _rng(rng)
    base = diurnal_loads(T, peak=peak, period=24, base_frac=0.12,
                         noise=0.12, rng=g)
    week = 1.0 - 0.25 * (np.arange(T) % (24 * 7) >= 24 * 5)
    burst = bursty_loads(T, peak=0.35 * peak, base_frac=0.0,
                         burst_prob=0.02, burst_len=3, rng=g)
    return np.clip(base * week + burst, 0.0, None)


def regime_switching_loads(T: int, *, peak: float,
                           levels=(0.15, 0.5, 0.9),
                           dwell: float = 20.0, rng=None) -> np.ndarray:
    """Markov regime-switching demand.

    The trace dwells at a level (fraction of ``peak``) for a geometric
    number of steps with mean ``dwell``, then jumps to another level —
    the stepwise regime changes that stress laziness thresholds in a way
    diurnal curves do not.
    """
    if not levels:
        raise ValueError("need at least one level")
    if dwell < 1:
        raise ValueError("dwell must be at least 1")
    g = _rng(rng)
    levels = np.asarray(levels, dtype=np.float64)
    loads = np.empty(T, dtype=np.float64)
    cur = int(g.integers(len(levels)))
    t = 0
    while t < T:
        span = 1 + int(g.geometric(1.0 / dwell))
        span = min(span, T - t)
        loads[t:t + span] = peak * levels[cur]
        t += span
        nxt = int(g.integers(len(levels) - 1))
        cur = nxt if nxt < cur else nxt + 1 if len(levels) > 1 else cur
    return loads


def compose_loads(*parts: np.ndarray, weights=None) -> np.ndarray:
    """Weighted superposition of load traces (e.g. daily + weekly +
    bursts).  All parts must share a length; the result is clipped at 0.
    """
    if not parts:
        raise ValueError("need at least one trace")
    T = parts[0].shape[0]
    if any(p.shape != (T,) for p in parts):
        raise ValueError("all traces must have equal length")
    if weights is None:
        weights = [1.0] * len(parts)
    if len(weights) != len(parts):
        raise ValueError("one weight per trace required")
    total = np.zeros(T, dtype=np.float64)
    for w, p in zip(weights, parts):
        total += float(w) * np.asarray(p, dtype=np.float64)
    return np.clip(total, 0.0, None)


def random_convex_instance(rng, T: int, m: int, beta: float,
                           scale: float = 5.0):
    """Random :class:`~repro.core.instance.Instance` with convex
    non-negative rows.

    Each row is built from sorted slopes (guaranteeing convexity), shifted
    to be non-negative, so instances cover minimizers at interior states
    and both boundaries.  This is the shared generator behind the test
    suite, the benchmarks and the ``random-convex`` scenario.
    """
    from ..core.instance import Instance

    g = _rng(rng)
    rows = np.empty((T, m + 1))
    for t in range(T):
        slopes = np.sort(g.uniform(-scale, scale, m))
        vals = np.concatenate([[0.0], np.cumsum(slopes)])
        vals -= vals.min()
        vals += g.uniform(0, scale / 5)
        rows[t] = vals
    return Instance(beta=beta, F=rows)


def peak_to_mean_ratio(loads: np.ndarray) -> float:
    """PMR of a trace (the statistic Lin et al. report per trace)."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = float(np.mean(loads))
    if mean <= 0:
        raise ValueError("PMR undefined for zero-mean trace")
    return float(np.max(loads)) / mean
