"""Pluggable result sinks — where streamed grid rows land.

The streaming engine (:func:`repro.runner.run_grid`) no longer has to
accumulate every result row in parent memory: finished rows flow, batch
by batch and in job order, into a *result sink*.  Three sinks implement
the same ``open``/``write``/``close`` contract:

* :class:`ListSink` — the in-memory list of the historical API;
  ``run_grid`` uses it by default, so existing callers still get a
  plain ``list[dict]`` back.
* :class:`JsonlSink` — one JSON object per line appended to a file.
  A 1M-job grid costs O(batch) parent memory; the table is re-read with
  :func:`read_jsonl_rows` (or any ``jq``-shaped tool).
* :class:`SqliteSink` — rows in a single WAL-mode SQLite database,
  sharing the cache's WAL machinery
  (:func:`repro.runner.jobcache.connect_wal`): one inode, safe
  concurrent readers, re-read with :func:`read_sqlite_rows`.

File-backed sinks truncate on ``open`` by default (``append=False``):
re-running a killed grid replays the cached rows cheaply and rewrites
the complete table, so the file never holds a torn or duplicated
stream.  Rows pass through :func:`~repro.runner.jobcache.jsonify`, so a
row read back from any sink is bit-identical to the row a
:class:`ListSink` collected from the same grid.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3

from . import faults
from .jobcache import connect_wal, jsonify

__all__ = [
    "MergeError",
    "ResultSink",
    "ListSink",
    "JsonlSink",
    "SqliteSink",
    "make_sink",
    "read_jsonl_rows",
    "read_sqlite_rows",
]

#: CLI names of the registered sink kinds
SINK_KINDS = ("list", "jsonl", "sqlite")


class MergeError(ValueError):
    """A worker's result stream is unusably corrupt.

    Raised when tolerant readers / the lease-queue merge find damage
    they must *not* paper over: JSON corruption in the **middle** of a
    worker's log (a torn *final* line is the expected SIGKILL artifact
    and stays tolerated) or two workers claiming the same sequence
    number with different rows.  Subclasses :class:`ValueError` so
    existing ``except ValueError`` callers keep working.
    """


class ResultSink:
    """Base sink: the streaming engine's output contract.

    ``open`` is called once before the first row; the engine then
    flushes each completed batch through :meth:`write_many` (whose
    default calls :meth:`write` once per result row, *in job order*);
    ``close`` runs exactly once afterwards (also on error).
    ``result()`` is what :func:`~repro.runner.run_grid` returns to its
    caller.
    """

    def open(self, meta: dict | None = None) -> None:
        """Prepare for a new row stream; ``meta`` describes the grid."""

    def write(self, row: dict) -> None:
        """Persist one finished result row (subclasses must override)."""
        raise NotImplementedError

    def write_many(self, rows) -> None:
        """Write a completed batch's rows, in order.

        The default delegates to :meth:`write` row by row, so sinks
        (and test doubles) that only override ``write`` keep their
        behavior; backends with a cheaper bulk path (SQLite
        ``executemany``) override this instead.

        Sink failures are deliberately *fatal* to the run: the engine
        aborts the drain on the first failed flush so a file-backed
        table always holds a clean row prefix (kill+resume semantics) —
        which is why the fault harness instruments this seam.
        """
        faults.fire("sink_write", type(self).__name__)
        for row in rows:
            self.write(row)

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def result(self):
        """What ``run_grid`` hands back once the stream is closed."""
        return None


class ListSink(ResultSink):
    """Accumulate rows in memory — the historical ``list[dict]`` API."""

    def __init__(self):
        """Start with an empty row list."""
        self.rows: list[dict] = []

    def open(self, meta: dict | None = None) -> None:
        """Reset the accumulated rows for a fresh stream."""
        self.rows = []

    def write(self, row: dict) -> None:
        """Append ``row`` to the in-memory list."""
        self.rows.append(row)

    def result(self) -> list[dict]:
        """Return the accumulated rows (the historical API)."""
        return self.rows


class JsonlSink(ResultSink):
    """Append each row as one canonical-JSON line to ``path``."""

    def __init__(self, path, append: bool = False):
        """Write to ``path``; ``append=True`` keeps existing lines."""
        self.path = pathlib.Path(path)
        self.append = append
        self._fh = None
        self.rows_written = 0

    def open(self, meta: dict | None = None) -> None:
        """Open (and by default truncate) the output file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if self.append else "w")
        self.rows_written = 0

    def write(self, row: dict) -> None:
        """Append ``row`` as one canonical-JSON line."""
        if self._fh is None:  # usable standalone, outside run_grid
            self.open()
        self._fh.write(json.dumps(jsonify(row), sort_keys=True) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def result(self) -> pathlib.Path:
        """Return the path of the written JSONL table."""
        return self.path


class SqliteSink(ResultSink):
    """Insert rows into a WAL-mode SQLite database at ``path``.

    The table is ``rows(seq INTEGER PRIMARY KEY, row TEXT)`` with
    ``seq`` preserving job order.  A directory ``path`` stores the
    database as ``rows.db`` inside it.
    """

    DB_NAME = "rows.db"

    def __init__(self, path, append: bool = False):
        """Write to the database at ``path`` (a ``.db`` file or dir)."""
        root = pathlib.Path(path)
        self.path = root if root.suffix == ".db" else root / self.DB_NAME
        self.append = append
        self._conn: sqlite3.Connection | None = None
        self.rows_written = 0

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = connect_wal(self.path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS rows ("
                " seq INTEGER PRIMARY KEY, row TEXT NOT NULL)")
        return self._conn

    def open(self, meta: dict | None = None) -> None:
        """Create the ``rows`` table; truncate unless appending."""
        conn = self._connection()
        if not self.append:
            conn.execute("DELETE FROM rows")
        self.rows_written = 0

    def write(self, row: dict) -> None:
        """Insert one row, letting SQLite assign the next ``seq``."""
        blob = json.dumps(jsonify(row), sort_keys=True)
        # seq is the INTEGER PRIMARY KEY: SQLite assigns max+1 itself
        self._connection().execute(
            "INSERT INTO rows (row) VALUES (?)", (blob,))
        self.rows_written += 1

    def write_many(self, rows) -> None:
        """Insert a whole batch with one ``executemany`` round-trip."""
        faults.fire("sink_write", type(self).__name__)
        blobs = [(json.dumps(jsonify(row), sort_keys=True),)
                 for row in rows]
        self._connection().executemany(
            "INSERT INTO rows (row) VALUES (?)", blobs)
        self.rows_written += len(blobs)

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def result(self) -> pathlib.Path:
        """Return the path of the written database."""
        return self.path


def make_sink(kind: str, path=None, append: bool = False) -> ResultSink:
    """Build a sink from its CLI name (``list``/``jsonl``/``sqlite``).

    ``path`` is required for the file-backed kinds.
    """
    if kind == "list":
        return ListSink()
    if kind == "jsonl":
        if path is None:
            raise ValueError("the jsonl sink needs a path")
        return JsonlSink(path, append=append)
    if kind == "sqlite":
        if path is None:
            raise ValueError("the sqlite sink needs a path")
        return SqliteSink(path, append=append)
    raise ValueError(f"unknown sink kind {kind!r}; choose from "
                     f"{SINK_KINDS}")


def read_jsonl_rows(path, tolerant: bool = False) -> list[dict]:
    """Load the rows a :class:`JsonlSink` wrote, in stream order.

    ``tolerant=True`` tolerates exactly one unparseable **final** line —
    the torn tail a SIGKILL'd writer can leave behind.  Corruption in
    the *middle* of the file is never a crash artifact (appends are
    sequential), so it raises :class:`MergeError` naming the file and
    line instead of being silently dropped.  Callers that verify
    completeness separately (the lease-queue ``merge``, which dedupes by
    sequence number and asserts full grid coverage) use the tolerant
    mode to read crash-prone per-worker files; everyone else keeps the
    fail-fast default.
    """
    path = pathlib.Path(path)
    rows = []
    torn: int | None = None  # line number of a pending unparseable line
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                # the bad line was NOT the final one: real corruption
                raise MergeError(
                    f"{path}: corrupt JSON on line {torn} (not a torn "
                    f"tail — line {lineno} follows it)")
            try:
                rows.append(json.loads(line))
            except ValueError:
                if not tolerant:
                    raise
                torn = lineno
    return rows


def read_sqlite_rows(path) -> list[dict]:
    """Load the rows a :class:`SqliteSink` wrote, in stream order."""
    root = pathlib.Path(path)
    db = root if root.suffix == ".db" else root / SqliteSink.DB_NAME
    conn = sqlite3.connect(db)
    try:
        return [json.loads(blob) for (blob,) in
                conn.execute("SELECT row FROM rows ORDER BY seq")]
    finally:
        conn.close()
