"""Metrics: competitive ratios, cost breakdowns, right-sizing savings."""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost as schedule_cost
from ..core.schedule import cost_breakdown
from ..offline.dp import solve_dp
from ..online.base import OnlineAlgorithm, run_online
from ..online.greedy import solve_static

__all__ = [
    "optimal_cost",
    "competitive_ratio",
    "empirical_ratios",
    "savings_vs_static",
    "schedule_stats",
    "regret_vs_static",
]


def optimal_cost(instance: Instance) -> float:
    """Offline optimum of eq. (1) (via the O(Tm) DP)."""
    return solve_dp(instance, return_schedule=False).cost


def competitive_ratio(instance: Instance, algorithm: OnlineAlgorithm,
                      opt: float | None = None) -> float:
    """Empirical competitive ratio of one algorithm on one instance."""
    res = run_online(instance, algorithm)
    opt = optimal_cost(instance) if opt is None else opt
    if opt <= 0:
        raise ValueError("optimal cost must be positive for a ratio")
    return res.cost / opt


def empirical_ratios(instances, algorithms) -> list[dict]:
    """Ratio table: one row per (instance, algorithm) pair.

    ``instances`` is an iterable of ``(label, Instance)``; ``algorithms``
    an iterable of factories ``() -> OnlineAlgorithm`` or instances.
    """
    rows = []
    for label, inst in instances:
        opt = optimal_cost(inst)
        for alg in algorithms:
            algo = alg() if callable(alg) else alg
            res = run_online(inst, algo)
            rows.append({
                "instance": label,
                "algorithm": res.name,
                "cost": res.cost,
                "opt": opt,
                "ratio": res.cost / opt if opt > 0 else np.inf,
            })
    return rows


def savings_vs_static(instance: Instance, schedule) -> dict:
    """Relative saving of a schedule against best static provisioning.

    This is the headline quantity of Lin et al.'s evaluation ("how much
    does right-sizing save?"); the case-study benchmark sweeps it over
    traces and switching costs.
    """
    static = solve_static(instance)
    mine = schedule_cost(instance, np.asarray(schedule, dtype=np.float64),
                         integral=False)
    return {
        "cost": mine,
        "static_cost": static.cost,
        "static_level": int(static.schedule[0]),
        "saving": 1.0 - mine / static.cost if static.cost > 0 else 0.0,
    }


def regret_vs_static(instance: Instance, schedule) -> float:
    """Additive regret against the best static schedule in hindsight.

    Andrew et al. [1] (cited in the paper's related work) study the
    tension between competitive ratio and this regret notion: O(1)
    competitiveness and sublinear regret cannot be achieved
    simultaneously.  The metric makes that trade-off measurable here:
    ``regret = cost(X) − min_j cost(constant j)`` (may be negative —
    right-sizing usually beats every static level).
    """
    static = solve_static(instance)
    mine = schedule_cost(instance, np.asarray(schedule, dtype=np.float64),
                         integral=False)
    return float(mine - static.cost)


def schedule_stats(instance: Instance, schedule) -> dict:
    """Cost breakdown plus switching activity of a schedule."""
    x = np.asarray(schedule, dtype=np.float64)
    stats = cost_breakdown(instance, x, integral=False)
    d = np.diff(np.concatenate([[0.0], x]))
    stats["power_ups"] = float(np.sum(np.maximum(d, 0.0)))
    stats["power_downs"] = float(np.sum(np.maximum(-d, 0.0)))
    stats["changes"] = int(np.count_nonzero(d))
    return stats
