"""Noisy forecasts for prediction-window experiments.

Section 5.4's model hands the algorithm the next ``w`` cost functions
*exactly*.  Real capacity planners work from forecasts; this module
degrades the lookahead with configurable noise so the practical value of
a window can be measured as forecast quality decays (the shape: perfect
forecasts recover most of the offline savings, noisy ones less, and a
useless forecast is no better than no window).

``forecast_runner`` replays an instance but substitutes each algorithm's
``future`` rows with noisy versions; noise grows with forecast distance
(errors compound), matching the standard forecasting regime.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost as schedule_cost
from ..online.base import OnlineAlgorithm, OnlineResult

__all__ = ["noisy_future", "forecast_runner"]


def noisy_future(rows: np.ndarray, noise: float, rng: np.random.Generator,
                 growth: float = 0.5) -> np.ndarray:
    """Perturb future cost rows with distance-compounding noise.

    Row ``i`` (forecast distance ``i+1``) is scaled entrywise by
    ``max(0, 1 + sigma_i * N(0,1))`` with
    ``sigma_i = noise * (1 + growth * i)``; rows are then re-convexified
    by sorting their increments, so algorithms always receive valid
    convex cost functions (a forecast is still a cost model).
    """
    if noise < 0:
        raise ValueError("noise must be non-negative")
    out = np.empty_like(rows)
    for i in range(rows.shape[0]):
        sigma = noise * (1.0 + growth * i)
        factors = np.maximum(1.0 + sigma * rng.standard_normal(rows.shape[1]),
                             0.0)
        row = rows[i] * factors
        # Re-convexify: rebuild from sorted increments anchored at the
        # noisy minimum value.
        inc = np.sort(np.diff(row))
        row = np.concatenate([[row[0]], row[0] + np.cumsum(inc)])
        row -= row.min()
        row += rows[i].min()  # keep the forecast's level calibrated
        out[i] = row
    return out


def forecast_runner(instance: Instance, algorithm: OnlineAlgorithm,
                    noise: float,
                    rng: np.random.Generator | int | None = None) -> OnlineResult:
    """Replay with noisy lookahead: ``f_tau`` is always exact (the present
    is observed), the ``w`` future rows are forecasts."""
    g = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    T, m = instance.T, instance.m
    algorithm.reset(m, instance.beta)
    dtype = np.float64 if algorithm.fractional else np.int64
    xs = np.empty(T, dtype=dtype)
    w = algorithm.lookahead
    for t in range(T):
        future = None
        if w > 0:
            actual = instance.F[t + 1:t + 1 + w]
            if actual.shape[0] > 0:
                future = noisy_future(actual, noise, g)
        x = algorithm.step(instance.F[t], future)
        xs[t] = float(x) if algorithm.fractional else int(x)
    total = schedule_cost(instance, xs.astype(np.float64),
                          integral=not algorithm.fractional)
    return OnlineResult(schedule=xs, cost=total, name=algorithm.name,
                        fractional=algorithm.fractional)
