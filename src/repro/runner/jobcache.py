"""Per-job content-addressed result cache.

The engine's unit of caching is one *record* — the result row of one
grid job, the offline optimum of one instance, or one sweep-point
measurement — stored as one small JSON file whose name is the SHA-256 of
the record's coordinates.  Because keys depend only on content (plus the
engine version baked into the payload by the caller), overlapping grids
share work automatically: re-running a grid extended by one seed pays
exactly the new seed's jobs, and two different grids that touch the same
(scenario, T, seed) instance solve its optimum once between them.

Records live under ``root/<kind>/<key[:2]>/<key>.json`` (sharded by the
first key byte so no directory grows unboundedly).  Writes go through a
per-process temp file and an atomic rename, so concurrent writers of the
same key are safe — last writer wins with identical content.  A file
that fails to parse, or whose embedded key does not match its name, is
treated as a miss and silently overwritten on the next put.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np

__all__ = ["JobCache", "content_key", "jsonify"]


def jsonify(value):
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {k: jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


def content_key(payload: dict) -> str:
    """Stable hash of a JSON-serializable coordinate payload.

    Callers must include their own version token (e.g. the engine
    version) in the payload so format changes invalidate old records.
    """
    blob = json.dumps(jsonify(payload), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class JobCache:
    """Content-addressed store of JSON records, one file per key."""

    def __init__(self, root):
        self.root = pathlib.Path(root)

    def path(self, kind: str, key: str) -> pathlib.Path:
        """Where the record of ``key`` lives (whether or not it exists)."""
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str):
        """The stored record, or ``None`` on miss/corruption."""
        try:
            payload = json.loads(self.path(kind, key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None  # foreign or corrupted content: recompute
        return payload.get("record")

    def put(self, kind: str, key: str, record) -> None:
        """Persist a record atomically (temp file + rename)."""
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps({"key": key, "record": jsonify(record)},
                                  sort_keys=True))
        tmp.replace(path)
