"""Reusable pipelined batch executor: one double-buffer/drain loop.

Historically :func:`repro.runner.engine.run_grid` and
:func:`repro.analysis.sweep.sweep` each carried their own copy of the
same scheduling loop: admit bounded batches of work, keep up to
``pipeline_depth`` of them in flight on the persistent process pool,
flush each completed batch's rows to the result sink *in admission
order*, and — on abort — cancel outstanding futures, persist the
chunks that did finish to the job cache, and still flush fully
completed head batches so a killed run keeps a clean row prefix.

This module is that loop, factored once:

* :class:`PipelineBatch` — the consumer contract: one admitted batch's
  stage machine (``advance``/``done``), the futures the scheduler may
  block on, in-order ``flush`` to the sink, and best-effort
  ``salvage`` of completed work on abort.
* :func:`run_pipeline` — the scheduler: pulls batches from a lazy
  iterator through a ``plan`` callback, bounds in-flight depth, pumps
  stage machines, flushes done heads in order, and drains on any
  exception.  The ``overlapped_batches`` / ``inflight_max`` /
  ``max_pending`` counters that prove overlap and O(batch) parent
  memory are maintained here, identically for every consumer.
* :class:`EngineConfig` / :class:`RunStats` — the shared execution
  configuration and the typed stats counters all consumers report.
* The persistent module-level :class:`~concurrent.futures.\
ProcessPoolExecutor` (fork-else-spawn, grown never shrunk), with
  :func:`submit_task` (inline for ``n_jobs <= 1``), fused
  :func:`chunk_list` dispatch and eager-validating :func:`iter_batches`.

Consumers: the grid engine (:mod:`repro.runner.engine`), the parameter
sweep (:mod:`repro.analysis.sweep`) and the multi-host lease-queue
worker loop (:mod:`repro.runner.leasequeue`), which replays leased job
ranges through :func:`~repro.runner.engine.run_grid` on this loop.
"""

from __future__ import annotations

import atexit
import collections
import dataclasses
import itertools
import multiprocessing
import time
import warnings
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)

from . import faults

__all__ = [
    "DEFAULT_PIPELINE_DEPTH",
    "EngineConfig",
    "PipelineBatch",
    "RetryPolicy",
    "RunStats",
    "chunk_list",
    "iter_batches",
    "parallel_map",
    "pool_generation",
    "resolve_config",
    "respawn_pool",
    "run_pipeline",
    "shutdown_pool",
    "submit_task",
]

#: how many batches the pipelined core keeps in flight at once
DEFAULT_PIPELINE_DEPTH = 2


# ----------------------------------------------------------------------
# Execution configuration and typed stats.
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Execution configuration shared by every executor consumer.

    One value object carries what used to be ``run_grid``'s sprawling
    keyword surface; :func:`~repro.runner.engine.run_grid`,
    :func:`~repro.analysis.sweep.sweep` and the lease-queue worker loop
    (:func:`~repro.runner.leasequeue.work`) all accept a ``config=``
    instance.  Legacy keyword arguments keep working through a
    deprecation shim (:func:`resolve_config`) that folds them into the
    config.  Frozen: derive variants with :func:`dataclasses.replace`.

    ``cache_dir`` may be a directory path or a ready-made
    :class:`~repro.runner.jobcache.JobCache`; ``sink`` a
    :class:`~repro.runner.sinks.ResultSink` (``None`` collects rows in
    memory); ``batch_size=None`` runs one batch; ``chunk_jobs=None``
    auto-sizes fused dispatch (``sweep`` spells it ``chunk_points``).

    The fault-tolerance knobs: a failing job is retried up to
    ``max_retries`` times (deterministic exponential backoff starting
    at ``retry_backoff`` seconds) before it is quarantined as a
    ``status="failed"`` row; a dead worker pool is respawned up to
    ``max_pool_restarts`` times per run; ``fault_plan`` installs a
    :class:`~repro.runner.faults.FaultPlan` (or its dict/JSON form)
    for the run — the chaos-testing seam.
    """

    n_jobs: int = 1
    cache_dir: object = None
    store_dir: object = None
    force: bool = False
    sink: object = None
    batch_size: int | None = None
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH
    chunk_jobs: int | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    max_pool_restarts: int = 3
    fault_plan: object = None


#: legacy keyword spellings that map onto a differently named field
_LEGACY_ALIASES = {"chunk_points": "chunk_jobs"}


def resolve_config(config, legacy, *, what, allowed=None):
    """Fold legacy keyword arguments into an :class:`EngineConfig`.

    ``config=None`` starts from the defaults.  Any entry in ``legacy``
    (the caller's ``**kwargs``) emits one :class:`DeprecationWarning`
    and overrides the corresponding config field; unknown names — or
    names outside ``allowed``, for callers that historically exposed
    only a subset — raise :class:`TypeError` exactly like a misspelled
    keyword argument would.
    """
    if config is None:
        config = EngineConfig()
    elif not isinstance(config, EngineConfig):
        raise TypeError(f"config must be an EngineConfig or None, "
                        f"got {config!r}")
    if not legacy:
        return config
    fields = {f.name for f in dataclasses.fields(EngineConfig)}
    updates = {}
    for name, value in legacy.items():
        target = _LEGACY_ALIASES.get(name, name)
        if target not in fields or (allowed is not None
                                    and name not in allowed):
            raise TypeError(
                f"{what}() got an unexpected keyword argument {name!r}")
        updates[target] = value
    warnings.warn(
        f"passing {sorted(legacy)} to {what}() as keyword arguments is "
        f"deprecated; pass config=EngineConfig(...) instead",
        DeprecationWarning, stacklevel=3)
    return dataclasses.replace(config, **updates)


@dataclasses.dataclass
class RunStats:
    """Typed execution counters (the successor of the ``stats`` dict).

    One instance may be threaded through several runs — e.g. every
    lease a worker drains — and keeps accumulating: counts add up,
    peaks (``max_pending``, ``inflight_max``) take the maximum.
    :meth:`as_dict` returns the plain-dict view existing tests and CI
    assertions were written against.
    """

    #: per-job cache hits / executed jobs (``run_grid``)
    job_hits: int = 0
    job_misses: int = 0
    #: per-instance optimum cache hits / fresh solves (phase 1)
    opt_hits: int = 0
    opt_solved: int = 0
    #: instances newly written to the store this run (phase 0)
    inst_materialized: int = 0
    #: instance-resolution deltas (see ``instancestore.build_stats``)
    inst_builds: int = 0
    inst_loads: int = 0
    inst_memo_hits: int = 0
    #: sweep-memo deltas (see ``kernels.sweep_stats``); parent-process
    #: view, like the instance-resolution counters above
    sweep_memo_hits: int = 0
    sweep_memo_misses: int = 0
    #: scheduler counters, maintained by :func:`run_pipeline`
    batches: int = 0
    max_pending: int = 0
    rows_written: int = 0
    overlapped_batches: int = 0
    inflight_max: int = 0
    #: sweep-point cache counters (:func:`repro.analysis.sweep.sweep`)
    hits: int = 0
    misses: int = 0
    #: lease-queue worker counters (:func:`repro.runner.leasequeue.work`)
    leases_claimed: int = 0
    leases_reclaimed: int = 0
    leases_completed: int = 0
    leases_lost: int = 0
    #: fault-tolerance counters: job attempts retried after a failure,
    #: jobs quarantined as ``status="failed"`` rows, dead worker pools
    #: respawned, and best-effort cache writes that were dropped
    retries: int = 0
    quarantined: int = 0
    pool_restarts: int = 0
    cache_put_failures: int = 0
    #: SQLITE_BUSY contention absorbed by ``jobcache.with_busy_retry``
    #: (parent-process delta, like the sweep-memo counters above)
    sqlite_busy_retries: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view of every counter (legacy ``stats`` shape)."""
        return dataclasses.asdict(self)

    def __getitem__(self, name: str) -> int:
        """Dict-style read access, so ``stats["job_hits"]`` keeps
        working on the typed object."""
        if name not in {f.name for f in dataclasses.fields(self)}:
            raise KeyError(name)
        return getattr(self, name)

    def merge_max(self, name: str, value: int) -> None:
        """Fold a peak observation into counter ``name`` (max, not +=)."""
        setattr(self, name, max(getattr(self, name), value))


# ----------------------------------------------------------------------
# Retry policy (worker-side backoff for failing jobs).
# ----------------------------------------------------------------------

#: injectable sleeper — tests replace it to assert backoff schedules
#: without paying wall-clock time (and results never embed a timestamp,
#: so retries cannot perturb row contents)
_SLEEP = time.sleep


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How a failing job is retried before quarantine.

    Picklable and carried inside the fused chunk payloads, so retries
    run *in the worker process that failed* — which keeps the
    per-process fault-injection counters (and therefore transient-fault
    chaos tests) deterministic.
    """

    max_retries: int = 2
    backoff: float = 0.05
    backoff_max: float = 2.0


def backoff_delay(policy: RetryPolicy, attempt: int) -> float:
    """Deterministic exponential backoff before retry ``attempt + 1``:
    ``backoff * 2**(attempt-1)``, capped at ``backoff_max``."""
    return min(policy.backoff * (2.0 ** (attempt - 1)),
               policy.backoff_max)


def retry_sleep(policy: RetryPolicy, attempt: int) -> None:
    """Sleep the backoff delay through the injectable ``_SLEEP``."""
    delay = backoff_delay(policy, attempt)
    if delay > 0:
        _SLEEP(delay)


# ----------------------------------------------------------------------
# Persistent worker pool.
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_GENERATION = 0


def _pool_worker_init() -> None:
    """Runs in every pool worker at fork/spawn: mark the process so
    ``exit``-kind injected faults may SIGKILL it (the parent and the
    inline path never honor them)."""
    faults.mark_worker()


def _get_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The module-level executor, grown (never shrunk) to ``n_jobs``."""
    global _POOL, _POOL_WORKERS, _POOL_GENERATION
    if _POOL is not None and _POOL_WORKERS < n_jobs:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
    if _POOL is None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        _POOL = ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx,
                                    initializer=_pool_worker_init)
        _POOL_WORKERS = n_jobs
        _POOL_GENERATION += 1
    return _POOL


def pool_generation() -> int:
    """Identity of the current pool incarnation.  A consumer records
    the generation next to each submitted future; on
    ``BrokenProcessPool`` it hands that generation to
    :func:`respawn_pool` so only the *first* observer of a given dead
    pool retires it (and counts one restart)."""
    return _POOL_GENERATION


def respawn_pool(generation: int) -> bool:
    """Retire the pool incarnation ``generation`` so the next
    submission forks a fresh one.  Returns ``True`` for the first
    caller to observe that generation's death; later callers (other
    in-flight chunks of the same dead pool) get ``False`` and must not
    count another restart."""
    global _POOL_GENERATION
    if generation != _POOL_GENERATION:
        return False
    _POOL_GENERATION += 1  # later observers of the dead pool mismatch
    shutdown_pool()
    return True


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent; also runs at
    interpreter exit).  The next parallel call starts a fresh pool.

    In-flight pipelined futures are drained cleanly: queued-but-
    unstarted tasks are cancelled (``cancel_futures=True``) and running
    ones are awaited, so a Ctrl-C mid-pipeline never leaves orphaned
    tasks executing against a torn-down parent.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def submit_task(fn, arg, n_jobs: int) -> Future:
    """Run ``fn(arg)`` — inline (returning an already-completed future)
    for ``n_jobs <= 1``, else on the persistent pool.  The inline path
    raises synchronously, like the historical serial engine, and keeps
    module-level ``fn`` internals monkeypatchable by tests."""
    if n_jobs <= 1:
        future: Future = Future()
        future.set_result(fn(arg))
        return future
    return _get_pool(n_jobs).submit(fn, arg)


atexit.register(shutdown_pool)


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on the persistent pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The pool outlives the call — it
    is reused by both engine phases, by every subsequent grid, and by
    ``analysis/sweep`` and ``repro lowerbound`` — so pool startup is
    amortized across the many small grids the benches run.  The
    in-process path is a plain ``map`` so tests can monkeypatch ``fn``'s
    module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    try:
        return list(_get_pool(n_jobs).map(fn, items, chunksize=chunksize))
    except Exception:
        # a dead/broken pool must not poison later calls — drop it so
        # the next parallel_map starts fresh, then surface the error
        shutdown_pool()
        raise


# ----------------------------------------------------------------------
# Batching and fused-chunk dispatch.
# ----------------------------------------------------------------------


def chunk_list(items, n_jobs: int, chunk_jobs: int | None) -> list[list]:
    """Split ``items`` into contiguous chunks for fused dispatch.

    ``chunk_jobs=None`` auto-sizes: in-process everything fuses into
    one chunk (maximal sharing, no IPC to amortize anyway); on the pool
    roughly two chunks per worker balance round-trip amortization
    against load balancing.  ``chunk_jobs=1`` disables fusion (the
    pre-pipeline per-job dispatch).
    """
    items = list(items)
    if not items:
        return []
    if chunk_jobs is not None:
        size = max(1, int(chunk_jobs))
    elif n_jobs <= 1:
        size = len(items)
    else:
        size = max(1, -(-len(items) // (2 * n_jobs)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def iter_batches(iterable, size: int | None):
    """Iterate lists of up to ``size`` items (everything when ``None``).

    ``size`` is validated *eagerly*, before the first item of
    ``iterable`` is consumed — a bad ``batch_size`` surfaces at the
    call site (before any sink is opened or job generated), not at the
    first ``next()`` of a lazily-evaluated generator.
    """
    if size is not None and size < 1:
        raise ValueError("batch_size must be positive")
    return _iter_batches(iterable, size)


def _iter_batches(iterable, size: int | None):
    if size is None:
        batch = list(iterable)
        if batch:
            yield batch
        return
    it = iter(iterable)
    while True:
        batch = list(itertools.islice(it, size))
        if not batch:
            return
        yield batch


# ----------------------------------------------------------------------
# The double-buffer / in-order-drain scheduling loop.
# ----------------------------------------------------------------------


class PipelineBatch:
    """One admitted batch of work: the :func:`run_pipeline` contract.

    A consumer's ``plan`` callback returns one instance per admitted
    batch; the scheduler then repeatedly calls :meth:`advance`, blocks
    on :meth:`unfinished_futures` when nothing progressed, and calls
    :meth:`flush` once the batch — and every batch admitted before it —
    is :meth:`done`.  On abort the scheduler cancels
    :meth:`all_futures`, gives each batch a best-effort
    :meth:`salvage`, and still flushes :meth:`flushable` head batches
    so a killed run keeps a clean in-order row prefix.
    """

    #: number of result rows the batch will flush (memory accounting)
    size = 0

    def advance(self) -> bool:
        """Move the batch's stage machine; return True on progress."""
        return False

    def done(self) -> bool:
        """True once every row of the batch is ready to flush."""
        raise NotImplementedError

    def unfinished_futures(self) -> list[Future]:
        """Futures the scheduler may need to block on."""
        return []

    def all_futures(self) -> list[Future]:
        """Every future the batch ever submitted (cancelled on abort)."""
        return self.unfinished_futures()

    def flush(self) -> int:
        """Write the batch's rows to the sink; return the row count.

        Called exactly once, in admission order, only after
        :meth:`done` (normal path) or :meth:`flushable` (abort path).
        """
        return 0

    def flushable(self) -> bool:
        """True when an aborted run may still flush this batch."""
        return self.done()

    def salvage(self) -> None:
        """Abort path: persist completed-but-unharvested work
        (best-effort cache writes; exceptions are swallowed)."""
        return None


def run_pipeline(batches, plan, *, pipeline_depth: int =
                 DEFAULT_PIPELINE_DEPTH, stats: RunStats | None = None
                 ) -> RunStats:
    """Drive batches of work through the double-buffered pipeline.

    ``batches`` is a (lazy) iterable of batch payloads; ``plan(batch)``
    admits one payload and returns its :class:`PipelineBatch`.  Up to
    ``pipeline_depth`` batches stay in flight: while the head batch's
    futures run, later batches are already admitted and submitting
    work, and each completed head flushes — in admission order — before
    any later batch.  When no batch progresses, the scheduler blocks on
    the union of unfinished futures (``FIRST_COMPLETED``).

    On any exception (including ``KeyboardInterrupt``) the in-flight
    window is drained: every future is cancelled, each batch salvages
    completed work into its cache, and fully completed head batches
    still flush in order — unless the sink itself failed, in which case
    nothing more is written (kill+resume relies on a clean row prefix).

    Maintains ``stats.batches``, ``stats.rows_written``,
    ``stats.max_pending`` (peak pending rows across the window),
    ``stats.overlapped_batches`` (admissions while an earlier batch
    still had unfinished futures) and ``stats.inflight_max``; returns
    the :class:`RunStats` it updated.
    """
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    stats = RunStats() if stats is None else stats
    batches_iter = iter(batches)
    inflight: collections.deque[PipelineBatch] = collections.deque()
    sink_ok = [True]   # False once a flush itself refused rows

    def flush_head() -> None:
        st = inflight.popleft()
        try:
            stats.rows_written += st.flush()
        except BaseException:
            # a sink that refuses rows must stop ALL flushing — the
            # abort drain must not write later batches after a torn
            # one (kill+resume relies on a clean row prefix)
            sink_ok[0] = False
            raise

    def pump() -> bool:
        """Advance every in-flight batch; flush completed heads in
        admission order (the sink sees rows in job order)."""
        progressed = False
        for st in list(inflight):
            while st.advance():
                progressed = True
        while inflight and inflight[0].done():
            flush_head()
            progressed = True
        return progressed

    def drain() -> None:
        """Abort path: cancel outstanding work, persist what finished,
        and flush fully completed head batches in order."""
        for st in inflight:
            for future in st.all_futures():
                future.cancel()
        for st in inflight:   # best-effort: completed chunks still count
            try:
                st.salvage()
            except Exception:
                pass
        while sink_ok[0] and inflight and inflight[0].flushable():
            try:
                flush_head()
            except BaseException:
                break

    exhausted = False
    try:
        while True:
            while not exhausted and len(inflight) < pipeline_depth:
                batch = next(batches_iter, None)
                if batch is None:
                    exhausted = True
                    break
                if any(b.unfinished_futures() for b in inflight):
                    stats.overlapped_batches += 1
                stats.batches += 1
                inflight.append(plan(batch))
                stats.merge_max("inflight_max", len(inflight))
                stats.merge_max("max_pending",
                                sum(b.size for b in inflight))
                pump()
            if not inflight:
                if exhausted:
                    break
                continue
            if not pump():
                futures = [f for st in inflight
                           for f in st.unfinished_futures()]
                if not futures:  # pragma: no cover - defensive
                    raise RuntimeError("pipeline stalled without "
                                       "outstanding work")
                wait(futures, return_when=FIRST_COMPLETED)
    except BaseException:
        drain()
        raise
    return stats
