"""Tests for the JobCache backends (JSON dir vs SQLite), the `repro
cache` admin CLI, and the nightly benchmark comparator."""

import json
import time

import pytest

from repro.runner import GridSpec, JobCache, migrate_cache, run_grid
from repro.runner.jobcache import DB_NAME

SMALL = GridSpec(scenarios=("diurnal",), algorithms=("lcp", "threshold"),
                 seeds=(0, 1), sizes=(16,))


def _cache_stats(stats):
    return {k: stats[k] for k in ("job_hits", "job_misses", "opt_hits",
                                  "opt_solved")}


class TestSqliteBackend:
    def test_hit_miss_parity_with_json(self, tmp_path):
        json_cache = JobCache(tmp_path / "json", backend="json")
        sq_cache = JobCache(tmp_path / "sq", backend="sqlite")
        stats = {j: {} for j in ("json1", "json2", "sq1", "sq2")}
        rows_j1 = run_grid(SMALL, cache_dir=json_cache,
                           stats=stats["json1"])
        rows_j2 = run_grid(SMALL, cache_dir=json_cache,
                           stats=stats["json2"])
        rows_s1 = run_grid(SMALL, cache_dir=sq_cache, stats=stats["sq1"])
        rows_s2 = run_grid(SMALL, cache_dir=sq_cache, stats=stats["sq2"])
        assert rows_j1 == rows_j2 == rows_s1 == rows_s2
        assert _cache_stats(stats["json1"]) == _cache_stats(stats["sq1"])
        assert _cache_stats(stats["json2"]) == _cache_stats(stats["sq2"])
        assert stats["sq2"]["job_hits"] == len(SMALL)

    def test_parallel_rows_bit_identical_under_both_backends(self,
                                                            tmp_path):
        # Hermetic by construction (the PR 7 full-suite-only flake):
        # every combo forks its pool from an identical parent state —
        # no inherited pool, no warm sweep/instance memos — so a state
        # leak from an earlier test cannot skew one combo against the
        # in-process reference.  The status check turns a silent
        # wrong-row mismatch into a diagnosable quarantine report.
        from repro import kernels
        from repro.runner import instancestore, shutdown_pool
        rows = {}
        for backend in ("json", "sqlite"):
            for n_jobs in (1, 4):
                shutdown_pool()
                kernels.clear_sweep_cache()
                instancestore.clear_memo()
                cache = JobCache(tmp_path / f"{backend}-{n_jobs}",
                                 backend=backend)
                rows[(backend, n_jobs)] = run_grid(SMALL, n_jobs=n_jobs,
                                                   cache_dir=cache)
        shutdown_pool()
        for combo, combo_rows in rows.items():
            failed = [r for r in combo_rows
                      if r.get("status") == "failed"]
            assert not failed, (combo, failed)
        reference = rows[("json", 1)]
        assert all(r == reference for r in rows.values())

    def test_get_put_roundtrip_and_miss(self, tmp_path):
        cache = JobCache(tmp_path, backend="sqlite")
        assert cache.get("jobs", "k1") is None
        cache.put("jobs", "k1", {"cost": 1.5, "n": 2})
        assert cache.get("jobs", "k1") == {"cost": 1.5, "n": 2}
        cache.put("jobs", "k1", {"cost": 2.5})  # overwrite: last wins
        assert cache.get("jobs", "k1") == {"cost": 2.5}
        assert cache.get("instances", "k1") is None  # kind-scoped

    def test_corrupt_database_is_miss_then_heals(self, tmp_path):
        cache = JobCache(tmp_path, backend="sqlite")
        cache.put("jobs", "k1", {"cost": 1.0})
        del cache
        db = tmp_path / DB_NAME
        db.write_bytes(b"this is not a sqlite database at all")
        for wal in (tmp_path / f"{DB_NAME}-wal", tmp_path / f"{DB_NAME}-shm"):
            wal.unlink(missing_ok=True)
        reopened = JobCache(tmp_path)  # auto-detects sqlite by filename
        assert reopened.backend == "sqlite"
        assert reopened.get("jobs", "k1") is None  # corruption = miss
        reopened.put("jobs", "k2", {"cost": 2.0})  # heals: fresh db
        assert reopened.get("jobs", "k2") == {"cost": 2.0}
        assert list(tmp_path.glob(f"{DB_NAME}.corrupt.*"))

    def test_corrupt_record_is_miss(self, tmp_path):
        import sqlite3
        cache = JobCache(tmp_path, backend="sqlite")
        cache.put("jobs", "k1", {"cost": 1.0})
        with sqlite3.connect(tmp_path / DB_NAME) as conn:
            conn.execute("UPDATE records SET record = '{broken'")
        assert cache.get("jobs", "k1") is None

    def test_concurrent_writers_same_key(self, tmp_path):
        a = JobCache(tmp_path, backend="sqlite")
        b = JobCache(tmp_path, backend="sqlite")
        for i in range(20):
            a.put("jobs", "shared", {"writer": "a", "i": i})
            b.put("jobs", "shared", {"writer": "b", "i": i})
        assert a.get("jobs", "shared") == {"writer": "b", "i": 19}
        assert b.get("jobs", "shared") == {"writer": "b", "i": 19}

    def test_stats_prune_clear(self, tmp_path):
        cache = JobCache(tmp_path, backend="sqlite")
        now = time.time()
        cache.put("jobs", "old", {"v": 1}, created=now - 100 * 86400)
        cache.put("jobs", "new", {"v": 2})
        cache.put("instances", "i1", {"v": 3})
        info = cache.stats()
        assert info["backend"] == "sqlite"
        assert info["entries"] == {"jobs": 2, "instances": 1}
        assert info["total"] == 3 and info["bytes"] > 0
        assert cache.prune(30 * 86400) == 1  # only 'old' goes
        assert cache.get("jobs", "old") is None
        assert cache.get("jobs", "new") == {"v": 2}
        assert cache.clear() == 2
        assert cache.stats()["total"] == 0

    def test_json_stats_prune_clear(self, tmp_path):
        cache = JobCache(tmp_path, backend="json")
        now = time.time()
        cache.put("jobs", "old", {"v": 1}, created=now - 100 * 86400)
        cache.put("jobs", "new", {"v": 2})
        info = cache.stats()
        assert info["backend"] == "json"
        assert info["entries"] == {"jobs": 2} and info["bytes"] > 0
        assert cache.prune(30 * 86400) == 1
        assert cache.get("jobs", "old") is None
        assert cache.clear() == 1
        assert cache.stats()["total"] == 0

    def test_read_operations_do_not_create_database(self, tmp_path):
        """A read-only op on the sqlite backend must not materialize an
        empty cache.db — that would flip a JSON dir's auto-detection
        and hide its records."""
        json_cache = JobCache(tmp_path, backend="json")
        json_cache.put("jobs", "k1", {"v": 1})
        sq_view = JobCache(tmp_path, backend="sqlite")
        assert sq_view.get("jobs", "k1") is None
        assert sq_view.stats()["total"] == 0
        assert sq_view.prune(0) == 0 and sq_view.clear() == 0
        assert list(sq_view.iter_records()) == []
        assert not (tmp_path / DB_NAME).exists()
        assert JobCache(tmp_path).backend == "json"  # detection intact
        assert JobCache(tmp_path).get("jobs", "k1") == {"v": 1}

    def test_path_only_for_json(self, tmp_path):
        assert JobCache(tmp_path, backend="json").path("jobs", "ab12")
        with pytest.raises(ValueError, match="json backend"):
            JobCache(tmp_path, backend="sqlite").path("jobs", "ab12")

    def test_old_database_without_accessed_column_still_opens(self,
                                                              tmp_path):
        """Databases written before the LRU column existed migrate in
        place (ALTER TABLE) on first open."""
        import sqlite3
        db = tmp_path / DB_NAME
        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE records (kind TEXT NOT NULL, key TEXT "
                     "NOT NULL, record TEXT NOT NULL, created REAL NOT "
                     "NULL, PRIMARY KEY (kind, key))")
        conn.execute("INSERT INTO records VALUES ('jobs', 'k1', "
                     "'{\"v\": 1}', 1.0)")
        conn.commit()
        conn.close()
        cache = JobCache(tmp_path, backend="sqlite")
        assert cache.get("jobs", "k1") == {"v": 1}
        cache.put("jobs", "k2", {"v": 2})
        assert cache.prune_bytes(10 ** 9) == 0  # under bound: no-op

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            JobCache(tmp_path, backend="mongodb")


class TestPruneBytes:
    """Size-bounded LRU eviction (`repro cache prune --max-bytes`)."""

    def _fill(self, cache, n=24):
        for i in range(n):
            cache.put("jobs", f"k{i:02d}", {"v": i, "pad": "x" * 4000})

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_prune_bytes_bounds_the_cache(self, tmp_path, backend):
        cache = JobCache(tmp_path, backend=backend)
        self._fill(cache)
        cache.prune_bytes(10 ** 18)  # no-op bound, drains the WAL
        before = cache.stats()
        bound = before["bytes"] // 3
        removed = cache.prune_bytes(bound)
        after = cache.stats()
        assert removed > 0
        assert after["total"] == before["total"] - removed
        assert after["total"] > 0  # bound keeps part of the cache
        assert after["bytes"] <= bound

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_prune_bytes_noop_under_bound(self, tmp_path, backend):
        cache = JobCache(tmp_path, backend=backend)
        self._fill(cache, n=3)
        assert cache.prune_bytes(10 ** 9) == 0
        assert cache.stats()["total"] == 3

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_prune_bytes_evicts_least_recently_accessed(self, tmp_path,
                                                        backend):
        cache = JobCache(tmp_path, backend=backend)
        now = time.time()
        # k0 written longest ago but *read* recently; k1 written later
        # but never read since -> k1 is the LRU victim
        cache.put("jobs", "k0", {"v": 0, "pad": "x" * 300},
                  created=now - 1000)
        cache.put("jobs", "k1", {"v": 1, "pad": "x" * 300},
                  created=now - 500)
        if backend == "json":
            # file timestamps need a visible gap on coarse filesystems
            import os
            p0 = cache.path("jobs", "k0")
            p1 = cache.path("jobs", "k1")
            os.utime(p0, (now - 1000, now - 1000))
            os.utime(p1, (now - 500, now - 500))
        assert cache.get("jobs", "k0") == {"v": 0, "pad": "x" * 300}
        removed = cache.prune_bytes(1)  # evict down toward empty
        assert removed >= 1
        victims = {key for _kind, key, _rec, _c in cache.iter_records()}
        # eviction order followed last-access: k1 left before k0
        if cache.stats()["total"] == 1:
            assert victims == {"k0"}

    def test_new_databases_use_incremental_vacuum(self, tmp_path):
        """Satellite acceptance: caches created by this backend keep a
        free-page map, so eviction rounds reclaim space with
        ``PRAGMA incremental_vacuum`` instead of a full VACUUM."""
        import sqlite3
        cache = JobCache(tmp_path, backend="sqlite")
        self._fill(cache)
        assert cache.stats()["auto_vacuum"] == "incremental"
        mode = sqlite3.connect(tmp_path / DB_NAME).execute(
            "PRAGMA auto_vacuum").fetchone()[0]
        assert mode == 2  # INCREMENTAL
        cache.prune_bytes(10 ** 18)  # no-op bound, drains the WAL
        before = cache.stats()
        bound = before["bytes"] // 3
        removed = cache.prune_bytes(bound)
        after = cache.stats()
        assert removed > 0
        assert after["bytes"] <= bound  # pages actually came back

    def test_legacy_database_falls_back_to_full_vacuum(self, tmp_path):
        """A cache.db from before the incremental mode still prunes
        (full VACUUM per round) and reports its vacuum mode."""
        from repro.runner.jobcache import connect_wal
        conn = connect_wal(tmp_path / DB_NAME)  # auto_vacuum=NONE
        conn.execute("CREATE TABLE records (kind TEXT NOT NULL, key "
                     "TEXT NOT NULL, record TEXT NOT NULL, created "
                     "REAL NOT NULL, accessed REAL, "
                     "PRIMARY KEY (kind, key))")
        conn.close()
        cache = JobCache(tmp_path)
        self._fill(cache)
        assert cache.stats()["auto_vacuum"] == "none"
        cache.prune_bytes(10 ** 18)  # no-op bound, drains the WAL
        bound = cache.stats()["bytes"] // 3
        assert cache.prune_bytes(bound) > 0
        assert cache.stats()["bytes"] <= bound

    def test_json_backend_reports_no_vacuum_mode(self, tmp_path):
        cache = JobCache(tmp_path, backend="json")
        self._fill(cache, n=2)
        assert "auto_vacuum" not in cache.stats()

    def test_stats_cli_reports_vacuum_mode(self, tmp_path, capsys):
        from repro.cli import main
        cache = JobCache(tmp_path, backend="sqlite")
        cache.put("jobs", "k", {"v": 1})
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "vacuum:  incremental" in capsys.readouterr().out

    def test_prune_bytes_cli(self, tmp_path, capsys):
        from repro.cli import main
        cache = JobCache(tmp_path, backend="json")
        self._fill(cache)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-bytes", "1k"]) == 0
        out = capsys.readouterr().out
        assert "least-recently-used" in out
        assert JobCache(tmp_path).stats()["bytes"] <= 1024
        with pytest.raises(SystemExit, match="older-than"):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="could not parse size"):
            main(["cache", "prune", "--cache-dir", str(tmp_path),
                  "--max-bytes", "huge"])

    def test_prune_age_and_bytes_compose(self, tmp_path, capsys):
        from repro.cli import main
        cache = JobCache(tmp_path, backend="sqlite")
        cache.put("jobs", "old", {"v": 1},
                  created=time.time() - 100 * 86400)
        self._fill(cache, n=6)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--older-than", "30d", "--max-bytes", "1g"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 records" in out
        assert "evicted 0" in out


class TestMigration:
    def test_migrate_preserves_records_and_timestamps(self, tmp_path):
        src = JobCache(tmp_path, backend="json")
        old = time.time() - 50 * 86400
        src.put("jobs", "k1", {"cost": 1.0}, created=old)
        src.put("instances", "k2", {"opt": 3.5})
        dst = JobCache(tmp_path, backend="sqlite")
        assert migrate_cache(src, dst) == 2
        assert dst.get("jobs", "k1") == {"cost": 1.0}
        assert dst.get("instances", "k2") == {"opt": 3.5}
        assert dst.prune(30 * 86400) == 1  # old timestamp survived
        # auto-detect now prefers the migrated cache.db
        assert JobCache(tmp_path).backend == "sqlite"

    def test_analysis_sweep_accepts_sqlite_cache(self, tmp_path):
        from repro.analysis import sweep
        from tests.test_runner import _measure
        cache = JobCache(tmp_path, backend="sqlite")
        stats1, stats2 = {}, {}
        grid = {"T": [2, 3], "m": [4, 5]}
        rows = sweep(_measure, grid, cache_dir=cache, stats=stats1)
        again = sweep(_measure, grid, cache_dir=cache, stats=stats2)
        assert rows == again
        assert stats1 == {"hits": 0, "misses": 4}
        assert stats2 == {"hits": 4, "misses": 0}
        assert (tmp_path / DB_NAME).exists()

    def test_engine_reads_migrated_cache(self, tmp_path):
        rows = run_grid(SMALL, cache_dir=JobCache(tmp_path,
                                                  backend="json"))
        migrate_cache(JobCache(tmp_path, backend="json"),
                      JobCache(tmp_path, backend="sqlite"))
        stats = {}
        again = run_grid(SMALL, cache_dir=JobCache(tmp_path), stats=stats)
        assert again == rows
        assert stats["job_hits"] == len(SMALL)


class TestCacheCLI:
    def _populate(self, tmp_path):
        run_grid(SMALL, cache_dir=tmp_path)

    def test_stats(self, tmp_path, capsys):
        from repro.cli import main
        self._populate(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "backend: json" in out and "jobs" in out
        assert "instances" in out

    def test_migrate_then_stats(self, tmp_path, capsys):
        from repro.cli import main
        self._populate(tmp_path)
        assert main(["cache", "migrate", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 6 records" in out  # 4 jobs + 2 instance optima
        assert (tmp_path / DB_NAME).exists()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "backend: sqlite" in capsys.readouterr().out
        # second migrate refuses (already sqlite)
        with pytest.raises(SystemExit, match="already holds"):
            main(["cache", "migrate", "--cache-dir", str(tmp_path)])

    def test_prune_and_clear(self, tmp_path, capsys):
        from repro.cli import main
        self._populate(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--older-than", "30d"]) == 0
        assert "pruned 0 records" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--older-than", "0s"]) == 0
        assert "pruned 6 records" in capsys.readouterr().out
        self._populate(tmp_path)
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 6 records" in capsys.readouterr().out

    def test_bad_age_rejected(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="could not parse age"):
            main(["cache", "prune", "--cache-dir", str(tmp_path),
                  "--older-than", "soon"])

    def test_sweep_accepts_backend_and_store(self, tmp_path, capsys):
        from repro.cli import main
        args = ["sweep", "--scenarios", "diurnal", "--algorithms",
                "lcp,threshold", "--seeds", "0", "-T", "16",
                "--cache-dir", str(tmp_path / "c"),
                "--cache-backend", "sqlite",
                "--store-dir", str(tmp_path / "s")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits, 2 misses" in out and "store:" in out
        assert (tmp_path / "c" / DB_NAME).exists()
        assert main(args) == 0
        assert "cache: 2 hits, 0 misses" in capsys.readouterr().out


class TestComparator:
    def _write(self, root, name, doc):
        root.mkdir(parents=True, exist_ok=True)
        (root / name).write_text(json.dumps(doc))

    def _doc(self, ratio=1.1, jps=100.0):
        return {"results": [{"T": 1000, "variant": "rebuild",
                             "jobs_per_sec": jps, "seconds": 1.0,
                             "mean_ratio": {"lcp": ratio}}]}

    def test_no_previous_dir_passes(self, tmp_path, capsys):
        import benchmarks.compare_results as cr
        cur = tmp_path / "cur"
        self._write(cur, "BENCH_engine.json", self._doc())
        assert cr.main([str(tmp_path / "missing"), str(cur)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_identical_passes(self, tmp_path):
        import benchmarks.compare_results as cr
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        self._write(prev, "BENCH_engine.json", self._doc())
        self._write(cur, "BENCH_engine.json", self._doc())
        assert cr.main([str(prev), str(cur)]) == 0

    def test_ratio_drift_fails(self, tmp_path, capsys):
        import benchmarks.compare_results as cr
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        self._write(prev, "BENCH_engine.json", self._doc(ratio=1.1))
        self._write(cur, "BENCH_engine.json", self._doc(ratio=1.3))
        assert cr.main([str(prev), str(cur)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_runtime_noise_within_tolerance_passes(self, tmp_path):
        import benchmarks.compare_results as cr
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        self._write(prev, "BENCH_engine.json", self._doc(jps=100.0))
        self._write(cur, "BENCH_engine.json", self._doc(jps=80.0))
        assert cr.main([str(prev), str(cur)]) == 0  # 20% < 50% time tol

    def test_runtime_collapse_fails(self, tmp_path):
        import benchmarks.compare_results as cr
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        self._write(prev, "BENCH_engine.json", self._doc(jps=100.0))
        self._write(cur, "BENCH_engine.json", self._doc(jps=20.0))
        assert cr.main([str(prev), str(cur)]) == 1

    def test_added_rows_do_not_misalign(self, tmp_path):
        import benchmarks.compare_results as cr
        prev, cur = tmp_path / "prev", tmp_path / "cur"
        self._write(prev, "BENCH_engine.json", self._doc())
        extended = self._doc()
        extended["results"].insert(0, {"T": 500, "variant": "rebuild",
                                       "jobs_per_sec": 9999.0,
                                       "mean_ratio": {"lcp": 9.9}})
        self._write(cur, "BENCH_engine.json", extended)
        assert cr.main([str(prev), str(cur)]) == 0  # keyed by (T, variant)
