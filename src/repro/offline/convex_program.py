"""Lin et al.'s convex-program approach, as an LP (the paper's comparator).

The paper's offline algorithm (Section 2) deliberately *differs* from the
convex-optimization approach of Lin et al. [24], which solves the
continuous relaxation.  This module implements that comparator: because
the continuous extension ``f-bar_t`` (eq. (3)) is piecewise linear with
integer breakpoints, the relaxation

``min sum_t f-bar_t(x_t) + beta sum_t (x_t - x_{t-1})^+``

is exactly a linear program:

* epigraph variables ``z_t >= f-bar_t(x_t)`` — one inequality per linear
  piece: ``z_t >= F[t,j] + (F[t,j+1] - F[t,j]) (x_t - j)``;
* ramp variables ``y_t >= x_t - x_{t-1}``, ``y_t >= 0``;
* objective ``sum_t z_t + beta sum_t y_t``.

By Lemma 4, flooring the LP optimum yields an optimal *integral*
schedule, so this pipeline ("solve the relaxation, round") reproduces
Lin et al.'s offline path end to end and cross-validates the DP and the
binary-search algorithm.  Requires scipy (HiGHS).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from .fractional import floor_schedule
from .result import OfflineResult

__all__ = ["solve_lp", "lp_relaxation_cost"]


def _build_lp(instance: Instance):
    """Assemble the sparse LP: variables [x_1..x_T, y_1..y_T, z_1..z_T]."""
    from scipy import sparse

    T, m = instance.T, instance.m
    beta = instance.beta
    F = instance.F
    n = 3 * T
    ix = np.arange(T)            # x_t indices
    iy = T + np.arange(T)        # y_t indices
    iz = 2 * T + np.arange(T)    # z_t indices

    c = np.zeros(n)
    c[iy] = beta
    c[iz] = 1.0

    rows, cols, vals, rhs = [], [], [], []
    r = 0
    # Ramp constraints: x_t - x_{t-1} - y_t <= 0 (x_0 = 0).
    for t in range(T):
        rows += [r, r]
        cols += [int(ix[t]), int(iy[t])]
        vals += [1.0, -1.0]
        if t > 0:
            rows.append(r)
            cols.append(int(ix[t - 1]))
            vals.append(-1.0)
        rhs.append(0.0)
        r += 1
    # Epigraph constraints: slope_j * x_t - z_t <= slope_j * j - F[t, j].
    for t in range(T):
        for j in range(m):
            slope = F[t, j + 1] - F[t, j]
            rows += [r, r]
            cols += [int(ix[t]), int(iz[t])]
            vals += [slope, -1.0]
            rhs.append(slope * j - F[t, j])
            r += 1
        if m == 0:
            rows += [r]
            cols += [int(iz[t])]
            vals += [-1.0]
            rhs.append(-F[t, 0])
            r += 1
    A = sparse.csr_matrix((vals, (rows, cols)), shape=(r, n))
    b = np.asarray(rhs)
    bounds = ([(0.0, float(m))] * T            # x in [0, m]
              + [(0.0, None)] * T              # y >= 0
              + [(None, None)] * T)            # z free (pinned by epigraph)
    return c, A, b, bounds


def lp_relaxation_cost(instance: Instance) -> float:
    """Optimal value of the continuous relaxation (equals the integral
    optimum; see module docstring)."""
    return solve_lp(instance).cost


def solve_lp(instance: Instance) -> OfflineResult:
    """Optimal schedule via the LP relaxation + Lemma 4 flooring."""
    from scipy.optimize import linprog

    if instance.T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="lp")
    c, A, b, bounds = _build_lp(instance)
    res = linprog(c, A_ub=A, b_ub=b, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - HiGHS on a feasible LP
        raise RuntimeError(f"LP solver failed: {res.message}")
    x_frac = res.x[:instance.T]
    # Snap away HiGHS's tolerance noise before flooring: a state returned
    # as 2.9999999 is the breakpoint 3, and flooring the noise instead of
    # the vertex would leave the optimal face.
    x_frac = np.where(np.abs(x_frac - np.round(x_frac)) <= 1e-6,
                      np.round(x_frac), x_frac)
    schedule = floor_schedule(np.clip(x_frac, 0.0, instance.m))
    from ..core.schedule import cost as schedule_cost
    total = schedule_cost(instance, schedule)
    return OfflineResult(schedule=schedule, cost=float(total), method="lp")
