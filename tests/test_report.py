"""Tests for the experiment-report assembly."""

import pathlib

import pytest

from repro.analysis.report import (EXPERIMENTS, assemble_report,
                                   headline_numbers, load_results,
                                   missing_experiments)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" \
    / "results"


def make_fake_results(tmp_path):
    (tmp_path / "E6_det_lower_bound.txt").write_text(
        "E6: deterministic lower bound (-> 3)\n"
        "eps   T      lcp_ratio  proof_bound\n"
        "----  -----  ---------  -----------\n"
        " 0.2    150      2.861        2.471\n"
        "0.02  15000      2.980        2.941\n")
    (tmp_path / "E8_continuous_B.txt").write_text(
        "E8: continuous bound\n"
        "eps   T     ratio  lemma21_target\n"
        "----  ----  -----  --------------\n"
        " 0.2   300  1.871           1.900\n"
        "0.02  3000  1.987           1.990\n")
    return tmp_path


class TestLoading:
    def test_load_groups_by_experiment(self, tmp_path):
        make_fake_results(tmp_path)
        results = load_results(tmp_path)
        assert set(results) == {"E6", "E8"}
        assert results["E6"][0][0] == "E6_det_lower_bound"

    def test_missing_experiments(self, tmp_path):
        make_fake_results(tmp_path)
        missing = missing_experiments(tmp_path)
        assert "E1" in missing and "E13" in missing
        assert "E6" not in missing

    def test_empty_dir_all_missing(self, tmp_path):
        assert missing_experiments(tmp_path) == list(EXPERIMENTS)


class TestAssembly:
    def test_report_contains_all_sections(self, tmp_path):
        make_fake_results(tmp_path)
        report = assemble_report(tmp_path)
        for exp_id, claim in EXPERIMENTS.items():
            assert f"## {exp_id} — {claim}" in report
        assert "2.980" in report
        assert "(no artifacts" in report  # for the missing ones

    def test_headline_numbers(self, tmp_path):
        make_fake_results(tmp_path)
        heads = headline_numbers(tmp_path)
        # E6's ratio column is 'lcp_ratio'; 'ratio' matches it.
        assert heads["det_lb_ratio"] == pytest.approx(2.980)
        assert heads["cont_lb_ratio"] == pytest.approx(1.987)
        assert "rand_lb_ratio" not in heads


@pytest.mark.skipif(not RESULTS_DIR.exists(),
                    reason="benchmarks not yet run")
class TestAgainstRealResults:
    def test_no_experiment_missing_after_bench_run(self):
        assert missing_experiments(RESULTS_DIR) == []

    def test_headlines_converged(self):
        heads = headline_numbers(RESULTS_DIR)
        assert heads["det_lb_ratio"] > 2.9
        assert heads["cont_lb_ratio"] > 1.95
        assert heads["rand_lb_ratio"] > 1.95

    def test_report_assembles(self):
        report = assemble_report(RESULTS_DIR)
        assert report.count("```") >= 2 * len(EXPERIMENTS)
