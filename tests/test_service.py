"""Tests for the serving layer: GridService routing, admission control,
idempotent submits, drain shutdown, the ServiceClient retry loop, and
the end-to-end chaos run (SIGKILL'd worker + transient HTTP and SQLite
faults) whose merged rows must stay bit-identical to a local run_grid."""

import json
import subprocess
import sys
import threading
import urllib.parse

import pytest

from repro.runner import (EngineConfig, FaultPlan, FaultSpec, GridService,
                          GridSpec, LeaseQueue, RequestError, RetryPolicy,
                          ServiceClient, ServiceUnavailable, busy_stats,
                          run_grid, work)
from repro.runner import faults
from repro.runner.executor import backoff_delay
from repro.runner.service import SERVICE_WORKER, ServiceError

SMALL = GridSpec(scenarios=("diurnal",), algorithms=("lcp", "threshold"),
                 seeds=(0, 1), sizes=(16,))


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def handle_transport(service, calls=None):
    """A ServiceClient transport that talks straight to
    GridService.handle — the real routing, no sockets."""
    def transport(method, url, body, timeout):
        if calls is not None:
            calls.append((method, url))
        path = urllib.parse.urlsplit(url).path
        try:
            status, payload, _headers = service.handle(method, path, body)
        except ServiceError as exc:
            return exc.status, json.dumps(exc.envelope()).encode()
        return status, json.dumps(payload).encode()
    return transport


class TestRouting:
    def test_submit_enqueues_misses_and_reports_receipt(self, tmp_path):
        service = GridService(tmp_path / "q")
        status, payload, _ = service.handle("POST", "/grids",
                                            SMALL.to_dict())
        assert status == 202
        assert payload["grid"] == SMALL.cache_key()
        assert payload["total"] == len(SMALL)
        assert payload["cache_hits"] == 0
        assert payload["enqueued"] == len(SMALL)
        assert not payload["resubmitted"]

    def test_resubmit_known_digest_never_reenqueues(self, tmp_path):
        service = GridService(tmp_path / "q")
        service.handle("POST", "/grids", SMALL.to_dict())
        queue = LeaseQueue(tmp_path / "q")
        before = queue.counts(SMALL.cache_key())
        status, payload, _ = service.handle("POST", "/grids",
                                            SMALL.to_dict())
        assert status == 200
        assert payload["resubmitted"]
        assert payload["enqueued"] == 0
        assert queue.counts(SMALL.cache_key()) == before

    def test_client_errors_are_envelopes_never_500(self, tmp_path):
        service = GridService(tmp_path / "q")
        for method, path, body, code in [
                ("POST", "/grids", [1, 2], "bad_request"),
                ("POST", "/grids", {"nope": 1}, "bad_spec"),
                ("GET", "/grids/unknown-digest", None, "unknown_grid"),
                ("GET", "/grids/", None, "bad_request"),
                ("DELETE", "/grids", None, "not_found")]:
            with pytest.raises(ServiceError) as exc_info:
                service.handle(method, path, body)
            assert exc_info.value.code == code
            assert 400 <= exc_info.value.status < 500
            envelope = exc_info.value.envelope()
            assert envelope["error"]["code"] == code

    def test_healthz_and_readyz(self, tmp_path):
        service = GridService(tmp_path / "q", cache_dir=tmp_path / "c")
        assert service.handle("GET", "/healthz")[1]["ok"]
        status, payload, _ = service.handle("GET", "/readyz")
        assert status == 200 and payload["ready"]

    def test_draining_refuses_submits_and_fails_readyz(self, tmp_path):
        service = GridService(tmp_path / "q", drain_timeout=0.5)
        service._draining = True  # flag only; no serve loop to stop
        status, payload, _ = service.handle("GET", "/readyz")
        assert status == 503 and not payload["ready"]
        with pytest.raises(ServiceError) as exc_info:
            service.handle("POST", "/grids", SMALL.to_dict())
        assert exc_info.value.status == 503
        assert exc_info.value.code == "draining"

    def test_over_budget_submit_gets_429_with_retry_after(self, tmp_path):
        service = GridService(tmp_path / "q", budget=len(SMALL) - 1)
        with pytest.raises(ServiceError) as exc_info:
            service.handle("POST", "/grids", SMALL.to_dict())
        assert exc_info.value.status == 429
        assert exc_info.value.code == "over_budget"
        assert exc_info.value.headers["Retry-After"]
        # the refused grid was not partially enqueued
        assert LeaseQueue(tmp_path / "q").grids() == []


class TestCacheProbingSubmit:
    def test_warm_cache_submit_is_instantly_done_and_identical(
            self, tmp_path):
        local = run_grid(SMALL,
                         EngineConfig(cache_dir=tmp_path / "cache"))
        service = GridService(tmp_path / "q",
                              cache_dir=tmp_path / "cache")
        status, payload, _ = service.handle("POST", "/grids",
                                            SMALL.to_dict())
        assert status == 202
        assert payload["cache_hits"] == len(SMALL)
        assert payload["enqueued"] == 0
        _, done, _ = service.handle(
            "GET", f"/grids/{payload['grid']}", None)
        assert done["state"] == "done"
        assert done["rows"] == local

    def test_partial_cache_enqueues_only_misses(self, tmp_path):
        half = GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                        seeds=(0, 1), sizes=(16,))
        run_grid(half, EngineConfig(cache_dir=tmp_path / "cache"))
        service = GridService(tmp_path / "q",
                              cache_dir=tmp_path / "cache")
        _, payload, _ = service.handle("POST", "/grids", SMALL.to_dict())
        assert payload["cache_hits"] == len(half)
        assert payload["enqueued"] == len(SMALL) - len(half)
        # a worker drains the misses; the merge is bit-identical
        work(tmp_path / "q", worker="w",
             config=EngineConfig(cache_dir=tmp_path / "cache"))
        _, done, _ = service.handle(
            "GET", f"/grids/{payload['grid']}", None)
        assert done["state"] == "done"
        assert done["rows"] == run_grid(SMALL)
        # the hits came through the synthetic service worker file
        queue = LeaseQueue(tmp_path / "q")
        assert queue.worker_path(SERVICE_WORKER).exists()

    def test_degraded_state_when_worker_fleet_dies(self, tmp_path):
        clock = FakeClock()
        service = GridService(tmp_path / "q", clock=clock)
        _, payload, _ = service.handle("POST", "/grids", SMALL.to_dict())
        queue = LeaseQueue(tmp_path / "q", clock=clock)
        assert queue.claim("doomed", ttl=10.0) is not None
        clock.now = 1000.0  # fleet dead: heartbeat deadline long past
        _, status_payload, _ = service.handle(
            "GET", f"/grids/{payload['grid']}", None)
        assert status_payload["state"] == "degraded"
        assert status_payload["stale"] >= 1
        assert "rows" not in status_payload


class TestDrainShutdown:
    def test_shutdown_waits_for_inflight_lease_then_exits(self, tmp_path):
        service = GridService(tmp_path / "q", drain_timeout=30.0).start()
        service.handle("POST", "/grids", SMALL.to_dict())
        queue = LeaseQueue(tmp_path / "q")
        lease = queue.claim("w")
        status, payload, _ = service.handle("POST", "/shutdown")
        assert status == 200 and payload["draining"]
        # in-flight lease: the serve loop must still be alive
        service.join(timeout=0.3)
        assert service._thread.is_alive()
        queue.complete(lease)
        service.join(timeout=10.0)
        assert not service._thread.is_alive()
        assert queue.counts()["leased"] == 0  # no orphaned leases

    def test_shutdown_is_idempotent(self, tmp_path):
        service = GridService(tmp_path / "q").start()
        for _ in range(2):
            status, payload, _ = service.handle("POST", "/shutdown")
            assert status == 200 and payload["draining"]
        service.join(timeout=10.0)
        assert not service._thread.is_alive()


class TestServiceClientRetry:
    POLICY = RetryPolicy(max_retries=2, backoff=0.05, backoff_max=2.0)

    def make_client(self, transport, sleeps):
        return ServiceClient("http://svc", policy=self.POLICY,
                             transport=transport, sleep=sleeps.append)

    def test_transport_failures_retry_with_deterministic_backoff(self):
        attempts = []

        def flaky(method, url, body, timeout):
            attempts.append(method)
            if len(attempts) < 3:
                raise OSError("connection refused")
            return 200, b'{"ok": true}'

        sleeps = []
        client = self.make_client(flaky, sleeps)
        assert client.request("GET", "/healthz") == {"ok": True}
        assert len(attempts) == 3
        assert sleeps == [backoff_delay(self.POLICY, 1),
                          backoff_delay(self.POLICY, 2)]

    def test_attempts_are_bounded_then_service_unavailable(self):
        attempts = []

        def dead(method, url, body, timeout):
            attempts.append(method)
            raise OSError("connection refused")

        sleeps = []
        client = self.make_client(dead, sleeps)
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        assert len(attempts) == self.POLICY.max_retries + 1
        assert len(sleeps) == self.POLICY.max_retries

    def test_429_and_5xx_retry_but_4xx_raises_immediately(self):
        responses = [(429, b'{"error": {"code": "over_budget"}}'),
                     (503, b'{"error": {"code": "draining"}}'),
                     (200, b'{"ok": true}')]
        attempts = []

        def busy(method, url, body, timeout):
            attempts.append(method)
            return responses[len(attempts) - 1]

        sleeps = []
        client = self.make_client(busy, sleeps)
        assert client.request("POST", "/grids") == {"ok": True}
        assert len(attempts) == 3

        calls = []

        def bad_request(method, url, body, timeout):
            calls.append(method)
            return 400, b'{"error": {"code": "bad_spec", "message": "no"}}'

        client = self.make_client(bad_request, sleeps=[])
        with pytest.raises(RequestError) as exc_info:
            client.request("POST", "/grids")
        assert exc_info.value.status == 400
        assert len(calls) == 1  # no retry on a client error

    def test_injected_http_faults_bounded_and_counted(self, tmp_path):
        service = GridService(tmp_path / "q")
        sleeps = []
        client = ServiceClient("http://svc", policy=self.POLICY,
                               transport=handle_transport(service),
                               sleep=sleeps.append)
        faults.activate(FaultPlan(specs=(
            FaultSpec(site="http_request", match="GET /healthz",
                      nth=(1, 2)),)))
        assert client.healthz()["ok"]
        assert sleeps == [backoff_delay(self.POLICY, 1),
                          backoff_delay(self.POLICY, 2)]
        # a poisoned site exhausts the bounded budget, then surfaces
        faults.reset()
        faults.activate(FaultPlan(specs=(
            FaultSpec(site="http_request", match="GET /healthz",
                      nth=None),)))
        with pytest.raises(ServiceUnavailable):
            client.healthz()

    def test_retried_submit_never_double_enqueues(self, tmp_path):
        service = GridService(tmp_path / "q")
        calls = []
        sleeps = []
        client = ServiceClient("http://svc", policy=self.POLICY,
                               transport=handle_transport(service, calls),
                               sleep=sleeps.append)
        # the first POST attempt dies before the wire; the retry lands
        faults.activate(FaultPlan(specs=(
            FaultSpec(site="http_request", match="POST /grids",
                      nth=(1,)),)))
        receipt = client.submit(SMALL)
        assert not receipt["resubmitted"]
        assert len(sleeps) == 1
        queue = LeaseQueue(tmp_path / "q")
        leases_after_first = sum(queue.counts(receipt["grid"]).values())
        # a full client-level duplicate (response lost, app retried)
        again = client.submit(SMALL)
        assert again["resubmitted"] and again["enqueued"] == 0
        assert sum(queue.counts(receipt["grid"]).values()) == \
            leases_after_first

    def test_wait_returns_on_degraded_instead_of_hanging(self, tmp_path):
        clock = FakeClock()
        service = GridService(tmp_path / "q", clock=clock)
        client = ServiceClient("http://svc",
                               transport=handle_transport(service),
                               sleep=lambda s: None, clock=clock)
        receipt = client.submit(SMALL)
        queue = LeaseQueue(tmp_path / "q", clock=clock)
        assert queue.claim("doomed", ttl=10.0) is not None
        clock.now = 1000.0
        payload = client.wait(receipt["grid"], timeout=5.0)
        assert payload["state"] == "degraded"


_DOOMED_SERVICE_WORKER = """
import os, signal, sys
from repro.runner import EngineConfig, LeaseQueue, run_grid
from repro.runner import leasequeue as lq

root, cache = sys.argv[1], sys.argv[2]
queue = LeaseQueue(root)
lease = queue.claim("doomed", ttl=0.5)
assert lease is not None

class DoomedSink(lq._LeaseSink):
    def write_many(self, rows):
        super().write_many(rows)
        os.kill(os.getpid(), signal.SIGKILL)

run_grid(queue.spec(lease.grid_id),
         EngineConfig(sink=DoomedSink(queue, lease, 0.5), batch_size=1,
                      cache_dir=cache),
         job_slice=(lease.start, lease.stop))
"""


class TestEndToEndChaos:
    def test_served_grid_survives_chaos_bit_identical(self, tmp_path):
        """The acceptance chaos run, over real HTTP: a SIGKILL'd
        worker, a transient http_request fault and transient lock
        faults on the queue and cache must not change a single byte of
        the merged rows, and the drain must exit with no orphans."""
        reference = run_grid(SMALL)  # fault-free local baseline
        cache = tmp_path / "cache"
        service = GridService(tmp_path / "q", cache_dir=cache,
                              lease_jobs=2, drain_timeout=30.0).start()
        client = ServiceClient(
            service.url, policy=RetryPolicy(backoff=0.01))
        faults.activate(FaultPlan(specs=(
            FaultSpec(site="http_request", match="POST /grids",
                      nth=(1,)),
            FaultSpec(site="queue_claim", nth=(1,), kind="lock"),
            FaultSpec(site="sqlite_lock", nth=(1,), kind="lock"),)))
        busy_before = busy_stats()["sqlite_busy_retries"]

        receipt = client.submit(SMALL)  # first POST attempt is injected
        assert receipt["enqueued"] == len(SMALL)
        grid_id = receipt["grid"]

        # one worker is SIGKILL'd mid-lease...
        proc = subprocess.run(
            [sys.executable, "-c", _DOOMED_SERVICE_WORKER,
             str(tmp_path / "q"), str(cache)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -9, proc.stderr
        # ...and a survivor reclaims and finishes (its first claim
        # eats the injected queue lock; the busy retry heals it)
        survivor = threading.Thread(target=work, args=(tmp_path / "q",),
                                    kwargs=dict(worker="survivor",
                                                poll=0.05,
                                                config=EngineConfig(
                                                    cache_dir=cache)))
        survivor.start()
        done = client.wait(grid_id, timeout=60.0)
        survivor.join(timeout=30.0)
        assert done["state"] == "done"
        assert done["rows"] == reference
        assert busy_stats()["sqlite_busy_retries"] > busy_before

        # resubmit to a FRESH queue with the warm cache: every job is
        # a hit, nothing is re-enqueued, rows stay identical
        faults.deactivate()
        faults.reset()
        service2 = GridService(tmp_path / "q2", cache_dir=cache).start()
        client2 = ServiceClient(service2.url)
        receipt2 = client2.submit(SMALL)
        assert receipt2["cache_hits"] == len(SMALL)
        assert receipt2["enqueued"] == 0
        done2 = client2.wait(receipt2["grid"], timeout=10.0)
        assert done2["state"] == "done"
        assert done2["rows"] == reference

        # clean drain on both replicas: exit the serve loop, and no
        # lease anywhere is left orphaned
        for svc, cli in ((service, client), (service2, client2)):
            assert cli.shutdown()["draining"]
            svc.join(timeout=15.0)
            assert not svc._thread.is_alive()
        for root in (tmp_path / "q", tmp_path / "q2"):
            assert LeaseQueue(root).counts()["leased"] == 0
