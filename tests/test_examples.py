"""Smoke tests: every example script must run cleanly and print its
headline artifacts (keeps examples from rotting as the library evolves).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

_EXPECTED = {
    "quickstart.py": ["optimal offline cost", "cost comparison"],
    "datacenter_simulation.py": ["right-sizing savings",
                                 "optimal schedule anatomy"],
    "online_comparison.py": ["cost / offline optimum", "LCP"],
    "adversarial_game.py": ["Theorem 4", "Theorem 6", "Theorem 8"],
    "capacity_planning.py": ["restricted model", "optimal schedules vs"],
    "simulator_validation.py": ["simulated outcomes", "right-sizing saves"],
    "heterogeneous_fleet.py": ["two-type fleet", "savings vs static"],
}


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=600,
        cwd=EXAMPLES_DIR.parent)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_all_examples_present():
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert found == set(_EXPECTED), (
        "examples and the smoke-test manifest diverged")


@pytest.mark.parametrize("name", sorted(_EXPECTED))
def test_example_runs(name):
    out = _run(name)
    for needle in _EXPECTED[name]:
        assert needle in out, f"{name}: missing {needle!r}"
