"""Chaos suite: the fault-tolerance layer under deterministic faults.

Every test drives :func:`repro.runner.run_grid` (or the lease queue)
through :mod:`repro.runner.faults` plans and asserts the central
invariant — the fault-free subset of rows is bit-identical to a
fault-free run — plus the bookkeeping around it: retry counts,
quarantine rows, pool respawns and the merge's prefer-ok rule.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (EngineConfig, FaultPlan, FaultSpec,
                          InjectedFault, JobCache, MergeError, RunStats,
                          failed_jobs, merge_results, retry_failed,
                          run_grid, work)
from repro.runner.engine import GridSpec
from repro.runner import engine as engine_mod
from repro.runner import faults
from repro.runner.leasequeue import LeaseQueue
from repro.runner.sinks import read_jsonl_rows

GRID = GridSpec(scenarios=("diurnal",), algorithms=("lcp", "threshold"),
                seeds=(0, 1), sizes=(16,))

#: fault-token prefix of the (diurnal, lcp, seed 0) job
LCP0 = "diurnal|lcp|16|0|0"

#: zero-backoff config so retry loops never sleep in tests
FAST = dict(retry_backoff=0.0)


def plan_of(*specs, state_dir=None) -> FaultPlan:
    return FaultPlan(specs=tuple(specs), state_dir=state_dir)


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="no_such_site")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="run_job", kind="melt")

    def test_json_round_trip(self):
        plan = plan_of(
            FaultSpec(site="run_job", match="x", nth=(1, 3)),
            FaultSpec(site="worker_exit", kind="exit", nth=None,
                      once=True),
            state_dir="/tmp/somewhere")
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_accepts_bare_spec_list(self):
        plan = FaultPlan.from_json(
            '[{"site": "run_job", "match": "abc"}]')
        assert plan.specs == (FaultSpec(site="run_job", match="abc"),)

    def test_as_plan_coercions(self):
        spec = FaultSpec(site="cache_put")
        plan = plan_of(spec)
        assert faults.as_plan(plan) is plan
        assert faults.as_plan(plan.to_json()) == plan
        assert faults.as_plan([spec.to_dict()]) == plan
        assert faults.as_plan(
            {"specs": [spec], "state_dir": None}) == plan

    def test_env_var_activates_lazily(self, monkeypatch):
        plan = plan_of(FaultSpec(site="cache_put", match="k", nth=None))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.reset()
        with pytest.raises(InjectedFault):
            faults.fire("cache_put", "key-1")
        faults.fire("cache_put", "other")  # match not a substring

    def test_nth_counts_per_site_match_key(self):
        faults.activate(plan_of(
            FaultSpec(site="run_job", match="a", nth=(2,))))
        faults.fire("run_job", "a1")      # first invocation: no fire
        with pytest.raises(InjectedFault):
            faults.fire("run_job", "a2")  # second: fires
        faults.fire("run_job", "a3")      # third: done
        assert faults.counters() == {("run_job", "a"): 3}

    def test_once_fires_a_single_time(self, tmp_path):
        faults.activate(plan_of(
            FaultSpec(site="run_job", nth=None, once=True),
            state_dir=str(tmp_path)))
        with pytest.raises(InjectedFault):
            faults.fire("run_job", "x")
        faults.fire("run_job", "x")  # marker file claimed: silent now


class TestRetryAndQuarantine:
    def test_transient_fault_retries_then_succeeds(self):
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=(1,))),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.retries == 1 and stats.quarantined == 0

    def test_retry_then_succeed_exact_attempt_count(self, monkeypatch):
        """Two injected failures burn exactly two retries; the job body
        itself runs once — attempt three, the first one the injection
        lets through."""
        runs = []
        real = engine_mod._run_job

        def counting(task):
            runs.append(task[0])
            return real(task)

        monkeypatch.setattr(engine_mod, "_run_job", counting)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=(1, 2))),
            max_retries=2, **FAST), stats=stats)
        assert stats.retries == 2 and stats.quarantined == 0
        assert sum(1 for job in runs if LCP0 in "|".join(
            str(p) for p in job)) == 1
        assert all(r.get("status") != "failed" for r in rows)

    def test_poison_job_quarantined_others_bit_identical(self):
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=None)),
            max_retries=2, **FAST), stats=stats)
        failed = [r for r in rows if r.get("status") == "failed"]
        assert len(failed) == 1 and stats.quarantined == 1
        assert stats.retries == 2  # both retries burned before giving up
        (row,) = failed
        assert row["error"] == "InjectedFault"
        assert row["phase"] == "run_job" and row["attempts"] == 3
        assert row["cost"] is None and row["ratio"] is None
        assert row["error_digest"]
        survivors = [r for r in rows if r.get("status") != "failed"]
        assert survivors == [r for r in clean
                             if not (r["algorithm"] == "lcp"
                                     and r["seed"] == 0)]

    def test_failed_rows_never_cached(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        run_grid(GRID, EngineConfig(
            cache_dir=cache,
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=None)),
            **FAST))
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(cache_dir=cache),
                        stats=stats)
        assert stats.job_hits == 3 and stats.job_misses == 1
        assert rows == run_grid(GRID)

    def test_solve_failure_quarantines_dependents_without_running(self):
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "threshold"),
                        seeds=(0,), sizes=(16,))
        stats = RunStats()
        rows = run_grid(spec, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="solve_instance", nth=None)),
            **FAST), stats=stats)
        assert stats.quarantined == 2
        assert all(r["status"] == "failed"
                   and r["phase"] == "solve_instance" for r in rows)

    def test_transient_solve_fault_is_invisible(self):
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "threshold"),
                        seeds=(0,), sizes=(16,))
        clean = run_grid(spec)
        stats = RunStats()
        rows = run_grid(spec, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="solve_instance", nth=(1,))),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.retries == 1 and stats.quarantined == 0

    def test_quarantined_rows_skipped_by_aggregate(self):
        rows = run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=None)),
            **FAST))
        agg = engine_mod.aggregate_rows(rows)
        lcp = [a for a in agg if a["algorithm"] == "lcp"]
        assert lcp[0]["n"] == 1  # only the surviving lcp row


class TestInfrastructureFaults:
    def test_cache_put_failure_absorbed_and_counted(self, tmp_path):
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            cache_dir=JobCache(tmp_path / "cache"),
            fault_plan=plan_of(
                FaultSpec(site="cache_put", nth=(1,))),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.cache_put_failures == 1 and stats.quarantined == 0

    def test_sqlite_lock_during_put_healed_by_busy_retry(self,
                                                         tmp_path):
        # A transient lock on the first put is retried inside the
        # backend (the shared SQLITE_BUSY wrapper), so the record IS
        # written: no dropped put, and the retry is counted in stats.
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            cache_dir=JobCache(tmp_path / "cache", backend="sqlite"),
            fault_plan=plan_of(
                FaultSpec(site="sqlite_lock", nth=(1,),
                          kind="lock")),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.cache_put_failures == 0
        assert stats.sqlite_busy_retries >= 1

    def test_persistent_sqlite_lock_still_absorbed(self, tmp_path,
                                                   monkeypatch):
        # A lock that outlives the whole retry budget degrades back to
        # the old behavior: the put is dropped, the run stays clean.
        from repro.runner import jobcache
        monkeypatch.setattr(jobcache, "_BUSY_SLEEP", lambda s: None)
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            cache_dir=JobCache(tmp_path / "cache", backend="sqlite"),
            fault_plan=plan_of(
                FaultSpec(site="sqlite_lock", nth=None,
                          kind="lock")),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.cache_put_failures >= 1
        assert stats.sqlite_busy_retries >= 1

    def test_materialize_failure_absorbed(self, tmp_path):
        clean = run_grid(GRID)
        rows = run_grid(GRID, EngineConfig(
            store_dir=tmp_path / "store",
            fault_plan=plan_of(
                FaultSpec(site="materialize", nth=None)),
            **FAST))
        assert rows == clean  # phases 1/2 rebuilt in-process

    def test_sink_write_failure_stays_fatal(self):
        with pytest.raises(InjectedFault):
            run_grid(GRID, EngineConfig(
                fault_plan=plan_of(
                    FaultSpec(site="sink_write", nth=(1,))),
                **FAST))


class TestPoolCrashRecovery:
    def test_sigkilled_worker_respawns_and_completes(self, tmp_path):
        clean = run_grid(GRID)
        stats = RunStats()
        rows = run_grid(GRID, EngineConfig(
            n_jobs=2,
            fault_plan=plan_of(
                FaultSpec(site="worker_exit", kind="exit", nth=None,
                          once=True),
                state_dir=str(tmp_path / "faults")),
            **FAST), stats=stats)
        assert rows == clean
        assert stats.pool_restarts >= 1 and stats.quarantined == 0

    def test_crash_loop_is_bounded(self, tmp_path):
        with pytest.raises(RuntimeError, match="giving up"):
            run_grid(GRID, EngineConfig(
                n_jobs=2, max_pool_restarts=1,
                fault_plan=plan_of(
                    FaultSpec(site="worker_exit", kind="exit",
                              nth=None)),
                **FAST))

    def test_exit_fault_is_inert_inline(self):
        # n_jobs=1 must never SIGKILL the caller's process
        rows = run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="worker_exit", kind="exit", nth=None)),
            **FAST))
        assert rows == run_grid(GRID)


class TestLeaseQueueChaos:
    def _drain(self, queue, config=None, worker="w1"):
        return work(queue, worker=worker,
                    config=config or EngineConfig(), poll=0.01)

    def test_failed_job_does_not_poison_the_lease(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        queue.enqueue(GRID, lease_jobs=2)
        stats = self._drain(queue, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=None)),
            **FAST))
        assert stats.leases_completed == 2 and stats.leases_lost == 0
        merged = merge_results(queue)
        assert sum(1 for r in merged
                   if r.get("status") == "failed") == 1
        clean = run_grid(GRID)
        assert [r for r in merged if r.get("status") != "failed"] == \
            [r for r in clean if not (r["algorithm"] == "lcp"
                                      and r["seed"] == 0)]

    def test_retry_failed_reruns_only_quarantined(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        queue.enqueue(GRID, lease_jobs=2)
        self._drain(queue, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=None)),
            **FAST))
        assert sorted(failed_jobs(queue)) == [0]
        n_failed, n_leases = retry_failed(queue)
        assert (n_failed, n_leases) == (1, 1)
        counts = queue.counts()
        assert counts["pending"] == 1 and counts["done"] == 1
        # a healthy worker retries the reopened range; prefer-ok merge
        # supersedes the stale failure envelope
        self._drain(queue, worker="w2")
        assert failed_jobs(queue) == {}
        assert merge_results(queue) == run_grid(GRID)
        assert retry_failed(queue) == (0, 0)

    def test_merge_prefers_ok_row_over_failed(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(GRID, lease_jobs=4)
        self._drain(queue)
        clean = merge_results(queue)
        # a stale quarantine envelope for job 0 from a flaky worker
        queue.results_dir.mkdir(exist_ok=True)
        (queue.results_dir / "flaky.jsonl").write_text(json.dumps(
            {"seq": 0, "grid": grid_id,
             "row": {"status": "failed", "error": "Boom"}}) + "\n")
        assert merge_results(queue) == clean
        # two failed rows for one seq never conflict either
        (queue.results_dir / "flaky2.jsonl").write_text(json.dumps(
            {"seq": 0, "grid": grid_id,
             "row": {"status": "failed", "error": "Other"}}) + "\n")
        assert merge_results(queue) == clean

    def test_stale_worker_visible_until_reclaimed(self, tmp_path):
        now = [0.0]
        queue = LeaseQueue(tmp_path / "q", clock=lambda: now[0])
        queue.enqueue(GRID, lease_jobs=2)
        queue.claim("w1", ttl=10.0)
        assert queue.stale() == 0
        now[0] = 11.0
        assert queue.stale() == 1
        queue.reclaim_expired()
        assert queue.stale() == 0


class TestMergeErrorReporting:
    def test_mid_file_corruption_names_worker_and_line(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        queue.enqueue(GRID, lease_jobs=4)
        work(queue, worker="w1", poll=0.01)
        target = next(iter(queue.results_dir.glob("*.jsonl")))
        lines = target.read_text().splitlines()
        lines[1] = '{"seq": 1, "gri'  # torn in the MIDDLE of the log
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(MergeError, match=r"line 2"):
            merge_results(queue)

    def test_torn_final_line_still_tolerated(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn')
        assert read_jsonl_rows(path, tolerant=True) == [{"a": 1},
                                                        {"b": 2}]

    def test_mid_file_corruption_raises_in_tolerant_mode(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"a": 1}\n{"torn\n{"b": 2}\n')
        with pytest.raises(MergeError, match="line 2"):
            read_jsonl_rows(path, tolerant=True)
        with pytest.raises(ValueError):
            read_jsonl_rows(path)  # strict mode: plain parse error


class TestRunGridHygiene:
    def test_fault_plan_never_leaks(self):
        run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=(1,))),
            **FAST))
        import os
        assert faults.ENV_VAR not in os.environ
        assert faults.active_plan() is None
        assert run_grid(GRID) == run_grid(GRID)

    def test_stats_counters_reported_in_dict_form(self):
        stats: dict = {}
        run_grid(GRID, EngineConfig(
            fault_plan=plan_of(
                FaultSpec(site="run_job", match=LCP0, nth=(1,))),
            **FAST), stats=stats)
        assert stats["retries"] == 1
        assert stats["quarantined"] == 0
        assert stats["pool_restarts"] == 0
