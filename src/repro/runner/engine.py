"""Zero-rebuild streaming batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon x params); the engine *streams*
it: job coordinates are generated lazily, submitted in bounded batches
(``batch_size``), and finished rows flow — in job order — into a
pluggable result sink (:mod:`repro.runner.sinks`), so a million-job
grid holds O(batch) pending records in the parent instead of the whole
table.  Each batch runs through three phases — in-process or on a
persistent process pool with chunking:

* **Phase 0 — materialization.**  With a ``store_dir``, each distinct
  ``(scenario, pipeline, T, inst_seed)`` instance is built exactly once
  and its dense payload written to the content-addressed
  :class:`~repro.runner.instancestore.InstanceStore`; later phases (and
  every other grid sharing the store) reopen it read-only via ``mmap``
  instead of re-tabulating cost matrices.  Even without a store, a
  per-process memo guarantees no process builds the same instance twice.
* **Phase 1 — instances.**  Each distinct instance's offline optimum is
  solved exactly once, however many algorithms the grid runs on it.
  Optima are persisted when a cache directory is given, so a grid with
  ``A`` algorithms pays roughly ``1/A`` of the naive per-job cost.
* **Phase 2 — algorithms.**  Algorithm jobs fan out over
  :func:`parallel_map`, each reusing its instance's hoisted optimum;
  the batch's rows are flushed to the sink (and the per-job cache)
  before the next batch is generated — so a killed grid resumes from
  the cache paying only the jobs it never finished.

Three properties make this the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows — with or
  without the instance store (``np.save`` round-trips float64 exactly).
* **Caching** — results persist per *job* in a content-addressed store
  (:class:`~repro.runner.jobcache.JobCache`, JSON-dir or SQLite
  backend): one record per job key, plus one per instance optimum.
  Overlapping grids share work, and extending a grid by one seed
  executes only the new seed's jobs.
* **Pool reuse** — :func:`parallel_map` keeps one module-level
  ``ProcessPoolExecutor`` alive across phases, grids and callers
  (``analysis/sweep``, ``repro lowerbound``), so the many small grids
  the benches run don't pay a pool fork each; :func:`shutdown_pool`
  tears it down explicitly (and at interpreter exit).  Jobs are handed
  to workers in contiguous chunks to amortize IPC, while row order
  always matches job order.

Algorithms are resolved through :mod:`repro.runner.registry`; the
registry entry's ``pipeline`` selects the instance representation, so
restricted-model (``restricted``), heterogeneous (``dp_hetero``,
``static_hetero``, ``greedy_hetero``) and game (``game-*``/``sim-*``
players on the Section 5 adversaries and E13 simulator rollouts)
entries run under the same engine — and land in the same aggregate
tables — as the general-model algorithms.
"""

from __future__ import annotations

import atexit
import collections
import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor

from . import instancestore
from .instancestore import InstanceStore, get_instance
from .jobcache import JobCache, content_key
from .sinks import ListSink, ResultSink

__all__ = [
    "GridSpec",
    "run_grid",
    "aggregate_rows",
    "job_key",
    "instance_key",
    "JobCache",
    "parallel_map",
    "shutdown_pool",
]

#: bump when row contents / seeding change, to invalidate stale caches
ENGINE_VERSION = 3

_JOB_FIELDS = ("scenario", "algorithm", "T", "inst_seed", "seed",
               "lookahead", "params")


def _canonical_params(entry) -> str:
    """One ``params``-axis entry as a canonical JSON string (the form
    job tuples, cache keys and worker tasks carry)."""
    if isinstance(entry, str):
        entry = json.loads(entry)
    if not isinstance(entry, dict):
        raise ValueError(f"params entries must be dicts, got {entry!r}")
    return json.dumps(entry, sort_keys=True)


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms, offline solvers and game players interchangeably; all
    are resolved through :mod:`repro.runner.registry`.

    ``params`` is an extra axis of scenario-parameter dicts (each kept
    as a canonical JSON string), crossed with the other axes and passed
    to the scenario builder as keyword arguments — the shape the
    lower-bound eps grids (``{"eps": 0.1}``) and the case study's beta
    sweep (``{"beta": 4.0}``) need.  The default is one empty dict, so
    parameterless grids are unchanged.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None
    params: tuple = ("{}",)

    def __post_init__(self):
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        object.__setattr__(self, "params",
                           tuple(_canonical_params(p) for p in self.params))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes and self.params):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples)."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    def cache_key(self) -> str:
        """Stable content hash of the spec (used as a display id; the
        result cache is keyed per job, not per grid)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def iter_jobs(self):
        """Generate job coordinate tuples lazily, in deterministic
        order.  A job's instance coordinates vary slowest within one
        (T, scenario, params, seed) block — every job of one instance
        is contiguous, which is what lets the streaming core keep only
        a small window of solved optima alive."""
        for T in self.sizes:
            for scenario in self.scenarios:
                for params in self.params:
                    for seed in self.seeds:
                        inst_seed = (seed if self.instance_seed is None
                                     else self.instance_seed)
                        for algorithm in self.algorithms:
                            yield (scenario, algorithm, T, inst_seed,
                                   seed, self.lookahead, params)

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        return list(self.iter_jobs())

    def __len__(self) -> int:
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes) * len(self.params))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    blob = (f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
            f"|{params}")
    return zlib.crc32(blob.encode())


def job_key(job: tuple) -> str:
    """Content-addressed cache key of one grid job."""
    return content_key({"kind": "job",
                        "engine_version": ENGINE_VERSION,
                        **dict(zip(_JOB_FIELDS, job))})


def _instance_coords(job: tuple) -> tuple:
    """The phase-0/1 coordinates a job's instance is built from."""
    from .registry import get_spec
    scenario, algorithm, T, inst_seed, _seed, _lookahead, params = job
    return (scenario, get_spec(algorithm).pipeline, T, inst_seed, params)


def instance_key(coords: tuple) -> str:
    """Content-addressed cache key of one instance's offline optimum."""
    scenario, pipeline, T, inst_seed, params = \
        instancestore.split_coords(coords)
    return content_key({"kind": "instance",
                        "engine_version": ENGINE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed, "params": params})


def _solve_instance(task: tuple) -> dict:
    """Phase-1 job: resolve one instance, solve its offline optimum once.

    ``task`` is ``(coords, store_root)``; must stay module-level (pool
    pickling).  Returns the per-instance record reused by every phase-2
    job on the same instance.  Game instances delegate to their own
    ``baseline()`` — adaptive games have no algorithm-independent
    optimum (``opt`` is ``None``), simulator games hoist the simulated
    cost of the optimal schedule.
    """
    coords, store_root = task
    pipeline = coords[1]
    inst = get_instance(coords, store_root)
    if pipeline == "game":
        return inst.baseline()
    if pipeline == "general":
        from ..analysis import optimal_cost
        opt, m, beta = optimal_cost(inst), inst.m, inst.beta
    elif pipeline == "restricted":
        from ..offline import solve_restricted
        opt, m, beta = solve_restricted(inst).cost, inst.m, inst.beta
    else:  # hetero: report the pooled fleet size and the type-1 beta
        from ..extensions import solve_dp_hetero
        opt = solve_dp_hetero(inst)[2]
        m, beta = inst.m1 + inst.m2, inst.beta1
    return {"opt": float(opt), "m": int(m), "beta": float(beta)}


def _base_row(job: tuple, spec, inst_record: dict) -> dict:
    """The row columns shared by every pipeline."""
    scenario, algorithm, T, _inst_seed, seed, _lookahead, _params = job
    return {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": spec.pipeline, "T": T,
        "m": inst_record["m"], "beta": inst_record["beta"], "seed": seed,
    }


def _run_job(task: tuple) -> dict:
    """Phase-2 job: run one algorithm against its hoisted optimum.

    ``task`` is ``(job, inst_record, store_root)`` with the record
    produced by :func:`_solve_instance`; must stay module-level (pool
    pickling).
    """
    from .registry import get_spec, pipeline_optimum
    job, inst_record, store_root = task
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    spec = get_spec(algorithm)
    if algorithm == pipeline_optimum(spec.pipeline) or (
            spec.pipeline == "game" and spec.optimal
            and inst_record.get("opt") is not None):
        # the phase-1 baseline *is* this entry's result (e.g. sim-opt):
        # synthesize the row — record keys beyond opt/m/beta are its
        # extra columns — instead of repeating the identical solve
        extras = {k: v for k, v in inst_record.items()
                  if k not in ("opt", "m", "beta")}
        return {
            **_base_row(job, spec, inst_record),
            "cost": inst_record["opt"],
            "opt": inst_record["opt"], "ratio": 1.0, **extras,
        }
    inst = get_instance((scenario, spec.pipeline, T, inst_seed, params),
                        store_root)
    extras: dict = {}
    if spec.pipeline == "game":
        out = spec.make(lookahead=lookahead, seed=_job_seed(job))(inst)
        cost = out.pop("cost")
        played_opt = out.pop("opt")
        extras = out
        opt = (inst_record["opt"] if inst_record.get("opt") is not None
               else played_opt)
    elif spec.pipeline == "hetero":
        cost, opt = spec.make()(inst)[2], inst_record["opt"]
    elif spec.kind == "online":
        from ..online.base import run_online
        cost = run_online(inst, spec.make(lookahead=lookahead,
                                          seed=_job_seed(job))).cost
        opt = inst_record["opt"]
    else:
        cost, opt = spec.make()(inst).cost, inst_record["opt"]
    return {
        **_base_row(job, spec, inst_record),
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
        **extras,
    }


# ----------------------------------------------------------------------
# Persistent worker pool.
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _get_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The module-level executor, grown (never shrunk) to ``n_jobs``."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS < n_jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        _POOL = ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx)
        _POOL_WORKERS = n_jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent; also runs at
    interpreter exit).  The next parallel call starts a fresh pool."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on the persistent pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The pool outlives the call — it
    is reused by both engine phases, by every subsequent grid, and by
    ``analysis/sweep`` and ``repro lowerbound`` — so pool startup is
    amortized across the many small grids the benches run.  The
    in-process path is a plain ``map`` so tests can monkeypatch ``fn``'s
    module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    try:
        return list(_get_pool(n_jobs).map(fn, items, chunksize=chunksize))
    except Exception:
        # a dead/broken pool must not poison later calls — drop it so
        # the next parallel_map starts fresh, then surface the error
        shutdown_pool()
        raise


def _validate_pipelines(spec: GridSpec) -> None:
    """Fail fast (in the parent) when the grid pairs an algorithm with a
    scenario that cannot build its pipeline's instance representation."""
    from .registry import get_spec
    from .scenarios import get_scenario
    for scenario in spec.scenarios:
        supported = get_scenario(scenario).pipelines
        for algorithm in spec.algorithms:
            pipeline = get_spec(algorithm).pipeline
            if pipeline not in supported:
                raise ValueError(
                    f"algorithm {algorithm!r} needs the {pipeline!r} "
                    f"pipeline but scenario {scenario!r} only builds "
                    f"{supported}")


def _batches(iterable, size: int | None):
    """Yield lists of up to ``size`` items (everything when ``None``)."""
    if size is None:
        batch = list(iterable)
        if batch:
            yield batch
        return
    if size < 1:
        raise ValueError("batch_size must be positive")
    it = iter(iterable)
    while True:
        batch = list(itertools.islice(it, size))
        if not batch:
            return
        yield batch


class _RecordWindow:
    """Bounded LRU of solved instance records.

    Job order keeps every job of one instance contiguous
    (:meth:`GridSpec.iter_jobs`), so a window a little larger than the
    batch's distinct-instance count is enough for the streaming core to
    never re-solve an optimum it just solved — while a million-instance
    grid still holds O(batch) records in the parent.
    """

    def __init__(self):
        self._data: dict = collections.OrderedDict()
        self._bound = 64

    def fit(self, need: int) -> None:
        self._bound = max(self._bound, 2 * need)

    def get(self, coords):
        rec = self._data.get(coords)
        if rec is not None:
            self._data.move_to_end(coords)
        return rec

    def put(self, coords, rec) -> None:
        self._data[coords] = rec
        self._data.move_to_end(coords)
        while len(self._data) > self._bound:
            self._data.popitem(last=False)


def run_grid(spec: GridSpec, *, n_jobs: int = 1, cache_dir=None,
             store_dir=None, force: bool = False,
             stats: dict | None = None, sink: ResultSink | None = None,
             batch_size: int | None = None):
    """Stream every job of a grid through the three-phase engine.

    Jobs are generated lazily and executed in bounded batches of
    ``batch_size`` (``None`` = one batch); each batch's finished rows
    are flushed — in job order — to the result ``sink``
    (:mod:`repro.runner.sinks`).  With the default ``sink=None`` an
    in-memory :class:`~repro.runner.sinks.ListSink` collects the rows
    and ``run_grid`` returns the historical ``list[dict]``; with a
    file-backed sink the parent holds at most O(batch_size) pending
    rows (the ``max_pending`` stat reports the observed peak) and
    ``run_grid`` returns ``sink.result()``.

    With ``cache_dir``, each job's row (and each instance's optimum) is
    read from the per-job content-addressed cache when present (unless
    ``force``) and written back as its batch completes — so re-running
    any overlapping grid only executes the jobs it has not seen before,
    and a grid killed mid-run resumes paying only the unfinished jobs.
    ``cache_dir`` may also be a ready-made :class:`JobCache` (e.g. one
    opened on the SQLite backend).  With ``store_dir``, phase 0
    materializes each distinct pending instance into the shared
    :class:`~repro.runner.instancestore.InstanceStore` exactly once;
    phases 1 and 2 then mmap the payloads instead of rebuilding.

    Pass a dict as ``stats`` to receive counters: ``job_hits``,
    ``job_misses``, ``opt_hits``, ``opt_solved``, ``batches``,
    ``max_pending`` (peak result rows held in the parent at once —
    bounded by ``batch_size``), ``rows_written``,
    ``inst_materialized`` (instances newly written to the store this
    call, wherever the build ran), plus this process's
    instance-resolution deltas ``inst_builds`` (scenario builds — with a
    store, at most one per distinct instance end-to-end), ``inst_loads``
    (store mmap loads) and ``inst_memo_hits``.
    """
    cache = (cache_dir if isinstance(cache_dir, JobCache)
             else JobCache(cache_dir) if cache_dir is not None else None)
    store_root = None if store_dir is None else str(store_dir)
    _validate_pipelines(spec)
    counters = {"job_hits": 0, "job_misses": 0, "opt_hits": 0,
                "opt_solved": 0, "inst_materialized": 0, "batches": 0,
                "max_pending": 0, "rows_written": 0}
    inst_stats_before = instancestore.build_stats()
    sink = ListSink() if sink is None else sink
    records = _RecordWindow()
    from .scenarios import get_scenario
    storable = {name: get_scenario(name).storable
                for name in spec.scenarios}
    sink.open(spec.to_dict())
    try:
        for batch in _batches(spec.iter_jobs(), batch_size):
            counters["batches"] += 1
            rows: list = [None] * len(batch)
            pending: list[tuple[int, tuple, str]] = []
            for i, job in enumerate(batch):
                key = job_key(job)
                row = (cache.get("jobs", key)
                       if cache is not None and not force else None)
                if row is not None:
                    rows[i] = row
                    counters["job_hits"] += 1
                else:
                    pending.append((i, job, key))
            counters["job_misses"] += len(pending)
            counters["max_pending"] = max(counters["max_pending"],
                                          len(batch))
            if pending:
                need = dict.fromkeys(_instance_coords(job)
                                     for _, job, _ in pending)
                records.fit(len(need))
                # Phase 0: materialize each distinct pending instance
                # once (scenarios with dense payloads only).
                if store_root is not None:
                    store = InstanceStore(store_root)
                    missing = [c for c in need
                               if storable[c[0]] and not store.has(c)]
                    built = parallel_map(instancestore._materialize_job,
                                         [(c, store_root) for c in missing],
                                         n_jobs=n_jobs)
                    # a concurrent grid may have materialized some first
                    counters["inst_materialized"] += sum(map(bool, built))
                # Phase 1: solve each distinct pending instance's
                # optimum once (window + cache make it once per grid).
                unsolved = []
                for coords in need:
                    if records.get(coords) is not None:
                        continue
                    rec = (cache.get("instances", instance_key(coords))
                           if cache is not None and not force else None)
                    if rec is not None:
                        records.put(coords, rec)
                        counters["opt_hits"] += 1
                    else:
                        unsolved.append(coords)
                for coords, rec in zip(
                        unsolved,
                        parallel_map(_solve_instance,
                                     [(c, store_root) for c in unsolved],
                                     n_jobs=n_jobs)):
                    records.put(coords, rec)
                    counters["opt_solved"] += 1
                    if cache is not None:
                        cache.put("instances", instance_key(coords), rec)
                # Phase 2: fan the batch's algorithm jobs out.
                tasks = [(job, records.get(_instance_coords(job)),
                          store_root) for _, job, _ in pending]
                for (i, _job, key), row in zip(
                        pending, parallel_map(_run_job, tasks,
                                              n_jobs=n_jobs)):
                    rows[i] = row
                    if cache is not None:
                        cache.put("jobs", key, row)
            for row in rows:
                sink.write(row)
                counters["rows_written"] += 1
    finally:
        sink.close()
    if stats is not None:
        inst_stats = instancestore.build_stats()
        counters.update({k: inst_stats[k] - inst_stats_before[k]
                         for k in inst_stats})
        stats.update(counters)
    return sink.result()


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row[k] for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
