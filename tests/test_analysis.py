"""Tests for the analysis helpers (metrics, sweep, tables)."""

import numpy as np
import pytest

from repro.analysis import (competitive_ratio, empirical_ratios, format_series,
                            format_table, optimal_cost, savings_vs_static,
                            schedule_stats, sweep)
from repro.online import LCP, ThresholdFractional
from repro.offline import solve_dp
from tests.conftest import random_convex_instance, trace_instance


class TestMetrics:
    def test_optimal_cost_matches_dp(self):
        rng = np.random.default_rng(130)
        inst = random_convex_instance(rng, 8, 5, 1.0)
        assert optimal_cost(inst) == pytest.approx(solve_dp(inst).cost)

    def test_competitive_ratio_at_least_one(self):
        rng = np.random.default_rng(131)
        for _ in range(5):
            inst = random_convex_instance(rng, 10, 6, 1.0)
            assert competitive_ratio(inst, LCP()) >= 1.0 - 1e-9

    def test_empirical_ratios_table(self):
        rng = np.random.default_rng(132)
        instances = [("a", random_convex_instance(rng, 6, 4, 1.0)),
                     ("b", random_convex_instance(rng, 6, 4, 2.0))]
        rows = empirical_ratios(instances, [LCP, ThresholdFractional])
        assert len(rows) == 4
        for row in rows:
            assert row["ratio"] >= 1.0 - 1e-9
            assert row["cost"] >= row["opt"] - 1e-9

    def test_savings_vs_static(self):
        inst = trace_instance(seed=1, T=72, peak=10.0, beta=3.0)
        res = solve_dp(inst)
        out = savings_vs_static(inst, res.schedule)
        assert 0.0 <= out["saving"] < 1.0
        assert out["static_cost"] >= res.cost - 1e-9

    def test_schedule_stats(self):
        rng = np.random.default_rng(133)
        inst = random_convex_instance(rng, 5, 4, 1.0)
        stats = schedule_stats(inst, [0, 2, 2, 1, 3])
        assert stats["power_ups"] == pytest.approx(2 + 0 + 0 + 2)
        assert stats["power_downs"] == pytest.approx(1)
        assert stats["changes"] == 3
        assert stats["total"] == pytest.approx(
            stats["operating"] + stats["switching"])


class TestSweep:
    def test_cartesian_product(self):
        rows = sweep(lambda a, b: {"s": a + b},
                     {"a": [1, 2], "b": [10, 20, 30]})
        assert len(rows) == 6
        assert rows[0] == {"a": 1, "b": 10, "s": 11}

    def test_key_collision_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            sweep(lambda a: {"a": a}, {"a": [1]})

    def test_empty_axis(self):
        assert sweep(lambda a: {"r": a}, {"a": []}) == []


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"name": "x", "val": 1.23456}, {"name": "long", "val": 2.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "val" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, ["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series([1, 2], [0.5, 0.25], xlabel="eps",
                             ylabel="ratio")
        assert "eps" in text and "ratio" in text
        assert len(text.splitlines()) == 4

    def test_float_formatting(self):
        rows = [{"v": 1.23456789}]
        assert "1.2346" in format_table(rows, floatfmt=".5g")
