"""Convex operating-cost functions for the data-center optimization problem.

The paper models the operating cost of a data center at time ``t`` by a
non-negative convex function ``f_t`` evaluated on the number of active
servers.  This module provides a toolkit of such functions:

* elementary shapes used by the theory (absolute-value "hinge" functions
  ``phi_0(x) = eps*|x|`` and ``phi_1(x) = eps*|1-x|`` from Section 5),
* realistic data-center cost models (energy + latency penalty, SLA hinge)
  in the spirit of Lin et al.'s evaluation,
* the restricted model's perspective cost ``x * f(lambda/x)`` (eq. (2)),
* generic wrappers (tabulated values, sums, scaling, shifting).

Every cost function is a callable ``f(j) -> float`` on integer states and
additionally supports vectorized evaluation on NumPy arrays.  Solvers never
call these objects in their inner loops; instead they *tabulate* the values
into a dense ``(T, m+1)`` float64 matrix once (see :func:`tabulate`) and run
vectorized kernels on it, following the repository's HPC conventions.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "CostFunction",
    "AbsCost",
    "phi0",
    "phi1",
    "PiecewiseLinearCost",
    "QuadraticCost",
    "AffineEnergyCost",
    "QueueingDelayCost",
    "SLAHingeCost",
    "TabulatedCost",
    "PerspectiveCost",
    "ScaledCost",
    "SumCost",
    "ConstantCost",
    "tabulate",
    "tabulate_many",
    "is_convex_table",
    "assert_convex_table",
    "check_cost_matrix",
]


class CostFunction:
    """Base class for operating-cost functions ``f : {0..m} -> R>=0``.

    Subclasses implement :meth:`_evaluate` on a float/array argument.
    Instances are immutable and hashable so they can be shared freely
    between problem instances.
    """

    def _evaluate(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x):
        """Evaluate the cost at ``x`` (scalar or ndarray)."""
        return self._evaluate(np.asarray(x, dtype=np.float64))

    def table(self, m: int) -> np.ndarray:
        """Tabulate values on the integer states ``0..m`` (inclusive)."""
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        return np.asarray(self._evaluate(np.arange(m + 1, dtype=np.float64)),
                          dtype=np.float64)


@dataclasses.dataclass(frozen=True)
class AbsCost(CostFunction):
    """``f(x) = slope * |x - center|`` — the adversarial hinge of Section 5.

    ``AbsCost(0.0, eps)`` is the paper's ``phi_0`` and ``AbsCost(1.0, eps)``
    is ``phi_1``.  Convex for any ``center`` and ``slope >= 0``.
    """

    center: float
    slope: float

    def __post_init__(self):
        if self.slope < 0:
            raise ValueError("slope must be non-negative")

    def _evaluate(self, x):
        return self.slope * np.abs(x - self.center)


def phi0(eps: float) -> AbsCost:
    """The adversary function ``phi_0(x) = eps * |x|`` (Section 5)."""
    return AbsCost(0.0, eps)


def phi1(eps: float) -> AbsCost:
    """The adversary function ``phi_1(x) = eps * |1 - x|`` (Section 5)."""
    return AbsCost(1.0, eps)


@dataclasses.dataclass(frozen=True)
class PiecewiseLinearCost(CostFunction):
    """Convex piecewise-linear cost from breakpoints.

    Defined by value ``value0`` at ``x = 0`` and a nondecreasing sequence of
    ``slopes``; the slope on ``[i, i+1]`` is ``slopes[min(i, len-1)]`` (the
    last slope extends to infinity).  Convexity is validated on creation.
    """

    value0: float
    slopes: tuple

    def __init__(self, value0: float, slopes: Sequence[float]):
        slopes = tuple(float(s) for s in slopes)
        if not slopes:
            raise ValueError("need at least one slope")
        if any(b < a - 1e-12 for a, b in zip(slopes, slopes[1:])):
            raise ValueError("slopes must be nondecreasing for convexity")
        object.__setattr__(self, "value0", float(value0))
        object.__setattr__(self, "slopes", slopes)

    def _evaluate(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        slopes = np.asarray(self.slopes)
        # Cumulative values at integer breakpoints 0..k.
        knots = np.concatenate([[0.0], np.cumsum(slopes)]) + self.value0
        idx = np.clip(np.floor(x).astype(np.int64), 0, len(slopes) - 1)
        frac = x - idx
        out = knots[idx] + frac * slopes[idx]
        return out if out.size > 1 else float(out[0])


@dataclasses.dataclass(frozen=True)
class QuadraticCost(CostFunction):
    """``f(x) = a*(x - x0)^2 + b`` with ``a >= 0`` — strongly convex bowl."""

    a: float
    x0: float
    b: float = 0.0

    def __post_init__(self):
        if self.a < 0:
            raise ValueError("quadratic coefficient must be non-negative")

    def _evaluate(self, x):
        return self.a * (x - self.x0) ** 2 + self.b


@dataclasses.dataclass(frozen=True)
class AffineEnergyCost(CostFunction):
    """``f(x) = idle_power * x + base`` — energy cost of ``x`` active servers.

    Models the observation that an idle active server burns roughly half of
    its peak power; convex (linear).  Typically combined with a latency
    penalty via :class:`SumCost`.
    """

    idle_power: float
    base: float = 0.0

    def __post_init__(self):
        if self.idle_power < 0 or self.base < 0:
            raise ValueError("power coefficients must be non-negative")

    def _evaluate(self, x):
        return self.idle_power * x + self.base


@dataclasses.dataclass(frozen=True)
class QueueingDelayCost(CostFunction):
    """Latency penalty ``f(x) = weight * load / (x - load + headroom)``.

    A smoothed M/M/1-style mean-delay penalty for serving ``load`` units of
    work with ``x`` servers; ``headroom > 0`` keeps the function finite at
    ``x = ceil(load)``.  For ``x < load`` the function is extended linearly
    with the steepest finite slope so that it remains convex and finite on
    all of ``{0..m}`` (an overloaded configuration is very expensive but the
    optimization stays well posed).
    """

    load: float
    weight: float = 1.0
    headroom: float = 1.0

    def __post_init__(self):
        if self.load < 0:
            raise ValueError("load must be non-negative")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")

    def _evaluate(self, x):
        x = np.asarray(x, dtype=np.float64)
        lo = math.ceil(self.load)
        denom = np.maximum(x, lo) - self.load + self.headroom
        base = self.weight * self.load / denom
        # Linear extension below ceil(load): continue with the (negative)
        # slope of the hyperbola at lo so second differences stay >= 0.
        slope_at_lo = -self.weight * self.load / (lo - self.load + self.headroom) ** 2
        value_at_lo = self.weight * self.load / (lo - self.load + self.headroom)
        ext = value_at_lo + (x - lo) * slope_at_lo
        return np.where(x < lo, ext, base)


@dataclasses.dataclass(frozen=True)
class SLAHingeCost(CostFunction):
    """``f(x) = penalty * (required - x)^+`` — SLA violation hinge.

    Charges a linear penalty for every server short of ``required``.
    Convex; zero once capacity meets the requirement.
    """

    required: float
    penalty: float

    def __post_init__(self):
        if self.penalty < 0:
            raise ValueError("penalty must be non-negative")

    def _evaluate(self, x):
        return self.penalty * np.maximum(self.required - x, 0.0)


@dataclasses.dataclass(frozen=True)
class ConstantCost(CostFunction):
    """``f(x) = c`` — constant operating cost (state-independent)."""

    c: float = 0.0

    def __post_init__(self):
        if self.c < 0:
            raise ValueError("constant cost must be non-negative")

    def _evaluate(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.full_like(x, self.c)


class TabulatedCost(CostFunction):
    """Cost given by explicit values on states ``0..m``.

    Evaluation between integers linearly interpolates (this is exactly the
    continuous extension ``f-bar`` of eq. (3)); beyond ``m`` the last slope
    is extended.  ``validate=True`` checks convexity of the table.
    """

    def __init__(self, values: Sequence[float], validate: bool = True):
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim != 1 or vals.size < 1:
            raise ValueError("values must be a non-empty 1-D sequence")
        if np.any(vals < -1e-12):
            raise ValueError("operating costs must be non-negative")
        if validate:
            assert_convex_table(vals)
        self._values = vals
        self._values.setflags(write=False)

    @property
    def values(self) -> np.ndarray:
        return self._values

    def _evaluate(self, x):
        v = self._values
        if v.size == 1:
            return np.full_like(np.asarray(x, dtype=np.float64), v[0])
        x = np.asarray(x, dtype=np.float64)
        return np.interp(x, np.arange(v.size, dtype=np.float64), v,
                         left=None, right=None) + self._extrapolate(x)

    def _extrapolate(self, x):
        # np.interp clamps outside the range; add the linear continuation.
        v = self._values
        n = v.size - 1
        lo_slope = v[1] - v[0]
        hi_slope = v[n] - v[n - 1]
        out = np.zeros_like(x)
        out = np.where(x < 0, lo_slope * x, out)
        out = np.where(x > n, hi_slope * (x - n), out)
        return out

    def __repr__(self):
        return f"TabulatedCost(<{self._values.size} values>)"


@dataclasses.dataclass(frozen=True)
class PerspectiveCost(CostFunction):
    """Restricted-model operating cost ``F(x) = x * f(load / x)`` (eq. (2)).

    ``f`` is the convex per-server cost of running at utilization
    ``z = load/x in [0, 1]``.  The perspective of a convex function is
    convex, so ``F`` is convex on ``x >= load``.  States ``x < load`` are
    infeasible in the restricted model; they are extended with a steep
    convex linear penalty (slope ``-penalty_slope``) so the function stays
    finite, convex and strongly discourages infeasible states.  ``F(0)`` is
    defined as the extension value (the state 0 with positive load is
    infeasible).
    """

    f: Callable[[float], float]
    load: float
    penalty_slope: float = 1e9

    def __post_init__(self):
        if self.load < 0:
            raise ValueError("load must be non-negative")
        if self.penalty_slope <= 0:
            raise ValueError("penalty_slope must be positive")

    def _feasible_value(self, x: float) -> float:
        if x == 0:
            return 0.0 if self.load == 0 else math.inf
        return x * float(self.f(self.load / x))

    def _evaluate(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        # Smallest feasible integer state (>= 1 whenever the load is
        # positive, since state 0 cannot serve any load).
        lo = max(int(math.ceil(self.load - 1e-12)), 1 if self.load > 0 else 0)
        anchor = self._feasible_value(float(lo))
        out = np.empty_like(x)
        for i, xi in enumerate(x):
            if xi >= lo:
                out[i] = self._feasible_value(float(xi))
            else:
                out[i] = anchor + self.penalty_slope * (lo - xi)
        return out if out.size > 1 else float(out[0])


@dataclasses.dataclass(frozen=True)
class ScaledCost(CostFunction):
    """``g(x) = scale * f(x)`` — weight an existing cost function."""

    inner: CostFunction
    scale: float

    def __post_init__(self):
        if self.scale < 0:
            raise ValueError("scale must be non-negative")

    def _evaluate(self, x):
        return self.scale * np.asarray(self.inner(x), dtype=np.float64)


class SumCost(CostFunction):
    """``g(x) = sum_i f_i(x)`` — combine cost components (energy + delay)."""

    def __init__(self, *parts: CostFunction):
        if not parts:
            raise ValueError("need at least one component")
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple:
        return self._parts

    def _evaluate(self, x):
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros_like(x)
        for p in self._parts:
            total = total + np.asarray(p(x), dtype=np.float64)
        return total

    def __repr__(self):
        return f"SumCost({', '.join(map(repr, self._parts))})"


# ---------------------------------------------------------------------------
# Tabulation and validation helpers
# ---------------------------------------------------------------------------

def tabulate(f, m: int) -> np.ndarray:
    """Tabulate a cost function (or plain callable) on states ``0..m``."""
    if isinstance(f, CostFunction):
        return f.table(m)
    xs = np.arange(m + 1, dtype=np.float64)
    try:
        vals = np.asarray(f(xs), dtype=np.float64)
        if vals.shape == xs.shape:
            return vals
    except Exception:
        pass
    return np.array([float(f(int(x))) for x in xs], dtype=np.float64)


def tabulate_many(fs: Sequence, m: int) -> np.ndarray:
    """Tabulate ``T`` cost functions into a C-contiguous ``(T, m+1)`` matrix."""
    if len(fs) == 0:
        return np.zeros((0, m + 1), dtype=np.float64)
    return np.ascontiguousarray(np.stack([tabulate(f, m) for f in fs]))


def is_convex_table(values: np.ndarray, tol: float = 1e-9) -> bool:
    """Check discrete convexity: second differences ``>= -tol``.

    A table ``v`` on ``0..m`` is convex iff
    ``v[j+1] - v[j] >= v[j] - v[j-1]`` for all interior ``j``.  Tolerance is
    relative to the magnitude of the values involved.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size <= 2:
        return True
    d2 = np.diff(v, n=2)
    scale = np.maximum(1.0, np.max(np.abs(v)))
    return bool(np.all(d2 >= -tol * scale))


def assert_convex_table(values: np.ndarray, tol: float = 1e-9) -> None:
    """Raise ``ValueError`` if the tabulated function is not convex."""
    if not is_convex_table(values, tol):
        v = np.asarray(values, dtype=np.float64)
        d2 = np.diff(v, n=2)
        j = int(np.argmin(d2))
        raise ValueError(
            f"cost table is not convex: second difference {d2[j]:.3g} < 0 "
            f"at state {j + 1}")


def check_cost_matrix(F: np.ndarray, *, require_convex: bool = True,
                      tol: float = 1e-9) -> np.ndarray:
    """Validate a ``(T, m+1)`` operating-cost matrix.

    Checks dtype/shape, non-negativity and (optionally) row-wise convexity.
    Returns the matrix as a C-contiguous float64 array.
    """
    F = np.ascontiguousarray(np.asarray(F, dtype=np.float64))
    if F.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D (T, m+1), got shape {F.shape}")
    if F.shape[1] < 1:
        raise ValueError("cost matrix needs at least the state-0 column")
    if F.shape[0] == 0:
        return F
    if not np.all(np.isfinite(F)):
        raise ValueError("cost matrix contains non-finite values")
    if np.any(F < -tol):
        raise ValueError("operating costs must be non-negative")
    if require_convex and F.shape[1] > 2:
        d2 = np.diff(F, n=2, axis=1)
        scale = np.maximum(1.0, np.max(np.abs(F)))
        if not np.all(d2 >= -tol * scale):
            t, j = np.unravel_index(int(np.argmin(d2)), d2.shape)
            raise ValueError(
                f"row {t} of the cost matrix is not convex at state {j + 1}")
    return F
