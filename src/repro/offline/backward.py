"""Lemma 11: the backward-recursion optimal schedule.

The paper characterizes an optimal offline solution *backwards in time*:
with ``x-hat_{T+1} = 0``,

``x-hat_t = [x-hat_{t+1}]^{x^U_t}_{x^L_t}``    (projection into the LCP
bounds of the prefix ``f_1..f_t``),

is optimal (Lemma 11).  This is the optimal schedule the Section 3
analysis compares LCP against: it moves as late as possible, mirroring
LCP's laziness from the other end of time.

The solver runs one forward pass collecting ``(x^L_t, x^U_t)`` for every
prefix (``O(T m)``, through the :mod:`repro.kernels` sweep dispatch) and
one backward clamping pass (``O(T)``).  On engine grids the forward
sweep is the same one phase 1 (offline optimum) and the phase-2 shared
LCP replay consume, so a ``bounds=`` trajectory may be handed in and
the sweep paid once per instance.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..core.instance import Instance
from ..core.schedule import cost
from .result import OfflineResult

__all__ = ["solve_backward_lcp", "prefix_bounds"]


def prefix_bounds(instance: Instance) -> tuple[np.ndarray, np.ndarray]:
    """``(x^L_t, x^U_t)`` for every prefix ``t = 1..T`` (Section 3.1)."""
    sweep = kernels.sweep_workfunction(instance.F, instance.beta)
    return sweep.lo, sweep.hi


def solve_backward_lcp(instance: Instance, *, bounds=None) -> OfflineResult:
    """Optimal schedule via Lemma 11's backward recursion.

    ``bounds`` may pass a precomputed :class:`repro.kernels.SweepResult`
    (the engine's shared per-instance sweep); otherwise one sweep is
    run here through the selected kernel.
    """
    T = instance.T
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="backward_lcp")
    if bounds is not None:
        lo, hi = bounds.lo, bounds.hi
    else:
        lo, hi = prefix_bounds(instance)
    x = kernels.backward_clamp(lo, hi)
    return OfflineResult(schedule=x, cost=float(cost(instance, x)),
                         method="backward_lcp")
