"""Tests for the convex cost-function toolkit (repro.core.costs)."""

import math

import numpy as np
import pytest

from repro.core.costs import (AbsCost, AffineEnergyCost, ConstantCost,
                              PerspectiveCost, PiecewiseLinearCost,
                              QuadraticCost, QueueingDelayCost, ScaledCost,
                              SLAHingeCost, SumCost, TabulatedCost,
                              assert_convex_table, check_cost_matrix,
                              is_convex_table, phi0, phi1, tabulate,
                              tabulate_many)


class TestAbsCost:
    def test_phi0_values(self):
        f = phi0(0.5)
        assert f(0) == 0.0
        assert f(1) == 0.5
        assert f(3) == 1.5

    def test_phi1_values(self):
        f = phi1(0.5)
        assert f(0) == 0.5
        assert f(1) == 0.0
        assert f(2) == 0.5

    def test_vectorized(self):
        f = AbsCost(2.0, 1.5)
        np.testing.assert_allclose(f(np.array([0, 2, 4])), [3.0, 0.0, 3.0])

    def test_table_is_convex(self):
        assert is_convex_table(AbsCost(2.5, 0.7).table(6))

    def test_negative_slope_rejected(self):
        with pytest.raises(ValueError):
            AbsCost(0.0, -1.0)


class TestPiecewiseLinear:
    def test_values_at_knots(self):
        f = PiecewiseLinearCost(1.0, [-1.0, 0.0, 2.0])
        np.testing.assert_allclose(f.table(3), [1.0, 0.0, 0.0, 2.0])

    def test_interpolation_between_knots(self):
        f = PiecewiseLinearCost(0.0, [2.0])
        assert f(0.5) == pytest.approx(1.0)

    def test_last_slope_extends(self):
        f = PiecewiseLinearCost(0.0, [1.0])
        assert f(5.0) == pytest.approx(5.0)

    def test_decreasing_slopes_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(0.0, [1.0, 0.5])

    def test_empty_slopes_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(0.0, [])

    def test_convex_table(self):
        f = PiecewiseLinearCost(3.0, [-2.0, -1.0, 0.5, 0.5, 4.0])
        assert is_convex_table(f.table(5))


class TestQuadratic:
    def test_minimum_at_center(self):
        f = QuadraticCost(2.0, 3.0, b=1.0)
        assert f(3) == pytest.approx(1.0)
        assert f(5) == pytest.approx(9.0)

    def test_negative_curvature_rejected(self):
        with pytest.raises(ValueError):
            QuadraticCost(-1.0, 0.0)

    def test_convex_table(self):
        assert is_convex_table(QuadraticCost(0.3, 4.2).table(10))


class TestAffineEnergy:
    def test_linear_in_servers(self):
        f = AffineEnergyCost(2.0, base=1.0)
        np.testing.assert_allclose(f.table(3), [1.0, 3.0, 5.0, 7.0])

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            AffineEnergyCost(-0.1)


class TestQueueingDelay:
    def test_decreasing_in_capacity(self):
        f = QueueingDelayCost(4.0, weight=3.0)
        tab = f.table(12)
        assert np.all(np.diff(tab) <= 1e-12)

    def test_convex_table(self):
        for load in [0.0, 1.5, 4.0, 7.3]:
            tab = QueueingDelayCost(load, weight=2.0).table(15)
            assert is_convex_table(tab), f"load={load}"

    def test_nonnegative_below_load(self):
        tab = QueueingDelayCost(6.7, weight=1.0).table(20)
        assert np.all(tab >= 0)

    def test_zero_load_is_free(self):
        tab = QueueingDelayCost(0.0).table(5)
        np.testing.assert_allclose(tab, 0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QueueingDelayCost(-1.0)
        with pytest.raises(ValueError):
            QueueingDelayCost(1.0, headroom=0.0)


class TestSLAHinge:
    def test_hinge_shape(self):
        f = SLAHingeCost(3.0, 2.0)
        np.testing.assert_allclose(f.table(5), [6.0, 4.0, 2.0, 0.0, 0.0, 0.0])

    def test_convex(self):
        assert is_convex_table(SLAHingeCost(2.5, 1.0).table(6))


class TestTabulated:
    def test_roundtrip(self):
        vals = [4.0, 1.0, 0.0, 2.0]
        f = TabulatedCost(vals)
        np.testing.assert_allclose(f.table(3), vals)

    def test_interpolates_like_eq3(self):
        f = TabulatedCost([4.0, 1.0, 0.0, 2.0])
        assert f(0.5) == pytest.approx(2.5)
        assert f(2.25) == pytest.approx(0.5)

    def test_nonconvex_rejected(self):
        with pytest.raises(ValueError):
            TabulatedCost([0.0, 2.0, 1.0, 5.0])

    def test_nonconvex_allowed_without_validation(self):
        f = TabulatedCost([0.0, 2.0, 1.0, 5.0], validate=False)
        assert f(2) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TabulatedCost([1.0, -0.5])

    def test_values_are_readonly(self):
        f = TabulatedCost([1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            f.values[0] = 9.0


class TestPerspective:
    def test_matches_restricted_formula(self):
        # f(z) = 1 + z^2, load 2: F(x) = x (1 + (2/x)^2) = x + 4/x.
        f = PerspectiveCost(lambda z: 1 + z * z, 2.0)
        assert f(2) == pytest.approx(4.0)
        assert f(4) == pytest.approx(5.0)

    def test_zero_load(self):
        f = PerspectiveCost(lambda z: 1 + z, 0.0)
        assert f(0) == pytest.approx(0.0)
        assert f(3) == pytest.approx(3.0)

    def test_infeasible_states_penalized(self):
        f = PerspectiveCost(lambda z: 1 + z, 3.0, penalty_slope=1e6)
        assert f(2) > 1e5
        assert f(0) > f(2)

    def test_convex_table(self):
        f = PerspectiveCost(lambda z: 1 + z * z, 2.7, penalty_slope=100.0)
        assert is_convex_table(f.table(10))

    def test_perspective_preserves_convexity_feasible_region(self):
        # On x >= ceil(load), x*f(load/x) of convex f is convex.
        f = PerspectiveCost(lambda z: math.exp(z), 3.0)
        tab = f.table(12)[3:]
        assert is_convex_table(tab)


class TestCombinators:
    def test_scaled(self):
        f = ScaledCost(phi1(1.0), 3.0)
        assert f(0) == pytest.approx(3.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            ScaledCost(phi0(1.0), -2.0)

    def test_sum(self):
        f = SumCost(AffineEnergyCost(1.0), SLAHingeCost(2.0, 1.0))
        assert f(0) == pytest.approx(2.0)
        assert f(1) == pytest.approx(2.0)
        assert f(3) == pytest.approx(3.0)

    def test_sum_requires_parts(self):
        with pytest.raises(ValueError):
            SumCost()

    def test_constant(self):
        f = ConstantCost(2.5)
        np.testing.assert_allclose(f.table(4), 2.5)

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantCost(-1.0)


class TestTabulation:
    def test_tabulate_cost_function(self):
        np.testing.assert_allclose(tabulate(phi0(2.0), 3), [0, 2, 4, 6])

    def test_tabulate_plain_callable(self):
        np.testing.assert_allclose(tabulate(lambda x: x ** 2, 3), [0, 1, 4, 9])

    def test_tabulate_scalar_only_callable(self):
        def f(x):
            if hasattr(x, "__len__"):
                raise TypeError("scalar only")
            return float(x) + 1

        np.testing.assert_allclose(tabulate(f, 2), [1, 2, 3])

    def test_tabulate_many_shape(self):
        M = tabulate_many([phi0(1.0), phi1(1.0)], 4)
        assert M.shape == (2, 5)
        assert M.flags["C_CONTIGUOUS"]

    def test_tabulate_many_empty(self):
        assert tabulate_many([], 3).shape == (0, 4)


class TestConvexityChecks:
    def test_is_convex_accepts_linear(self):
        assert is_convex_table(np.array([0.0, 1.0, 2.0, 3.0]))

    def test_is_convex_rejects_concave(self):
        assert not is_convex_table(np.array([0.0, 2.0, 3.0, 3.5]))

    def test_short_tables_are_convex(self):
        assert is_convex_table(np.array([1.0]))
        assert is_convex_table(np.array([1.0, 0.0]))

    def test_assert_convex_error_message(self):
        with pytest.raises(ValueError, match="not convex"):
            assert_convex_table(np.array([0.0, 5.0, 5.0, 0.0]))

    def test_check_cost_matrix_valid(self):
        F = np.array([[1.0, 0.0, 1.0], [2.0, 1.0, 0.5]])
        out = check_cost_matrix(F)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_check_cost_matrix_rejects_nonconvex_row(self):
        F = np.array([[1.0, 0.0, 1.0], [0.0, 2.0, 1.0]])
        with pytest.raises(ValueError, match="row 1"):
            check_cost_matrix(F)

    def test_check_cost_matrix_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_cost_matrix(np.array([[-1.0, 0.0]]))

    def test_check_cost_matrix_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_cost_matrix(np.array([[np.nan, 0.0]]))

    def test_check_cost_matrix_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            check_cost_matrix(np.zeros(4))
