"""E3 — Section 2.2: O(T log m) runtime scaling.

Regenerates the runtime comparison implicit in the paper's complexity
claims: the binary-search algorithm scales logarithmically in m while the
DP is linear in m (and the explicit graph quadratic).  Absolute times are
machine-specific; the *shape* — binary search flat in m, DP growing
linearly, crossover at moderate m — is the reproduced result.
"""

import time

import numpy as np

from repro.offline import solve_binary_search, solve_dp, solve_graph

from conftest import random_convex_instance, record


def _time(fn, *args, repeats=3, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def test_e3_scaling_in_m(benchmark):
    """Fixed T, growing m: binary search ~log m, DP ~m.

    NumPy's vectorized DP has a tiny per-state constant, so the crossover
    sits at large m (hundreds of thousands of states) — exactly the
    pseudo-polynomial-vs-polynomial story of Section 2: the DP's work is
    linear in m while the binary search pays log m times a fixed
    per-step cost.
    """
    rng = np.random.default_rng(11)
    T = 128
    rows = []
    for m in (1024, 8192, 65536, 262144):
        inst = random_convex_instance(rng, T, m, 2.0)
        t_bs = _time(solve_binary_search, inst, repeats=2)
        t_dp = _time(lambda i: solve_dp(i, return_schedule=False), inst,
                     repeats=2)
        rows.append({"T": T, "m": m,
                     "binary_search_s": t_bs, "dp_s": t_dp,
                     "speedup_dp/bs": t_dp / t_bs})
    record("E3_scaling_m", rows, title="E3: runtime vs m (T = 128)")
    # Shape assertions: binary search wins at the largest m, and its
    # growth from the smallest to the largest m is far below the DP's.
    assert rows[-1]["binary_search_s"] < rows[-1]["dp_s"]
    bs_growth = rows[-1]["binary_search_s"] / rows[0]["binary_search_s"]
    dp_growth = rows[-1]["dp_s"] / rows[0]["dp_s"]
    assert bs_growth < dp_growth
    # Benchmark the headline configuration.
    inst = random_convex_instance(rng, T, 262144, 2.0)
    benchmark.pedantic(solve_binary_search, args=(inst,), rounds=3,
                       iterations=1)


def test_e3_scaling_in_T(benchmark):
    """Fixed m, growing T: both solvers are ~linear in T."""
    rng = np.random.default_rng(12)
    m = 512
    rows = []
    for T in (32, 128, 512, 2048):
        inst = random_convex_instance(rng, T, m, 2.0)
        rows.append({
            "T": T, "m": m,
            "binary_search_s": _time(solve_binary_search, inst),
            "dp_s": _time(lambda i: solve_dp(i, return_schedule=False),
                          inst),
        })
    record("E3_scaling_T", rows, title="E3: runtime vs T (m = 512)")
    # Linearity in T (loose factor-of-4 sanity window around 64x work).
    ratio = rows[-1]["binary_search_s"] / max(rows[0]["binary_search_s"],
                                              1e-9)
    assert ratio < 64 * 8
    inst = random_convex_instance(rng, 2048, m, 2.0)
    benchmark.pedantic(solve_binary_search, args=(inst,), rounds=3,
                       iterations=1)


def test_e3_graph_quadratic_reference(benchmark):
    """The explicit Figure-1 relaxation is the O(T m^2) strawman."""
    rng = np.random.default_rng(13)
    rows = []
    T = 64
    for m in (64, 128, 256):
        inst = random_convex_instance(rng, T, m, 2.0)
        rows.append({
            "T": T, "m": m,
            "graph_s": _time(solve_graph, inst, repeats=2),
            "dp_s": _time(lambda i: solve_dp(i, return_schedule=False),
                          inst, repeats=2),
        })
    record("E3_graph_reference", rows,
           title="E3: explicit-graph relaxation vs DP")
    assert rows[-1]["dp_s"] < rows[-1]["graph_s"]
    inst = random_convex_instance(rng, T, 256, 2.0)
    benchmark(solve_graph, inst)
