"""Problem instances for the data-center optimization problem.

Two models from the paper:

* :class:`Instance` — the **general model** (eq. (1)): a tuple
  ``P = (T, m, beta, F)`` where ``F`` holds one convex operating-cost
  function per time step, tabulated into a dense ``(T, m+1)`` float64
  matrix ``F[t, j] = f_{t+1}(j)``.

* :class:`RestrictedInstance` — the **restricted model** of Lin et al.
  (eq. (2)): a single convex per-server cost ``f(z)`` on utilization
  ``z in [0,1]``, a load trace ``lambda_t`` and the feasibility constraint
  ``x_t >= lambda_t``.  It converts to a general instance via the
  perspective cost ``x * f(lambda_t / x)`` with a steep convex penalty on
  infeasible states.

All solvers in :mod:`repro.offline` and :mod:`repro.online` consume
:class:`Instance`; the restricted model is handled by conversion, mirroring
how the paper's Section 5 reductions encode restricted-model games in the
general model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from .costs import (PerspectiveCost, check_cost_matrix,
                    tabulate_many)

__all__ = ["Instance", "RestrictedInstance"]


@dataclasses.dataclass(frozen=True)
class Instance:
    """General-model instance ``P = (T, m, beta, F)``.

    Attributes
    ----------
    beta:
        Positive switching cost charged per server powered **up**
        (powering down is free; see eq. (1)).
    F:
        C-contiguous float64 matrix of shape ``(T, m+1)`` with
        ``F[t, j] = f_{t+1}(j)``, each row convex and non-negative.
    """

    beta: float
    F: np.ndarray

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        F = check_cost_matrix(self.F)
        F.setflags(write=False)
        object.__setattr__(self, "F", F)

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def T(self) -> int:
        """Number of time steps."""
        return self.F.shape[0]

    @property
    def m(self) -> int:
        """Maximum number of servers (states are ``0..m``)."""
        return self.F.shape[1] - 1

    def f(self, t: int) -> np.ndarray:
        """Tabulated operating cost of time step ``t`` (1-based, as in the
        paper); returns the row ``F[t-1]``."""
        if not 1 <= t <= self.T:
            raise IndexError(f"t must be in 1..{self.T}, got {t}")
        return self.F[t - 1]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_functions(cls, fs: Sequence, m: int, beta: float) -> "Instance":
        """Build an instance by tabulating cost functions/callables."""
        return cls(beta=beta, F=tabulate_many(fs, m))

    @classmethod
    def from_matrix(cls, F: np.ndarray, beta: float) -> "Instance":
        """Build an instance from an explicit ``(T, m+1)`` cost matrix."""
        return cls(beta=beta, F=np.asarray(F, dtype=np.float64))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def prefix(self, tau: int) -> "Instance":
        """The truncated instance consisting of time steps ``1..tau``."""
        if not 0 <= tau <= self.T:
            raise IndexError(f"tau must be in 0..{self.T}, got {tau}")
        return Instance(beta=self.beta, F=self.F[:tau])

    def with_beta(self, beta: float) -> "Instance":
        """Same operating costs with a different switching cost."""
        return Instance(beta=beta, F=self.F)

    def __repr__(self):
        return f"Instance(T={self.T}, m={self.m}, beta={self.beta})"


@dataclasses.dataclass(frozen=True)
class RestrictedInstance:
    """Restricted-model instance (eq. (2)): minimize
    ``sum_t x_t f(lambda_t/x_t) + beta sum_t (x_t - x_{t-1})^+`` subject to
    ``x_t >= lambda_t``.

    Attributes
    ----------
    beta: switching cost (as in the general model).
    m: number of servers.
    f: convex per-server operating cost on utilization ``z in [0, 1]``.
    loads: array of ``T`` non-negative loads ``lambda_t <= m``.
    """

    beta: float
    m: int
    f: Callable[[float], float]
    loads: np.ndarray

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.m < 1:
            raise ValueError("m must be at least 1")
        loads = np.ascontiguousarray(np.asarray(self.loads, dtype=np.float64))
        if loads.ndim != 1:
            raise ValueError("loads must be a 1-D array")
        if np.any(loads < 0):
            raise ValueError("loads must be non-negative")
        if np.any(loads > self.m):
            raise ValueError("loads must not exceed the number of servers m")
        loads.setflags(write=False)
        object.__setattr__(self, "loads", loads)

    @property
    def T(self) -> int:
        return self.loads.shape[0]

    def operating_cost(self, t: int, x: float) -> float:
        """Feasible operating cost ``x * f(lambda_t / x)`` at time ``t``
        (1-based); raises on infeasible states ``x < lambda_t``."""
        lam = float(self.loads[t - 1])
        if x < lam - 1e-12:
            raise ValueError(
                f"state x={x} infeasible at t={t}: below load {lam}")
        if x == 0:
            return 0.0
        return float(x) * float(self.f(lam / x))

    def to_general(self, penalty_slope: float | None = None) -> Instance:
        """Encode as a general-model :class:`Instance`.

        Infeasible states ``x < ceil(lambda_t)`` receive a steep convex
        linear penalty so that no optimal or competitive schedule ever uses
        them; the default slope exceeds any cost an always-feasible schedule
        can accumulate (total feasible cost plus ``beta*m``), which makes
        the encoding exact for optimal schedules.
        """
        if penalty_slope is None:
            # Upper bound the cost of the all-feasible schedule x_t = m.
            ub = self.beta * self.m
            for t in range(1, self.T + 1):
                ub += self.operating_cost(t, self.m)
            penalty_slope = 10.0 * (ub + 1.0)
        fs = [PerspectiveCost(self.f, float(lam), penalty_slope)
              for lam in self.loads]
        return Instance.from_functions(fs, self.m, self.beta)

    def is_feasible(self, schedule: np.ndarray) -> bool:
        """Check ``x_t >= lambda_t`` for all ``t``."""
        x = np.asarray(schedule, dtype=np.float64)
        if x.shape != (self.T,):
            raise ValueError(f"schedule must have shape ({self.T},)")
        return bool(np.all(x >= self.loads - 1e-12))

    def __repr__(self):
        return (f"RestrictedInstance(T={self.T}, m={self.m}, "
                f"beta={self.beta})")
