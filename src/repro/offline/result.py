"""Common result container for offline solvers."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["OfflineResult"]


@dataclasses.dataclass(frozen=True)
class OfflineResult:
    """Result of an offline optimization.

    Attributes
    ----------
    schedule:
        Optimal schedule ``(x_1..x_T)`` as int64, or ``None`` when the
        solver was asked for the cost only.
    cost:
        Optimal objective value of eq. (1).
    method:
        Identifier of the producing solver.
    iterations:
        Number of refinement iterations (binary-search solver only).
    """

    schedule: np.ndarray | None
    cost: float
    method: str
    iterations: int = 0

    def __post_init__(self):
        if self.schedule is not None:
            s = np.ascontiguousarray(np.asarray(self.schedule, dtype=np.int64))
            s.setflags(write=False)
            object.__setattr__(self, "schedule", s)
