"""Two-phase parallel batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon); the engine expands it into
jobs and executes them in two phases — in-process or on a
``multiprocessing`` pool with chunking:

* **Phase 1 — instances.**  Each distinct ``(scenario, pipeline, T,
  inst_seed)`` instance is built and its offline optimum solved exactly
  once, however many algorithms the grid runs on it.  Optima are
  memoized in a per-instance store (and persisted when a cache
  directory is given), so a grid with ``A`` algorithms pays roughly
  ``1/A`` of the naive per-job optimum cost.
* **Phase 2 — algorithms.**  Algorithm jobs fan out over
  :func:`parallel_map`, each reusing its instance's hoisted optimum.

Three properties make this the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows.
* **Caching** — results persist per *job* in a content-addressed store
  (:class:`~repro.runner.jobcache.JobCache`): one JSON record per job
  key, plus one per instance optimum.  Overlapping grids share work,
  and extending a grid by one seed executes only the new seed's jobs.
* **Chunking** — jobs are handed to workers in contiguous chunks to
  amortize IPC, while row order always matches job order.

Algorithms are resolved through :mod:`repro.runner.registry`; the
registry entry's ``pipeline`` selects the instance representation, so
restricted-model (``restricted``) and heterogeneous (``dp_hetero``,
``static_hetero``, ``greedy_hetero``) solvers run under the same engine
— and land in the same aggregate tables — as the general-model
algorithms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import zlib

from .jobcache import JobCache, content_key

__all__ = [
    "GridSpec",
    "run_grid",
    "aggregate_rows",
    "job_key",
    "instance_key",
    "JobCache",
    "parallel_map",
]

#: bump when row contents / seeding change, to invalidate stale caches
ENGINE_VERSION = 2

_JOB_FIELDS = ("scenario", "algorithm", "T", "inst_seed", "seed",
               "lookahead")


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms and offline solvers interchangeably; both are resolved
    through :mod:`repro.runner.registry`.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples)."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    def cache_key(self) -> str:
        """Stable content hash of the spec (used as a display id; the
        result cache is keyed per job, not per grid)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        out = []
        for T in self.sizes:
            for scenario in self.scenarios:
                for seed in self.seeds:
                    inst_seed = (seed if self.instance_seed is None
                                 else self.instance_seed)
                    for algorithm in self.algorithms:
                        out.append((scenario, algorithm, T, inst_seed,
                                    seed, self.lookahead))
        return out

    def __len__(self) -> int:
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead = job
    blob = f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
    return zlib.crc32(blob.encode())


def job_key(job: tuple) -> str:
    """Content-addressed cache key of one grid job."""
    return content_key({"kind": "job",
                        "engine_version": ENGINE_VERSION,
                        **dict(zip(_JOB_FIELDS, job))})


def _instance_coords(job: tuple) -> tuple:
    """The phase-1 coordinates a job's instance is built from."""
    from .registry import get_spec
    scenario, algorithm, T, inst_seed, _seed, _lookahead = job
    return (scenario, get_spec(algorithm).pipeline, T, inst_seed)


def instance_key(coords: tuple) -> str:
    """Content-addressed cache key of one instance's offline optimum."""
    scenario, pipeline, T, inst_seed = coords
    return content_key({"kind": "instance",
                        "engine_version": ENGINE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed})


def _solve_instance(coords: tuple) -> dict:
    """Phase-1 job: build one instance, solve its offline optimum once.

    Must stay module-level (pool pickling).  Returns the per-instance
    record reused by every phase-2 job on the same instance.
    """
    from .scenarios import build_instance
    scenario, pipeline, T, inst_seed = coords
    inst = build_instance(scenario, T, inst_seed, pipeline=pipeline)
    if pipeline == "general":
        from ..analysis import optimal_cost
        opt, m, beta = optimal_cost(inst), inst.m, inst.beta
    elif pipeline == "restricted":
        from ..offline import solve_restricted
        opt, m, beta = solve_restricted(inst).cost, inst.m, inst.beta
    else:  # hetero: report the pooled fleet size and the type-1 beta
        from ..extensions import solve_dp_hetero
        opt = solve_dp_hetero(inst)[2]
        m, beta = inst.m1 + inst.m2, inst.beta1
    return {"opt": float(opt), "m": int(m), "beta": float(beta)}


#: per pipeline, the registry entry whose solver *is* the phase-1
#: optimum computation — re-running it in phase 2 would repeat the
#: identical call on the identical instance, so its cost is the optimum
#: by construction (the general pipeline is deliberately absent: its
#: exact solvers — binary_search, graph, ... — are *different*
#: algorithms from the phase-1 DP and cross-validate it)
_OPT_SOLVERS = {"restricted": "restricted", "hetero": "dp_hetero"}


def _run_job(task: tuple) -> dict:
    """Phase-2 job: run one algorithm against its hoisted optimum.

    ``task`` is ``(job, inst_record)`` with the record produced by
    :func:`_solve_instance`; must stay module-level (pool pickling).
    """
    from .registry import get_spec
    from .scenarios import build_instance
    job, inst_record = task
    scenario, algorithm, T, inst_seed, seed, lookahead = job
    spec = get_spec(algorithm)
    if algorithm == _OPT_SOLVERS.get(spec.pipeline):
        return {
            "scenario": scenario, "algorithm": algorithm,
            "pipeline": spec.pipeline, "T": T,
            "m": inst_record["m"], "beta": inst_record["beta"],
            "seed": seed, "cost": inst_record["opt"],
            "opt": inst_record["opt"], "ratio": 1.0,
        }
    inst = build_instance(scenario, T, inst_seed, pipeline=spec.pipeline)
    if spec.pipeline == "hetero":
        cost = spec.make()(inst)[2]
    elif spec.kind == "online":
        from ..online.base import run_online
        cost = run_online(inst, spec.make(lookahead=lookahead,
                                          seed=_job_seed(job))).cost
    else:
        cost = spec.make()(inst).cost
    opt = inst_record["opt"]
    return {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": spec.pipeline, "T": T,
        "m": inst_record["m"], "beta": inst_record["beta"], "seed": seed,
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
    }


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on a process pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The in-process path is a plain
    ``map`` so tests can monkeypatch ``fn``'s module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    with ctx.Pool(processes=n_jobs) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def _validate_pipelines(jobs) -> None:
    """Fail fast (in the parent) when a job pairs an algorithm with a
    scenario that cannot build its pipeline's instance representation."""
    from .registry import get_spec
    from .scenarios import get_scenario
    for scenario, algorithm, *_ in {(j[0], j[1]) for j in jobs}:
        pipeline = get_spec(algorithm).pipeline
        supported = get_scenario(scenario).pipelines
        if pipeline not in supported:
            raise ValueError(
                f"algorithm {algorithm!r} needs the {pipeline!r} pipeline "
                f"but scenario {scenario!r} only builds {supported}")


def run_grid(spec: GridSpec, *, n_jobs: int = 1, cache_dir=None,
             force: bool = False, stats: dict | None = None) -> list[dict]:
    """Run every job of a grid and return one row dict per job.

    With ``cache_dir``, each job's row (and each instance's optimum) is
    read from the per-job content-addressed cache when present (unless
    ``force``) and written back after a live run — so re-running any
    overlapping grid only executes the jobs it has not seen before.
    Pass a dict as ``stats`` to receive cache counters: ``job_hits``,
    ``job_misses``, ``opt_hits`` and ``opt_solved``.
    """
    cache = JobCache(cache_dir) if cache_dir is not None else None
    jobs = spec.jobs()
    _validate_pipelines(jobs)
    counters = {"job_hits": 0, "job_misses": 0, "opt_hits": 0,
                "opt_solved": 0}
    rows: list = [None] * len(jobs)
    pending: list[tuple[int, tuple, str]] = []
    for i, job in enumerate(jobs):
        key = job_key(job)
        row = (cache.get("jobs", key)
               if cache is not None and not force else None)
        if row is not None:
            rows[i] = row
            counters["job_hits"] += 1
        else:
            pending.append((i, job, key))
    counters["job_misses"] = len(pending)
    if pending:
        # Phase 1: solve each distinct pending instance exactly once.
        need = dict.fromkeys(_instance_coords(job) for _, job, _ in pending)
        records: dict[tuple, dict] = {}
        unsolved = []
        for coords in need:
            rec = (cache.get("instances", instance_key(coords))
                   if cache is not None and not force else None)
            if rec is not None:
                records[coords] = rec
                counters["opt_hits"] += 1
            else:
                unsolved.append(coords)
        for coords, rec in zip(unsolved,
                               parallel_map(_solve_instance, unsolved,
                                            n_jobs=n_jobs)):
            records[coords] = rec
            counters["opt_solved"] += 1
            if cache is not None:
                cache.put("instances", instance_key(coords), rec)
        # Phase 2: fan the algorithm jobs out, reusing the optima.
        tasks = [(job, records[_instance_coords(job)])
                 for _, job, _ in pending]
        for (i, _job, key), row in zip(pending,
                                       parallel_map(_run_job, tasks,
                                                    n_jobs=n_jobs)):
            rows[i] = row
            if cache is not None:
                cache.put("jobs", key, row)
    if stats is not None:
        stats.update(counters)
    return rows


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row[k] for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
