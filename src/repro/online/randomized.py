"""Randomized rounding of fractional schedules (Section 4).

Given a fractional schedule ``x-bar_1..x-bar_T`` (e.g. produced online by
:class:`repro.online.threshold.ThresholdFractional`), the paper rounds
each state to ``floor(x-bar_t)`` or ``ceil*(x-bar_t) := floor(x-bar_t)+1``
with a Markov kernel chosen so that (Lemmas 18–20):

* ``P[x_t = ceil*(x-bar_t)] = frac(x-bar_t)``            (Lemma 18)
* ``E[f_t(x_t)]            = f-bar_t(x-bar_t)``          (Lemma 19)
* ``E[beta (x_t - x_{t-1})^+] = beta (x-bar_t - x-bar_{t-1})^+``  (Lemma 20)

hence the expected cost of the integral schedule equals the fractional
cost *exactly*, and rounding a 2-competitive fractional schedule yields a
2-competitive randomized algorithm (Theorem 3).

This module provides the online wrapper (:class:`RandomizedRounding`),
an offline sampler (:func:`sample_rounding`), and an **exact** evaluator
(:func:`exact_rounding_distribution`, :func:`expected_cost_exact`) that
propagates the two-point state distribution in closed form — the test
suite verifies the three lemmas above without Monte Carlo error.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from ..core.schedule import interp_operating
from .base import OnlineAlgorithm

__all__ = [
    "ceil_star",
    "transition_prob_up",
    "sample_rounding",
    "independent_rounding",
    "expected_cost_independent",
    "RandomizedRounding",
    "RoundingDistribution",
    "exact_rounding_distribution",
    "expected_cost_exact",
]

_SNAP = 1e-9


def _snap(x: float) -> float:
    """Snap to the nearest integer within floating-point slack.

    The rounding kernel branches on ``floor``/``frac``; accumulated float
    error in a fractional schedule must not flip a state into the wrong
    unit cell.
    """
    r = round(x)
    return float(r) if abs(x - r) <= _SNAP else float(x)


def ceil_star(x: float) -> int:
    """``ceil*(x) = floor(x) + 1`` — the paper's upper state (Section 4.1);
    note ``ceil*(n) = n + 1`` for integral ``n``."""
    return int(np.floor(_snap(x))) + 1


def transition_prob_up(xbar_prev: float, xbar_t: float, x_prev: int) -> float:
    """``P[x_t = ceil*(x-bar_t) | x_{t-1} = x_prev]`` per Section 4.1.

    ``x_prev`` must lie in ``{floor(x-bar_{t-1}), ceil*(x-bar_{t-1})}``
    (the support maintained by the chain).  The projection
    ``x-bar'_{t-1} = [x-bar_{t-1}]`` into ``[floor(x-bar_t),
    ceil*(x-bar_t)]`` measures positions within the current unit cell; the
    clamped-from-above case uses the in-cell position (= 1), which is the
    reading of ``frac`` that makes Lemma 18's invariant hold in all cases.
    """
    xbar_prev = _snap(xbar_prev)
    xbar_t = _snap(xbar_t)
    lower = float(np.floor(xbar_t))
    upper = lower + 1.0
    xp = min(max(xbar_prev, lower), upper)  # the projection x-bar'_{t-1}
    if xbar_prev <= xbar_t:
        # Increasing step: keep the upper state if already there,
        # otherwise power up with probability p-up.
        if x_prev >= upper:
            return 1.0
        denom = 1.0 - (xp - lower)
        return float((xbar_t - xp) / denom)
    # Decreasing step: keep the lower state if already there, otherwise
    # power down with probability p-down.
    if x_prev <= lower:
        return 0.0
    pos = xp - lower  # in-cell position of the projected previous state
    if pos <= 0.0:  # pragma: no cover - impossible for a decreasing step
        raise AssertionError("degenerate decreasing rounding step")
    p_down = (xp - xbar_t) / pos
    return float(1.0 - p_down)


def sample_rounding(xbars: np.ndarray, rng: np.random.Generator,
                    m: int | None = None) -> np.ndarray:
    """Sample an integral schedule from a fractional one (Section 4.1)."""
    xbars = np.asarray(xbars, dtype=np.float64)
    out = np.empty(xbars.shape[0], dtype=np.int64)
    x_prev = 0
    xbar_prev = 0.0
    for t, xbar in enumerate(xbars):
        p = transition_prob_up(xbar_prev, float(xbar), x_prev)
        lower = int(np.floor(_snap(float(xbar))))
        x_prev = lower + 1 if rng.random() < p else lower
        if m is not None and x_prev > m:  # only reachable with p == 0
            raise AssertionError("rounded state left the state space")
        out[t] = x_prev
        xbar_prev = float(xbar)
    return out


def independent_rounding(xbars: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Ablation: round every step independently (``up`` w.p. ``frac``).

    Satisfies Lemma 18 trivially but destroys Lemma 20 — neighbouring
    states decorrelate, so the expected switching cost blows up by
    ``O(frac (1-frac))`` per step even when the fractional schedule is
    constant.  Kept to demonstrate why the paper's Markovian kernel is
    necessary for Theorem 3 (ablation E12).
    """
    xbars = np.asarray(xbars, dtype=np.float64)
    out = np.empty(xbars.shape[0], dtype=np.int64)
    for t, xbar in enumerate(xbars):
        lower = int(np.floor(_snap(float(xbar))))
        frac = _snap(float(xbar)) - lower
        out[t] = lower + 1 if rng.random() < frac else lower
    return out


def expected_cost_independent(instance: Instance,
                              xbars: np.ndarray) -> dict:
    """Closed-form expected cost of :func:`independent_rounding`.

    Operating cost matches the fractional schedule (Lemma 19 only needs
    the marginals), but the expected switching cost is computed over the
    *product* distribution of consecutive states — the quantity the
    Markov kernel is designed to suppress.
    """
    xbars = np.asarray(xbars, dtype=np.float64)
    F = instance.F
    m = instance.m
    op = 0.0
    sw = 0.0
    prev_states = np.array([0, 1])
    prev_probs = np.array([1.0, 0.0])
    for t in range(xbars.shape[0]):
        x = _snap(float(xbars[t]))
        lo = int(np.floor(x))
        p = x - lo
        f_lo = F[t, min(lo, m)]
        f_up = F[t, lo + 1] if lo + 1 <= m else 0.0
        if lo + 1 > m and p > 1e-9:
            raise AssertionError("upper state above m with mass")
        op += (1.0 - p) * f_lo + p * f_up
        states = np.array([lo, lo + 1])
        probs = np.array([1.0 - p, p])
        for a, pa in zip(prev_states, prev_probs):
            for b, pb in zip(states, probs):
                sw += pa * pb * max(int(b) - int(a), 0)
        prev_states, prev_probs = states, probs
    sw *= instance.beta
    return {"operating": op, "switching": sw, "total": op + sw}


class RandomizedRounding(OnlineAlgorithm):
    """Online wrapper: fractional algorithm + Section 4.1 rounding.

    The kernel only needs ``x-bar_{t-1}``, ``x-bar_t`` and the previous
    integral state, so the rounding is implementable online.  The wrapped
    algorithm's fractional trajectory is kept in :attr:`fractional_log`
    (its cost equals the exact expected cost of this algorithm, by
    Lemmas 19–20).
    """

    fractional = False

    def __init__(self, inner: OnlineAlgorithm,
                 rng: np.random.Generator | int | None = None):
        if not inner.fractional:
            raise ValueError("inner algorithm must be fractional")
        self._inner = inner
        self._rng = np.random.default_rng(rng)
        self.name = f"rounded({inner.name})"
        self.lookahead = inner.lookahead
        self.fractional_log: list[float] = []

    def reset(self, m: int, beta: float) -> None:
        self._inner.reset(m, beta)
        self._m = m
        self._xbar_prev = 0.0
        self._set_state(0)
        self.fractional_log = []

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        xbar = float(self._inner.step(f_row, future))
        self.fractional_log.append(xbar)
        p = transition_prob_up(self._xbar_prev, xbar, self.state)
        lower = int(np.floor(_snap(xbar)))
        x = lower + 1 if self._rng.random() < p else lower
        self._xbar_prev = xbar
        self._set_state(x)
        return x


@dataclasses.dataclass(frozen=True)
class RoundingDistribution:
    """Exact two-point state distribution of the rounding chain.

    ``lowers[t]``/``uppers[t]`` are the support ``{floor, ceil*}`` of
    ``x_t`` and ``p_upper[t] = P[x_t = uppers[t]]``;
    ``expected_up[t] = E[(x_t - x_{t-1})^+]``.
    """

    lowers: np.ndarray
    uppers: np.ndarray
    p_upper: np.ndarray
    expected_up: np.ndarray


def exact_rounding_distribution(xbars: np.ndarray) -> RoundingDistribution:
    """Propagate the rounding chain's distribution in closed form.

    Exactness makes Lemma 18 (``p_upper == frac``) and Lemma 20
    (``expected_up == (Dx-bar)^+``) directly checkable.
    """
    xbars = np.asarray(xbars, dtype=np.float64)
    T = xbars.shape[0]
    lowers = np.empty(T, dtype=np.int64)
    uppers = np.empty(T, dtype=np.int64)
    p_upper = np.empty(T, dtype=np.float64)
    expected_up = np.empty(T, dtype=np.float64)
    # Distribution of x_{t-1} over its two-point support.
    prev_states = np.array([0, 0], dtype=np.int64)
    prev_probs = np.array([1.0, 0.0])
    xbar_prev = 0.0
    for t in range(T):
        xbar = _snap(float(xbars[t]))
        lo = int(np.floor(xbar))
        up = lo + 1
        p_new = 0.0
        e_up = 0.0
        for a, pa in zip(prev_states, prev_probs):
            if pa == 0.0:
                continue
            p = transition_prob_up(xbar_prev, xbar, int(a))
            p_new += pa * p
            e_up += pa * (p * max(up - int(a), 0) +
                          (1.0 - p) * max(lo - int(a), 0))
        lowers[t], uppers[t] = lo, up
        p_upper[t] = p_new
        expected_up[t] = e_up
        prev_states = np.array([lo, up], dtype=np.int64)
        prev_probs = np.array([1.0 - p_new, p_new])
        xbar_prev = xbar
    return RoundingDistribution(lowers=lowers, uppers=uppers,
                                p_upper=p_upper, expected_up=expected_up)


def expected_cost_exact(instance: Instance, xbars: np.ndarray) -> dict:
    """Exact expected cost of the rounded schedule, plus the fractional
    cost it must equal (Theorem 3's accounting).

    Returns a dict with keys ``operating``, ``switching``, ``total``
    (expectations over the rounding) and ``fractional_total`` (cost of the
    fractional schedule under the continuous extension).
    """
    xbars = np.asarray(xbars, dtype=np.float64)
    dist = exact_rounding_distribution(xbars)
    F = instance.F
    m = instance.m
    T = instance.T
    op = 0.0
    for t in range(T):
        lo, up, p = int(dist.lowers[t]), int(dist.uppers[t]), dist.p_upper[t]
        f_lo = F[t, min(lo, m)]
        # The upper state can be m+1 only with probability 0.
        if up > m:
            if p > 1e-9:
                raise AssertionError("upper state above m with mass")
            f_up = 0.0
        else:
            f_up = F[t, up]
        op += (1.0 - p) * f_lo + p * f_up
    sw = instance.beta * float(np.sum(dist.expected_up))
    frac_op = float(np.sum(interp_operating(F, xbars)))
    d = np.diff(np.concatenate([[0.0], xbars]))
    frac_sw = instance.beta * float(np.sum(np.maximum(d, 0.0)))
    return {
        "operating": op,
        "switching": sw,
        "total": op + sw,
        "fractional_operating": frac_op,
        "fractional_switching": frac_sw,
        "fractional_total": frac_op + frac_sw,
    }
