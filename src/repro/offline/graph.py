"""Explicit construction of the layered graph of Figure 1.

The graph ``G = (V, E)`` has a vertex ``v_{t,j}`` for every time step
``t in [T]`` and state ``j in [m]_0``, plus ``v_{0,0}`` and ``v_{T+1,0}``
for the boundary states.  Edges run between adjacent columns with weight
``beta * (j' - j)^+ + f_t(j')`` (switching plus operating cost of the
target state); edges into ``v_{T+1,0}`` have weight 0.

A ``v_{0,0} -> v_{T+1,0}`` path visits exactly one vertex per column and
its length equals the cost (eq. (1)) of the corresponding schedule, so an
optimal schedule is a shortest path.  This module materializes the graph
(for the Figure-1 census and for cross-validation against ``networkx``)
and solves it with a layer-by-layer DAG relaxation.

The relaxation here deliberately enumerates all ``(m+1)^2`` edges per
layer; the ``O(T m)`` shortest-path specialization lives in
:mod:`repro.offline.dp` and the polynomial ``O(T log m)`` algorithm in
:mod:`repro.offline.binary_search`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from .result import OfflineResult

__all__ = [
    "LayeredGraph",
    "vertex_count",
    "edge_count",
    "build_graph",
    "solve_graph",
    "to_networkx",
]

_MAX_EDGES = 50_000_000


def vertex_count(T: int, m: int) -> int:
    """``|V| = T(m+1) + 2`` (Figure 1)."""
    return T * (m + 1) + 2


def edge_count(T: int, m: int) -> int:
    """``|E| = (m+1) + (T-1)(m+1)^2 + (m+1)`` (Figure 1)."""
    if T == 0:
        return 0
    return (m + 1) + max(T - 1, 0) * (m + 1) ** 2 + (m + 1)


@dataclasses.dataclass(frozen=True)
class LayeredGraph:
    """Materialized layered graph: parallel edge arrays plus metadata.

    Vertex ids: ``0`` is ``v_{0,0}``; ``1 + (t-1)(m+1) + j`` is ``v_{t,j}``
    for ``t in 1..T``; the last id is ``v_{T+1,0}``.
    """

    T: int
    m: int
    beta: float
    tails: np.ndarray
    heads: np.ndarray
    weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return vertex_count(self.T, self.m)

    @property
    def num_edges(self) -> int:
        return int(self.tails.size)

    def vertex_id(self, t: int, j: int) -> int:
        """Id of ``v_{t,j}`` (``t = 0`` and ``t = T+1`` require ``j = 0``)."""
        if t == 0:
            if j != 0:
                raise ValueError("v_{0,j} exists only for j = 0")
            return 0
        if t == self.T + 1:
            if j != 0:
                raise ValueError("v_{T+1,j} exists only for j = 0")
            return self.num_vertices - 1
        if not (1 <= t <= self.T and 0 <= j <= self.m):
            raise ValueError(f"no vertex v_{{{t},{j}}}")
        return 1 + (t - 1) * (self.m + 1) + j


def build_graph(instance: Instance) -> LayeredGraph:
    """Materialize the Figure-1 graph of an instance."""
    T, m, beta = instance.T, instance.m, instance.beta
    n_edges = edge_count(T, m)
    if n_edges > _MAX_EDGES:
        raise ValueError(
            f"explicit graph would have {n_edges} edges (limit {_MAX_EDGES}); "
            "use repro.offline.dp for large instances")
    F = instance.F
    width = m + 1
    states = np.arange(width, dtype=np.float64)
    tails = np.empty(n_edges, dtype=np.int64)
    heads = np.empty(n_edges, dtype=np.int64)
    weights = np.empty(n_edges, dtype=np.float64)
    pos = 0
    if T > 0:
        # v_{0,0} -> v_{1,j'} with weight f_1(j') + beta * j'.
        tails[pos:pos + width] = 0
        heads[pos:pos + width] = 1 + states.astype(np.int64)
        weights[pos:pos + width] = F[0] + beta * states
        pos += width
        # v_{t-1,j} -> v_{t,j'} with weight beta (j'-j)^+ + f_t(j').
        jj, jp = np.meshgrid(states, states, indexing="ij")  # tail j, head j'
        switch = beta * np.maximum(jp - jj, 0.0)
        for t in range(2, T + 1):
            base_prev = 1 + (t - 2) * width
            base_cur = 1 + (t - 1) * width
            block = width * width
            tails[pos:pos + block] = (base_prev + jj.astype(np.int64)).ravel()
            heads[pos:pos + block] = (base_cur + jp.astype(np.int64)).ravel()
            weights[pos:pos + block] = (switch + F[t - 1][None, :]).ravel()
            pos += block
        # v_{T,j} -> v_{T+1,0} with weight 0.
        sink = vertex_count(T, m) - 1
        base_last = 1 + (T - 1) * width
        tails[pos:pos + width] = base_last + states.astype(np.int64)
        heads[pos:pos + width] = sink
        weights[pos:pos + width] = 0.0
        pos += width
    assert pos == n_edges
    return LayeredGraph(T=T, m=m, beta=beta, tails=tails, heads=heads,
                        weights=weights)


def solve_graph(instance: Instance) -> OfflineResult:
    """Optimal schedule via layer-by-layer DAG relaxation of Figure 1.

    ``O(T m^2)`` — faithful to the explicit graph; used for moderate sizes
    and cross-validation.
    """
    T, m, beta = instance.T, instance.m, instance.beta
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="graph")
    F = instance.F
    width = m + 1
    states = np.arange(width, dtype=np.float64)
    switch = beta * np.maximum(states[None, :] - states[:, None], 0.0)
    dist = F[0] + beta * states
    parents = np.zeros((T, width), dtype=np.int64)
    for t in range(1, T):
        tot = dist[:, None] + switch
        parents[t] = np.argmin(tot, axis=0)
        dist = F[t] + np.min(tot, axis=0)
    x = np.empty(T, dtype=np.int64)
    x[T - 1] = int(np.argmin(dist))
    best = float(dist[x[T - 1]])
    for t in range(T - 1, 0, -1):
        x[t - 1] = parents[t, x[t]]
    return OfflineResult(schedule=x, cost=best, method="graph")


def to_networkx(graph: LayeredGraph):
    """Convert to a ``networkx.DiGraph`` (test/interop helper)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_weighted_edges_from(
        zip(graph.tails.tolist(), graph.heads.tolist(),
            graph.weights.tolist()))
    return g
