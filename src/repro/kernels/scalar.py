"""Scalar reference kernel: the original per-step work-function loop.

This is the pre-kernel code path, verbatim: one
:class:`~repro.online.workfunction.WorkFunctions` update per revealed
cost row, bounds read back per step.  It exists as the executable
specification the vectorized kernel is tested against
(``tests/test_kernels.py`` asserts bit-identical output) and as the
``REPRO_KERNEL=scalar`` escape hatch.
"""

from __future__ import annotations

import numpy as np

from ..online.workfunction import WorkFunctions

__all__ = ["sweep_workfunction"]


def sweep_workfunction(costs: np.ndarray, beta: float):
    """Per-step reference sweep over a ``(T, m+1)`` cost table.

    Returns the same :class:`~repro.kernels.SweepResult` as the
    vectorized kernel: per-prefix LCP bounds plus the final-row minimum
    (the offline optimum, Lemma 11 / the Section 2 DP).
    """
    from . import SweepResult
    F = np.asarray(costs, dtype=np.float64)
    T, m = F.shape[0], F.shape[1] - 1
    lo = np.empty(T, dtype=np.int64)
    hi = np.empty(T, dtype=np.int64)
    wf = WorkFunctions(m, beta)
    for t in range(T):
        wf.update(F[t])
        lo[t], hi[t] = wf.bounds()
    opt = float(wf.CL.min()) if T else 0.0
    return SweepResult(lo=lo, hi=hi, opt=opt)
