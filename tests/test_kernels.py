"""Scalar vs vectorized vs batched kernel equivalence.

The contract (docs/KERNELS.md): the vectorized whole-table kernels are
**bit-identical** to the per-step scalar reference — same bound
trajectories, same optimum float, same replayed schedules and costs —
for every sweep-sharing algorithm, the backward solver, and whole
engine grids across pipelines.  The batched kernel extends the
contract per slice: every lane of a stacked sweep equals the vector
kernel on that instance alone.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import batched as batched_kernel
from repro.kernels import scalar as scalar_kernel
from repro.kernels import vectorized as vector_kernel
from repro.offline import solve_backward_lcp, solve_dp
from repro.offline.backward import prefix_bounds
from repro.online import run_online, run_online_many
from repro.online.workfunction import WorkFunctions
from repro.runner import EngineConfig, GridSpec, run_grid
from repro.runner.registry import _REGISTRY, get_spec
from repro.runner.scenarios import build_instance


def _random_instances():
    """A spread of shapes: tiny horizons, flat ties, real scenarios."""
    rng = np.random.default_rng(7)
    for trial in range(8):
        T = int(rng.integers(1, 40))
        m = int(rng.integers(0, 9))
        beta = float(rng.uniform(0.2, 6.0))
        yield rng.uniform(0.0, 10.0, size=(T, m + 1)), beta
    # plateaus: many exact argmin ties exercise first/last tie-breaking
    yield np.zeros((12, 6)), 1.5
    yield np.tile([3.0, 1.0, 1.0, 1.0, 5.0], (9, 1)), 2.0
    for scenario, T, seed in (("diurnal", 96, 0), ("sawtooth", 64, 1),
                              ("bursty", 128, 2)):
        inst = build_instance(scenario, T, seed)
        yield np.asarray(inst.F), float(inst.beta)


class TestSweepEquivalence:
    def test_sweep_bit_identical(self):
        """lo/hi/opt agree exactly between kernels on every shape."""
        for F, beta in _random_instances():
            s = scalar_kernel.sweep_workfunction(F, beta)
            v = vector_kernel.sweep_workfunction(F, beta)
            assert np.array_equal(s.lo, v.lo)
            assert np.array_equal(s.hi, v.hi)
            assert s.opt == v.opt  # bitwise, no tolerance

    def test_sweep_matches_per_step_workfunctions(self):
        """Protocol-level bound equality: the whole-table trajectories
        equal the per-step ``WorkFunctions.bounds()`` stream."""
        for F, beta in _random_instances():
            v = vector_kernel.sweep_workfunction(F, beta)
            wf = WorkFunctions(F.shape[1] - 1, beta)
            for t in range(F.shape[0]):
                wf.update(F[t])
                lo, hi = wf.bounds()
                assert (v.lo[t], v.hi[t]) == (lo, hi), f"t={t}"

    def test_opt_is_dp_optimum_bitwise(self):
        """The final work-function row's minimum *is* the Section 2 DP
        optimum — the identity the engine's phase 1 relies on."""
        for scenario, T, seed in (("diurnal", 96, 0), ("onoff", 200, 4)):
            inst = build_instance(scenario, T, seed)
            dp = solve_dp(inst, return_schedule=False).cost
            for name in kernels.KERNELS:
                with kernels.use(name):
                    sweep = kernels.sweep_workfunction(inst.F, inst.beta)
                assert sweep.opt == dp

    def test_empty_table(self):
        for name in kernels.KERNELS:
            with kernels.use(name):
                sweep = kernels.sweep_workfunction(
                    np.zeros((0, 4)), 1.0)
            assert sweep.lo.size == 0 and sweep.hi.size == 0
            assert sweep.opt == 0.0


class TestDispatch:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels.active() == "vector"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        assert kernels.active() == "scalar"

    def test_unknown_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        with pytest.raises(ValueError):
            kernels.active()
        with pytest.raises(ValueError):
            kernels.set_kernel("cuda")

    def test_use_restores_prior_selection(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        with kernels.use("vector"):
            assert kernels.active() == "vector"
        assert kernels.active() == "scalar"

    def test_cached_sweep_memoizes_per_kernel(self):
        kernels.clear_sweep_cache()
        inst = build_instance("diurnal", 24, 0)
        with kernels.use("vector"):
            first = kernels.cached_sweep("k", inst.F, inst.beta)
            again = kernels.cached_sweep("k", inst.F, inst.beta)
        assert again is first  # memo hit
        with kernels.use("scalar"):
            other = kernels.cached_sweep("k", inst.F, inst.beta)
        assert other is not first  # keyed by active kernel too
        assert np.array_equal(other.lo, first.lo)
        kernels.clear_sweep_cache()


class TestBatchedKernel:
    """Per-slice bit-identity of the stacked sweep and the grouping
    behavior of ``cached_sweep_many`` (the engine's prefetch seam)."""

    @pytest.mark.parametrize("B", [1, 2, 3, 5, 7])
    def test_slices_match_vector_kernel(self, B):
        rng = np.random.default_rng(B)
        T, m = int(rng.integers(1, 60)), int(rng.integers(0, 9))
        stack = rng.uniform(0.0, 10.0, size=(B, T, m + 1))
        betas = [float(b) for b in rng.uniform(0.2, 6.0, size=B)]
        many = batched_kernel.sweep_workfunction_many(stack, betas)
        assert len(many) == B
        for b in range(B):
            single = vector_kernel.sweep_workfunction(stack[b], betas[b])
            assert np.array_equal(many[b].lo, single.lo)
            assert np.array_equal(many[b].hi, single.hi)
            assert many[b].opt == single.opt  # bitwise, no tolerance

    def test_empty_stack_and_empty_horizon(self):
        assert batched_kernel.sweep_workfunction_many(
            np.zeros((0, 5, 3)), []) == []
        many = batched_kernel.sweep_workfunction_many(
            np.zeros((4, 0, 3)), [1.0] * 4)
        assert len(many) == 4
        assert all(s.lo.size == 0 and s.opt == 0.0 for s in many)

    def test_shape_and_beta_validation(self):
        with pytest.raises(ValueError):
            batched_kernel.sweep_workfunction_many(np.zeros((5, 3)), [1.0])
        with pytest.raises(ValueError):
            batched_kernel.sweep_workfunction_many(np.zeros((2, 5, 3)),
                                                   [1.0])

    def test_sweep_many_dispatch_agrees_across_kernels(self):
        rng = np.random.default_rng(11)
        stack = rng.uniform(0.0, 10.0, size=(3, 20, 6))
        betas = [1.0, 2.5, 0.7]
        results = {}
        for name in kernels.KERNELS:
            with kernels.use(name):
                results[name] = kernels.sweep_workfunction_many(stack,
                                                                betas)
        for b in range(3):
            for name in ("vector", "batched"):
                assert np.array_equal(results[name][b].lo,
                                      results["scalar"][b].lo)
                assert np.array_equal(results[name][b].hi,
                                      results["scalar"][b].hi)
                assert results[name][b].opt == results["scalar"][b].opt

    def test_cached_sweep_many_groups_by_shape(self, monkeypatch):
        """Same-shape misses run as one stacked launch; ragged shapes
        and singletons fall back to per-instance sweeps."""
        launches, singles = [], []
        real_many = batched_kernel.sweep_workfunction_many
        real_one = vector_kernel.sweep_workfunction
        monkeypatch.setattr(
            batched_kernel, "sweep_workfunction_many",
            lambda costs, betas: launches.append(len(betas))
            or real_many(costs, betas))
        monkeypatch.setattr(
            vector_kernel, "sweep_workfunction",
            lambda costs, beta: singles.append(1) or real_one(costs, beta))
        rng = np.random.default_rng(3)
        big = [rng.uniform(0, 10, size=(18, 5)) for _ in range(3)]
        odd = rng.uniform(0, 10, size=(11, 7))
        items = [(("i", k), tab, 1.5) for k, tab in enumerate(big)]
        items.append((("i", 99), odd, 2.0))
        items.append((("i", 0), big[0], 1.5))  # duplicate key
        kernels.clear_sweep_cache()
        with kernels.use("batched"):
            out = kernels.cached_sweep_many(items)
        assert launches == [3]       # one stacked launch for the trio
        assert sum(singles) == 1     # the odd shape went alone
        assert out[4] is out[0]      # duplicate key shares one sweep
        for k, tab in enumerate(big):
            ref = real_one(tab, 1.5)
            assert out[k].opt == ref.opt
            assert np.array_equal(out[k].lo, ref.lo)
        with kernels.use("batched"):
            again = kernels.cached_sweep(("i", 1), big[1], 1.5)
        assert again is out[1]       # the batch seeded the memo
        kernels.clear_sweep_cache()

    def test_cached_sweep_many_scalar_fallback(self):
        rng = np.random.default_rng(5)
        items = [(("s", k), rng.uniform(0, 10, size=(9, 4)), 1.0)
                 for k in range(3)]
        kernels.clear_sweep_cache()
        with kernels.use("scalar"):
            out = kernels.cached_sweep_many(items)
        for k in range(3):
            ref = scalar_kernel.sweep_workfunction(items[k][1], 1.0)
            assert out[k].opt == ref.opt
            assert np.array_equal(out[k].lo, ref.lo)
        kernels.clear_sweep_cache()

    def test_memo_size_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_MEMO, "2")
        kernels.clear_sweep_cache()
        tab = np.ones((6, 4))
        with kernels.use("vector"):
            for k in range(5):
                kernels.cached_sweep(("m", k), tab, 1.0)
            assert kernels.peek_sweep(("m", 4)) is not None
            assert kernels.peek_sweep(("m", 0)) is None
        monkeypatch.setenv(kernels.ENV_MEMO, "nope")
        with pytest.raises(ValueError):
            kernels.cached_sweep(("m", 9), tab, 1.0)
        monkeypatch.setenv(kernels.ENV_MEMO, "0")
        with pytest.raises(ValueError):
            kernels.cached_sweep(("m", 9), tab, 1.0)
        kernels.clear_sweep_cache()

    def test_sweep_stats_count_hits_and_misses(self):
        kernels.clear_sweep_cache()
        tab = np.ones((6, 4))
        before = kernels.sweep_stats()
        with kernels.use("vector"):
            kernels.cached_sweep(("st", 0), tab, 1.0)
            kernels.cached_sweep(("st", 0), tab, 1.0)
            kernels.cached_sweep_many([(("st", 0), tab, 1.0),
                                       (("st", 1), tab, 1.0)])
        after = kernels.sweep_stats()
        assert after["sweep_memo_misses"] - before["sweep_memo_misses"] == 2
        assert after["sweep_memo_hits"] - before["sweep_memo_hits"] == 2
        kernels.clear_sweep_cache()


def _sharing_online_names():
    return [name for name, spec in _REGISTRY.items()
            if spec.shares_workfunction and spec.kind == "online"]


class TestReplayEquivalence:
    """Every sweep-sharing algorithm and every fast-path baseline
    replays bit-identically under both kernels."""

    FAST_PATH_BASELINES = ("threshold", "memoryless", "followmin",
                          "never-off")

    def _replay(self, name, inst, kernel):
        with kernels.use(kernel):
            return run_online(inst, get_spec(name).make())

    @pytest.mark.parametrize("scenario,T,seed",
                             [("diurnal", 96, 0), ("sawtooth", 64, 1),
                              ("onoff", 200, 2)])
    def test_sharers_and_baselines_bit_identical(self, scenario, T, seed):
        inst = build_instance(scenario, T, seed)
        names = _sharing_online_names() + list(self.FAST_PATH_BASELINES)
        for name in names:
            s = self._replay(name, inst, "scalar")
            v = self._replay(name, inst, "vector")
            assert v.cost == s.cost, name
            assert np.array_equal(v.schedule, s.schedule), name

    def test_run_online_many_bit_identical(self):
        inst = build_instance("bursty", 128, 3)
        names = _sharing_online_names() + list(self.FAST_PATH_BASELINES)
        results = {}
        for kernel in kernels.KERNELS:
            with kernels.use(kernel):
                results[kernel] = run_online_many(
                    inst, [get_spec(n).make() for n in names])
        for kernel in ("vector", "batched"):
            for name, s, v in zip(names, results["scalar"],
                                  results[kernel]):
                assert v.cost == s.cost, (kernel, name)
                assert np.array_equal(v.schedule, s.schedule), (kernel,
                                                                name)

    def test_lookahead_consumer_falls_back_identically(self):
        from repro.online import LCP
        inst = build_instance("diurnal", 48, 1)
        outs = {}
        for kernel in kernels.KERNELS:
            with kernels.use(kernel):
                outs[kernel] = run_online_many(
                    inst, [LCP(lookahead=3), LCP()])
        for kernel in ("vector", "batched"):
            for s, v in zip(outs["scalar"], outs[kernel]):
                assert v.cost == s.cost
                assert np.array_equal(v.schedule, s.schedule)

    def test_lcp_bounds_log_matches_kernel_trajectory(self):
        """Protocol-level equality at the replay seam: the per-step
        ``bounds_log`` equals the kernel's whole-table trajectory."""
        from repro.online import LCP
        inst = build_instance("sawtooth", 64, 0)
        logs = {}
        for kernel in kernels.KERNELS:
            alg = LCP(record_bounds=True)
            with kernels.use(kernel):
                run_online(inst, alg)
            logs[kernel] = alg.bounds_log
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        expected = list(zip(sweep.lo.tolist(), sweep.hi.tolist()))
        for kernel in kernels.KERNELS:
            assert logs[kernel] == expected, kernel


class TestBackwardSolver:
    def test_backward_lcp_bit_identical(self):
        for scenario, T, seed in (("diurnal", 96, 0), ("onoff", 200, 4)):
            inst = build_instance(scenario, T, seed)
            outs = {}
            for kernel in kernels.KERNELS:
                with kernels.use(kernel):
                    outs[kernel] = solve_backward_lcp(inst)
            for kernel in ("vector", "batched"):
                assert outs[kernel].cost == outs["scalar"].cost
                assert np.array_equal(outs[kernel].schedule,
                                      outs["scalar"].schedule)

    def test_precomputed_bounds_short_circuit(self):
        inst = build_instance("diurnal", 48, 0)
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        direct = solve_backward_lcp(inst)
        handed = solve_backward_lcp(inst, bounds=sweep)
        assert handed.cost == direct.cost
        assert np.array_equal(handed.schedule, direct.schedule)

    def test_prefix_bounds_roundtrip(self):
        inst = build_instance("sawtooth", 32, 2)
        lo, hi = prefix_bounds(inst)
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        assert np.array_equal(lo, sweep.lo)
        assert np.array_equal(hi, sweep.hi)
        assert (lo <= hi).all()  # Lemma 6


class TestRestrictedKernels:
    """The restricted solver's forward/backward passes ride the kernel
    dispatch: scalar, vector and batched must agree bitwise on cost
    *and* schedule, including the feasibility-tolerance edge cases."""

    def _instances(self):
        from repro.core.instance import RestrictedInstance
        rng = np.random.default_rng(13)
        for trial in range(4):
            T = int(rng.integers(1, 50))
            m = int(rng.integers(1, 8))
            yield RestrictedInstance(
                beta=float(rng.uniform(0.3, 4.0)), m=m,
                f=lambda z: z ** 2 + 0.25,
                loads=rng.uniform(0.0, m, size=T))
        # loads sitting exactly on (and within 1e-13 of) integer
        # feasibility floors: the 1e-12 ceil tolerance must round the
        # same way in every path
        m = 4
        base = rng.integers(0, m + 1, size=30).astype(np.float64)
        eps = rng.choice([0.0, 1e-13, -1e-13, 1e-12, -1e-12], size=30)
        yield RestrictedInstance(
            beta=1.0, m=m, f=lambda z: z ** 2 + 0.25,
            loads=np.clip(base + eps, 0.0, m))
        # full load every step (schedule forced to m) and zero load
        yield RestrictedInstance(beta=2.0, m=3,
                                 f=lambda z: z + 1.0,
                                 loads=np.full(12, 3.0))
        yield RestrictedInstance(beta=2.0, m=3, f=lambda z: z + 1.0,
                                 loads=np.zeros(12))

    def test_solver_bit_identical_across_kernels(self):
        from repro.offline import solve_restricted
        for k, ri in enumerate(self._instances()):
            outs = {}
            for name in kernels.KERNELS:
                with kernels.use(name):
                    outs[name] = solve_restricted(ri)
            for name in ("vector", "batched"):
                assert outs[name].cost == outs["scalar"].cost, (k, name)
                assert np.array_equal(outs[name].schedule,
                                      outs["scalar"].schedule), (k, name)
            floors = np.maximum(np.ceil(np.asarray(ri.loads) - 1e-12), 0)
            assert (outs["scalar"].schedule >= floors).all(), k

    @pytest.mark.parametrize("kernel", kernels.KERNELS)
    def test_infeasible_cells_never_evaluated(self, kernel):
        """A non-broadcasting ``f`` sees only feasible utilizations:
        the masked cells' placeholder 0.0 never reaches it."""
        from repro.core.instance import RestrictedInstance
        from repro.offline import solve_restricted
        seen = []

        def f(z):
            if not np.isscalar(z) and getattr(z, "ndim", 1) != 0:
                raise TypeError("scalar only")  # defeat broadcasting
            seen.append(float(z))
            return float(z) + 1.0

        loads = np.array([2.0, 3.0, 1.0, 0.0, 2.5])
        ri = RestrictedInstance(beta=1.0, m=3, f=f, loads=loads)
        with kernels.use(kernel):
            out = solve_restricted(ri)
        floors = np.ceil(loads - 1e-12)
        assert (out.schedule >= floors).all()
        # every recorded utilization is feasible (z <= 1 up to the
        # load tolerance), so no masked placeholder was priced
        assert seen and max(seen) <= 1.0 + 1e-9

    @pytest.mark.parametrize("kernel", kernels.KERNELS)
    def test_infeasible_instance_raises(self, kernel):
        """A precomputed cost table with an all-infeasible column (only
        reachable through the duck-typed ``costs`` seam —
        ``RestrictedInstance`` validates ``loads <= m``) raises in
        every kernel."""
        from repro.offline import solve_restricted

        class Infeasible:
            T, m, beta = 3, 2, 1.0
            costs = np.array([[0.0, 1.0, 2.0],
                              [np.inf, np.inf, np.inf],
                              [0.0, 1.0, 2.0]])

        with kernels.use(kernel):
            with pytest.raises(ValueError, match="no feasible"):
                solve_restricted(Infeasible())


class TestEngineGrids:
    """Whole grids — every pipeline, sharers + backward solver mixed —
    produce bit-identical rows under every kernel."""

    GRIDS = {
        "general": GridSpec(
            scenarios=("diurnal", "sawtooth"),
            algorithms=("lcp", "eager-lcp", "threshold", "memoryless",
                        "followmin", "never-off", "backward_lcp", "dp"),
            seeds=(0, 1), sizes=(24,)),
        "restricted": GridSpec(
            scenarios=("restricted-diurnal",),
            algorithms=("restricted", "lcp", "eager-lcp"),
            seeds=(0,), sizes=(16,)),
        "hetero": GridSpec(
            scenarios=("hetero-fleet",),
            algorithms=("dp_hetero", "greedy_hetero"),
            seeds=(0,), sizes=(16,)),
        "lookahead": GridSpec(
            scenarios=("diurnal",),
            algorithms=("lcp", "eager-lcp", "backward_lcp"),
            seeds=(0,), sizes=(32,), lookahead=2),
    }

    @pytest.mark.parametrize("grid", sorted(GRIDS), ids=sorted(GRIDS))
    def test_grid_rows_bit_identical(self, grid):
        spec = self.GRIDS[grid]
        rows = {}
        for kernel in kernels.KERNELS:
            kernels.clear_sweep_cache()
            with kernels.use(kernel):
                rows[kernel] = run_grid(spec)
        kernels.clear_sweep_cache()
        assert rows["vector"] == rows["scalar"]
        assert rows["batched"] == rows["scalar"]

    def test_batched_grid_multi_seed_multi_size(self):
        """Co-batched instances of mixed (T, m) shapes: same-shape
        groups stack, ragged ones fall back — rows stay bit-identical
        to the scalar reference, serial and parallel alike."""
        spec = GridSpec(
            scenarios=("diurnal",),
            algorithms=("lcp", "eager-lcp", "backward_lcp", "threshold",
                        "dp"),
            seeds=(0, 1, 2), sizes=(16, 24))
        rows = {}
        for kernel in kernels.KERNELS:
            kernels.clear_sweep_cache()
            with kernels.use(kernel):
                rows[kernel] = run_grid(spec)
        kernels.clear_sweep_cache()
        with kernels.use("batched"):
            parallel = run_grid(spec, config=EngineConfig(n_jobs=2))
        kernels.clear_sweep_cache()
        assert rows["batched"] == rows["scalar"]
        assert rows["vector"] == rows["scalar"]
        assert parallel == rows["scalar"]

    def test_batched_grid_launches_one_stacked_sweep(self, monkeypatch):
        """Under REPRO_KERNEL=batched the fused phase-1 chunk sweeps
        all same-shape co-scheduled instances in one stacked launch;
        every later consumer (phase-1 optimum, shared replay, backward
        solver) hits the memo — no single-instance sweep runs at all."""
        launches, singles = [], []
        real_many = batched_kernel.sweep_workfunction_many
        real_one = vector_kernel.sweep_workfunction
        monkeypatch.setattr(
            batched_kernel, "sweep_workfunction_many",
            lambda costs, betas: launches.append(len(betas))
            or real_many(costs, betas))
        monkeypatch.setattr(
            vector_kernel, "sweep_workfunction",
            lambda costs, beta: singles.append(1) or real_one(costs, beta))
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp", "backward_lcp"),
                        seeds=(0, 1), sizes=(24,))
        kernels.clear_sweep_cache()
        with kernels.use("batched"):
            rows = run_grid(spec)
        kernels.clear_sweep_cache()
        assert len(rows) == 6
        assert launches == [2]  # two same-shape instances, one launch
        assert sum(singles) == 0

    def test_grid_stats_surface_sweep_memo_counters(self):
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp", "backward_lcp"),
                        seeds=(0, 1), sizes=(24,))
        stats: dict = {}
        kernels.clear_sweep_cache()
        with kernels.use("batched"):
            run_grid(spec, stats=stats)
        kernels.clear_sweep_cache()
        assert stats["sweep_memo_misses"] == 2   # one per instance
        # phase-1 optimum + phase-2 shared replay hit per instance
        assert stats["sweep_memo_hits"] >= 4

    def test_fused_chunks_share_one_sweep_with_backward(self):
        """With the vectorized kernel, a fused chunk serves the LCP
        family, the backward solver *and* the phase-1 optimum from a
        single memoized sweep per instance."""
        calls = 0
        real = vector_kernel.sweep_workfunction

        def counting(costs, beta):
            nonlocal calls
            calls += 1
            return real(costs, beta)

        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp", "backward_lcp"),
                        seeds=(0,), sizes=(24,))
        kernels.clear_sweep_cache()
        vector_kernel.sweep_workfunction = counting
        try:
            with kernels.use("vector"):
                rows = run_grid(spec)
        finally:
            vector_kernel.sweep_workfunction = real
            kernels.clear_sweep_cache()
        assert len(rows) == 3
        assert calls == 1  # one instance -> one sweep, shared by all
