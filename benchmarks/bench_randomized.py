"""E5 — Theorem 3: the randomized algorithm is 2-competitive.

Regenerates the expected-ratio table of the rounded threshold algorithm
(exact expectations via the closed-form chain, no Monte Carlo noise) and
the Lemma 18–20 identity residuals.
"""

import numpy as np

from repro.analysis import optimal_cost
from repro.online import (RandomizedRounding, ThresholdFractional,
                          exact_rounding_distribution, expected_cost_exact,
                          run_online)
from repro.runner import GridSpec, run_grid
from repro.runner.scenarios import build_instance

from conftest import random_convex_instance, record, trace_suite


def test_e5_expected_ratio_table(benchmark):
    rows = []
    worst = 0.0
    for name, inst in trace_suite(T=168):
        fr = run_online(inst, ThresholdFractional())
        exp = expected_cost_exact(inst, fr.schedule)
        opt = optimal_cost(inst)
        ratio = exp["total"] / opt
        rows.append({"workload": name,
                     "fractional_cost": fr.cost,
                     "expected_rounded": exp["total"],
                     "opt": opt, "ratio": ratio})
        worst = max(worst, ratio)
    record("E5_randomized_ratios", rows,
           title="E5: rounded-threshold expected ratios (exact)")
    assert worst <= 2.0 + 1e-7
    name, inst = trace_suite(T=2000)[2]
    benchmark(run_online, inst, RandomizedRounding(ThresholdFractional(),
                                                   rng=0))


def test_e5_lemma_identities(benchmark):
    """Residuals of Lemmas 18 (marginals), 19 (operating), 20 (switching)
    on random instances — all zero to numerical precision."""
    rng = np.random.default_rng(31)
    worst18 = worst19 = worst20 = 0.0
    for _ in range(10):
        inst = random_convex_instance(rng, 60, 10, 2.0)
        fr = run_online(inst, ThresholdFractional())
        xb = fr.schedule
        dist = exact_rounding_distribution(xb)
        snapped = np.where(np.abs(xb - np.round(xb)) <= 1e-9,
                           np.round(xb), xb)
        worst18 = max(worst18, float(np.max(np.abs(
            dist.p_upper - (snapped - np.floor(snapped))))))
        exp = expected_cost_exact(inst, xb)
        worst19 = max(worst19, abs(exp["operating"]
                                   - exp["fractional_operating"]))
        worst20 = max(worst20, abs(exp["switching"]
                                   - exp["fractional_switching"]))
    record("E5_lemma_residuals", [{
        "lemma18_max_residual": worst18,
        "lemma19_max_residual": worst19,
        "lemma20_max_residual": worst20,
    }], title="E5: rounding identity residuals (Lemmas 18-20)")
    assert worst18 < 1e-8 and worst19 < 1e-8 and worst20 < 1e-8
    benchmark(exact_rounding_distribution, xb)


def test_e5_sampled_vs_exact(benchmark):
    """Monte Carlo sanity: sampled mean cost converges to the exact
    expectation (tabulated for three sample sizes).

    The samples run through the batch engine: `instance_seed` pins one
    diurnal instance while the grid seeds drive only the rounding rng.
    """
    inst = build_instance("diurnal", T=96, seed=4)
    fr = run_online(inst, ThresholdFractional())
    exact = expected_cost_exact(inst, fr.schedule)["total"]
    samples = run_grid(GridSpec(scenarios=("diurnal",),
                                algorithms=("randomized",),
                                seeds=tuple(range(1000)), sizes=(96,),
                                instance_seed=4))
    costs = np.array([r["cost"] for r in samples])
    rows = []
    for n in (10, 100, 1000):
        mean = float(np.mean(costs[:n]))
        rows.append({"samples": n, "mean_cost": mean,
                     "exact_expectation": exact,
                     "rel_err": abs(mean - exact) / exact})
    record("E5_monte_carlo", rows, title="E5: sampled cost vs exact")
    assert rows[-1]["rel_err"] < 0.05
    benchmark(expected_cost_exact, inst, fr.schedule)
