"""Tests for the shared pipelined executor: the run_pipeline contract
(in-order flush, overlap counters, abort drain), EngineConfig with its
legacy-kwargs deprecation shim, typed RunStats, and job_slice."""

import dataclasses
import threading
from concurrent.futures import Future

import pytest

from repro.analysis import sweep
from repro.runner import EngineConfig, GridSpec, RunStats, run_grid
from repro.runner.executor import (PipelineBatch, chunk_list, iter_batches,
                                   resolve_config, run_pipeline)

SMALL = GridSpec(scenarios=("diurnal",), algorithms=("lcp", "threshold"),
                 seeds=(0, 1), sizes=(16,))


def _measure(x):
    return {"y": x * x}


# ----------------------------------------------------------------------
# run_pipeline contract, driven by stub batches.
# ----------------------------------------------------------------------

class _FutureBatch(PipelineBatch):
    """Stub batch backed by real futures the test completes on timers."""

    def __init__(self, name, futures, log, rows=1):
        self.name = name
        self.futures = list(futures)
        self._all = list(futures)
        self.log = log
        self.size = rows
        self.salvaged = False

    def advance(self):
        progressed = False
        remaining = []
        for f in self.futures:
            if f.done():
                f.result()  # propagate worker exceptions
                progressed = True
            else:
                remaining.append(f)
        self.futures = remaining
        return progressed

    def done(self):
        return not self.futures

    def unfinished_futures(self):
        return [f for f in self.futures if not f.done()]

    def all_futures(self):
        return self._all

    def flush(self):
        self.log.append(self.name)
        return self.size

    def salvage(self):
        self.salvaged = True


def _timed_future(delay, value=None):
    f = Future()
    threading.Timer(delay, f.set_result, args=(value,)).start()
    return f


class TestRunPipeline:
    def test_heads_flush_in_admission_order(self):
        # batch 1 finishes long before batch 0; the sink must still see
        # batch 0 first
        log = []
        delays = {0: 0.25, 1: 0.01}

        def plan(i):
            return _FutureBatch(i, [_timed_future(delays[i])], log,
                                rows=i + 1)

        stats = run_pipeline(iter([0, 1]), plan, pipeline_depth=2)
        assert log == [0, 1]
        assert stats.batches == 2
        assert stats.rows_written == 3
        assert stats.overlapped_batches == 1
        assert stats.inflight_max == 2
        assert stats.max_pending == 3

    def test_depth_one_is_a_barrier(self):
        log = []

        def plan(i):
            return _FutureBatch(i, [_timed_future(0.01)], log)

        stats = run_pipeline(iter([0, 1, 2]), plan, pipeline_depth=1)
        assert log == [0, 1, 2]
        assert stats.overlapped_batches == 0
        assert stats.inflight_max == 1

    def test_empty_iterable_is_a_no_op(self):
        stats = run_pipeline(iter([]), lambda b: None, pipeline_depth=2)
        assert stats.batches == 0 and stats.rows_written == 0

    def test_depth_validated(self):
        with pytest.raises(ValueError, match="pipeline_depth"):
            run_pipeline(iter([]), lambda b: None, pipeline_depth=0)

    def test_stall_without_outstanding_work_raises(self):
        class Stuck(PipelineBatch):
            def done(self):
                return False

        with pytest.raises(RuntimeError, match="stalled"):
            run_pipeline(iter([0]), lambda b: Stuck(), pipeline_depth=1)

    def test_abort_salvages_all_and_flushes_completed_heads(self):
        # batch 0 completes during the same pump in which batch 1's
        # advance raises: the drain must salvage both, then still flush
        # batch 0 (a killed run keeps a clean in-order row prefix)
        log = []

        class Slow(PipelineBatch):
            size = 1
            calls = 0

            def advance(self):
                Slow.calls += 1
                return Slow.calls == 2

            def done(self):
                return Slow.calls >= 2

            def flush(self):
                log.append("flush-b0")
                return 1

            def salvage(self):
                log.append("salvage-b0")

        class Boom(PipelineBatch):
            size = 1

            def advance(self):
                raise RuntimeError("boom")

            def done(self):
                return False

            def salvage(self):
                log.append("salvage-b1")

        batches = [Slow(), Boom()]
        with pytest.raises(RuntimeError, match="boom"):
            run_pipeline(iter([0, 1]), lambda i: batches[i],
                         pipeline_depth=2)
        assert log == ["salvage-b0", "salvage-b1", "flush-b0"]

    def test_abort_cancels_outstanding_futures(self):
        log = []
        pending = Future()  # never completes; must be cancelled
        b0 = _FutureBatch(0, [pending], log)

        class Boom(PipelineBatch):
            def advance(self):
                raise RuntimeError("boom")

            def done(self):
                return False

        batches = {0: b0, 1: Boom()}
        with pytest.raises(RuntimeError, match="boom"):
            run_pipeline(iter([0, 1]), lambda i: batches[i],
                         pipeline_depth=2)
        assert pending.cancelled()
        assert b0.salvaged
        assert log == []  # b0 never completed, so it must not flush

    def test_failing_sink_stops_all_flushing(self):
        # once a flush itself raises, the drain must not write later
        # batches (kill+resume relies on an untorn row prefix)
        log = []

        class BadFlush(_FutureBatch):
            def flush(self):
                raise IOError("sink refused")

        done = Future()
        done.set_result(None)
        done2 = Future()
        done2.set_result(None)
        batches = {0: BadFlush(0, [done], log),
                   1: _FutureBatch(1, [done2], log)}
        with pytest.raises(IOError, match="sink refused"):
            run_pipeline(iter([0, 1]), lambda i: batches[i],
                         pipeline_depth=2)
        assert log == []


class TestBatchingHelpers:
    def test_iter_batches_validates_eagerly(self):
        def explode():
            raise AssertionError("iterable must not be consumed")
            yield  # pragma: no cover

        with pytest.raises(ValueError, match="batch_size"):
            iter_batches(explode(), 0)

    def test_iter_batches_splits(self):
        assert list(iter_batches(range(5), 2)) == [[0, 1], [2, 3], [4]]
        assert list(iter_batches(range(3), None)) == [[0, 1, 2]]
        assert list(iter_batches([], None)) == []

    def test_chunk_list_in_process_fuses_everything(self):
        assert chunk_list([1, 2, 3], n_jobs=1, chunk_jobs=None) == \
            [[1, 2, 3]]
        assert chunk_list([1, 2, 3], n_jobs=1, chunk_jobs=1) == \
            [[1], [2], [3]]
        assert chunk_list([], n_jobs=4, chunk_jobs=None) == []


# ----------------------------------------------------------------------
# EngineConfig and the legacy-kwargs deprecation shim.
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_resolve_none_gives_defaults(self):
        config = resolve_config(None, {}, what="f")
        assert config == EngineConfig()
        assert config.n_jobs == 1 and config.pipeline_depth == 2

    def test_resolve_passes_config_through_unchanged(self):
        config = EngineConfig(n_jobs=3)
        assert resolve_config(config, {}, what="f") is config

    def test_legacy_kwargs_warn_and_override(self):
        config = EngineConfig(n_jobs=3)
        with pytest.warns(DeprecationWarning, match="batch_size"):
            out = resolve_config(config, {"batch_size": 4}, what="f")
        assert out.batch_size == 4
        assert out.n_jobs == 3          # untouched fields survive
        assert config.batch_size is None  # frozen original unchanged

    def test_chunk_points_alias_maps_to_chunk_jobs(self):
        with pytest.warns(DeprecationWarning):
            out = resolve_config(None, {"chunk_points": 5}, what="sweep")
        assert out.chunk_jobs == 5

    def test_unknown_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="bogus"):
            resolve_config(None, {"bogus": 1}, what="f")

    def test_disallowed_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="store_dir"):
            resolve_config(None, {"store_dir": "/tmp"}, what="sweep",
                           allowed=frozenset({"n_jobs"}))

    def test_non_config_positional_raises(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            resolve_config({"n_jobs": 2}, {}, what="f")

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().n_jobs = 2

    def test_run_grid_legacy_kwargs_warn_and_match_config(self):
        ref = run_grid(SMALL, EngineConfig(batch_size=3))
        with pytest.warns(DeprecationWarning, match="run_grid"):
            legacy = run_grid(SMALL, batch_size=3)
        assert legacy == ref

    def test_run_grid_unknown_kwarg(self):
        with pytest.raises(TypeError, match="bogus"):
            run_grid(SMALL, bogus=1)

    def test_sweep_legacy_kwargs_warn_and_match_config(self):
        grid = {"x": [1, 2, 3]}
        ref = sweep(_measure, grid, EngineConfig(batch_size=2))
        with pytest.warns(DeprecationWarning, match="sweep"):
            legacy = sweep(_measure, grid, batch_size=2)
        assert legacy == ref

    def test_sweep_rejects_engine_only_kwargs(self):
        with pytest.raises(TypeError, match="store_dir"):
            sweep(_measure, {"x": [1]}, store_dir="/tmp")


# ----------------------------------------------------------------------
# RunStats: typed counters, legacy dict view, accumulation.
# ----------------------------------------------------------------------

class TestRunStats:
    def test_as_dict_covers_every_counter(self):
        stats = RunStats(job_hits=2, batches=1)
        d = stats.as_dict()
        assert d["job_hits"] == 2 and d["batches"] == 1
        assert set(d) == {f.name for f in dataclasses.fields(RunStats)}

    def test_getitem_and_keyerror(self):
        stats = RunStats(rows_written=7)
        assert stats["rows_written"] == 7
        with pytest.raises(KeyError):
            stats["nope"]

    def test_merge_max(self):
        stats = RunStats(max_pending=4)
        stats.merge_max("max_pending", 2)
        assert stats.max_pending == 4
        stats.merge_max("max_pending", 9)
        assert stats.max_pending == 9

    def test_run_grid_accepts_and_accumulates_run_stats(self):
        stats = RunStats()
        run_grid(SMALL, EngineConfig(batch_size=2), stats=stats)
        first_batches = stats.batches
        assert first_batches == 2 and stats.rows_written == len(SMALL)
        run_grid(SMALL, EngineConfig(batch_size=2), stats=stats)
        assert stats.batches == 2 * first_batches   # counts accumulate
        assert stats.rows_written == 2 * len(SMALL)

    def test_run_grid_legacy_dict_keeps_historical_keys(self, tmp_path):
        stats = {}
        run_grid(SMALL, EngineConfig(cache_dir=tmp_path), stats=stats)
        for key in ("job_hits", "job_misses", "opt_hits", "opt_solved",
                    "batches", "max_pending", "rows_written",
                    "overlapped_batches", "inflight_max"):
            assert key in stats, key
        assert "leases_claimed" not in stats  # new counters stay typed

    def test_sweep_legacy_dict_gets_hits_misses_only(self, tmp_path):
        stats = {}
        sweep(_measure, {"x": [1, 2]},
              EngineConfig(cache_dir=tmp_path), stats=stats)
        assert stats == {"hits": 0, "misses": 2}


# ----------------------------------------------------------------------
# job_slice: the lease seam on run_grid.
# ----------------------------------------------------------------------

class TestJobSlice:
    def test_full_slice_matches_unsliced(self):
        assert run_grid(SMALL, job_slice=(0, len(SMALL))) == run_grid(SMALL)

    def test_slices_concatenate_bit_identically(self):
        full = run_grid(SMALL)
        parts = (run_grid(SMALL, job_slice=(0, 3))
                 + run_grid(SMALL, job_slice=(3, len(SMALL))))
        assert parts == full

    def test_empty_slice_is_empty(self):
        assert run_grid(SMALL, job_slice=(2, 2)) == []

    def test_out_of_range_slice_raises(self):
        with pytest.raises(ValueError):
            run_grid(SMALL, job_slice=(0, len(SMALL) + 1))
        with pytest.raises(ValueError):
            run_grid(SMALL, job_slice=(-1, 2))
        with pytest.raises(ValueError):
            run_grid(SMALL, job_slice=(3, 2))
