"""Tests for the incremental work functions (Section 3.2, Lemmas 7–10)."""

import itertools

import numpy as np
import pytest

from repro.core.schedule import cost_L, cost_U
from repro.online.workfunction import WorkFunctions, update_CL, update_CU
from tests.conftest import random_convex_instance


def brute_CL(inst, tau, x):
    """min C^L_tau over schedules with x_tau = x (exhaustive)."""
    best = np.inf
    for pre in itertools.product(range(inst.m + 1), repeat=tau - 1):
        X = list(pre) + [x] + [0] * (inst.T - tau)
        best = min(best, cost_L(inst, X, tau))
    return best


def brute_CU(inst, tau, x):
    best = np.inf
    for pre in itertools.product(range(inst.m + 1), repeat=tau - 1):
        X = list(pre) + [x] + [0] * (inst.T - tau)
        best = min(best, cost_U(inst, X, tau))
    return best


class TestRecurrences:
    def test_CL_matches_bruteforce(self):
        rng = np.random.default_rng(80)
        for _ in range(8):
            inst = random_convex_instance(rng, int(rng.integers(1, 4)),
                                          int(rng.integers(1, 4)),
                                          float(rng.uniform(0.3, 3)))
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                for x in range(inst.m + 1):
                    assert wf.CL[x] == pytest.approx(
                        brute_CL(inst, tau, x)), (tau, x)

    def test_CU_matches_bruteforce(self):
        rng = np.random.default_rng(81)
        for _ in range(8):
            inst = random_convex_instance(rng, int(rng.integers(1, 4)),
                                          int(rng.integers(1, 4)),
                                          float(rng.uniform(0.3, 3)))
            wf = WorkFunctions(inst.m, inst.beta, track_U=True)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                for x in range(inst.m + 1):
                    assert wf.CU[x] == pytest.approx(
                        brute_CU(inst, tau, x)), (tau, x)

    def test_first_step_formulas(self):
        """hat-C^L_1 = f_1 + beta x; hat-C^U_1 = f_1."""
        f = np.array([3.0, 1.0, 0.5, 2.0])
        np.testing.assert_allclose(update_CL(None, f, 2.0),
                                   f + 2.0 * np.arange(4))
        np.testing.assert_allclose(update_CU(None, f, 2.0), f)


class TestLemma7:
    def test_identity_CL_CU(self):
        """hat-C^L_tau(x) = hat-C^U_tau(x) + beta x for every tau, x."""
        rng = np.random.default_rng(82)
        for _ in range(10):
            inst = random_convex_instance(rng, int(rng.integers(1, 12)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.3, 4)))
            wf = WorkFunctions(inst.m, inst.beta, track_U=True)
            states = np.arange(inst.m + 1)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                np.testing.assert_allclose(wf.CL,
                                           wf.CU + inst.beta * states,
                                           atol=1e-9)


class TestLemma8:
    def test_work_functions_convex(self):
        rng = np.random.default_rng(83)
        for _ in range(10):
            inst = random_convex_instance(rng, int(rng.integers(1, 15)),
                                          int(rng.integers(2, 10)),
                                          float(rng.uniform(0.3, 4)))
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                for table in (wf.CL, wf.CU):
                    d2 = np.diff(table, n=2)
                    assert np.all(d2 >= -1e-9 * max(1, np.abs(table).max()))


class TestLemma9and10:
    def test_slope_beta_at_xU(self):
        """Delta hat-C^L(x^U) <= beta and Delta hat-C^L(x^U + 1) >= beta."""
        rng = np.random.default_rng(84)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 12)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.3, 4)))
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                xu = wf.x_upper()
                CL = wf.CL
                if xu >= 1:
                    assert CL[xu] - CL[xu - 1] <= inst.beta + 1e-9
                if xu + 1 <= inst.m:
                    assert CL[xu + 1] - CL[xu] >= inst.beta - 1e-9

    def test_slope_at_most_beta_below_xU(self):
        """Lemma 10: Delta hat-C^L(x) <= beta for all x <= x^U."""
        rng = np.random.default_rng(85)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 10)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.3, 4)))
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                xu = wf.x_upper()
                CL = wf.CL
                for x in range(1, xu + 1):
                    assert CL[x] - CL[x - 1] <= inst.beta + 1e-9


class TestBounds:
    def test_bounds_ordering(self):
        rng = np.random.default_rng(86)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 15)),
                                          int(rng.integers(1, 10)),
                                          float(rng.uniform(0.3, 4)))
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                lo, hi = wf.bounds()
                assert 0 <= lo <= hi <= inst.m

    def test_bounds_match_paper_definitions(self):
        """x^L = smallest last state of an optimizer of C^L_tau;
        x^U = largest last state of an optimizer of C^U_tau."""
        rng = np.random.default_rng(87)
        for _ in range(6):
            inst = random_convex_instance(rng, 3, 3, 1.2)
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                tablesL = [brute_CL(inst, tau, x) for x in range(inst.m + 1)]
                tablesU = [brute_CU(inst, tau, x) for x in range(inst.m + 1)]
                bestL = min(tablesL)
                bestU = min(tablesU)
                expectL = min(x for x, v in enumerate(tablesL)
                              if v <= bestL + 1e-12)
                expectU = max(x for x, v in enumerate(tablesU)
                              if v <= bestU + 1e-12)
                assert wf.x_lower() == expectL
                assert wf.x_upper() == expectU

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkFunctions(-1, 1.0)
        with pytest.raises(ValueError):
            WorkFunctions(3, 0.0)
        wf = WorkFunctions(3, 1.0)
        with pytest.raises(RuntimeError):
            _ = wf.CL
        with pytest.raises(ValueError):
            wf.update(np.zeros(3))
