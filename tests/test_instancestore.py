"""Tests for the zero-rebuild execution layer: the mmap instance store,
the per-process build memo, and the persistent worker pool."""

import os

import numpy as np
import pytest

from repro.offline.restricted import restricted_cost_matrix
from repro.runner import (GridSpec, InstanceStore, build_instance,
                          get_instance, run_grid, shutdown_pool)
from repro.runner import executor as executor_mod
from repro.runner import instancestore
from repro.runner.instancestore import StoredRestrictedInstance, store_key


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test sees an empty per-process memo."""
    instancestore.clear_memo()
    yield
    instancestore.clear_memo()


GRID = GridSpec(scenarios=("diurnal", "sawtooth"),
                algorithms=("lcp", "threshold", "memoryless"),
                seeds=(0, 1), sizes=(20,))


class TestStorePayloads:
    def test_general_roundtrip_bit_identical(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("diurnal", "general", 24, 3)
        fresh = build_instance("diurnal", 24, 3)
        store.put(coords, fresh)
        loaded = store.load(coords)
        assert loaded.beta == fresh.beta
        np.testing.assert_array_equal(np.asarray(loaded.F), fresh.F)
        # mmap-backed: the matrix is a read-only memory map, not a copy
        assert isinstance(np.asarray(loaded.F).base, np.memmap) \
            or isinstance(loaded.F, np.memmap)

    def test_restricted_roundtrip(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("restricted-diurnal", "restricted", 16, 1)
        ri = build_instance("restricted-diurnal", 16, 1,
                            pipeline="restricted")
        store.put(coords, ri)
        loaded = store.load(coords)
        assert isinstance(loaded, StoredRestrictedInstance)
        assert (loaded.T, loaded.m, loaded.beta) == (ri.T, ri.m, ri.beta)
        np.testing.assert_array_equal(np.asarray(loaded.loads), ri.loads)
        np.testing.assert_array_equal(np.asarray(loaded.costs),
                                      restricted_cost_matrix(ri))

    def test_hetero_roundtrip(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("hetero-fleet", "hetero", 12, 0)
        hi = build_instance("hetero-fleet", 12, 0, pipeline="hetero")
        store.put(coords, hi)
        loaded = store.load(coords)
        assert (loaded.beta1, loaded.beta2) == (hi.beta1, hi.beta2)
        np.testing.assert_array_equal(np.asarray(loaded.F), hi.F)

    def test_load_missing_returns_none(self, tmp_path):
        assert InstanceStore(tmp_path).load(("diurnal", "general", 8, 0)) \
            is None

    def test_corrupt_meta_returns_none(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("diurnal", "general", 8, 0)
        store.put(coords, build_instance("diurnal", 8, 0))
        (store.dir(coords) / "meta.json").write_text("{not json")
        assert store.load(coords) is None
        # get_instance falls back to a live build
        inst = get_instance(coords, tmp_path)
        assert inst.T == 8

    def test_materialize_once(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("diurnal", "general", 8, 0)
        assert store.materialize(coords) is True
        assert store.materialize(coords) is False  # already present
        assert store.has(coords)
        info = store.stats()
        assert info["entries"] == 1 and info["bytes"] > 0

    def test_store_keys_distinct_per_coordinate(self):
        keys = {store_key(("diurnal", "general", T, s))
                for T in (8, 16) for s in (0, 1)}
        assert len(keys) == 4


class TestGetInstance:
    def test_memo_prevents_second_build(self, monkeypatch):
        calls = []
        import repro.runner.scenarios as scen
        orig = scen.build_instance
        monkeypatch.setattr(scen, "build_instance",
                            lambda *a, **k: calls.append(a) or orig(*a, **k))
        coords = ("diurnal", "general", 10, 0)
        a = get_instance(coords)
        b = get_instance(coords)
        assert a is b and len(calls) == 1

    def test_memo_lru_bound(self):
        previous = instancestore.set_memo_size(2)
        try:
            for seed in range(4):
                get_instance(("diurnal", "general", 8, seed))
            assert len(instancestore._MEMO) == 2
        finally:
            instancestore.set_memo_size(previous)

    def test_memo_bounded_by_resident_bytes(self):
        previous = instancestore._MEMO_BYTES
        instancestore._MEMO_BYTES = 1  # any built instance exceeds this
        try:
            for seed in range(3):
                get_instance(("diurnal", "general", 16, seed))
            # the byte bound keeps at most one oversized entry resident
            assert len(instancestore._MEMO) == 1
        finally:
            instancestore._MEMO_BYTES = previous

    def test_mmap_backed_entries_count_as_free(self, tmp_path):
        store = InstanceStore(tmp_path)
        coords = ("diurnal", "general", 16, 0)
        store.put(coords, build_instance("diurnal", 16, 0))
        loaded = store.load(coords)
        assert instancestore._resident_nbytes(loaded) == 0
        assert instancestore._resident_nbytes(
            build_instance("diurnal", 16, 0)) > 0

    def test_memo_disabled_rebuilds(self):
        previous = instancestore.set_memo_size(0)
        try:
            before = instancestore.build_stats()["inst_builds"]
            get_instance(("diurnal", "general", 8, 0))
            get_instance(("diurnal", "general", 8, 0))
            after = instancestore.build_stats()["inst_builds"]
            assert after - before == 2
        finally:
            instancestore.set_memo_size(previous)


class TestRunGridWithStore:
    def test_rows_identical_to_rebuild_path(self, tmp_path):
        plain = run_grid(GRID)
        instancestore.clear_memo()
        stored = run_grid(GRID, store_dir=tmp_path)
        assert stored == plain  # bit-identical, including float fields

    def test_each_instance_built_exactly_once_end_to_end(self, tmp_path):
        stats = {}
        run_grid(GRID, store_dir=tmp_path, stats=stats)
        # 2 scenarios x 2 seeds = 4 distinct instances; 12 jobs
        assert stats["inst_materialized"] == 4
        assert stats["inst_builds"] == 4
        assert stats["inst_loads"] == 4   # phase 1 mmap-loads each once
        # a second run (fresh memo) never builds again
        instancestore.clear_memo()
        stats2 = {}
        run_grid(GRID, store_dir=tmp_path, stats=stats2)
        assert stats2["inst_materialized"] == 0
        assert stats2["inst_builds"] == 0
        assert stats2["inst_loads"] == 4

    def test_store_with_cache_and_parallel(self, tmp_path):
        cache = tmp_path / "cache"
        store = tmp_path / "store"
        rows1 = run_grid(GRID, cache_dir=cache, store_dir=store)
        instancestore.clear_memo()
        rows4 = run_grid(GRID, n_jobs=4, store_dir=store, force=True,
                         cache_dir=cache)
        assert rows1 == rows4
        shutdown_pool()

    def test_restricted_and_hetero_through_store(self, tmp_path):
        spec = GridSpec(scenarios=("restricted-diurnal", "hetero-fleet"),
                        algorithms=("restricted", "lcp", "dp_hetero",
                                    "greedy_hetero"),
                        seeds=(0,), sizes=(16,))
        with pytest.raises(ValueError):
            run_grid(spec)  # mixed pipelines vs scenarios fail fast
        spec_r = GridSpec(scenarios=("restricted-diurnal",),
                          algorithms=("restricted", "lcp"),
                          seeds=(0, 1), sizes=(16,))
        spec_h = GridSpec(scenarios=("hetero-fleet",),
                          algorithms=("dp_hetero", "greedy_hetero"),
                          seeds=(0,), sizes=(16,))
        for spec in (spec_r, spec_h):
            plain = run_grid(spec)
            instancestore.clear_memo()
            assert run_grid(spec, store_dir=tmp_path) == plain


def _worker_pid(_):
    return os.getpid()


class TestPersistentPool:
    def test_pool_reused_across_calls(self):
        from repro.runner.engine import parallel_map
        shutdown_pool()
        pids1 = set(parallel_map(_worker_pid, range(8), n_jobs=2))
        pool1 = executor_mod._POOL
        workers1 = set(pool1._processes)
        pids2 = set(parallel_map(_worker_pid, range(8), n_jobs=2))
        assert executor_mod._POOL is pool1          # same executor object
        assert set(pool1._processes) == workers1    # same worker processes
        assert (pids1 | pids2) <= workers1          # jobs ran on them
        shutdown_pool()

    def test_pool_reused_across_run_grid_calls(self, tmp_path):
        shutdown_pool()
        run_grid(SMALL_POOL, n_jobs=2)
        pool1 = executor_mod._POOL
        run_grid(SMALL_POOL, n_jobs=2, store_dir=tmp_path, force=True)
        assert executor_mod._POOL is pool1
        shutdown_pool()

    def test_pool_grows_never_shrinks(self):
        from repro.runner.engine import parallel_map
        shutdown_pool()
        parallel_map(_worker_pid, range(4), n_jobs=2)
        assert executor_mod._POOL_WORKERS == 2
        parallel_map(_worker_pid, range(8), n_jobs=4)
        assert executor_mod._POOL_WORKERS == 4
        parallel_map(_worker_pid, range(4), n_jobs=2)
        assert executor_mod._POOL_WORKERS == 4  # kept, not shrunk
        shutdown_pool()
        assert (executor_mod._POOL is None
                and executor_mod._POOL_WORKERS == 0)

    def test_shutdown_then_fresh_pool(self):
        from repro.runner.engine import parallel_map
        shutdown_pool()
        pids1 = set(parallel_map(_worker_pid, range(4), n_jobs=2))
        shutdown_pool()
        pids2 = set(parallel_map(_worker_pid, range(4), n_jobs=2))
        assert pids1.isdisjoint(pids2)  # genuinely new processes
        shutdown_pool()


SMALL_POOL = GridSpec(scenarios=("diurnal",),
                      algorithms=("lcp", "threshold"),
                      seeds=(0, 1), sizes=(16,))


class TestVectorizedRestricted:
    def test_matrix_matches_scalar_reference(self):
        ri = build_instance("restricted-diurnal", 20, 2,
                            pipeline="restricted")
        F = restricted_cost_matrix(ri)
        assert F.shape == (ri.T, ri.m + 1)
        import math
        for t in range(ri.T):
            lo = max(int(math.ceil(float(ri.loads[t]) - 1e-12)), 0)
            for j in range(ri.m + 1):
                if j < lo:
                    assert F[t, j] == np.inf
                else:
                    assert F[t, j] == ri.operating_cost(t + 1, j)

    def test_scalar_only_cost_falls_back(self):
        import math
        from repro.workloads import restricted_from_loads

        def scalar_f(z):
            return math.exp(z)  # raises TypeError on arrays

        ri = restricted_from_loads([0.0, 1.4, 2.2], m=4, beta=2.0,
                                   f=scalar_f)
        F = restricted_cost_matrix(ri)
        for t in range(3):
            for j in range(5):
                if j >= math.ceil(ri.loads[t] - 1e-12):
                    assert F[t, j] == pytest.approx(
                        ri.operating_cost(t + 1, j))

    def test_cost_undefined_at_zero_never_probed_infeasibly(self):
        """f is only evaluated on feasible utilizations — a scalar-only
        cost undefined at 0 must not crash on infeasible cells."""
        from repro.offline import solve_restricted
        from repro.workloads import restricted_from_loads

        def picky_f(z):
            if not isinstance(z, float) or z <= 0:
                raise ValueError("defined on scalar z > 0 only")
            return 1.0 / z

        # floor 2 at t=0 makes state 1 infeasible; t=1 allows z > 0 only
        ri = restricted_from_loads([1.5, 0.5], m=3, beta=1.0, f=picky_f)
        F = restricted_cost_matrix(ri)
        assert F[0, 0] == np.inf and F[0, 1] == np.inf
        assert F[0, 2] == ri.operating_cost(1, 2)
        assert solve_restricted(ri).cost > 0

    def test_tiny_load_keeps_state_zero_feasible(self):
        """Loads below the feasibility tolerance behave like zero, as
        the scalar tabulation always did."""
        from repro.offline import solve_restricted
        from repro.workloads import restricted_from_loads
        ri = restricted_from_loads([5e-13, 0.0], m=3, beta=2.0)
        F = restricted_cost_matrix(ri)
        assert F[0, 0] == 0.0 and F[1, 0] == 0.0
        res = solve_restricted(ri)
        assert list(res.schedule) == [0, 0] and res.cost == 0.0

    def test_solver_consumes_stored_view(self, tmp_path):
        from repro.offline import solve_restricted
        ri = build_instance("restricted-diurnal", 16, 0,
                            pipeline="restricted")
        store = InstanceStore(tmp_path)
        coords = ("restricted-diurnal", "restricted", 16, 0)
        store.put(coords, ri)
        view = store.load(coords)
        res_view = solve_restricted(view)
        res_full = solve_restricted(ri)
        assert res_view.cost == res_full.cost
        np.testing.assert_array_equal(res_view.schedule, res_full.schedule)
