"""Memoryless move-toward-minimizer baseline.

Bansal et al. [7] give a 3-competitive *memoryless* algorithm for the
continuous setting and show no deterministic memoryless algorithm does
better.  The classic shape of that algorithm — the comparison baseline
used here — moves from the previous point toward the arriving function's
minimizer and stops where the incurred movement cost balances the hitting
cost at the stopping point:

``(beta/2) * |x_t - x_{t-1}| = f-bar_t(x_t)``   (or at the minimizer,
whichever is reached first),

with the symmetric Section 5 movement convention (``beta/2`` per unit in
each direction).  The balance point is computed exactly: ``f-bar_t`` is
piecewise linear, so the crossing cell is located by scanning integer
breakpoints and solved in closed form.

This is a *baseline* (its constant is not re-derived here); the
benchmarks use it to show LCP's laziness beating eager balancing on
natural traces, and the lower-bound games drive its ratio toward the
memoryless barrier.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import argmin_first, argmin_last
from .base import OnlineAlgorithm

__all__ = ["MemorylessBalance"]


class MemorylessBalance(OnlineAlgorithm):
    """Fractional memoryless balance algorithm (baseline)."""

    fractional = True
    name = "memoryless"

    def reset(self, m: int, beta: float) -> None:
        """Prepare for a fresh instance with states ``0..m``."""
        self.m = m
        self.beta = beta
        self._set_state(0.0)

    def _fbar(self, f_row: np.ndarray, x: float) -> float:
        """Piecewise-linear extension ``f-bar_t(x)`` on the integer grid.

        A scalar two-point interpolation shared by the per-step and the
        whole-trajectory paths — sharing one implementation is what
        makes the two paths bit-identical by construction.
        """
        i = int(x)
        if i >= self.m:
            return float(f_row[self.m])
        y0 = float(f_row[i])
        return y0 + (x - i) * (float(f_row[i + 1]) - y0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> float:
        f_row = np.asarray(f_row, dtype=np.float64)
        return self._step_core(f_row, argmin_first(f_row),
                               argmin_last(f_row))

    def run_table(self, F: np.ndarray):
        """Whole-trajectory balance walk.

        Hoists the per-row minimizer-plateau ends (two table-wide
        ``argmin`` passes) out of the loop; the balance-point scan
        itself stays per step but touches only the cells between the
        previous state and the plateau.
        """
        F = np.asarray(F, dtype=np.float64)
        T, last = F.shape[0], F.shape[1] - 1
        lo_all = F.argmin(axis=1).tolist()
        hi_all = (last - F[:, ::-1].argmin(axis=1)).tolist()
        # plain-list rows: ``_fbar``'s scalar indexing is python-level
        # either way, and list access skips the ndarray scalar boxing
        # (float(row[i]) yields the same double bit-for-bit)
        rows = F.tolist()
        out = np.empty(T, dtype=np.float64)
        core = self._step_core
        for t in range(T):
            out[t] = core(rows[t], lo_all[t], hi_all[t])
        return out

    def _step_core(self, f_row: np.ndarray, lo_min: int,
                   hi_min: int) -> float:
        """One balance step given the row's minimizer-plateau ends."""
        x = float(self.state)
        if lo_min <= x <= hi_min:
            # Already on the minimizer plateau: both movement and excess
            # hitting cost are zero-slope; stay.
            self._set_state(x)
            return x
        # Move toward the nearest end of the minimizer plateau.
        target = float(lo_min) if x < lo_min else float(hi_min)
        unit = 0.5 * self.beta
        direction = 1.0 if target > x else -1.0
        # Balance h(y) = unit * |y - x| - fbar(y); h is increasing along
        # the segment toward the minimizer (movement grows, hitting
        # shrinks), so the first sign change pins the balance point.
        cells = [x]
        step_int = math.floor(x) + 1 if direction > 0 else math.ceil(x) - 1
        y = float(step_int)
        while (direction > 0 and y < target) or (direction < 0 and y > target):
            cells.append(y)
            y += direction
        cells.append(target)
        h_prev = unit * 0.0 - self._fbar(f_row, x)
        y_prev = x
        chosen = target
        if h_prev >= 0.0:
            chosen = x
        else:
            for y in cells[1:]:
                h = unit * abs(y - x) - self._fbar(f_row, y)
                if h >= 0.0:
                    # Linear interpolation of the root inside the cell.
                    frac = -h_prev / (h - h_prev)
                    chosen = y_prev + frac * (y - y_prev)
                    break
                h_prev, y_prev = h, y
            else:
                chosen = target
        chosen = min(max(chosen, 0.0), float(self.m))
        self._set_state(chosen)
        return chosen
