"""Tests for the baseline algorithms (memoryless balance, greedy, static)."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.core.instance import Instance
from repro.online import (FollowTheMinimizer, MemorylessBalance, NeverSwitchOn,
                          run_online, solve_static)
from tests.conftest import hinge_instance, random_convex_instance


class TestMemorylessBalance:
    def test_stays_on_minimizer_plateau(self):
        inst = Instance(beta=2.0, F=np.array([[0.0, 0.0, 1.0]]))
        res = run_online(inst, MemorylessBalance())
        assert res.schedule[0] == pytest.approx(0.0)

    def test_balance_point_formula(self):
        """phi_1 with slope eps from x=0: balance at y with
        (beta/2) y = eps (1 - y) -> y = eps / (beta/2 + eps)."""
        eps, beta = 0.5, 2.0
        inst = Instance(beta=beta, F=np.array([[eps, 0.0]]))
        res = run_online(inst, MemorylessBalance())
        assert res.schedule[0] == pytest.approx(eps / (beta / 2 + eps))

    def test_steep_function_pulls_near_minimizer(self):
        """A very steep function pulls the algorithm almost all the way:
        balance at (beta/2) y = 50 (2 - y) -> y = 100/50.5."""
        inst = Instance(beta=1.0, F=np.array([[100.0, 50.0, 0.0]]))
        res = run_online(inst, MemorylessBalance())
        assert res.schedule[0] == pytest.approx(100.0 / 50.5)

    def test_reaches_minimizer_when_value_stays_high(self):
        """If even the minimizer's value exceeds the movement cost, the
        algorithm travels the whole segment."""
        inst = Instance(beta=1.0, F=np.array([[9.0, 7.0, 5.0]]))
        res = run_online(inst, MemorylessBalance())
        assert res.schedule[0] == pytest.approx(2.0)

    def test_moves_down_too(self):
        inst = Instance(beta=1.0,
                        F=np.array([[100.0, 50.0, 0.0], [0.0, 50.0, 100.0]]))
        res = run_online(inst, MemorylessBalance())
        assert res.schedule[1] < res.schedule[0]

    def test_bounded_on_random_instances(self):
        """Baseline sanity: stays within a loose constant of optimal."""
        rng = np.random.default_rng(140)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(2, 15)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.5, 3)))
            res = run_online(inst, MemorylessBalance())
            assert res.cost <= 6 * optimal_cost(inst) + 1e-6


class TestFollowTheMinimizer:
    def test_tracks_minimizers(self):
        inst = hinge_instance([0, 3, 1], m=4, beta=1.0)
        res = run_online(inst, FollowTheMinimizer())
        np.testing.assert_array_equal(res.schedule, [0, 3, 1])

    def test_pays_heavy_switching_on_oscillation(self):
        inst = hinge_instance([0, 4] * 10, m=4, beta=5.0)
        res = run_online(inst, FollowTheMinimizer())
        assert res.cost > 3 * optimal_cost(inst)


class TestStatic:
    def test_never_switch_on_uses_max(self):
        rng = np.random.default_rng(141)
        inst = random_convex_instance(rng, 5, 3, 1.0)
        res = run_online(inst, NeverSwitchOn())
        np.testing.assert_array_equal(res.schedule, [3] * 5)

    def test_solve_static_minimizes_constant_schedules(self):
        from repro.core.schedule import cost
        rng = np.random.default_rng(142)
        inst = random_convex_instance(rng, 7, 5, 2.0)
        res = solve_static(inst)
        for j in range(inst.m + 1):
            assert res.cost <= cost(inst, np.full(7, j)) + 1e-9
        assert cost(inst, res.schedule) == pytest.approx(res.cost)

    def test_static_beats_nothing_on_flat_demand(self):
        """With constant demand, static provisioning IS optimal."""
        from repro.offline import solve_dp
        inst = hinge_instance([2] * 8, m=4, beta=1.0)
        assert solve_static(inst).cost == pytest.approx(solve_dp(inst).cost)
