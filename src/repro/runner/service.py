"""Robust HTTP grid service: cache-probing submits on the lease queue.

The serving half of the multi-host story: a long-running ``repro
serve`` daemon (stdlib :class:`~http.server.ThreadingHTTPServer`, no
third-party dependencies) that answers cache-hit work instantly and
enqueues only the *miss* set onto the :mod:`~repro.runner.leasequeue`
for the worker fleet to drain.  One request lifecycle::

    POST /grids  {GridSpec.to_dict()}
      -> probe every job against the content-addressed JobCache
      -> write the hit rows as result envelopes (a synthetic
         "service" worker file the ordinary merge consumes)
      -> enqueue leases covering only the misses
      -> 202 {"grid": <digest>, "cache_hits": h, "enqueued": m}
    GET /grids/<id>
      -> the shared leasequeue.grid_status() payload: lease + job
         counts, staleness, state (pending | done | degraded), and
         the merged rows once every lease drained
    GET /healthz        liveness only (the process answers)
    GET /readyz         queue database and job cache reachable
    POST /shutdown      drain: stop admitting, finish in-flight
                        leases, then exit the serve loop (exit 0)

Robustness model:

* **Idempotency** — a grid's id *is* its content digest
  (``GridSpec.cache_key()``), and the queue's enqueue transaction is a
  no-op for known ids, so a retried submit (client timeout, duplicate
  POST) can never double-enqueue.
* **Admission control** — submits that would push the queue's
  outstanding-job total over ``budget`` get ``429`` with a
  ``Retry-After`` header instead of growing the queue unboundedly.
* **Error envelopes** — every failure is structured JSON
  ``{"error": {"code", "message"}}``; client mistakes (bad JSON,
  unknown grid, malformed spec) are 4xx, never 500.
* **Graceful degradation** — a dead worker fleet surfaces as
  ``state: "degraded"`` in the status payload (with the quarantined /
  unleased remainder) rather than a request that hangs.
* **Concurrency** — handler threads never share a SQLite connection:
  each request opens its own :class:`LeaseQueue` / :class:`JobCache`
  view, and the shared ``with_busy_retry`` wrapper absorbs the
  resulting SQLITE_BUSY contention deterministically.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .engine import GridSpec, job_key
from .jobcache import JobCache
from .leasequeue import DEFAULT_LEASE_JOBS, LeaseQueue, grid_status

__all__ = [
    "DEFAULT_BUDGET",
    "GridService",
    "SERVICE_WORKER",
    "ServiceError",
]

#: default admission-control budget: max outstanding (not-yet-done)
#: jobs the queue may hold across every grid
DEFAULT_BUDGET = 10_000

#: synthetic worker id under which the service writes cache-hit rows
#: (an ordinary envelope file, so the merge needs no special case)
SERVICE_WORKER = "service"

#: largest request body the service will read (a grid spec is tiny;
#: anything bigger is a client error, not a memory bill)
MAX_BODY_BYTES = 1 << 20

#: how long a drain (POST /shutdown) waits for in-flight leases
DEFAULT_DRAIN_TIMEOUT = 60.0


class ServiceError(Exception):
    """A structured request failure: HTTP ``status``, a stable machine
    ``code``, a human ``message`` and optional extra response headers
    (``Retry-After`` on 429s).  Handlers raise it for every client
    error so the HTTP layer can render one uniform envelope."""

    def __init__(self, status: int, code: str, message: str,
                 headers: dict | None = None):
        """Build the error; ``headers`` are added to the response."""
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.headers = dict(headers or {})

    def envelope(self) -> dict:
        """The JSON body every error response carries."""
        return {"error": {"code": self.code, "message": self.message}}


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`GridService`."""

    daemon_threads = True

    def __init__(self, address, handler, service: "GridService"):
        """Bind ``address`` and remember the owning service."""
        self.service = service
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: parse the request, delegate to
    :meth:`GridService.handle`, render the JSON (or error envelope)."""

    def setup(self) -> None:
        """Apply the service's per-request socket timeout: a stalled
        or byte-dribbling client times out instead of pinning a
        handler thread forever."""
        self.timeout = self.server.service.request_timeout
        super().setup()

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence the default stderr access log (the CLI reports the
        bound address once; chatty per-request logs are opt-in)."""
        if self.server.service.verbose:
            super().log_message(format, *args)

    def _read_body(self):
        """The request body parsed as JSON, or ``None`` when absent."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "body_too_large",
                               f"request body exceeds {MAX_BODY_BYTES}"
                               " bytes")
        if length <= 0:
            return None
        try:
            return json.loads(self.rfile.read(length))
        except ValueError:
            raise ServiceError(400, "bad_json",
                               "request body is not valid JSON"
                               ) from None

    def _dispatch(self, method: str) -> None:
        """Route one request and always answer with a JSON body."""
        service = self.server.service
        try:
            status, payload, headers = service.handle(
                method, self.path, self._read_body())
        except ServiceError as exc:
            status, payload, headers = (exc.status, exc.envelope(),
                                        exc.headers)
        except Exception as exc:  # server-side bug: honest 500
            status, payload, headers = 500, {
                "error": {"code": "internal",
                          "message": f"{type(exc).__name__}: {exc}"}
            }, {}
        body = json.dumps(payload, sort_keys=True).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                self.send_header(name, str(value))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            pass  # client went away mid-response; nothing to salvage

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        """Handle a GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        """Handle a POST request."""
        self._dispatch("POST")


class GridService:
    """The grid-serving daemon: routes, admission control and drain.

    ``root`` is the lease-queue directory the worker fleet shares;
    ``cache_dir`` the job cache probed on submit (``None`` disables
    probing — every job is enqueued).  ``budget`` bounds the queue's
    outstanding jobs (admission control), ``port=0`` binds an
    ephemeral port (read it back from :attr:`port`), and ``clock`` /
    ``_sleep`` are injectable for deterministic tests.

    The HTTP socket is bound at construction; run the accept loop with
    :meth:`serve_forever` (foreground, the CLI) or :meth:`start` /
    :meth:`stop` (background thread, tests).
    """

    def __init__(self, root, *, cache_dir=None, cache_backend=None,
                 host: str = "127.0.0.1", port: int = 0,
                 budget: int = DEFAULT_BUDGET,
                 lease_jobs: int = DEFAULT_LEASE_JOBS,
                 request_timeout: float = 30.0,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 verbose: bool = False, clock=time.time):
        """Bind the service socket and remember the wiring."""
        self.root = pathlib.Path(root)
        self.cache_dir = cache_dir
        self.cache_backend = cache_backend
        self.budget = int(budget)
        self.lease_jobs = int(lease_jobs)
        self.request_timeout = float(request_timeout)
        self.drain_timeout = float(drain_timeout)
        self.verbose = verbose
        self._clock = clock
        self._sleep = time.sleep
        self._draining = False
        self._thread: threading.Thread | None = None
        # create the queue schema up front so /readyz is meaningful
        self._open_queue().close()
        self._server = _Server((host, port), _Handler, self)
        self.host, self.port = self._server.server_address[:2]

    # -- plumbing ------------------------------------------------------

    @property
    def url(self) -> str:
        """The service's base URL (ephemeral port already resolved)."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """Whether a drain shutdown is in progress (submits refused)."""
        return self._draining

    def _open_queue(self) -> LeaseQueue:
        """A fresh per-request queue view (SQLite connections must not
        cross handler threads); callers close it."""
        return LeaseQueue(self.root, clock=self._clock)

    def _open_cache(self) -> JobCache | None:
        """A fresh per-request cache view, or ``None`` (no probing)."""
        if self.cache_dir is None:
            return None
        return JobCache(self.cache_dir, backend=self.cache_backend)

    # -- routing -------------------------------------------------------

    def handle(self, method: str, path: str, body=None):
        """Route one request; returns ``(status, payload, headers)``.

        Pure routing over plain values — the unit-testable seam the
        HTTP handler (and nothing else) wraps.  Raises
        :class:`ServiceError` for every client-attributable failure.
        """
        if method == "POST" and path == "/grids":
            return self._submit(body)
        if method == "GET" and path.startswith("/grids/"):
            return self._status(path[len("/grids/"):])
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "draining": self._draining}, {}
        if method == "GET" and path == "/readyz":
            return self._readyz()
        if method == "POST" and path == "/shutdown":
            return self._shutdown()
        raise ServiceError(404, "not_found",
                           f"no route for {method} {path}")

    # -- endpoints -----------------------------------------------------

    def _parse_spec(self, body) -> GridSpec:
        """The submitted :class:`GridSpec`, or a 400 envelope."""
        if not isinstance(body, dict):
            raise ServiceError(400, "bad_request",
                               "POST /grids expects a GridSpec JSON "
                               "object")
        try:
            return GridSpec.from_dict(body)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(400, "bad_spec",
                               f"not a valid grid spec: {exc}"
                               ) from None

    def _probe_cache(self, spec: GridSpec) -> dict[int, dict]:
        """``{seq: row}`` for every job already in the job cache."""
        cache = self._open_cache()
        if cache is None:
            return {}
        hits: dict[int, dict] = {}
        for seq, job in enumerate(spec.iter_jobs()):
            row = cache.get("jobs", job_key(job))
            if row is not None:
                hits[seq] = row
        return hits

    def _write_hits(self, queue: LeaseQueue, grid_id: str,
                    hits: dict[int, dict]) -> None:
        """Append cache-hit rows as ordinary result envelopes to the
        synthetic service worker file (fsynced, so the enqueue that
        follows never races durable coverage)."""
        if not hits:
            return
        path = queue.worker_path(SERVICE_WORKER)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for seq in sorted(hits):
                fh.write(json.dumps(
                    {"seq": seq, "grid": grid_id, "row": hits[seq]},
                    sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _submit(self, body):
        """``POST /grids``: idempotent cache-probing submit."""
        if self._draining:
            raise ServiceError(503, "draining",
                               "service is draining; submit to "
                               "another replica")
        spec = self._parse_spec(body)
        grid_id = spec.cache_key()
        queue = self._open_queue()
        try:
            if grid_id in queue.grids():
                # the digest is the id: a resubmit (client retry,
                # duplicate POST) never re-probes or re-enqueues
                counts = queue.counts(grid_id)
                return 200, {"grid": grid_id, "total": len(spec),
                             "resubmitted": True, "cache_hits": 0,
                             "enqueued": 0, "leases": counts}, {}
            hits = self._probe_cache(spec)
            misses = [seq for seq in range(len(spec))
                      if seq not in hits]
            outstanding = queue.outstanding_jobs()
            if outstanding + len(misses) > self.budget:
                raise ServiceError(
                    429, "over_budget",
                    f"queue holds {outstanding} outstanding jobs; "
                    f"admitting {len(misses)} more would exceed the "
                    f"budget of {self.budget}",
                    headers={"Retry-After": "1"})
            self._write_hits(queue, grid_id, hits)
            queue.enqueue(spec, lease_jobs=self.lease_jobs,
                          jobs=misses)
            counts = queue.counts(grid_id)
            return 202, {"grid": grid_id, "total": len(spec),
                         "resubmitted": False,
                         "cache_hits": len(hits),
                         "enqueued": len(misses),
                         "leases": counts}, {}
        finally:
            queue.close()

    def _status(self, grid_id: str):
        """``GET /grids/<id>``: the shared status payload."""
        if not grid_id or "/" in grid_id:
            raise ServiceError(400, "bad_request",
                               f"malformed grid id {grid_id!r}")
        queue = self._open_queue()
        try:
            try:
                payload = grid_status(queue, grid_id)
            except KeyError:
                raise ServiceError(404, "unknown_grid",
                                   f"grid {grid_id} was never "
                                   "submitted here") from None
            return 200, payload, {}
        finally:
            queue.close()

    def _readyz(self):
        """``GET /readyz``: can this replica actually take work?"""
        problems = []
        try:
            queue = self._open_queue()
            try:
                queue.counts()
            finally:
                queue.close()
        except Exception as exc:
            problems.append(f"queue: {type(exc).__name__}: {exc}")
        try:
            cache = self._open_cache()
            if cache is not None:
                cache.stats()
        except Exception as exc:
            problems.append(f"cache: {type(exc).__name__}: {exc}")
        if self._draining:
            problems.append("draining")
        if problems:
            return 503, {"ready": False, "problems": problems}, {}
        return 200, {"ready": True}, {}

    def _shutdown(self):
        """``POST /shutdown``: drain — refuse new submits, wait out
        in-flight leases, then stop the accept loop."""
        already = self._draining
        self._draining = True
        if not already:
            threading.Thread(target=self._drain_and_stop,
                             daemon=True).start()
        return 200, {"draining": True}, {}

    def _drain_and_stop(self) -> None:
        """Background drain: poll until no lease is in flight (bounded
        by ``drain_timeout``), then shut the server down."""
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            try:
                queue = self._open_queue()
                try:
                    leased = queue.counts()["leased"]
                finally:
                    queue.close()
            except Exception:
                break  # queue unreachable: nothing left to wait on
            if leased == 0:
                break
            self._sleep(0.05)
        self._server.shutdown()

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Run the accept loop in this thread until a drain shutdown
        (or :meth:`stop`) ends it; the socket is closed on the way
        out, so a clean drain means a clean exit."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    def start(self) -> "GridService":
        """Run :meth:`serve_forever` on a daemon thread (tests)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the accept loop and join the background thread."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def join(self, timeout: float | None = None) -> None:
        """Wait for a backgrounded serve loop to finish (drain)."""
        if self._thread is not None:
            self._thread.join(timeout)
