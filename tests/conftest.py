"""Shared fixtures and instance generators for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance
from repro.core.costs import QuadraticCost, AbsCost
from repro.workloads import diurnal_loads, instance_from_loads
from repro.workloads import random_convex_instance  # noqa: F401 (re-export)


def hinge_instance(centers, m: int, beta: float, slope: float = 1.0) -> Instance:
    """Instance of hinge rows |x - c| — the Section 5 building block."""
    fs = [AbsCost(float(c), slope) for c in centers]
    return Instance.from_functions(fs, m, beta)


def bowl_instance(centers, m: int, beta: float, a: float = 1.0) -> Instance:
    """Instance of quadratic bowls centered on a trajectory."""
    fs = [QuadraticCost(a, float(c)) for c in centers]
    return Instance.from_functions(fs, m, beta)


def trace_instance(seed: int = 0, T: int = 96, peak: float = 12.0,
                   beta: float = 4.0) -> Instance:
    """Small diurnal-trace instance used by integration tests."""
    rng = np.random.default_rng(seed)
    loads = diurnal_loads(T, peak=peak, rng=rng)
    m = int(np.ceil(peak * 1.3))
    return instance_from_loads(loads, m=m, beta=beta)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[0, 1, 2, 3])
def small_random_instance(request) -> Instance:
    """Four seeded small instances (brute-force verifiable)."""
    g = np.random.default_rng(100 + request.param)
    T = int(g.integers(2, 6))
    m = int(g.integers(1, 5))
    beta = float(g.uniform(0.3, 3.0))
    return random_convex_instance(g, T, m, beta)
