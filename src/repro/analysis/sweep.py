"""Parameter-sweep harness used by the benchmarks.

A sweep is the cartesian product of parameter axes; each grid point is
evaluated by a user function returning a dict of measurements, and the
results are collected as a list of flat row dicts ready for
:mod:`repro.analysis.tables`.

Evaluation rides the batch engine's shared pipelined executor
(:func:`repro.runner.executor.run_pipeline` — the same
double-buffer / in-order-drain loop ``run_grid`` runs on): passing
``n_jobs > 1`` fans grid points out over the engine's *persistent*
process pool (the function must then be picklable, i.e. module-level)
in fused chunks — several points per worker round-trip — and up to
``pipeline_depth`` batches stay in flight, so the pool keeps working
while the parent flushes finished batches' rows to the sink.  The
pool is shared with ``run_grid`` and ``repro lowerbound`` and survives
across sweeps, so many small sweeps don't pay a pool fork each.
Passing ``cache_dir``
(a directory, or a ready-made
:class:`~repro.runner.jobcache.JobCache` — e.g. one opened on the
SQLite backend) stores each point's measurements in the engine's
per-job content-addressed cache, keyed by the function's qualified name
and the point — extending a sweep's axes re-evaluates only the new
points.  Cached measurements must be JSON-serializable (numpy scalars
are converted); don't cache wall-clock timings you mean to re-measure.
For named (scenario x algorithm) grids with ratio aggregation, prefer
:func:`repro.runner.run_grid`.
"""

from __future__ import annotations

import itertools
from concurrent.futures import Future
from typing import Callable, Mapping, Sequence

from ..runner.executor import (EngineConfig, PipelineBatch, RunStats,
                               chunk_list, resolve_config, run_pipeline,
                               submit_task)
from ..runner.engine import _batches
from ..runner.jobcache import JobCache, content_key, jsonify

__all__ = ["sweep"]

#: bump when the sweep cache record shape changes
_SWEEP_CACHE_VERSION = 1

#: keyword arguments the pre-``EngineConfig`` ``sweep`` accepted
_SWEEP_KWARGS = frozenset({"n_jobs", "cache_dir", "sink", "batch_size",
                           "pipeline_depth", "chunk_points"})


class _EvalChunk:
    """Picklable fused evaluator: one worker round-trip runs a whole
    chunk of grid points through ``fn(**point)``."""

    def __init__(self, fn: Callable[..., Mapping]):
        self.fn = fn

    def __call__(self, points: list[dict]) -> list[dict]:
        return [dict(self.fn(**point)) for point in points]


def _point_key(fn: Callable, point: dict) -> str:
    qualname = getattr(fn, "__qualname__", None)
    fn_id = f"{getattr(fn, '__module__', '?')}.{qualname}"
    if qualname is None or "<lambda>" in fn_id or "<locals>" in fn_id:
        # lambdas/closures share qualnames and partials have none at
        # all, so two different functions would silently share records
        raise ValueError(
            "cache_dir requires a module-level function (lambdas, "
            "closures and partials have ambiguous cache identities): "
            f"{fn_id if qualname is not None else fn!r}")
    return content_key({"kind": "sweep", "version": _SWEEP_CACHE_VERSION,
                        "fn": fn_id, "point": point})


class _SweepBatch(PipelineBatch):
    """One admitted batch of sweep points on the shared executor.

    ``advance`` harvests finished chunk futures — canonicalizing each
    measurement through the JSON form when caching, so hit and miss
    rows are indistinguishable, and writing the per-point cache the
    moment a chunk lands (a killed sweep must not recompute points it
    already paid for).  ``flush`` merges points with measurements and
    writes the sink in grid-product order; ``salvage`` persists
    completed-but-unharvested chunks on abort.
    """

    __slots__ = ("cache", "sink", "batch", "size", "results", "futures")

    def __init__(self, cache, sink, batch: list,
                 futures: list[tuple[list, Future]]):
        self.cache = cache
        self.sink = sink
        self.batch = batch
        self.size = len(batch)
        self.results: list = [None] * len(batch)
        self.futures = futures

    def _harvest(self, chunk, future) -> None:
        for (i, _point, key), result in zip(chunk, future.result()):
            self.results[i] = (jsonify(result) if self.cache is not None
                               else result)
            if self.cache is not None:
                self.cache.put("sweep", key, result)

    def advance(self) -> bool:
        progressed = False
        remaining = []
        for chunk, future in self.futures:
            if not future.done():
                remaining.append((chunk, future))
                continue
            self._harvest(chunk, future)
            progressed = True
        self.futures = remaining
        return progressed

    def done(self) -> bool:
        return not self.futures

    def unfinished_futures(self) -> list[Future]:
        return [f for _c, f in self.futures if not f.done()]

    def flush(self) -> int:
        for point, result in zip(self.batch, self.results):
            clash = set(point) & set(result)
            if clash:
                raise ValueError(
                    f"measurement keys collide with grid: {clash}")
            self.sink.write({**point, **result})
        return len(self.batch)

    def flushable(self) -> bool:
        return all(r is not None for r in self.results)

    def salvage(self) -> None:
        remaining = []
        for chunk, future in self.futures:
            if not (future.done() and not future.cancelled()):
                remaining.append((chunk, future))
                continue
            try:
                self._harvest(chunk, future)
            except Exception:
                remaining.append((chunk, future))
        self.futures = remaining


def sweep(fn: Callable[..., Mapping], grid: Mapping[str, Sequence],
          config: EngineConfig | None = None, *, stats=None, **legacy):
    """Evaluate ``fn(**point)`` on every point of the parameter grid.

    ``grid`` maps parameter names to value lists; the returned rows merge
    the grid point with ``fn``'s measurement dict (measurements win on
    key collisions being forbidden).  Execution is configured by an
    :class:`~repro.runner.executor.EngineConfig` (the legacy keyword
    arguments — ``n_jobs``, ``cache_dir``, ``sink``, ``batch_size``,
    ``pipeline_depth``, ``chunk_points`` — still work through a
    deprecation shim; ``chunk_points`` is the config's ``chunk_jobs``).
    ``n_jobs > 1`` evaluates points on the persistent process pool; row
    order is always the grid-product order.  With ``cache_dir``,
    previously evaluated points are read back from the per-point cache.
    ``stats`` may be a :class:`~repro.runner.executor.RunStats` (typed
    counters, accumulated in place) or a plain dict, which receives the
    historical ``hits`` and ``misses`` keys.

    Like :func:`repro.runner.run_grid`, a sweep streams *and
    pipelines* — on the same shared scheduling loop
    (:func:`repro.runner.executor.run_pipeline`): points run in bounded
    batches of ``batch_size`` (``None`` = one batch) dispatched as
    fused chunks of ``chunk_points`` (``None`` auto-sizes), up to
    ``pipeline_depth`` batches stay in flight on the pool, and rows
    flow into a :mod:`repro.runner.sinks` ``sink`` — always in
    grid-product order — as each batch finishes.  The default
    ``sink=None`` collects and returns the historical ``list[dict]``;
    a file-backed sink keeps parent memory at O(depth x batch) and
    ``sweep`` returns ``sink.result()``.
    """
    from ..runner.sinks import ListSink
    config = resolve_config(config, legacy, what="sweep",
                            allowed=_SWEEP_KWARGS)
    if config.pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    names = list(grid.keys())
    points = (dict(zip(names, values))
              for values in itertools.product(*(grid[n] for n in names)))
    cache = (config.cache_dir if isinstance(config.cache_dir, JobCache)
             else JobCache(config.cache_dir)
             if config.cache_dir is not None else None)
    sink = ListSink() if config.sink is None else config.sink
    run_stats = stats if isinstance(stats, RunStats) else RunStats()

    def plan(batch: list) -> _SweepBatch:
        pending: list[tuple[int, dict, str]] = []
        results_known: list[tuple[int, dict]] = []
        for i, point in enumerate(batch):
            key = _point_key(fn, point) if cache is not None else ""
            cached = (cache.get("sweep", key)
                      if cache is not None else None)
            if cached is not None:
                results_known.append((i, cached))
                run_stats.hits += 1
            else:
                pending.append((i, point, key))
        run_stats.misses += len(pending)
        futures = [
            (chunk, submit_task(_EvalChunk(fn),
                                [p for _, p, _ in chunk], config.n_jobs))
            for chunk in chunk_list(pending, config.n_jobs,
                                    config.chunk_jobs)]
        st = _SweepBatch(cache, sink, batch, futures)
        for i, cached in results_known:
            st.results[i] = cached
        return st

    sink.open()
    try:
        run_pipeline(_batches(points, config.batch_size), plan,
                     pipeline_depth=config.pipeline_depth,
                     stats=run_stats)
    finally:
        sink.close()
    if isinstance(stats, dict):
        stats.update({"hits": run_stats.hits,
                      "misses": run_stats.misses})
    return sink.result()
