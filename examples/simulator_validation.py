#!/usr/bin/env python
"""Validate the abstract cost model against a job-level simulator.

The paper optimizes an abstract objective (convex operating cost plus
switching cost).  Does minimizing it actually help a data center?  This
example:

1. generates a diurnal job workload (Poisson arrivals, lognormal sizes);
2. tabulates the simulator's one-step costs into a problem instance
   (the "bridge");
3. solves it with the paper's offline algorithm and with LCP;
4. replays every schedule through the *real* simulator and compares
   measured energy and latency.

Run:  python examples/simulator_validation.py
"""

import numpy as np

from repro import LCP, run_online
from repro.analysis import format_table
from repro.offline import solve_binary_search
from repro.online import solve_static
from repro.simulator import (ServerPowerModel, bridge_instance,
                             poisson_job_trace, replay_schedule)
from repro.workloads import diurnal_loads


def main() -> None:
    rng = np.random.default_rng(11)
    T, peak, m = 96, 12.0, 18
    rate = diurnal_loads(T, peak=peak, rng=rng)
    trace = poisson_job_trace(rate, service_cv=1.5, rng=rng)
    power = ServerPowerModel(busy_power=1.0, idle_power=0.7,
                             sleep_power=0.02, transition_energy=3.0)

    inst = bridge_instance(trace, m, beta=6.0, power=power,
                           latency_weight=0.5)
    schedules = {
        "offline optimal": solve_binary_search(inst).schedule,
        "LCP": run_online(inst, LCP()).schedule.astype(int),
        "static (best fixed)": solve_static(inst).schedule,
        "always max": np.full(T, m),
    }

    rows = []
    for name, sched in schedules.items():
        log = replay_schedule(sched, trace, m, power=power)
        rows.append({
            "schedule": name,
            "sim_energy": log.total_energy,
            "sim_latency": log.total_latency,
            "sim_total": log.total_cost(latency_weight=0.5),
            "mean_util": log.mean_utilization,
            "backlog_end": log.final_backlog,
        })
    print(format_table(rows, title="simulated outcomes (energy units / "
                                   "work-step latency)"))

    base = rows[2]["sim_total"]
    best = rows[0]["sim_total"]
    print(f"\nright-sizing saves {100 * (1 - best / base):.1f}% of the "
          "simulated cost relative to static provisioning —")
    print("the abstract objective the paper optimizes is a faithful proxy "
          "for the simulated system.")


if __name__ == "__main__":
    main()
