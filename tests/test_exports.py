"""The public import surface: every advertised name must resolve."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.offline",
    "repro.online",
    "repro.lower_bounds",
    "repro.workloads",
    "repro.simulator",
    "repro.extensions",
    "repro.analysis",
    "repro.runner",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    mod = importlib.import_module(module_name)
    assert hasattr(mod, "__all__"), module_name
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module_name}.{name} advertised " \
                                   "in __all__ but missing"


def test_top_level_reexports_cover_core_workflow():
    import repro
    for name in ("Instance", "RestrictedInstance", "solve_binary_search",
                 "solve_dp", "LCP", "ThresholdFractional",
                 "RandomizedRounding", "run_online", "cost"):
        assert name in repro.__all__


def test_runner_exports_cover_executor_and_leasequeue():
    import repro.runner as runner
    for name in ("run_grid", "GridSpec", "EngineConfig", "RunStats",
                 "PipelineBatch", "run_pipeline", "parallel_map",
                 "shutdown_pool", "Lease", "LeaseLost", "LeaseQueue",
                 "merge_results", "work", "JsonlSink", "ListSink",
                 "ResultSink", "SqliteSink", "make_sink",
                 "RetryPolicy", "FaultPlan", "FaultSpec",
                 "InjectedFault", "MergeError", "failed_jobs",
                 "retry_failed"):
        assert name in runner.__all__, name


def test_runner_exports_cover_serving_layer():
    import repro.runner as runner
    for name in ("GridService", "ServiceClient", "ServiceError",
                 "RequestError", "ServiceUnavailable", "grid_status",
                 "busy_stats", "with_busy_retry"):
        assert name in runner.__all__, name


def test_version_string():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_cli_module_importable_without_side_effects():
    import repro.cli
    parser = repro.cli.build_parser()
    assert parser.prog == "repro"
