"""Tests for the pipelined engine core: double-buffered batches, fused
chunk dispatch, shared work-function replay, and the drain/validation
satellites."""

import pytest

from repro.online import run_online, run_online_many
from repro.runner import (GridSpec, JobCache, ListSink, aggregate_rows,
                          run_grid, shutdown_pool)
from repro.runner import engine as engine_mod
from repro.runner.registry import _REGISTRY, get_spec
from repro.runner.scenarios import build_instance

GRID = GridSpec(scenarios=("diurnal", "sawtooth"),
                algorithms=("lcp", "eager-lcp", "threshold", "memoryless"),
                seeds=(0, 1), sizes=(24,))

RESTRICTED = GridSpec(scenarios=("restricted-diurnal",),
                      algorithms=("restricted", "lcp", "eager-lcp"),
                      seeds=(0, 1), sizes=(16,))

HETERO = GridSpec(scenarios=("hetero-fleet",),
                  algorithms=("dp_hetero", "greedy_hetero"),
                  seeds=(0, 1), sizes=(16,))

GAME = GridSpec(scenarios=("lb-deterministic",),
                algorithms=("game-lcp", "game-followmin"),
                seeds=(0,), sizes=(1200,),
                params=({"eps": 0.2}, {"eps": 0.1}))


class TestPipelinedBitIdentity:
    """The acceptance property: the pipelined engine is bit-identical
    to the barrier engine on every pipeline, for every combination of
    n_jobs, pipeline_depth and chunk_jobs."""

    @pytest.mark.parametrize("spec", [GRID, RESTRICTED, HETERO, GAME],
                             ids=["general", "restricted", "hetero",
                                  "game"])
    def test_pipelined_matches_barrier(self, spec):
        barrier = run_grid(spec, batch_size=3, pipeline_depth=1,
                           chunk_jobs=1)
        assert run_grid(spec, batch_size=3, pipeline_depth=2) == barrier
        assert run_grid(spec, batch_size=3, pipeline_depth=3,
                        chunk_jobs=2) == barrier
        assert run_grid(spec) == barrier

    @pytest.mark.parametrize("spec", [GRID, GAME],
                             ids=["general", "game"])
    def test_parallel_pipelined_matches_serial(self, spec):
        serial = run_grid(spec, batch_size=3, pipeline_depth=1)
        assert run_grid(spec, n_jobs=2, batch_size=3,
                        pipeline_depth=2) == serial
        shutdown_pool()

    def test_chunked_dispatch_preserves_row_order(self):
        reference = run_grid(GRID)
        jobs = GRID.jobs()
        for chunk_jobs in (1, 2, 3, 5, 100):
            rows = run_grid(GRID, batch_size=5, chunk_jobs=chunk_jobs)
            assert rows == reference
            assert [(r["scenario"], r["algorithm"], r["seed"])
                    for r in rows] == [(j[0], j[1], j[4]) for j in jobs]

    def test_store_and_cache_under_pipelining(self, tmp_path):
        from repro.runner.instancestore import clear_memo
        reference = run_grid(GRID)
        stats: dict = {}
        rows = run_grid(GRID, n_jobs=2, batch_size=3,
                        cache_dir=tmp_path / "cache",
                        store_dir=tmp_path / "store", stats=stats)
        assert rows == reference
        assert stats["opt_solved"] == 4  # still exactly once per instance
        clear_memo()
        stats2: dict = {}
        rows2 = run_grid(GRID, n_jobs=2, batch_size=3,
                         cache_dir=tmp_path / "cache",
                         store_dir=tmp_path / "store", stats=stats2)
        assert rows2 == reference
        assert stats2["job_hits"] == len(GRID)
        assert stats2["inst_builds"] == 0
        shutdown_pool()


class TestOverlap:
    def test_overlap_counters_prove_pipelining(self):
        stats: dict = {}
        run_grid(GRID, n_jobs=2, batch_size=4, stats=stats)
        assert stats["overlapped_batches"] > 0
        assert stats["inflight_max"] >= 2
        shutdown_pool()

    def test_serial_path_never_overlaps(self):
        stats: dict = {}
        run_grid(GRID, batch_size=4, stats=stats)
        assert stats["overlapped_batches"] == 0
        assert stats["inflight_max"] == 1
        assert stats["max_pending"] == 4  # O(batch) preserved in-process

    def test_depth_one_is_a_barrier(self):
        stats: dict = {}
        run_grid(GRID, n_jobs=2, batch_size=4, pipeline_depth=1,
                 stats=stats)
        assert stats["overlapped_batches"] == 0
        assert stats["inflight_max"] == 1
        shutdown_pool()

    def test_pending_rows_bounded_by_depth_times_batch(self):
        stats: dict = {}
        run_grid(GRID, n_jobs=2, batch_size=4, pipeline_depth=2,
                 stats=stats)
        assert stats["max_pending"] <= 2 * 4
        shutdown_pool()

    def test_invalid_pipeline_depth_rejected(self):
        with pytest.raises(ValueError, match="pipeline_depth"):
            run_grid(GRID, pipeline_depth=0)


class _KillSink(ListSink):
    def __init__(self, n: int):
        super().__init__()
        self.n = n

    def write(self, row):
        if len(self.rows) >= self.n:
            raise KeyboardInterrupt("killed mid-pipeline")
        super().write(row)


class TestMidPipelineKill:
    def test_kill_resumes_paying_only_missing_jobs(self, tmp_path):
        """A pipelined grid killed mid-flush resumes from the per-job
        cache; rows cached by in-flight chunks before the kill count."""
        cache = JobCache(tmp_path)
        killed = _KillSink(5)
        with pytest.raises(KeyboardInterrupt):
            run_grid(GRID, cache_dir=cache, n_jobs=2, batch_size=3,
                     pipeline_depth=2, sink=killed)
        survivors = len(killed.rows)
        assert 0 < survivors < len(GRID)
        stats: dict = {}
        rows = run_grid(GRID, cache_dir=cache, n_jobs=2, batch_size=3,
                        pipeline_depth=2, stats=stats)
        assert len(rows) == len(GRID)
        assert stats["job_hits"] >= survivors
        assert stats["job_hits"] + stats["job_misses"] == len(GRID)
        assert rows == run_grid(GRID)
        shutdown_pool()


def _lcp_family(kind=None):
    return [name for name, spec in _REGISTRY.items()
            if spec.shares_workfunction
            and (kind is None or spec.kind == kind)]


class TestSharedReplay:
    def test_lcp_family_is_registered_for_sharing(self):
        family = _lcp_family()
        assert "lcp" in family and "eager-lcp" in family
        assert "backward_lcp" in family  # offline sweep sharer
        for name in family:
            spec = get_spec(name)
            assert spec.pipeline == "general"
            if spec.kind == "online":
                assert spec.make().consumes_bounds
            else:
                # offline sharers take the precomputed sweep directly
                assert spec.kind == "offline"

    def test_shared_replay_matches_per_algorithm_replay(self):
        """Satellite acceptance: one shared work-function sweep
        reproduces every LCP-family entry's solo replay bit for bit."""
        inst = build_instance("sawtooth", 64, 0)
        family = _lcp_family("online")
        algorithms = [get_spec(name).make() for name in family]
        shared = run_online_many(inst, algorithms)
        for name, res in zip(family, shared):
            solo = run_online(inst, get_spec(name).make())
            assert res.cost == solo.cost
            assert (res.schedule == solo.schedule).all()

    def test_shared_replay_with_lookahead_and_nonconsumers(self):
        """Bounds-consumers with a prediction window and per-job-state
        algorithms (threshold/memoryless) ride the same pass."""
        from repro.online import (LCP, EagerLCP, MemorylessBalance,
                                  ThresholdFractional)
        inst = build_instance("diurnal", 48, 1)
        make = lambda: [LCP(lookahead=3), EagerLCP(),  # noqa: E731
                        ThresholdFractional(), MemorylessBalance()]
        shared = run_online_many(inst, make())
        for algorithm, res in zip(make(), shared):
            solo = run_online(inst, algorithm)
            assert res.cost == solo.cost
            assert (res.schedule == solo.schedule).all()

    def test_nonconsumer_rejects_step_bounds(self):
        from repro.online import ThresholdFractional
        algorithm = ThresholdFractional()
        assert not algorithm.consumes_bounds
        with pytest.raises(NotImplementedError):
            algorithm.step_bounds(0, 1)

    def test_engine_groups_sharers_within_chunks(self, monkeypatch):
        """Fused chunks replay co-scheduled LCP-family jobs through one
        shared sweep — and produce the same rows as per-job dispatch."""
        calls = []
        real = engine_mod._run_shared
        monkeypatch.setattr(engine_mod, "_run_shared",
                            lambda tasks: calls.append(len(tasks))
                            or real(tasks))
        fused = run_grid(GRID)  # serial: whole batch is one chunk
        assert calls and all(n >= 2 for n in calls)
        assert fused == run_grid(GRID, chunk_jobs=1)  # no-fusion path

    def test_single_sharer_takes_ordinary_path(self, monkeypatch):
        shared_calls = []
        monkeypatch.setattr(engine_mod, "_run_shared",
                            lambda tasks: shared_calls.append(tasks))
        run_grid(GridSpec(scenarios=("diurnal",),
                          algorithms=("lcp", "threshold"),
                          seeds=(0,), sizes=(16,)))
        assert not shared_calls


class TestPromiseRace:
    def test_owner_harvest_survives_borrower_preresolution(self,
                                                           monkeypatch):
        """A borrowing batch may resolve a shared solve promise before
        the owning batch's poll; the owner must still do its own
        bookkeeping (records/window/cache/opt_solved), not crash.

        The interleaving is forced deterministically: the promise
        reports not-ready for the owner's first polls, so the borrower
        (admitted meanwhile) resolves it first.
        """
        real_ready = engine_mod._Promise.ready
        calls = {"n": 0}

        def laggy_ready(self):
            calls["n"] += 1
            return False if calls["n"] <= 3 else real_ready(self)

        monkeypatch.setattr(engine_mod._Promise, "ready", laggy_ready)
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp"),
                        seeds=(0,), sizes=(16,))
        stats: dict = {}
        rows = run_grid(spec, batch_size=1, pipeline_depth=2,
                        stats=stats)
        monkeypatch.setattr(engine_mod._Promise, "ready", real_ready)
        assert rows == run_grid(spec)
        assert stats["opt_solved"] == 1  # owner counted it exactly once

    def test_overlapping_batches_materialize_each_instance_once(
            self, tmp_path):
        """Phase-0 dedup covers instances whose *optimum* was a cache
        hit too: a warm optima cache + cold store must not let two
        in-flight batches both submit the same materialization."""
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "threshold", "memoryless"),
                        seeds=(0,), sizes=(48,))
        cache = JobCache(tmp_path / "cache")
        run_grid(spec, cache_dir=cache)   # warm optima + rows
        extended = GridSpec(scenarios=("diurnal",),
                            algorithms=("lcp", "threshold", "memoryless",
                                        "followmin", "never-off"),
                            seeds=(0,), sizes=(48,))
        stats: dict = {}
        rows = run_grid(extended, cache_dir=cache, n_jobs=2,
                        batch_size=1, pipeline_depth=2,
                        store_dir=tmp_path / "store", stats=stats)
        assert stats["inst_materialized"] == 1  # not once per batch
        assert rows == run_grid(extended)
        shutdown_pool()

    def test_abort_flushes_completed_head_batches(self, monkeypatch):
        """A worker error in batch N must not discard earlier batches'
        fully computed rows from the sink (the serial engine had
        always flushed N-1 before starting N).

        The loss window — head batches completing in the same pump
        pass that surfaces the error — is forced deterministically: the
        head's phase-2 future hides its completion until the failing
        batch has been admitted.
        """
        from concurrent.futures import Future
        state = {"release": False}

        class GatedFuture(Future):
            def done(self):
                return state["release"] and super().done()

        real_submit = engine_mod._submit_task

        def fake_submit(fn, arg, n_jobs):
            if fn is engine_mod._run_chunk_retry:
                tasks, _policy = arg
                algorithms = {job[1] for job, _r, _s in tasks}
                if "memoryless" in algorithms:
                    state["release"] = True
                    future: Future = Future()
                    future.set_exception(RuntimeError("worker died"))
                    return future
                if "lcp" in algorithms:
                    future = GatedFuture()
                    future.set_result(engine_mod._run_chunk_retry(arg))
                    return future
            return real_submit(fn, arg, n_jobs)

        monkeypatch.setattr(engine_mod, "_submit_task", fake_submit)
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "threshold", "memoryless"),
                        seeds=(0,), sizes=(16,))
        sink = ListSink()
        with pytest.raises(RuntimeError, match="worker died"):
            run_grid(spec, batch_size=1, pipeline_depth=3, sink=sink)
        # lcp and threshold completed before the error: still flushed
        assert [r["algorithm"] for r in sink.rows] == ["lcp",
                                                       "threshold"]

    def test_sink_failure_stops_all_flushing(self, tmp_path):
        """When the *sink* is what failed, the drain must not keep
        writing later batches after the torn one (kill+resume relies
        on a clean row prefix)."""
        killed = _KillSink(1)
        with pytest.raises(KeyboardInterrupt):
            run_grid(GRID, batch_size=1, pipeline_depth=2, sink=killed)
        assert len(killed.rows) == 1  # nothing written past the kill

    def test_cross_batch_instance_shares_one_solve(self):
        """Batch boundaries splitting one instance's jobs reuse the
        in-flight solve instead of re-submitting it (pool path)."""
        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp", "threshold"),
                        seeds=(0,), sizes=(64,))
        stats: dict = {}
        rows = run_grid(spec, n_jobs=2, batch_size=1, pipeline_depth=2,
                        stats=stats)
        assert stats["opt_solved"] == 1
        assert rows == run_grid(spec)
        shutdown_pool()


class TestBatchValidation:
    def test_bad_batch_size_raises_before_consuming_iterator(self):
        consumed = []

        def jobs():
            consumed.append(1)
            yield from ()

        with pytest.raises(ValueError, match="batch_size"):
            engine_mod._batches(jobs(), 0)
        assert not consumed

    def test_bad_batch_size_raises_before_sink_opens(self):
        class Sink(ListSink):
            opened = False

            def open(self, meta=None):
                self.opened = True

        sink = Sink()
        with pytest.raises(ValueError, match="batch_size"):
            run_grid(GRID, batch_size=-2, sink=sink)
        assert not sink.opened


class TestParamAwareAggregation:
    def test_params_ride_along_as_row_columns(self):
        spec = GridSpec(scenarios=("case-msr",), algorithms=("static",),
                        seeds=(0,), sizes=(16,),
                        params=({"beta": 1.0}, {"beta": 8.0}))
        rows = run_grid(spec)
        assert [r["beta"] for r in rows] == [1.0, 8.0]

    def test_group_by_beta_emits_per_beta_tables(self):
        spec = GridSpec(scenarios=("case-msr",),
                        algorithms=("lcp", "static"),
                        seeds=(0, 1), sizes=(16,),
                        params=({"beta": 2.0}, {"beta": 6.0}))
        rows = run_grid(spec)
        agg = aggregate_rows(rows, by=("scenario", "algorithm", "T",
                                       "beta"))
        assert len(agg) == 4  # 2 algorithms x 2 betas
        assert {a["beta"] for a in agg} == {2.0, 6.0}
        assert all(a["n"] == 2 for a in agg)

    def test_missing_group_key_groups_under_none(self):
        agg = aggregate_rows([{"scenario": "s", "algorithm": "a",
                               "T": 8, "ratio": 1.5, "cost": 3.0}],
                             by=("scenario", "algorithm", "T", "eps"))
        assert agg[0]["eps"] is None and agg[0]["n"] == 1

    def test_cli_group_by_rejects_unknown_columns(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="algoritm"):
            main(["sweep", "--scenarios", "diurnal", "--algorithms",
                  "lcp", "--seeds", "0", "-T", "16",
                  "--group-by", "scenario,algoritm,T"])

    def test_cli_group_by(self, capsys):
        from repro.cli import main
        rc = main(["sweep", "--scenarios", "case-msr", "--algorithms",
                   "static", "--seeds", "0", "-T", "16", "--params",
                   '{"beta": 2.0};{"beta": 6.0}',
                   "--group-by", "scenario,algorithm,T,beta"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "beta" in out and out.count("case-msr") >= 2


class TestSweepPipelined:
    def test_sweep_depth_and_chunks_preserve_rows(self, tmp_path):
        from repro.analysis import sweep
        from tests.test_runner import _measure
        grid = {"T": [2, 3, 4], "m": [4, 5]}
        reference = sweep(_measure, grid)
        assert sweep(_measure, grid, batch_size=2,
                     pipeline_depth=1) == reference
        assert sweep(_measure, grid, batch_size=2, pipeline_depth=3,
                     chunk_points=2) == reference
        assert sweep(_measure, grid, n_jobs=2, batch_size=2,
                     pipeline_depth=2) == reference
        stats: dict = {}
        sweep(_measure, grid, cache_dir=tmp_path, batch_size=2,
              pipeline_depth=2, stats=stats)
        assert stats == {"hits": 0, "misses": 6}
        stats2: dict = {}
        assert sweep(_measure, grid, cache_dir=tmp_path, batch_size=2,
                     pipeline_depth=2, stats=stats2) == reference
        assert stats2 == {"hits": 6, "misses": 0}
        shutdown_pool()

    def test_sweep_invalid_depth_rejected(self):
        from repro.analysis import sweep
        from tests.test_runner import _measure
        with pytest.raises(ValueError, match="pipeline_depth"):
            sweep(_measure, {"T": [2], "m": [3]}, pipeline_depth=0)

    def test_killed_sweep_caches_completed_chunks(self, tmp_path):
        """A killed sweep persists every measurement it computed —
        chunks are cached at harvest, before the sink sees the rows —
        so the resume serves them as hits instead of recomputing."""
        from repro.analysis import sweep
        from repro.runner.sinks import ListSink
        from tests.test_runner import _measure

        class Kill(ListSink):
            def write(self, row):
                if len(self.rows) >= 2:
                    raise KeyboardInterrupt("killed mid-sweep")
                super().write(row)

        grid = {"T": [2, 3, 4], "m": [4, 5]}
        with pytest.raises(KeyboardInterrupt):
            sweep(_measure, grid, cache_dir=tmp_path, batch_size=2,
                  pipeline_depth=2, sink=Kill())
        stats: dict = {}
        rows = sweep(_measure, grid, cache_dir=tmp_path, batch_size=2,
                     pipeline_depth=2, stats=stats)
        assert len(rows) == 6
        # both admitted batches were cached before the kill propagated
        # (the second one at harvest, even though its flush is what the
        # sink killed); only the never-admitted batch recomputes
        assert stats == {"hits": 4, "misses": 2}

    def test_killed_sweep_flushes_completed_batches_to_sink(self,
                                                            tmp_path):
        """An abort while a later batch computes must not lose fully
        computed earlier batches from a file sink (the pre-pipeline
        sweep always wrote batch N before starting N+1)."""
        from repro.analysis import sweep
        from repro.runner import read_jsonl_rows
        from repro.runner.sinks import JsonlSink

        def fn(T, m):
            if T == 4:
                raise RuntimeError("boom")
            return {"area": T * m}

        path = tmp_path / "rows.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            sweep(fn, {"T": [2, 3, 4], "m": [4, 5]}, batch_size=2,
                  pipeline_depth=2, sink=JsonlSink(path))
        rows = read_jsonl_rows(path)
        # both complete batches landed, in grid-product order
        assert [(r["T"], r["m"]) for r in rows] == [(2, 4), (2, 5),
                                                    (3, 4), (3, 5)]

    def test_killed_sweep_sink_failure_keeps_clean_prefix(self,
                                                          tmp_path):
        """When the sink itself refused a row, the abort drain must
        not keep writing later batches after the torn one."""
        from repro.analysis import sweep
        from repro.runner import read_jsonl_rows
        from repro.runner.sinks import JsonlSink
        from tests.test_runner import _measure

        class Kill(JsonlSink):
            def write(self, row):
                if self.rows_written >= 3:
                    raise KeyboardInterrupt("killed mid-sweep")
                super().write(row)

        path = tmp_path / "rows.jsonl"
        with pytest.raises(KeyboardInterrupt):
            sweep(_measure, {"T": [2, 3, 4], "m": [4, 5]}, batch_size=2,
                  pipeline_depth=2, sink=Kill(path))
        rows = read_jsonl_rows(path)
        assert [(r["T"], r["m"]) for r in rows] == [(2, 4), (2, 5),
                                                    (3, 4)]


class TestSinkWriteMany:
    def test_sqlite_bulk_path_matches_per_row(self, tmp_path):
        from repro.runner import (SqliteSink, read_sqlite_rows)
        bulk = SqliteSink(tmp_path / "bulk.db")
        bulk.open()
        bulk.write_many([{"a": 1}, {"a": 2}])
        bulk.close()
        single = SqliteSink(tmp_path / "single.db")
        single.open()
        single.write({"a": 1})
        single.write({"a": 2})
        single.close()
        assert (read_sqlite_rows(bulk.result())
                == read_sqlite_rows(single.result()))
        assert bulk.rows_written == 2

    def test_default_write_many_respects_write_overrides(self):
        sink = _KillSink(1)
        sink.open()
        with pytest.raises(KeyboardInterrupt):
            sink.write_many([{"a": 1}, {"a": 2}])
        assert len(sink.rows) == 1
