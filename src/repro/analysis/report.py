"""Experiment-report assembly.

The benchmarks persist their regenerated tables under
``benchmarks/results/E*.txt``.  This module collects them into a single
report (the machine-generated companion of EXPERIMENTS.md), checks that
every experiment of the DESIGN.md index actually produced artifacts, and
extracts headline numbers for quick regression eyeballing.
"""

from __future__ import annotations

import pathlib
import re

__all__ = ["EXPERIMENTS", "load_results", "missing_experiments",
           "assemble_report", "headline_numbers"]

#: experiment ids and the claim each one reproduces
EXPERIMENTS = {
    "E1": "Figure 1 — layered graph construction",
    "E2": "Theorem 1 — offline optimality",
    "E3": "Section 2.2 — O(T log m) scaling",
    "E4": "Theorem 2 — LCP is 3-competitive",
    "E5": "Theorem 3 — randomized 2-competitive",
    "E6": "Theorem 4 — deterministic lower bound 3",
    "E7": "Theorems 5/9 — restricted-model bounds",
    "E8": "Theorem 6 — continuous lower bound 2",
    "E9": "Theorem 8 — randomized lower bound 2",
    "E10": "Theorem 10 — prediction windows",
    "E11": "case study — right-sizing savings",
    "E12": "ablations",
    "E13": "simulator validation",
    "E14": "heterogeneous-fleet extension demo",
}


def load_results(results_dir) -> dict:
    """Map experiment id -> list of (name, table text), sorted by name."""
    results_dir = pathlib.Path(results_dir)
    out: dict[str, list] = {}
    for path in sorted(results_dir.glob("E*.txt")):
        match = re.match(r"(E\d+)", path.stem)
        if not match:
            continue
        out.setdefault(match.group(1), []).append(
            (path.stem, path.read_text().rstrip()))
    return out


def missing_experiments(results_dir) -> list:
    """Experiment ids from the DESIGN index with no artifacts on disk."""
    present = set(load_results(results_dir))
    return [e for e in EXPERIMENTS if e not in present]


def assemble_report(results_dir, title: str = "Experiment report") -> str:
    """One document with every regenerated table, grouped by experiment."""
    results = load_results(results_dir)
    lines = [f"# {title}", ""]
    for exp_id, claim in EXPERIMENTS.items():
        lines.append(f"## {exp_id} — {claim}")
        tables = results.get(exp_id)
        if not tables:
            lines.append("(no artifacts — run `pytest benchmarks/ "
                         "--benchmark-only`)")
        else:
            for name, text in tables:
                lines.append("```")
                lines.append(text)
                lines.append("```")
        lines.append("")
    return "\n".join(lines)


def _column_value(text: str, column_substring: str, row: int = -1):
    """Value of the first column whose name contains ``column_substring``
    in the ``row``-th data row of a rendered table (title, header,
    rule, data...)."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if len(lines) < 4:
        return None
    header = lines[1].split()
    try:
        idx = next(i for i, c in enumerate(header)
                   if column_substring in c)
    except StopIteration:
        return None
    try:
        return float(lines[3:][row].split()[idx])
    except (IndexError, ValueError):
        return None


def headline_numbers(results_dir) -> dict:
    """Extract the convergence headline of each lower-bound curve: the
    ratio column in the final (smallest-eps) row of E6/E8/E9 tables."""
    results = load_results(results_dir)
    out = {}
    wanted = {
        "E6_det_lower_bound": ("det_lb_ratio", "ratio"),
        "E8_continuous_B": ("cont_lb_ratio", "ratio"),
        "E9_randomized_lb": ("rand_lb_ratio", "ratio"),
    }
    for exp_tables in results.values():
        for name, text in exp_tables:
            if name in wanted:
                key, col = wanted[name]
                value = _column_value(text, col)
                if value is not None:
                    out[key] = value
    return out
