"""Schedules and cost functionals.

A *schedule* is a vector ``X = (x_1, ..., x_T)`` of server counts with the
boundary convention ``x_0 = x_{T+1} = 0``.  This module implements every
cost functional used in the paper:

* ``cost`` — the objective of eq. (1): operating plus power-up switching.
* ``cost_L`` / ``cost_U`` — the truncated costs ``C^L_tau`` (eq. (11)) and
  ``C^U_tau`` (eq. (12)) where switching is charged on powering up resp.
  powering down.
* ``operating_cost`` (``R_tau``), ``switching_cost_up`` (``S^L_tau``),
  ``switching_cost_down`` (``S^U_tau``) — the Section 3.2 decomposition.
* ``symmetric_cost`` — the Section 5 convention (both directions charged at
  ``beta/2``, trajectory closed by a final power-down), which coincides
  with eq. (1) for closed schedules.

Fractional schedules (float entries) are supported everywhere via the
continuous extension ``f-bar`` of eq. (3) (row-wise linear interpolation).
"""

from __future__ import annotations

import numpy as np

from .instance import Instance

__all__ = [
    "validate_schedule",
    "interp_operating",
    "operating_cost",
    "switching_cost_up",
    "switching_cost_down",
    "cost",
    "cost_L",
    "cost_U",
    "symmetric_cost",
    "cost_breakdown",
]


def validate_schedule(instance: Instance, X, *, integral: bool = True,
                      name: str = "schedule") -> np.ndarray:
    """Validate a schedule against an instance and return it as an array.

    Checks length ``T``, the state bounds ``0 <= x_t <= m`` and, when
    ``integral`` is set, integrality of every entry.
    """
    x = np.asarray(X, dtype=np.float64)
    if x.shape != (instance.T,):
        raise ValueError(
            f"{name} must have shape ({instance.T},), got {x.shape}")
    if np.any(x < -1e-12) or np.any(x > instance.m + 1e-12):
        raise ValueError(f"{name} leaves the state range [0, {instance.m}]")
    if integral and not np.allclose(x, np.round(x), atol=1e-9):
        raise ValueError(f"{name} must be integral")
    return x


def interp_operating(F: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Per-step operating cost ``f-bar_t(x_t)`` for a (possibly fractional)
    schedule, using the linear interpolation of eq. (3).

    ``F`` is the ``(T, m+1)`` cost matrix; returns a length-``T`` vector.
    """
    x = np.asarray(X, dtype=np.float64)
    T, width = F.shape
    if x.shape != (T,):
        raise ValueError(f"schedule must have shape ({T},)")
    lo = np.clip(np.floor(x).astype(np.int64), 0, width - 1)
    hi = np.minimum(lo + 1, width - 1)
    frac = x - lo
    rows = np.arange(T)
    return (1.0 - frac) * F[rows, lo] + frac * F[rows, hi]


def operating_cost(instance: Instance, X, upto: int | None = None) -> float:
    """``R_tau(X) = sum_{t<=tau} f_t(x_t)`` (Section 3.2); default
    ``tau = T``."""
    x = validate_schedule(instance, X, integral=False)
    tau = instance.T if upto is None else upto
    return float(np.sum(interp_operating(instance.F[:tau], x[:tau])))


def _deltas(X: np.ndarray, upto: int) -> np.ndarray:
    """State changes ``x_t - x_{t-1}`` for ``t = 1..upto`` with
    ``x_0 = 0``."""
    x = np.concatenate([[0.0], np.asarray(X, dtype=np.float64)[:upto]])
    return np.diff(x)


def switching_cost_up(instance: Instance, X, upto: int | None = None) -> float:
    """``S^L_tau(X) = beta * sum_{t<=tau} (x_t - x_{t-1})^+``."""
    x = validate_schedule(instance, X, integral=False)
    tau = instance.T if upto is None else upto
    d = _deltas(x, tau)
    return float(instance.beta * np.sum(np.maximum(d, 0.0)))


def switching_cost_down(instance: Instance, X, upto: int | None = None) -> float:
    """``S^U_tau(X) = beta * sum_{t<=tau} (x_{t-1} - x_t)^+``."""
    x = validate_schedule(instance, X, integral=False)
    tau = instance.T if upto is None else upto
    d = _deltas(x, tau)
    return float(instance.beta * np.sum(np.maximum(-d, 0.0)))


def cost(instance: Instance, X, *, integral: bool = True) -> float:
    """Total cost of eq. (1): ``sum_t f_t(x_t) + beta sum_t (Dx)^+``.

    For fractional schedules, pass ``integral=False``; the operating cost
    then uses the continuous extension of eq. (3).
    """
    x = validate_schedule(instance, X, integral=integral)
    return operating_cost(instance, x) + switching_cost_up(instance, x)


def cost_L(instance: Instance, X, tau: int | None = None, *,
           integral: bool = True) -> float:
    """``C^L_tau(X)`` (eq. (11)): truncated cost with power-up charging.

    For ``tau = T`` this equals eq. (1).
    """
    x = validate_schedule(instance, X, integral=integral)
    tau = instance.T if tau is None else tau
    return (operating_cost(instance, x, upto=tau)
            + switching_cost_up(instance, x, upto=tau))


def cost_U(instance: Instance, X, tau: int | None = None, *,
           integral: bool = True) -> float:
    """``C^U_tau(X)`` (eq. (12)): truncated cost with power-down charging.

    Satisfies the identity ``C^L_tau(X) = C^U_tau(X) + beta * x_tau``
    (eq. (14)), which the test suite verifies.
    """
    x = validate_schedule(instance, X, integral=integral)
    tau = instance.T if tau is None else tau
    return (operating_cost(instance, x, upto=tau)
            + switching_cost_down(instance, x, upto=tau))


def symmetric_cost(instance: Instance, X, *, integral: bool = True) -> float:
    """Section 5 cost convention: switching charged at ``beta/2`` per unit
    in **both** directions and the trajectory closed with a final
    power-down ``x_{T+1} = 0``.

    For any schedule (closed by construction) this equals eq. (1), because
    over a closed trajectory total up-moves equal total down-moves.
    """
    x = validate_schedule(instance, X, integral=integral)
    path = np.concatenate([[0.0], x, [0.0]])
    moves = float(np.sum(np.abs(np.diff(path))))
    return operating_cost(instance, x) + 0.5 * instance.beta * moves


def cost_breakdown(instance: Instance, X, *, integral: bool = True) -> dict:
    """Return a dict with operating/switching/total cost of a schedule."""
    x = validate_schedule(instance, X, integral=integral)
    op = operating_cost(instance, x)
    sw = switching_cost_up(instance, x)
    return {
        "operating": op,
        "switching": sw,
        "total": op + sw,
        "peak": float(np.max(x)) if x.size else 0.0,
        "mean": float(np.mean(x)) if x.size else 0.0,
    }
