"""Adaptive adversaries realizing the Section 5 lower bounds.

All constructions play on hinge functions with slope ``eps``:
``phi_0(x) = eps|x|`` (punishes active servers) and
``phi_1(x) = eps|1-x|`` (punishes empty data centers), with the symmetric
Section 5 cost convention ``beta = 2`` (one unit per server per switch
direction), under which eq. (1) and the symmetric cost coincide for
closed trajectories.

* :class:`DeterministicDiscreteAdversary` — Theorem 4: against an
  integral algorithm, send ``phi_1`` when it idles at 0 and ``phi_0``
  when it is active; any deterministic algorithm's ratio tends to 3.
* :class:`ContinuousAdversary` — Theorem 6 / Lemma 23: simulates
  algorithm B internally and punishes any fractional algorithm for
  deviating from B; ratios tend to 2.
* The randomized bound (Theorem 8) reuses :class:`ContinuousAdversary`
  on the *expected* trajectory — see
  :func:`repro.lower_bounds.games.play_randomized_game`.
* :func:`restricted_rows` — the Theorem 5/7/9 encodings of the same games
  inside Lin et al.'s restricted model (single function ``f``, loads
  ``lambda_t``, feasibility ``x_t >= lambda_t``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DeterministicDiscreteAdversary",
    "ContinuousAdversary",
    "restricted_rows",
    "RestrictedDiscreteAdversary",
]


class DeterministicDiscreteAdversary:
    """Theorem 4 adversary on the two-state system (``m=1, beta=2``).

    ``next_function`` receives the algorithm's *previous* state (the state
    it held when the new function arrives) and returns the tabulated row:
    ``phi_1`` if the algorithm idles (state 0), else ``phi_0``.
    """

    m = 1
    beta = 2.0

    def __init__(self, eps: float):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self._phi0 = np.array([0.0, eps])
        self._phi1 = np.array([eps, 0.0])

    def reset(self) -> None:  # stateless; part of the protocol
        pass

    def horizon(self) -> int:
        """Workload length: the paper requires ``T >= 1/eps^2`` so the
        additive constants vanish; the factor 6 sharpens the empirical
        curve (ratio ~ 3 - eps - 6/(T eps/2 + 2))."""
        return int(np.ceil(6.0 / self.eps ** 2))

    def next_function(self, prev_state: float) -> np.ndarray:
        return self._phi1 if prev_state < 0.5 else self._phi0


class ContinuousAdversary:
    """Theorem 6 / Lemma 23 adversary against fractional algorithms.

    Simulates algorithm B (the ``eps/2`` stepper) on the side.  Given the
    opponent's previous fractional state ``a``:

    * if ``a > b`` (opponent above B) or ``a >= 1`` — send ``phi_0``;
    * otherwise (``a <= b`` and ``a < 1``) — send ``phi_1``;

    then advance B on the same function.  Lemma 23 shows any deviation
    from B only costs more, and Lemmas 21/22 drive B's ratio to
    ``2 - eps/2``.
    """

    m = 1
    beta = 2.0

    def __init__(self, eps: float):
        if eps <= 0 or eps > 1:
            raise ValueError("eps must be in (0, 1]")
        self.eps = eps
        self._phi0 = np.array([0.0, eps])
        self._phi1 = np.array([eps, 0.0])
        self.reset()

    def reset(self) -> None:
        self.b = 0.0

    def horizon(self) -> int:
        """Long enough for the ``2 - eps`` bound of Lemma 21 case 3
        (``T >= 12/eps``) and several full B-sweeps of ``[0, 1]``."""
        return int(np.ceil(12.0 / self.eps ** 2))

    def next_function(self, prev_state: float) -> np.ndarray:
        a = float(prev_state)
        tol = 1e-12
        if a > self.b + tol or a >= 1.0 - tol:
            row = self._phi0
            self.b = max(self.b - self.eps / 2.0, 0.0)
        else:
            row = self._phi1
            self.b = min(self.b + self.eps / 2.0, 1.0)
        return row


def restricted_rows(eps: float, penalty: float = 10.0) -> dict:
    """Theorem 5/9 encoding of the two-state game in the restricted model.

    Two servers, per-server cost ``f(z) = eps|1 - 2z|``, ``beta = 2``.
    Load ``lambda = 1/2`` yields operating cost ``x f(1/(2x)) = eps|x-1|``
    (the ``phi_0`` game on the shifted states ``{1, 2}``) and
    ``lambda = 1`` yields ``eps|x-2|`` (the ``phi_1`` game).  State 0 is
    infeasible for positive load; it carries a steep convex ``penalty``
    (its exact value is irrelevant — Theorem 5's argument confines play to
    ``{1, 2}`` after the start).

    Returns the tabulated rows on states ``{0, 1, 2}`` keyed by
    ``"phi0"``/``"phi1"`` plus the loads realizing them.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    return {
        "phi0": np.array([penalty, 0.0, eps]),   # lambda = 1/2
        "phi1": np.array([penalty, eps, 0.0]),   # lambda = 1
        "load_phi0": 0.5,
        "load_phi1": 1.0,
        "f": lambda z: eps * abs(1.0 - 2.0 * z),
    }


class RestrictedDiscreteAdversary:
    """Theorem 5 adversary: the two-state game embedded in the restricted
    model on ``m = 2`` servers (states shifted up by one).

    The algorithm's states live in ``{1, 2}`` (state 0 only at the very
    beginning); the adversary treats state ``<= 1`` as the general model's
    state 0 and sends the ``lambda = 1`` (``phi_1``) row, otherwise the
    ``lambda = 1/2`` (``phi_0``) row.
    """

    m = 2
    beta = 2.0

    def __init__(self, eps: float, penalty: float = 10.0):
        rows = restricted_rows(eps, penalty)
        self.eps = eps
        self._phi0 = rows["phi0"]
        self._phi1 = rows["phi1"]
        self.loads: list[float] = []
        self._load0 = rows["load_phi0"]
        self._load1 = rows["load_phi1"]

    def reset(self) -> None:
        self.loads = []

    def horizon(self) -> int:
        """Longer than the general-model horizon: the mandatory move to
        state 1 adds a constant ``beta`` to both players, which must be
        amortized before the ratio approaches 3."""
        return int(np.ceil(6.0 / self.eps ** 2))

    def next_function(self, prev_state: float) -> np.ndarray:
        if prev_state < 1.5:
            self.loads.append(self._load1)
            return self._phi1
        self.loads.append(self._load0)
        return self._phi0
