"""Exact offline solver for the restricted model (eq. (2)).

The general-model encoding (`RestrictedInstance.to_general`) prices
infeasible states with a steep convex penalty, which is exact for
optimal schedules but leaves penalty magnitudes in the instance.  This
solver instead enforces the feasibility constraint ``x_t >= lambda_t``
*structurally*: the DP simply masks states below ``ceil(lambda_t)`` per
column — the layered-graph picture of Figure 1 with rows removed per
column, which leaves the prefix/suffix relaxation intact.

Tabulation is vectorized: the whole ``(T, m+1)`` feasible-cost table is
computed with one array evaluation of the per-server cost ``f`` when it
broadcasts (one scalar sweep otherwise) instead of ``O(T m)`` Python
calls — the difference between milliseconds and minutes at the engine's
``T`` in the hundreds of thousands.  The table is also the restricted
pipeline's payload in the engine's instance store
(:mod:`repro.runner.instancestore`): an object carrying a precomputed
``costs`` matrix (e.g. a memory-mapped store view) skips tabulation
entirely.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from .._util import prefix_argmin, prefix_min, suffix_argmin_first, suffix_min
from .result import OfflineResult

__all__ = ["solve_restricted", "restricted_cost_matrix"]

_INF = np.inf


def _feasible_floors(loads: np.ndarray) -> np.ndarray:
    """Smallest feasible integer state per step: ``ceil(lambda_t)`` with
    the solver's historical tolerance."""
    return np.maximum(np.ceil(loads - 1e-12).astype(np.int64), 0)


def _apply_server_cost(f, Z: np.ndarray, wanted: np.ndarray) -> np.ndarray:
    """Evaluate ``f`` elementwise on ``Z``, vectorized when possible.

    Falls back to a scalar sweep for callables that don't broadcast, so
    arbitrary user cost functions keep working.  Only ``wanted`` cells
    matter to the caller (the rest are masked to ``+inf``); the scalar
    sweep skips the others, so ``f`` is never evaluated at the
    placeholder utilization of infeasible cells.
    """
    try:
        vals = np.asarray(f(Z), dtype=np.float64)
        if vals.shape == Z.shape:
            return vals
    except Exception:
        pass
    out = np.zeros_like(Z)
    flat, dst, keep = Z.ravel(), out.ravel(), wanted.ravel()
    for i in range(flat.size):
        if keep[i]:
            dst[i] = float(f(float(flat[i])))
    return out


def restricted_cost_matrix(ri) -> np.ndarray:
    """Masked ``(T, m+1)`` table of feasible operating costs.

    ``out[t, j] = j * f(lambda_t / j)`` for feasible states
    ``j >= ceil(lambda_t)`` (with ``out[t, 0] = 0`` when the load is
    zero) and ``+inf`` below the feasibility floor.  Objects carrying a
    precomputed ``costs`` attribute (the instance store's restricted
    view) are returned as-is.
    """
    costs = getattr(ri, "costs", None)
    if costs is not None:
        return np.asarray(costs, dtype=np.float64)
    loads = np.asarray(ri.loads, dtype=np.float64)
    T, m = loads.shape[0], ri.m
    floors = _feasible_floors(loads)
    states = np.arange(1, m + 1, dtype=np.float64)
    feasible = states[None, :] >= floors[:, None]
    # evaluate f only where feasible (z <= ~1); infeasible cells get a
    # safe placeholder utilization of 0 and are overwritten with +inf
    Z = np.where(feasible, loads[:, None] / states[None, :], 0.0)
    F = np.empty((T, m + 1), dtype=np.float64)
    F[:, 1:] = np.where(feasible,
                        states[None, :] * _apply_server_cost(ri.f, Z,
                                                             feasible),
                        _INF)
    # state 0 serves no load: feasible (cost 0) exactly when the floor
    # is 0 — the same tolerance the feasible states use
    F[:, 0] = np.where(floors == 0, 0.0, _INF)
    return F


def _forward_scalar(F: np.ndarray, beta: float,
                    states: np.ndarray) -> np.ndarray:
    """Per-step reference forward pass (the pre-vectorization loop)."""
    T, width = F.shape
    Ds = np.empty((T, width))
    Ds[0] = F[0] + beta * states
    for t in range(1, T):
        prev = Ds[t - 1]
        # Masked prefix/suffix relaxation: +inf cells propagate safely
        # (numpy min with inf is well defined).
        with np.errstate(invalid="ignore"):
            up = beta * states + prefix_min(prev - beta * states)
        down = suffix_min(prev)
        Ds[t] = F[t] + np.minimum(up, down)
    return Ds


def _forward_table(F: np.ndarray, beta: float,
                   states: np.ndarray) -> np.ndarray:
    """Whole-table forward pass: six in-place ufunc calls per step on
    hoisted row views, the restricted twin of the vector kernel's sweep
    loop.  Bit-identical to :func:`_forward_scalar` — same ufuncs in
    the same order, commutative operand swaps excepted."""
    T, width = F.shape
    bstates = beta * states
    Ds = np.empty((T, width), dtype=np.float64)
    np.add(F[0], bstates, out=Ds[0])
    buf = np.empty(width, dtype=np.float64)
    acc = np.minimum.accumulate
    sub, add, mini = np.subtract, np.add, np.minimum
    rows, rows_r, frows = list(Ds), list(Ds[:, ::-1]), list(F)
    prev, prev_r = rows[0], rows_r[0]
    with np.errstate(invalid="ignore"):
        for t in range(1, T):
            cur, cur_r = rows[t], rows_r[t]
            # up = beta x + prefix_min(prev - beta x)
            sub(prev, bstates, out=buf)
            acc(buf, out=buf)
            add(buf, bstates, out=buf)
            # down = suffix_min(prev), via reversed views
            acc(prev_r, out=cur_r)
            # Ds[t] = f_t + min(up, down)
            mini(buf, cur, out=cur)
            add(cur, frows[t], out=cur)
            prev, prev_r = cur, cur_r
    return Ds


def _chain_prev(nxt: int, P_row, PA_row, S_row, SA_row, beta: float) -> int:
    """One backtrack step under the two-segment decomposition.

    The transition row ``Ds[t, j] + beta max(x' - j, 0)`` splits at
    ``x'``: below it the penalty decomposes as
    ``(Ds[t, j] - beta j) + beta x'`` — a prefix minimum of
    ``G = Ds - beta x`` — and at/above it the penalty vanishes, a
    suffix minimum of ``Ds``.  Ties resolve to the smallest index, the
    lower segment winning on equality, mirroring ``argmin``'s
    first-minimizer rule.  Shared verbatim by the scalar and
    vectorized backtracks so both pick bit-identical schedules.
    """
    if nxt == 0:
        return int(SA_row[0])
    low = P_row[nxt - 1] + beta * nxt
    if low <= S_row[nxt]:
        return int(PA_row[nxt - 1])
    return int(SA_row[nxt])


def _backtrack_scalar(Ds: np.ndarray, beta: float, states: np.ndarray,
                      x: np.ndarray) -> None:
    """Per-step reference backtrack: the decomposition evaluated one
    row at a time."""
    T = Ds.shape[0]
    for t in range(T - 2, -1, -1):
        row = Ds[t]
        G = row - beta * states
        x[t] = _chain_prev(int(x[t + 1]), prefix_min(G), prefix_argmin(G),
                           suffix_min(row), suffix_argmin_first(row), beta)


def _backtrack_table(Ds: np.ndarray, beta: float, states: np.ndarray,
                     x: np.ndarray) -> None:
    """Whole-table backtrack: the four segment tables (prefix/suffix
    minima and their first attainers) are computed in a handful of
    table-wide passes; the remaining chain is ``O(T)`` scalar reads."""
    T = Ds.shape[0]
    G = Ds - beta * states
    P, PA = prefix_min(G), prefix_argmin(G)
    S, SA = suffix_min(Ds), suffix_argmin_first(Ds)
    for t in range(T - 2, -1, -1):
        x[t] = _chain_prev(int(x[t + 1]), P[t], PA[t], S[t], SA[t], beta)


def solve_restricted(ri) -> OfflineResult:
    """Optimal schedule of a restricted-model instance (``O(T m)``).

    Accepts a :class:`~repro.core.instance.RestrictedInstance` or any
    object with ``T``/``m``/``beta`` and either ``loads`` + ``f`` or a
    precomputed ``costs`` matrix.  Returns the schedule and its eq. (2)
    cost; feasibility ``x_t >= lambda_t`` holds by construction.

    The forward/backward passes ride the :mod:`repro.kernels` dispatch:
    under a vectorized kernel both run as whole-table ufunc passes,
    under ``REPRO_KERNEL=scalar`` the per-step reference loops run —
    with bit-identical tables, cost *and* schedule either way
    (``tests/test_kernels.py``).
    """
    T, m, beta = ri.T, ri.m, ri.beta
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="restricted_dp")
    states = np.arange(m + 1, dtype=np.float64)
    F = restricted_cost_matrix(ri)
    vectorized = kernels.is_vectorized()
    Ds = (_forward_table if vectorized else _forward_scalar)(F, beta, states)
    x = np.empty(T, dtype=np.int64)
    x[T - 1] = int(np.argmin(Ds[T - 1]))
    cost = float(Ds[T - 1, x[T - 1]])
    if not np.isfinite(cost):
        raise ValueError("restricted instance has no feasible schedule")
    if T > 1:
        (_backtrack_table if vectorized else _backtrack_scalar)(
            Ds, beta, states, x)
    return OfflineResult(schedule=x, cost=cost, method="restricted_dp")
