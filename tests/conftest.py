"""Shared fixtures and instance generators for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance
from repro.core.costs import QuadraticCost, AbsCost
from repro.workloads import diurnal_loads, instance_from_loads
from repro.workloads import random_convex_instance  # noqa: F401 (re-export)


def hinge_instance(centers, m: int, beta: float, slope: float = 1.0) -> Instance:
    """Instance of hinge rows |x - c| — the Section 5 building block."""
    fs = [AbsCost(float(c), slope) for c in centers]
    return Instance.from_functions(fs, m, beta)


def bowl_instance(centers, m: int, beta: float, a: float = 1.0) -> Instance:
    """Instance of quadratic bowls centered on a trajectory."""
    fs = [QuadraticCost(a, float(c)) for c in centers]
    return Instance.from_functions(fs, m, beta)


def trace_instance(seed: int = 0, T: int = 96, peak: float = 12.0,
                   beta: float = 4.0) -> Instance:
    """Small diurnal-trace instance used by integration tests."""
    rng = np.random.default_rng(seed)
    loads = diurnal_loads(T, peak=peak, rng=rng)
    m = int(np.ceil(peak * 1.3))
    return instance_from_loads(loads, m=m, beta=beta)


@pytest.fixture(autouse=True)
def _isolate_executor_state():
    """Shield tests from each other's executor/fault-harness state.

    The worker pool is module-global and persists across tests; a test
    that grows it (or leaves fault-injecting workers behind) changes
    how later tests schedule chunks — the full-suite-only flake in
    ``test_parallel_rows_bit_identical_under_both_backends``.  Tear
    down any pool a test created and always clear fault-plan state.

    The pinned-down cross-test coupling behind that flake is wider
    than the pool object itself: pool workers fork a *snapshot* of the
    parent — its ``REPRO_*`` environment (kernel selection, fault
    plan, memo sizing), its sweep memo and its instance memo — so any
    test that leaks one of those changes what later-forked workers
    compute relative to the in-process reference run.  Restore the
    environment knobs and drop the per-process memos after every test;
    both are cheap (the memos are tiny LRUs) and make each test's
    forks start from the same parent state.
    """
    import os

    from repro import kernels
    from repro.runner import executor, faults, instancestore
    env_keys = (kernels.ENV_VAR, kernels.ENV_MEMO, faults.ENV_VAR)
    env_before = {key: os.environ.get(key) for key in env_keys}
    pool_before = executor._POOL
    yield
    faults.deactivate()
    faults.reset()
    for key, value in env_before.items():
        if value is None:
            os.environ.pop(key, None)
        elif os.environ.get(key) != value:
            os.environ[key] = value
    kernels.clear_sweep_cache()
    instancestore.clear_memo()
    if executor._POOL is not None and executor._POOL is not pool_before:
        executor.shutdown_pool()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[0, 1, 2, 3])
def small_random_instance(request) -> Instance:
    """Four seeded small instances (brute-force verifiable)."""
    g = np.random.default_rng(100 + request.param)
    T = int(g.integers(2, 6))
    m = int(g.integers(1, 5))
    beta = float(g.uniform(0.3, 3.0))
    return random_convex_instance(g, T, m, beta)
