"""Lazy Capacity Provisioning for the discrete setting (Section 3).

At every time ``tau`` the algorithm computes the bounds ``x^L_tau`` (the
smallest last state of an optimizer of ``C^L_tau``, eq. (11)) and
``x^U_tau`` (the largest last state of an optimizer of ``C^U_tau``,
eq. (12))) and lazily projects its previous state into ``[x^L, x^U]``:

``x^LCP_tau = [x^LCP_{tau-1}]^{x^U_tau}_{x^L_tau}``            (eq. (13))

Theorem 2 shows this is 3-competitive, and Theorem 4 that no deterministic
online algorithm does better — LCP is *optimal* in the discrete setting.

With a prediction window ``w`` (Section 5.4, following Lin et al.), the
bounds at time ``tau`` become the ``tau``-th component of the optimizer
over the extended horizon ``tau + w``:
``x^{L,w}_tau = argmin_j ( hat-C^L_tau(j) + Q^L_tau(j) )`` where
``Q^L_tau(j)`` is the optimal cost of serving the ``w`` known future
functions starting from state ``j`` (and symmetrically for ``U``).
"""

from __future__ import annotations

import numpy as np

from .._util import argmin_first, argmin_last, prefix_min, suffix_min
from .base import OnlineAlgorithm
from .workfunction import WorkFunctions

__all__ = ["LCP", "EagerLCP", "lookahead_bounds"]


def _future_value_L(future: np.ndarray, beta: float,
                    states: np.ndarray) -> np.ndarray:
    """``Q^L(j)``: optimal cost of the future rows from state ``j`` with
    power-up charging and free end (backward DP, ``O(w m)``)."""
    Q = np.zeros_like(states)
    for i in range(future.shape[0] - 1, -1, -1):
        V = future[i] + Q
        # from j to j'': pay beta (j'' - j)^+ + V(j'')
        up = -beta * states + suffix_min(V + beta * states)
        stay = prefix_min(V)
        Q = np.minimum(stay, up)
    return Q


def _future_value_U(future: np.ndarray, beta: float,
                    states: np.ndarray) -> np.ndarray:
    """``Q^U(j)``: same with power-down charging ``beta (j - j'')^+``."""
    Q = np.zeros_like(states)
    for i in range(future.shape[0] - 1, -1, -1):
        V = future[i] + Q
        down = beta * states + prefix_min(V - beta * states)
        stay = suffix_min(V)
        Q = np.minimum(stay, down)
    return Q


def lookahead_bounds(wf: WorkFunctions,
                     future: np.ndarray) -> tuple[int, int]:
    """Window-extended LCP bounds ``(x^{L,w}_tau, x^{U,w}_tau)``.

    ``wf`` holds the work functions through ``f_tau``; ``future`` holds
    the known rows ``f_{tau+1} .. f_{tau+w}``.
    """
    states = np.arange(wf.m + 1, dtype=np.float64)
    QL = _future_value_L(future, wf.beta, states)
    QU = _future_value_U(future, wf.beta, states)
    lo = argmin_first(wf.CL + QL)
    hi = argmin_last(wf.CU + QU)
    if lo > hi:  # pragma: no cover - analogue of Lemma 6 for windows
        raise AssertionError(
            f"lookahead bounds crossed: x^L={lo} > x^U={hi}")
    return lo, hi


class LCP(OnlineAlgorithm):
    """Discrete Lazy Capacity Provisioning (eq. (13)); 3-competitive.

    Parameters
    ----------
    lookahead:
        Prediction-window length ``w >= 0``.  With ``w = 0`` this is the
        algorithm of Theorem 2.
    record_bounds:
        Keep the per-step ``(x^L, x^U)`` trajectory in :attr:`bounds_log`
        (used by tests of Lemmas 6 and 11 and by the examples).
    """

    fractional = False
    #: the step decision factors through ``(x^L, x^U)``, so a grid can
    #: replay many LCP-family jobs from one shared work-function sweep
    consumes_bounds = True

    def __init__(self, lookahead: int = 0, *, record_bounds: bool = False):
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.lookahead = lookahead
        self.name = "lcp" if lookahead == 0 else f"lcp(w={lookahead})"
        self._record = record_bounds
        self.bounds_log: list[tuple[int, int]] = []

    def reset(self, m: int, beta: float) -> None:
        self._wf = WorkFunctions(m, beta)
        self._set_state(0)
        self.bounds_log = []

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        self._wf.update(f_row)
        if self.lookahead > 0 and future is not None and future.shape[0] > 0:
            lo, hi = lookahead_bounds(self._wf, future)
        else:
            lo, hi = self._wf.bounds()
        return self.step_bounds(lo, hi)

    def step_bounds(self, lo: int, hi: int) -> int:
        """Eq. (13) from precomputed bounds (the shared-replay entry)."""
        if self._record:
            self.bounds_log.append((lo, hi))
        x = max(lo, min(hi, self.state))
        self._set_state(x)
        return x

    def run_bounds(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Whole-trajectory eq. (13) projection from a kernel sweep.

        A tight scalar scan over the precomputed bound trajectories —
        trivially the same integers :meth:`step_bounds` commits one at
        a time (including the :attr:`bounds_log` entries when
        ``record_bounds`` is set).
        """
        out = np.empty(len(lo), dtype=np.int64)
        x = self.state
        log = self.bounds_log if self._record else None
        for t, (b_lo, b_hi) in enumerate(zip(np.asarray(lo).tolist(),
                                             np.asarray(hi).tolist())):
            if log is not None:
                log.append((b_lo, b_hi))
            if x < b_lo:
                x = b_lo
            elif x > b_hi:
                x = b_hi
            out[t] = x
        self._set_state(x)
        return out


class EagerLCP(OnlineAlgorithm):
    """Anti-laziness ablation of LCP: always jump to the nearer bound.

    Where LCP projects its previous state into ``[x^L, x^U]`` (and so
    moves only when forced), this variant moves to the closest bound on
    every step.  It exists for the E12 ablation — laziness is the load-
    bearing idea of LCP, and this strawman loses to it on oscillating
    traces.
    """

    fractional = False
    name = "eager-lcp"
    consumes_bounds = True

    def reset(self, m: int, beta: float) -> None:
        self._wf = WorkFunctions(m, beta)
        self._set_state(0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        self._wf.update(f_row)
        return self.step_bounds(*self._wf.bounds())

    def step_bounds(self, lo: int, hi: int) -> int:
        """Jump to the bound nearer the previous state (ties go low)."""
        x = lo if abs(lo - self.state) <= abs(hi - self.state) else hi
        self._set_state(x)
        return x

    def run_bounds(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Whole-trajectory nearest-bound scan from a kernel sweep."""
        out = np.empty(len(lo), dtype=np.int64)
        x = self.state
        for t, (b_lo, b_hi) in enumerate(zip(np.asarray(lo).tolist(),
                                             np.asarray(hi).tolist())):
            x = b_lo if abs(b_lo - x) <= abs(b_hi - x) else b_hi
            out[t] = x
        self._set_state(x)
        return out
