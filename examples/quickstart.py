#!/usr/bin/env python
"""Quickstart: right-size a small data center, offline and online.

Builds a one-day diurnal workload, prices it with an energy + latency
cost model, and compares:

* the optimal offline schedule (the paper's O(T log m) algorithm),
* LCP, the 3-competitive online algorithm,
* the 2-competitive randomized algorithm (threshold rule + rounding),
* static provisioning (no right-sizing).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (LCP, RandomizedRounding, ThresholdFractional, run_online,
                   solve_binary_search)
from repro.analysis import format_table, optimal_cost, schedule_stats
from repro.online import solve_static
from repro.workloads import capacity_for, diurnal_loads, instance_from_loads


def main() -> None:
    rng = np.random.default_rng(42)

    # A day of hourly load observations for a service peaking at ~20
    # servers' worth of work, with the usual day/night swing.
    loads = diurnal_loads(24, peak=20.0, base_frac=0.2, rng=rng)
    m = capacity_for(loads)           # data-center size (25 servers)
    beta = 6.0                        # cost of powering a server up

    inst = instance_from_loads(loads, m=m, beta=beta, delay_weight=10.0)
    print(f"instance: T={inst.T} steps, m={inst.m} servers, beta={beta}")

    # --- offline optimum (Section 2) -----------------------------------
    offline = solve_binary_search(inst)
    print(f"\noptimal offline cost: {offline.cost:.2f} "
          f"({offline.iterations} refinement iterations)")
    print("optimal schedule:", offline.schedule.tolist())

    # --- online algorithms (Sections 3 and 4) --------------------------
    lcp = run_online(inst, LCP())
    randomized = run_online(
        inst, RandomizedRounding(ThresholdFractional(), rng=0))
    static = solve_static(inst)

    opt = optimal_cost(inst)
    rows = []
    for name, sched, cost in [
        ("offline optimal", offline.schedule, offline.cost),
        ("LCP (3-competitive)", lcp.schedule, lcp.cost),
        ("randomized (2-competitive)", randomized.schedule, randomized.cost),
        ("static provisioning", static.schedule, static.cost),
    ]:
        stats = schedule_stats(inst, sched)
        rows.append({
            "algorithm": name,
            "cost": cost,
            "vs_opt": cost / opt,
            "peak": stats["peak"],
            "power_ups": stats["power_ups"],
        })
    print("\n" + format_table(rows, title="cost comparison"))

    print("\nLCP schedule:       ", lcp.schedule.astype(int).tolist())
    print("randomized schedule:",
          randomized.schedule.astype(int).tolist())


if __name__ == "__main__":
    main()
