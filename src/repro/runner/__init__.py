"""Batch experiment runner: registry, scenario catalog, parallel engine.

The runner is the substrate every large-scale experiment stands on:

* :mod:`repro.runner.registry` — every offline solver and online
  algorithm under a stable name with the paper's taxonomy (variant,
  discrete/fractional, competitive ratio, lookahead support).
* :mod:`repro.runner.scenarios` — one named catalog of workload
  scenarios: the trace families of the experimental evaluation plus
  adversarial, random-convex and heterogeneous-cost instances.
* :mod:`repro.runner.engine` — expands a :class:`GridSpec` of
  (scenario x algorithm x seed x size) into jobs, solves each distinct
  instance's offline optimum once (phase 1), fans the algorithm jobs
  out on a ``multiprocessing`` pool with deterministic per-job seeding
  (phase 2) and aggregates competitive ratios.
* :mod:`repro.runner.jobcache` — the per-job content-addressed result
  store behind incremental grids: one JSON record per job / instance
  optimum, shared by every overlapping grid.
"""

from .engine import (GridSpec, aggregate_rows, instance_key, job_key,
                     parallel_map, run_grid)
from .jobcache import JobCache
from .registry import (PIPELINES, AlgorithmSpec, algorithm_names,
                       algorithm_table, get_spec, make_algorithm,
                       make_solver, solver_names)
from .scenarios import (Scenario, build_instance, get_scenario,
                        scenario_names, trace_suite)

__all__ = [
    "AlgorithmSpec", "PIPELINES", "algorithm_names", "algorithm_table",
    "get_spec", "make_algorithm", "make_solver", "solver_names",
    "Scenario", "build_instance", "get_scenario", "scenario_names",
    "trace_suite",
    "GridSpec", "JobCache", "aggregate_rows", "instance_key", "job_key",
    "parallel_map", "run_grid",
]
