"""E11 — the Lin et al.-style case study the paper's introduction invokes.

Regenerates the "value of right-sizing" table: cost savings of the
optimal offline schedule, LCP and the rounded 2-competitive algorithm
relative to static provisioning, across trace families and switching
costs.  Expected shape (Lin et al. Sections V-VI): savings are positive
and substantial on high-PMR traces, shrink as beta grows, and the online
algorithms capture part but not all of the offline savings.
"""

import numpy as np

from repro.analysis import optimal_cost
from repro.online import (LCP, RandomizedRounding, ThresholdFractional,
                          run_online, solve_static)
from repro.workloads import (capacity_for, hotmail_like_loads,
                             instance_from_loads, msr_like_loads,
                             peak_to_mean_ratio)

from conftest import record


def _build(trace: str, beta: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    gen = msr_like_loads if trace == "msr-like" else hotmail_like_loads
    loads = gen(24 * 7, peak=30.0, rng=rng)
    m = capacity_for(loads)
    inst = instance_from_loads(loads, m=m, beta=beta, delay_weight=10.0)
    return loads, inst


def test_e11_savings_table(benchmark):
    rows = []
    for trace in ("msr-like", "hotmail-like"):
        for beta in (1.0, 4.0, 16.0):
            loads, inst = _build(trace, beta)
            static = solve_static(inst).cost
            opt = optimal_cost(inst)
            lcp = run_online(inst, LCP()).cost
            rr = run_online(inst, RandomizedRounding(ThresholdFractional(),
                                                     rng=0)).cost
            rows.append({
                "trace": trace, "PMR": peak_to_mean_ratio(loads),
                "beta": beta,
                "opt_saving_%": 100 * (1 - opt / static),
                "lcp_saving_%": 100 * (1 - lcp / static),
                "rand_saving_%": 100 * (1 - rr / static),
            })
    record("E11_savings", rows,
           title="E11: right-sizing savings vs static provisioning")
    # Shape: offline savings positive everywhere and decreasing in beta.
    for trace in ("msr-like", "hotmail-like"):
        sub = [r for r in rows if r["trace"] == trace]
        assert all(r["opt_saving_%"] > 0 for r in sub)
        assert sub[0]["opt_saving_%"] >= sub[-1]["opt_saving_%"] - 1e-9
        # Online algorithms never beat offline.
        for r in sub:
            assert r["lcp_saving_%"] <= r["opt_saving_%"] + 1e-9
    _, inst = _build("hotmail-like", 4.0)
    benchmark(run_online, inst, LCP())


def test_e11_beta_envelope(benchmark):
    """OPT(beta) is a concave nondecreasing envelope whose slope is the
    optimal power-up count — the structural sensitivity behind 'savings
    shrink as beta grows'."""
    from repro.analysis import beta_sweep, is_concave_sequence
    _, inst = _build("hotmail-like", 1.0)
    betas = np.linspace(0.25, 24.0, 12)
    rows = beta_sweep(inst, betas)
    record("E11_beta_envelope",
           [{"beta": r["beta"], "opt_cost": r["opt_cost"],
             "power_ups": r["power_ups"],
             "switching_share": r["switching_share"]} for r in rows],
           title="E11: OPT(beta) envelope")
    costs = [r["opt_cost"] for r in rows]
    ups = [r["power_ups"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
    assert is_concave_sequence(costs)
    assert all(b <= a + 1e-9 for a, b in zip(ups, ups[1:]))
    benchmark(beta_sweep, inst, [1.0, 4.0])


def test_e11_higher_pmr_bigger_savings(benchmark):
    """Spikier traces leave more idle capacity on the table, so
    right-sizing saves more (Lin et al.'s PMR observation)."""
    rows = []
    for trace in ("msr-like", "hotmail-like"):
        savings = []
        pmrs = []
        for seed in range(3):
            loads, inst = _build(trace, 4.0, seed=seed)
            static = solve_static(inst).cost
            savings.append(1 - optimal_cost(inst) / static)
            pmrs.append(peak_to_mean_ratio(loads))
        rows.append({"trace": trace, "mean_PMR": float(np.mean(pmrs)),
                     "mean_opt_saving_%": 100 * float(np.mean(savings))})
    record("E11_pmr", rows, title="E11: savings grow with PMR")
    assert rows[1]["mean_PMR"] > rows[0]["mean_PMR"]
    assert rows[1]["mean_opt_saving_%"] > rows[0]["mean_opt_saving_%"]
    _, inst = _build("msr-like", 4.0)
    benchmark(solve_static, inst)
