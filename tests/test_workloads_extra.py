"""Tests for the regime-switching and composition workload generators."""

import numpy as np
import pytest

from repro.workloads import (compose_loads, constant_loads, diurnal_loads,
                             regime_switching_loads)


class TestRegimeSwitching:
    def test_levels_respected(self):
        loads = regime_switching_loads(500, peak=10.0,
                                       levels=(0.2, 0.6, 1.0),
                                       rng=np.random.default_rng(0))
        assert set(np.round(loads, 6)) <= {2.0, 6.0, 10.0}

    def test_dwell_controls_switch_rate(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        fast = regime_switching_loads(2000, peak=5.0, dwell=3.0, rng=rng1)
        slow = regime_switching_loads(2000, peak=5.0, dwell=50.0, rng=rng2)
        def changes(x):
            return int(np.count_nonzero(np.diff(x)))

        assert changes(fast) > changes(slow)

    def test_never_repeats_level_on_switch(self):
        loads = regime_switching_loads(1000, peak=1.0,
                                       levels=(0.1, 0.5, 0.9),
                                       dwell=5.0,
                                       rng=np.random.default_rng(2))
        d = np.diff(loads)
        boundaries = np.flatnonzero(d)
        # A regime change always lands on a different level by design;
        # every boundary shows a real jump.
        assert np.all(np.abs(d[boundaries]) > 1e-9)

    def test_seed_determinism(self):
        a = regime_switching_loads(300, peak=7.0,
                                   rng=np.random.default_rng(3))
        b = regime_switching_loads(300, peak=7.0,
                                   rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            regime_switching_loads(10, peak=1.0, levels=())
        with pytest.raises(ValueError):
            regime_switching_loads(10, peak=1.0, dwell=0.5)


class TestCompose:
    def test_weighted_sum(self):
        a = constant_loads(5, 2.0)
        b = constant_loads(5, 3.0)
        out = compose_loads(a, b, weights=[1.0, 2.0])
        np.testing.assert_allclose(out, 8.0)

    def test_default_weights(self):
        a = constant_loads(4, 1.0)
        np.testing.assert_allclose(compose_loads(a, a), 2.0)

    def test_clipping_at_zero(self):
        a = constant_loads(3, 1.0)
        out = compose_loads(a, a, weights=[1.0, -5.0])
        np.testing.assert_allclose(out, 0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compose_loads(constant_loads(3, 1.0), constant_loads(4, 1.0))

    def test_weight_count_checked(self):
        a = constant_loads(3, 1.0)
        with pytest.raises(ValueError):
            compose_loads(a, a, weights=[1.0])

    def test_daily_plus_weekly_shape(self):
        rng = np.random.default_rng(4)
        daily = diurnal_loads(24 * 7, peak=10.0, period=24, noise=0.0,
                              rng=rng)
        weekly = diurnal_loads(24 * 7, peak=4.0, period=24 * 7, noise=0.0,
                               rng=rng)
        out = compose_loads(daily, weekly)
        assert out.shape == (24 * 7,)
        assert out.max() <= 14.0 + 1e-9
        # The weekly modulation separates identical daily phases.
        assert abs(out[12] - out[12 + 24 * 3]) > 0.1
