"""Lower-bound constructions and adversarial games (Section 5)."""

from .adversary import (ContinuousAdversary, DeterministicDiscreteAdversary,
                        RestrictedDiscreteAdversary, restricted_rows)
from .games import (GamePlayer, GameResult, LowerBoundGame,
                    play_dilated_game, play_game, play_randomized_game,
                    ratio_curve)

__all__ = [
    "ContinuousAdversary", "DeterministicDiscreteAdversary",
    "RestrictedDiscreteAdversary", "restricted_rows",
    "GamePlayer", "GameResult", "LowerBoundGame",
    "play_dilated_game", "play_game", "play_randomized_game",
    "ratio_curve",
]
