"""Tests for the 2-competitive fractional threshold algorithm and its
competitive certificate (DESIGN.md §5, docs/ANALYSIS.md)."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.core.instance import Instance
from repro.online import AlgorithmB, ThresholdFractional, run_online
from repro.offline import solve_dp
from tests.conftest import (hinge_instance, random_convex_instance,
                            trace_instance)


class TestTwoCompetitive:
    def test_random_instances(self):
        rng = np.random.default_rng(100)
        for _ in range(40):
            inst = random_convex_instance(rng, int(rng.integers(1, 25)),
                                          int(rng.integers(1, 12)),
                                          float(rng.uniform(0.2, 5)))
            res = run_online(inst, ThresholdFractional(validate=True))
            assert res.cost <= 2 * optimal_cost(inst) + 1e-7

    def test_strong_bound_with_min_slack(self):
        """The analysis actually shows cost <= 2 OPT - sum_t min f_t."""
        rng = np.random.default_rng(101)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 15)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.2, 4)))
            res = run_online(inst, ThresholdFractional())
            slack = float(inst.F.min(axis=1).sum())
            assert res.cost <= 2 * optimal_cost(inst) - slack + 1e-7

    def test_traces(self):
        for seed in range(4):
            inst = trace_instance(seed=seed, T=60, peak=8.0, beta=4.0)
            res = run_online(inst, ThresholdFractional())
            assert res.cost <= 2 * optimal_cost(inst) + 1e-7

    def test_hinge_oscillation(self):
        inst = hinge_instance([0, 6, 0, 6, 0, 6, 0], m=6, beta=2.0)
        res = run_online(inst, ThresholdFractional())
        assert res.cost <= 2 * optimal_cost(inst) + 1e-9


class TestMechanics:
    def test_threshold_profile_monotone(self):
        rng = np.random.default_rng(102)
        inst = random_convex_instance(rng, 20, 10, 1.0)
        algo = ThresholdFractional(validate=True)
        algo.reset(inst.m, inst.beta)
        for t in range(inst.T):
            algo.step(inst.F[t])
            q = algo.thresholds
            assert np.all(np.diff(q) <= 1e-12)
            assert np.all(q >= 0) and np.all(q <= 1)

    def test_state_is_threshold_sum(self):
        rng = np.random.default_rng(103)
        inst = random_convex_instance(rng, 10, 6, 1.0)
        algo = ThresholdFractional()
        algo.reset(inst.m, inst.beta)
        for t in range(inst.T):
            x = algo.step(inst.F[t])
            assert x == pytest.approx(algo.thresholds.sum())

    def test_charge_half_step_size(self):
        """A hinge of slope eps moves each charged threshold by eps/beta
        (= eps/2 for beta = 2, the paper's algorithm-B step)."""
        inst = Instance(beta=2.0, F=np.array([[0.5, 0.0]]))  # slope -0.5
        algo = ThresholdFractional()
        algo.reset(1, 2.0)
        x = algo.step(inst.F[0])
        assert x == pytest.approx(0.25)

    def test_flat_function_no_move(self):
        algo = ThresholdFractional()
        algo.reset(4, 1.0)
        x = algo.step(np.full(5, 3.0))
        assert x == 0.0

    def test_matches_algorithm_B_on_two_state(self):
        """On m = 1 the threshold rule IS algorithm B (Section 5.2.1)."""
        rng = np.random.default_rng(104)
        rows = []
        for _ in range(200):
            eps = rng.uniform(0.01, 0.3)
            rows.append([0.0, eps] if rng.random() < 0.5 else [eps, 0.0])
        inst = Instance(beta=2.0, F=np.array(rows))
        a = run_online(inst, ThresholdFractional())
        b = run_online(inst, AlgorithmB())
        np.testing.assert_allclose(a.schedule, b.schedule, atol=1e-12)
        assert a.cost == pytest.approx(b.cost)


class TestPotentialCertificate:
    """Per-step potential inequality from docs/ANALYSIS.md, checked on the
    two-state game: ALG_t + Phi_t - Phi_{t-1} <= 2 OPT_t, with
    Phi = (beta/2) (d + d^2), d = |q - o|, against an integral OPT."""

    def _steps(self, rows, beta, opt_schedule):
        q = 0.0
        o_prev = 0
        phi_prev = 0.0
        for row, o in zip(rows, opt_schedule):
            g = row[1] - row[0]
            q_new = min(max(q - g / beta, 0.0), 1.0)
            alg = (1 - q_new) * row[0] + q_new * row[1] \
                + (beta / 2) * abs(q_new - q)
            opt = row[int(o)] + (beta / 2) * abs(int(o) - o_prev)
            d = abs(q_new - int(o))
            phi = (beta / 2) * (d + d * d)
            yield alg, opt, phi - phi_prev
            q, o_prev, phi_prev = q_new, int(o), phi

    def test_inequality_on_random_two_state_games(self):
        rng = np.random.default_rng(105)
        for _ in range(30):
            T = int(rng.integers(2, 40))
            beta = float(rng.uniform(0.5, 4))
            rows = []
            for _ in range(T):
                eps = rng.uniform(0.0, beta)  # slopes up to beta
                rows.append([0.0, eps] if rng.random() < 0.5 else [eps, 0.0])
            rows = np.array(rows)
            inst = Instance(beta=beta, F=rows)
            opt_schedule = solve_dp(inst).schedule
            for alg, opt, dphi in self._steps(rows, beta, opt_schedule):
                assert alg + dphi <= 2 * opt + 1e-9
