"""E11 — the Lin et al.-style case study the paper's introduction invokes.

Regenerates the "value of right-sizing" table: cost savings of the
optimal offline schedule, LCP and the rounded 2-competitive algorithm
relative to static provisioning, across trace families and switching
costs.  Expected shape (Lin et al. Sections V-VI): savings are positive
and substantial on high-PMR traces, shrink as beta grows, and the online
algorithms capture part but not all of the offline savings.

The (trace x beta) sweep runs as an engine grid: `case-msr` /
`case-hotmail` scenarios with the switching cost on the grid's
``params`` axis, `static`/`lcp`/`randomized` fanned out per instance
and the offline optimum hoisted once by phase 1.
"""

import numpy as np

from repro.online import LCP, run_online
from repro.runner import GridSpec, build_instance, run_grid
from repro.runner.scenarios import case_study_loads
from repro.workloads import peak_to_mean_ratio

from conftest import record

_BETAS = (1.0, 4.0, 16.0)
_TRACES = {"case-msr": "msr-like", "case-hotmail": "hotmail-like"}


def _savings_rows(grid_rows):
    """Pivot engine rows into one savings row per (trace, beta)."""
    by_cell: dict = {}
    for r in grid_rows:
        by_cell.setdefault((r["scenario"], r["beta"], r["seed"]),
                           {})[r["algorithm"]] = r
    out = []
    for (scenario, beta, seed), cell in by_cell.items():
        static = cell["static"]["cost"]
        opt = cell["static"]["opt"]
        loads = case_study_loads(scenario, 24 * 7, seed)
        out.append({
            "trace": _TRACES[scenario], "PMR": peak_to_mean_ratio(loads),
            "beta": beta, "seed": seed,
            "opt_saving_%": 100 * (1 - opt / static),
            "lcp_saving_%": 100 * (1 - cell["lcp"]["cost"] / static),
            "rand_saving_%":
                100 * (1 - cell["randomized"]["cost"] / static),
        })
    return out


def test_e11_savings_table(benchmark):
    spec = GridSpec(scenarios=tuple(_TRACES),
                    algorithms=("static", "lcp", "randomized"),
                    seeds=(0,), sizes=(24 * 7,),
                    params=tuple({"beta": b} for b in _BETAS))
    rows = sorted(_savings_rows(run_grid(spec)),
                  key=lambda r: (r["trace"], r["beta"]))
    record("E11_savings",
           [{k: v for k, v in r.items() if k != "seed"} for r in rows],
           title="E11: right-sizing savings vs static provisioning")
    # Shape: offline savings positive everywhere and decreasing in beta.
    for trace in _TRACES.values():
        sub = [r for r in rows if r["trace"] == trace]
        assert all(r["opt_saving_%"] > 0 for r in sub)
        assert sub[0]["opt_saving_%"] >= sub[-1]["opt_saving_%"] - 1e-9
        # Online algorithms never beat offline.
        for r in sub:
            assert r["lcp_saving_%"] <= r["opt_saving_%"] + 1e-9
    inst = build_instance("case-hotmail", 24 * 7, 0, params={"beta": 4.0})
    benchmark(run_online, inst, LCP())


def test_e11_beta_envelope(benchmark):
    """OPT(beta) is a concave nondecreasing envelope whose slope is the
    optimal power-up count — the structural sensitivity behind 'savings
    shrink as beta grows'."""
    from repro.analysis import beta_sweep, is_concave_sequence
    inst = build_instance("case-hotmail", 24 * 7, 0, params={"beta": 1.0})
    betas = np.linspace(0.25, 24.0, 12)
    rows = beta_sweep(inst, betas)
    record("E11_beta_envelope",
           [{"beta": r["beta"], "opt_cost": r["opt_cost"],
             "power_ups": r["power_ups"],
             "switching_share": r["switching_share"]} for r in rows],
           title="E11: OPT(beta) envelope")
    costs = [r["opt_cost"] for r in rows]
    ups = [r["power_ups"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
    assert is_concave_sequence(costs)
    assert all(b <= a + 1e-9 for a, b in zip(ups, ups[1:]))
    benchmark(beta_sweep, inst, [1.0, 4.0])


def test_e11_higher_pmr_bigger_savings(benchmark):
    """Spikier traces leave more idle capacity on the table, so
    right-sizing saves more (Lin et al.'s PMR observation)."""
    spec = GridSpec(scenarios=tuple(_TRACES),
                    algorithms=("static", "lcp", "randomized"),
                    seeds=(0, 1, 2), sizes=(24 * 7,),
                    params=({"beta": 4.0},))
    cells = _savings_rows(run_grid(spec))
    rows = []
    for trace in _TRACES.values():
        sub = [r for r in cells if r["trace"] == trace]
        rows.append({
            "trace": trace,
            "mean_PMR": float(np.mean([r["PMR"] for r in sub])),
            "mean_opt_saving_%":
                float(np.mean([r["opt_saving_%"] for r in sub])),
        })
    record("E11_pmr", rows, title="E11: savings grow with PMR")
    assert rows[1]["mean_PMR"] > rows[0]["mean_PMR"]
    assert rows[1]["mean_opt_saving_%"] > rows[0]["mean_opt_saving_%"]
    from repro.online import solve_static
    inst = build_instance("case-msr", 24 * 7, 0, params={"beta": 4.0})
    benchmark(solve_static, inst)
