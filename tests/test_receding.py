"""Tests for RHC and AFHC (prediction-window comparators)."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.online import (AveragingFixedHorizonControl, LCP,
                          RecedingHorizonControl, run_online)
from repro.online.receding import _horizon_plan
from tests.conftest import random_convex_instance, trace_instance


class TestHorizonPlan:
    def test_matches_offline_dp_from_zero(self):
        """A plan over the whole horizon from state 0 is the offline
        optimum."""
        from repro.offline import solve_dp
        rng = np.random.default_rng(160)
        for _ in range(10):
            inst = random_convex_instance(rng, int(rng.integers(1, 8)),
                                          int(rng.integers(1, 6)),
                                          float(rng.uniform(0.3, 3)))
            plan = _horizon_plan(inst.F, inst.beta, 0)
            res = solve_dp(inst)
            from repro.core.schedule import cost
            assert cost(inst, plan) == pytest.approx(res.cost)

    def test_start_state_respected(self):
        """Starting high makes staying high free of switching cost."""
        F = np.array([[0.0, 0.1], [0.0, 0.1]])
        plan_low = _horizon_plan(F, 10.0, 0)
        plan_high = _horizon_plan(F, 10.0, 1)
        np.testing.assert_array_equal(plan_low, [0, 0])
        # From state 1, staying costs 0.2 < powering down saves nothing
        # extra (down is free) — the plan drops to 0.
        np.testing.assert_array_equal(plan_high, [0, 0])

    def test_start_state_avoids_up_cost(self):
        F = np.array([[1.0, 0.0]])
        assert _horizon_plan(F, 0.5, 1)[0] == 1
        assert _horizon_plan(F, 5.0, 0)[0] == 0


class TestRHC:
    def test_full_lookahead_is_near_optimal(self):
        rng = np.random.default_rng(161)
        for _ in range(6):
            inst = random_convex_instance(rng, 10, 6,
                                          float(rng.uniform(0.3, 2)))
            res = run_online(inst, RecedingHorizonControl(lookahead=inst.T))
            assert res.cost <= 1.6 * optimal_cost(inst) + 1e-9

    def test_zero_lookahead_is_greedy_tracking(self):
        rng = np.random.default_rng(162)
        inst = random_convex_instance(rng, 12, 5, 1.0)
        res = run_online(inst, RecedingHorizonControl())
        assert res.schedule.shape == (12,)
        assert res.cost < np.inf

    def test_lookahead_improves_on_traces(self):
        total0 = total6 = 0.0
        for seed in range(4):
            inst = trace_instance(seed=seed, T=72, peak=10.0, beta=5.0)
            total0 += run_online(inst, RecedingHorizonControl()).cost
            total6 += run_online(inst,
                                 RecedingHorizonControl(lookahead=6)).cost
        assert total6 <= total0 * 1.001

    def test_validation(self):
        with pytest.raises(ValueError):
            RecedingHorizonControl(lookahead=-1)


class TestAFHC:
    def test_fractional_states_within_range(self):
        rng = np.random.default_rng(163)
        inst = random_convex_instance(rng, 20, 6, 1.0)
        res = run_online(inst, AveragingFixedHorizonControl(lookahead=3))
        assert np.all(res.schedule >= 0)
        assert np.all(res.schedule <= inst.m)

    def test_zero_lookahead_single_controller(self):
        """With w = 0 AFHC is one controller re-planning every step —
        integral states."""
        rng = np.random.default_rng(164)
        inst = random_convex_instance(rng, 10, 4, 1.0)
        res = run_online(inst, AveragingFixedHorizonControl())
        assert np.allclose(res.schedule, np.round(res.schedule))

    def test_reasonable_on_traces(self):
        inst = trace_instance(seed=2, T=72, peak=10.0, beta=5.0)
        res = run_online(inst, AveragingFixedHorizonControl(lookahead=6))
        assert res.cost <= 3 * optimal_cost(inst)

    def test_validation(self):
        with pytest.raises(ValueError):
            AveragingFixedHorizonControl(lookahead=-1)


class TestComparators:
    def test_all_window_algorithms_close_on_smooth_traces(self):
        """LCP(w), RHC(w), AFHC(w) all land within a modest band of the
        optimum on smooth diurnal traces (aggregate)."""
        totals = {"lcp": 0.0, "rhc": 0.0, "afhc": 0.0, "opt": 0.0}
        for seed in range(3):
            inst = trace_instance(seed=seed, T=96, peak=12.0, beta=4.0)
            totals["lcp"] += run_online(inst, LCP(lookahead=6)).cost
            totals["rhc"] += run_online(
                inst, RecedingHorizonControl(lookahead=6)).cost
            totals["afhc"] += run_online(
                inst, AveragingFixedHorizonControl(lookahead=6)).cost
            totals["opt"] += optimal_cost(inst)
        for name in ("lcp", "rhc", "afhc"):
            assert totals[name] <= 1.35 * totals["opt"], name
