"""Server-farm simulator: queueing, energy and transition accounting.

Discrete-time fluid simulation of ``m`` homogeneous servers.  Each step:

1. the controller sets the number of active servers ``x_t`` (powering up
   from sleep costs transition energy and, optionally, a setup delay
   during which the server burns power but serves nothing);
2. arriving work joins the backlog; active, ready servers drain it at
   ``service_rate`` work units per server-step (processor sharing);
3. metrics are recorded: energy (active/idle/sleep power + transition
   energy), latency (backlog-based via Little's law), SLA violations.

The model is deliberately simple — a fluid M/G/1-PS farm — but it
produces the two quantities the paper's cost functions abstract (energy
and delay), with the right qualitative behavior: delay explodes as
utilization approaches 1, energy is roughly linear in active servers,
and switching consumes real energy.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ServerPowerModel", "StepMetrics", "SimLog", "DataCenter"]


@dataclasses.dataclass(frozen=True)
class ServerPowerModel:
    """Per-server power/energy parameters (arbitrary energy units).

    Defaults reflect the stylized facts the paper cites: an idle active
    server burns about half its busy power; sleeping is nearly free;
    a power-up costs roughly the energy of running busy for
    ``setup_steps`` steps plus a migration overhead.
    """

    busy_power: float = 1.0
    idle_power: float = 0.5
    sleep_power: float = 0.02
    transition_energy: float = 2.0
    setup_steps: int = 0
    service_rate: float = 1.0

    def __post_init__(self):
        for name in ("busy_power", "idle_power", "sleep_power",
                     "transition_energy", "service_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.service_rate == 0:
            raise ValueError("service_rate must be positive")
        if self.setup_steps < 0:
            raise ValueError("setup_steps must be non-negative")


@dataclasses.dataclass(frozen=True)
class StepMetrics:
    """Measurements of one simulated step."""

    active: int
    ready: int
    arrived_work: float
    served_work: float
    backlog: float
    utilization: float
    latency: float
    energy: float
    transition_energy: float


@dataclasses.dataclass
class SimLog:
    """Accumulated simulation metrics."""

    steps: list

    @property
    def total_energy(self) -> float:
        return float(sum(s.energy + s.transition_energy for s in self.steps))

    @property
    def total_latency(self) -> float:
        return float(sum(s.latency for s in self.steps))

    @property
    def mean_utilization(self) -> float:
        vals = [s.utilization for s in self.steps if s.ready > 0]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def final_backlog(self) -> float:
        return self.steps[-1].backlog if self.steps else 0.0

    def total_cost(self, latency_weight: float = 1.0) -> float:
        """Scalar objective: energy + weight * latency."""
        return self.total_energy + latency_weight * self.total_latency


class DataCenter:
    """Stateful fluid simulator of an ``m``-server farm."""

    def __init__(self, m: int, power: ServerPowerModel | None = None):
        if m < 1:
            raise ValueError("need at least one server")
        self.m = m
        self.power = power or ServerPowerModel()
        self.reset()

    def reset(self) -> None:
        """All servers asleep, empty backlog."""
        self._active = 0
        self._backlog = 0.0
        # Remaining setup steps per pending server batch: list of
        # [servers, steps_left].
        self._warming: list[list[int]] = []

    @property
    def active(self) -> int:
        return self._active

    @property
    def backlog(self) -> float:
        return self._backlog

    def _ready_servers(self) -> int:
        warming = sum(batch[0] for batch in self._warming)
        return self._active - warming

    def step(self, x: int, arriving_work: float) -> StepMetrics:
        """Advance one step with target active count ``x``."""
        if not 0 <= x <= self.m:
            raise ValueError(f"active count must be in [0, {self.m}]")
        if arriving_work < 0:
            raise ValueError("arriving work must be non-negative")
        p = self.power
        transition = 0.0
        powered_up = max(x - self._active, 0)
        if powered_up > 0:
            transition = p.transition_energy * powered_up
            if p.setup_steps > 0:
                self._warming.append([powered_up, p.setup_steps])
        if x < self._active:
            # Powering down is immediate and free (the paper folds any
            # power-down cost into beta); drop warming servers first.
            drop = self._active - x
            while drop > 0 and self._warming:
                batch = self._warming[-1]
                take = min(drop, batch[0])
                batch[0] -= take
                drop -= take
                if batch[0] == 0:
                    self._warming.pop()
        self._active = x
        ready = self._ready_servers()

        # Serve the fluid backlog.
        self._backlog += arriving_work
        capacity = ready * p.service_rate
        served = min(self._backlog, capacity)
        self._backlog -= served
        utilization = served / capacity if capacity > 0 else (
            1.0 if self._backlog > 0 else 0.0)

        # Latency proxy via Little's law: time-in-system mass this step.
        # Work still queued waits a full step; served work waits half.
        latency = self._backlog + 0.5 * served

        # Energy: busy fraction at busy power, rest of the ready servers
        # idle, warming servers burn busy power, sleeping servers sleep.
        busy = served / p.service_rate
        warming = self._active - ready
        energy = (busy * p.busy_power
                  + (ready - busy) * p.idle_power
                  + warming * p.busy_power
                  + (self.m - self._active) * p.sleep_power)
        # Warm-up clocks tick at the end of the step: setup_steps = k
        # blocks a powered-up server for exactly k full steps.
        for batch in self._warming:
            batch[1] -= 1
        self._warming = [b for b in self._warming if b[1] > 0 and b[0] > 0]
        return StepMetrics(active=x, ready=ready,
                           arrived_work=arriving_work, served_work=served,
                           backlog=self._backlog, utilization=utilization,
                           latency=latency, energy=energy,
                           transition_energy=transition)

    def run(self, schedule, work) -> SimLog:
        """Simulate a whole schedule against an arriving-work sequence."""
        schedule = np.asarray(schedule)
        work = np.asarray(work, dtype=np.float64)
        if schedule.shape != work.shape:
            raise ValueError("schedule and work must have equal length")
        self.reset()
        log = SimLog(steps=[])
        for x, a in zip(schedule, work):
            log.steps.append(self.step(int(x), float(a)))
        return log
