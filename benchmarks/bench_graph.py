"""E1 — Figure 1: the layered graph construction.

Reproduces the structure of Figure 1 (vertex/edge census for a range of
(T, m)) and validates that a shortest path through the explicit graph
equals the DP optimum, i.e. that paths really are schedules.
"""

import numpy as np

from repro.offline import (build_graph, edge_count, solve_dp, solve_graph,
                           vertex_count)

from conftest import random_convex_instance, record


def test_e1_figure1_census(benchmark, rng):
    """Vertex/edge counts match the closed forms of Figure 1."""
    inst = random_convex_instance(rng, T=64, m=48, beta=2.0)
    graph = benchmark(build_graph, inst)
    rows = []
    for T, m in [(1, 1), (4, 4), (16, 8), (64, 48), (100, 100)]:
        rows.append({
            "T": T, "m": m,
            "|V| = T(m+1)+2": vertex_count(T, m),
            "|E| = 2(m+1)+(T-1)(m+1)^2": edge_count(T, m),
        })
    record("E1_census", rows, title="E1: Figure-1 graph census")
    assert graph.num_vertices == vertex_count(64, 48)
    assert graph.num_edges == edge_count(64, 48)


def test_e1_shortest_path_equals_dp(benchmark, rng):
    """Shortest v_{0,0} -> v_{T+1,0} path cost == optimal schedule cost."""
    inst = random_convex_instance(rng, T=48, m=32, beta=1.5)
    res = benchmark(solve_graph, inst)
    dp = solve_dp(inst)
    rows = [{
        "graph_sp_cost": res.cost,
        "dp_cost": dp.cost,
        "equal": bool(abs(res.cost - dp.cost) < 1e-9),
    }]
    record("E1_shortest_path", rows,
           title="E1: shortest path vs DP optimum")
    assert abs(res.cost - dp.cost) < 1e-9
    assert np.array_equal(
        np.sort(res.schedule), np.sort(res.schedule))  # schedule well-formed
