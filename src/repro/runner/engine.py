"""Zero-rebuild pipelined batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon x params); the engine *streams*
it: job coordinates are generated lazily, submitted in bounded batches
(``batch_size``), and finished rows flow — in job order — into a
pluggable result sink (:mod:`repro.runner.sinks`), so a million-job
grid holds O(``pipeline_depth`` x batch) pending records in the parent
instead of the whole table.  Each batch runs through three phases —
in-process or on a persistent process pool with fused chunking:

* **Phase 0 — materialization.**  With a ``store_dir``, each distinct
  ``(scenario, pipeline, T, inst_seed)`` instance is built exactly once
  and its dense payload written to the content-addressed
  :class:`~repro.runner.instancestore.InstanceStore`; later phases (and
  every other grid sharing the store) reopen it read-only via ``mmap``
  instead of re-tabulating cost matrices.  Even without a store, a
  per-process memo guarantees no process builds the same instance twice.
* **Phase 1 — instances.**  Each distinct instance's offline optimum is
  solved exactly once, however many algorithms the grid runs on it.
  Optima are persisted when a cache directory is given, so a grid with
  ``A`` algorithms pays roughly ``1/A`` of the naive per-job cost.
* **Phase 2 — algorithms.**  Algorithm jobs fan out in *fused chunks*
  (``chunk_jobs`` jobs per worker round-trip, amortizing pickle/IPC),
  each reusing its instance's hoisted optimum; jobs of one instance
  whose algorithms consume work-function bounds (the LCP family) are
  replayed together from one shared ``O(T m)`` sweep
  (:func:`repro.online.base.run_online_many`).  A batch's rows are
  flushed to the sink — in job order — as soon as the batch completes
  *and* every earlier batch has flushed, and each job's row is written
  to the per-job cache the moment its chunk finishes — so a killed grid
  resumes from the cache paying only the jobs it never finished.

Batches themselves are *pipelined* on the persistent pool: up to
``pipeline_depth`` batches are in flight at once, so while batch N's
phase-2 chunks run, the parent is already generating batch N+1 and
submitting its phase-0 materializations and phase-1 solves — workers
never idle waiting for the parent to build the next batch.  The
``overlapped_batches`` and ``inflight_max`` stats counters prove the
overlap (both stay at 0/1 on the in-process path, where each batch
completes synchronously).

Three properties make this the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows — with or
  without the instance store (``np.save`` round-trips float64 exactly).
* **Caching** — results persist per *job* in a content-addressed store
  (:class:`~repro.runner.jobcache.JobCache`, JSON-dir or SQLite
  backend): one record per job key, plus one per instance optimum.
  Overlapping grids share work, and extending a grid by one seed
  executes only the new seed's jobs.
* **Pool reuse** — the engine keeps one module-level
  ``ProcessPoolExecutor`` alive across phases, grids and callers
  (``analysis/sweep``, ``repro lowerbound``, :func:`parallel_map`), so
  the many small grids the benches run don't pay a pool fork each;
  :func:`shutdown_pool` tears it down explicitly (and at interpreter
  exit), cancelling queued-but-unstarted tasks so an interrupted
  pipeline never leaks orphaned work.  Jobs are handed to workers in
  contiguous chunks to amortize IPC, while row order always matches
  job order.

Algorithms are resolved through :mod:`repro.runner.registry`; the
registry entry's ``pipeline`` selects the instance representation, so
restricted-model (``restricted``), heterogeneous (``dp_hetero``,
``static_hetero``, ``greedy_hetero``) and game (``game-*``/``sim-*``
players on the Section 5 adversaries and E13 simulator rollouts)
entries run under the same engine — and land in the same aggregate
tables — as the general-model algorithms.
"""

from __future__ import annotations

import atexit
import collections
import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import zlib
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)

from .. import kernels
from . import instancestore
from .instancestore import InstanceStore, get_instance
from .jobcache import JobCache, content_key
from .sinks import ListSink, ResultSink

__all__ = [
    "GridSpec",
    "run_grid",
    "aggregate_rows",
    "job_key",
    "instance_key",
    "JobCache",
    "parallel_map",
    "shutdown_pool",
]

#: bump when row contents / seeding change, to invalidate stale caches
#: (v5: memoryless f-bar evaluation shared between the per-step and the
#: vectorized-kernel paths, which may shift cached costs by ulps)
ENGINE_VERSION = 5

#: how many batches the pipelined core keeps in flight at once
DEFAULT_PIPELINE_DEPTH = 2

_JOB_FIELDS = ("scenario", "algorithm", "T", "inst_seed", "seed",
               "lookahead", "params")


def _canonical_params(entry) -> str:
    """One ``params``-axis entry as a canonical JSON string (the form
    job tuples, cache keys and worker tasks carry)."""
    if isinstance(entry, str):
        entry = json.loads(entry)
    if not isinstance(entry, dict):
        raise ValueError(f"params entries must be dicts, got {entry!r}")
    return json.dumps(entry, sort_keys=True)


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms, offline solvers and game players interchangeably; all
    are resolved through :mod:`repro.runner.registry`.

    ``params`` is an extra axis of scenario-parameter dicts (each kept
    as a canonical JSON string), crossed with the other axes and passed
    to the scenario builder as keyword arguments — the shape the
    lower-bound eps grids (``{"eps": 0.1}``) and the case study's beta
    sweep (``{"beta": 4.0}``) need.  The default is one empty dict, so
    parameterless grids are unchanged.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None
    params: tuple = ("{}",)

    def __post_init__(self):
        """Canonicalize the axes and validate that none is empty."""
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        object.__setattr__(self, "params",
                           tuple(_canonical_params(p) for p in self.params))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes and self.params):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples)."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    def cache_key(self) -> str:
        """Stable content hash of the spec (used as a display id; the
        result cache is keyed per job, not per grid)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def iter_jobs(self):
        """Generate job coordinate tuples lazily, in deterministic
        order.  A job's instance coordinates vary slowest within one
        (T, scenario, params, seed) block — every job of one instance
        is contiguous, which is what lets the streaming core keep only
        a small window of solved optima alive."""
        for T in self.sizes:
            for scenario in self.scenarios:
                for params in self.params:
                    for seed in self.seeds:
                        inst_seed = (seed if self.instance_seed is None
                                     else self.instance_seed)
                        for algorithm in self.algorithms:
                            yield (scenario, algorithm, T, inst_seed,
                                   seed, self.lookahead, params)

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        return list(self.iter_jobs())

    def __len__(self) -> int:
        """Number of jobs the spec expands to (product of the axes)."""
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes) * len(self.params))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    blob = (f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
            f"|{params}")
    return zlib.crc32(blob.encode())


def job_key(job: tuple) -> str:
    """Content-addressed cache key of one grid job."""
    return content_key({"kind": "job",
                        "engine_version": ENGINE_VERSION,
                        **dict(zip(_JOB_FIELDS, job))})


def _instance_coords(job: tuple) -> tuple:
    """The phase-0/1 coordinates a job's instance is built from."""
    from .registry import get_spec
    scenario, algorithm, T, inst_seed, _seed, _lookahead, params = job
    return (scenario, get_spec(algorithm).pipeline, T, inst_seed, params)


def instance_key(coords: tuple) -> str:
    """Content-addressed cache key of one instance's offline optimum."""
    scenario, pipeline, T, inst_seed, params = \
        instancestore.split_coords(coords)
    return content_key({"kind": "instance",
                        "engine_version": ENGINE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed, "params": params})


def _solve_instance(task: tuple) -> dict:
    """Phase-1 job: resolve one instance, solve its offline optimum once.

    ``task`` is ``(coords, store_root)``; must stay module-level (pool
    pickling).  Returns the per-instance record reused by every phase-2
    job on the same instance.  Game instances delegate to their own
    ``baseline()`` — adaptive games have no algorithm-independent
    optimum (``opt`` is ``None``), simulator games hoist the simulated
    cost of the optimal schedule.
    """
    coords, store_root = task
    pipeline = coords[1]
    inst = get_instance(coords, store_root)
    if pipeline == "game":
        return inst.baseline()
    if pipeline == "general":
        if kernels.active() == "vector":
            # One memoized kernel sweep serves this optimum *and* the
            # phase-2 shared replay / backward solver on the same
            # instance (the final work-function row's minimum is the
            # Section 2 DP optimum, bit-identically — the recurrences
            # are the same ufunc sequence; see docs/KERNELS.md).
            opt = kernels.cached_sweep(coords, inst.F, inst.beta).opt
        else:
            from ..analysis import optimal_cost
            opt = optimal_cost(inst)
        m, beta = inst.m, inst.beta
    elif pipeline == "restricted":
        from ..offline import solve_restricted
        opt, m, beta = solve_restricted(inst).cost, inst.m, inst.beta
    else:  # hetero: report the pooled fleet size and the type-1 beta
        from ..extensions import solve_dp_hetero
        opt = solve_dp_hetero(inst)[2]
        m, beta = inst.m1 + inst.m2, inst.beta1
    return {"opt": float(opt), "m": int(m), "beta": float(beta)}


def _base_row(job: tuple, spec, inst_record: dict) -> dict:
    """The row columns shared by every pipeline.

    The job's ``params``-axis entries ride along as columns (core
    columns win name collisions, e.g. a ``beta`` override is reported
    as the instance's realized ``beta``), so :func:`aggregate_rows` can
    group on any swept parameter — the E11-style per-beta tables come
    straight out of one grid.
    """
    scenario, algorithm, T, _inst_seed, seed, _lookahead, params = job
    row = {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": spec.pipeline, "T": T,
        "m": inst_record["m"], "beta": inst_record["beta"], "seed": seed,
    }
    if params != "{}":
        for key, value in json.loads(params).items():
            row.setdefault(key, value)
    return row


def _online_row(job: tuple, spec, inst_record: dict, cost: float) -> dict:
    """Assemble one cost-vs-optimum result row (shared by the per-job
    and the shared-replay paths — online jobs and extras-free offline
    sharers alike — so both produce byte-identical rows)."""
    opt = inst_record["opt"]
    return {
        **_base_row(job, spec, inst_record),
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
    }


def _run_job(task: tuple) -> dict:
    """Phase-2 job: run one algorithm against its hoisted optimum.

    ``task`` is ``(job, inst_record, store_root)`` with the record
    produced by :func:`_solve_instance`; must stay module-level (pool
    pickling).
    """
    from .registry import get_spec, pipeline_optimum
    job, inst_record, store_root = task
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    spec = get_spec(algorithm)
    if algorithm == pipeline_optimum(spec.pipeline) or (
            spec.pipeline == "game" and spec.optimal
            and inst_record.get("opt") is not None):
        # the phase-1 baseline *is* this entry's result (e.g. sim-opt):
        # synthesize the row — record keys beyond opt/m/beta are its
        # extra columns — instead of repeating the identical solve
        extras = {k: v for k, v in inst_record.items()
                  if k not in ("opt", "m", "beta")}
        return {
            **_base_row(job, spec, inst_record),
            "cost": inst_record["opt"],
            "opt": inst_record["opt"], "ratio": 1.0, **extras,
        }
    inst = get_instance((scenario, spec.pipeline, T, inst_seed, params),
                        store_root)
    extras: dict = {}
    if spec.pipeline == "game":
        out = spec.make(lookahead=lookahead, seed=_job_seed(job))(inst)
        cost = out.pop("cost")
        played_opt = out.pop("opt")
        extras = out
        opt = (inst_record["opt"] if inst_record.get("opt") is not None
               else played_opt)
    elif spec.pipeline == "hetero":
        cost, opt = spec.make()(inst)[2], inst_record["opt"]
    elif spec.kind == "online":
        from ..online.base import run_online
        alg = spec.make(lookahead=lookahead, seed=_job_seed(job))
        bounds = None
        if (spec.shares_workfunction and alg.consumes_bounds
                and alg.lookahead == 0 and kernels.active() == "vector"):
            # reuse (or seed) the per-process sweep memo phase 1 filled
            bounds = kernels.cached_sweep(_instance_coords(job),
                                          inst.F, inst.beta)
        return _online_row(job, spec, inst_record,
                           run_online(inst, alg, bounds=bounds).cost)
    elif spec.shares_workfunction and kernels.active() == "vector":
        # offline sweep sharer (backward_lcp): hand it the memoized
        # per-instance bound trajectory instead of a fresh sweep
        bounds = kernels.cached_sweep(_instance_coords(job),
                                      inst.F, inst.beta)
        cost, opt = (spec.make()(inst, bounds=bounds).cost,
                     inst_record["opt"])
    else:
        cost, opt = spec.make()(inst).cost, inst_record["opt"]
    return {
        **_base_row(job, spec, inst_record),
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
        **extras,
    }


# ----------------------------------------------------------------------
# Fused multi-job tasks: one worker round-trip executes a whole chunk,
# amortizing pickle/IPC, and co-scheduled LCP-family jobs on the same
# instance share a single work-function sweep.
# ----------------------------------------------------------------------


def _solve_chunk(task: tuple) -> list[dict]:
    """Fused phase-1 job: solve several instances' optima in one
    round-trip (each through :func:`_solve_instance`, so per-item
    behavior — and test monkeypatching — is unchanged)."""
    coords_list, store_root = task
    return [_solve_instance((coords, store_root)) for coords in coords_list]


def _sharing_coords(job: tuple):
    """The instance coordinates a job can share a work-function sweep
    on, or ``None`` when its algorithm keeps per-job state.

    Sharers are the general-pipeline entries flagged
    ``shares_workfunction`` in the registry: the online LCP family
    (bound consumers) and the offline ``backward_lcp`` solver, whose
    Lemma 11 forward pass is the same sweep.
    """
    from .registry import get_spec
    spec = get_spec(job[1])
    if spec.pipeline == "general" and spec.shares_workfunction:
        return _instance_coords(job)
    return None


def _run_shared(tasks: list[tuple]) -> list[dict]:
    """Serve several sweep-sharing jobs on one instance from a single
    ``O(T m)`` work-function sweep — bit-identical to running each
    through :func:`_run_job` (asserted by the test suite).

    Online consumers replay through
    :func:`~repro.online.base.run_online_many`; offline sharers (the
    ``backward_lcp`` solver) receive the same bound trajectory via
    their ``bounds=`` parameter.  Under the vectorized kernel the
    trajectory comes from the per-process memo phase 1 already filled;
    under the scalar reference each path keeps its own per-step sweep.
    """
    from .registry import get_spec
    from ..online.base import run_online_many
    job0, _rec0, store_root = tasks[0]
    coords = _instance_coords(job0)
    inst = get_instance(coords, store_root)
    bounds = (kernels.cached_sweep(coords, inst.F, inst.beta)
              if kernels.active() == "vector" else None)
    rows: list = [None] * len(tasks)
    online_idx = [i for i, (job, _rec, _root) in enumerate(tasks)
                  if get_spec(job[1]).kind == "online"]
    if online_idx:
        algorithms = [get_spec(tasks[i][0][1]).make(
            lookahead=tasks[i][0][5], seed=_job_seed(tasks[i][0]))
            for i in online_idx]
        results = run_online_many(inst, algorithms, bounds=bounds)
        for i, res in zip(online_idx, results):
            job, rec, _root = tasks[i]
            rows[i] = _online_row(job, get_spec(job[1]), rec, res.cost)
    for i, (job, rec, _root) in enumerate(tasks):
        if rows[i] is not None:
            continue
        solver = get_spec(job[1]).make()
        out = (solver(inst, bounds=bounds) if bounds is not None
               else solver(inst))
        rows[i] = _online_row(job, get_spec(job[1]), rec, out.cost)
    return rows


def _run_chunk(tasks: list[tuple]) -> list[dict]:
    """Fused phase-2 job: run a contiguous slice of a batch's pending
    jobs in one worker round-trip.  Within the chunk, jobs of one
    instance whose algorithms consume work-function bounds are grouped
    (in job order) and replayed through :func:`_run_shared`; everything
    else goes through :func:`_run_job` unchanged."""
    rows: list = [None] * len(tasks)
    groups: dict[tuple, list[int]] = {}
    for idx, (job, _rec, _root) in enumerate(tasks):
        coords = _sharing_coords(job)
        if coords is not None:
            groups.setdefault(coords, []).append(idx)
    for idxs in groups.values():
        if len(idxs) < 2:
            continue  # nothing to share; take the ordinary path
        for idx, row in zip(idxs,
                            _run_shared([tasks[i] for i in idxs])):
            rows[idx] = row
    for idx, task in enumerate(tasks):
        if rows[idx] is None:
            rows[idx] = _run_job(task)
    return rows


def _chunk_list(items, n_jobs: int, chunk_jobs: int | None) -> list[list]:
    """Split ``items`` into contiguous chunks for fused dispatch.

    ``chunk_jobs=None`` auto-sizes: in-process everything fuses into
    one chunk (maximal sharing, no IPC to amortize anyway); on the pool
    roughly two chunks per worker balance round-trip amortization
    against load balancing.  ``chunk_jobs=1`` disables fusion (the
    pre-pipeline per-job dispatch).
    """
    items = list(items)
    if not items:
        return []
    if chunk_jobs is not None:
        size = max(1, int(chunk_jobs))
    elif n_jobs <= 1:
        size = len(items)
    else:
        size = max(1, -(-len(items) // (2 * n_jobs)))
    return [items[i:i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# Persistent worker pool.
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _get_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The module-level executor, grown (never shrunk) to ``n_jobs``."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS < n_jobs:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
    if _POOL is None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        _POOL = ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx)
        _POOL_WORKERS = n_jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent; also runs at
    interpreter exit).  The next parallel call starts a fresh pool.

    In-flight pipelined futures are drained cleanly: queued-but-
    unstarted tasks are cancelled (``cancel_futures=True``) and running
    ones are awaited, so a Ctrl-C mid-pipeline never leaves orphaned
    tasks executing against a torn-down parent.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def _submit_task(fn, arg, n_jobs: int) -> Future:
    """Run ``fn(arg)`` — inline (returning an already-completed future)
    for ``n_jobs <= 1``, else on the persistent pool.  The inline path
    raises synchronously, like the historical serial engine, and keeps
    module-level ``fn`` internals monkeypatchable by tests."""
    if n_jobs <= 1:
        future: Future = Future()
        future.set_result(fn(arg))
        return future
    return _get_pool(n_jobs).submit(fn, arg)


atexit.register(shutdown_pool)


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on the persistent pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The pool outlives the call — it
    is reused by both engine phases, by every subsequent grid, and by
    ``analysis/sweep`` and ``repro lowerbound`` — so pool startup is
    amortized across the many small grids the benches run.  The
    in-process path is a plain ``map`` so tests can monkeypatch ``fn``'s
    module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    try:
        return list(_get_pool(n_jobs).map(fn, items, chunksize=chunksize))
    except Exception:
        # a dead/broken pool must not poison later calls — drop it so
        # the next parallel_map starts fresh, then surface the error
        shutdown_pool()
        raise


def _validate_pipelines(spec: GridSpec) -> None:
    """Fail fast (in the parent) when the grid pairs an algorithm with a
    scenario that cannot build its pipeline's instance representation."""
    from .registry import get_spec
    from .scenarios import get_scenario
    for scenario in spec.scenarios:
        supported = get_scenario(scenario).pipelines
        for algorithm in spec.algorithms:
            pipeline = get_spec(algorithm).pipeline
            if pipeline not in supported:
                raise ValueError(
                    f"algorithm {algorithm!r} needs the {pipeline!r} "
                    f"pipeline but scenario {scenario!r} only builds "
                    f"{supported}")


def _batches(iterable, size: int | None):
    """Iterate lists of up to ``size`` items (everything when ``None``).

    ``size`` is validated *eagerly*, before the first item of
    ``iterable`` is consumed — a bad ``batch_size`` surfaces at the
    call site (before any sink is opened or job generated), not at the
    first ``next()`` of a lazily-evaluated generator.
    """
    if size is not None and size < 1:
        raise ValueError("batch_size must be positive")
    return _iter_batches(iterable, size)


def _iter_batches(iterable, size: int | None):
    if size is None:
        batch = list(iterable)
        if batch:
            yield batch
        return
    it = iter(iterable)
    while True:
        batch = list(itertools.islice(it, size))
        if not batch:
            return
        yield batch


class _RecordWindow:
    """Bounded LRU of solved instance records.

    Job order keeps every job of one instance contiguous
    (:meth:`GridSpec.iter_jobs`), so a window a little larger than the
    batch's distinct-instance count is enough for the streaming core to
    never re-solve an optimum it just solved — while a million-instance
    grid still holds O(batch) records in the parent.
    """

    def __init__(self):
        self._data: dict = collections.OrderedDict()
        self._bound = 64

    def fit(self, need: int) -> None:
        self._bound = max(self._bound, 2 * need)

    def get(self, coords):
        rec = self._data.get(coords)
        if rec is not None:
            self._data.move_to_end(coords)
        return rec

    def put(self, coords, rec) -> None:
        self._data[coords] = rec
        self._data.move_to_end(coords)
        while len(self._data) > self._bound:
            self._data.popitem(last=False)


class _Promise:
    """One instance's offline optimum, somewhere between *planned* and
    *solved*.  The owning batch fills in ``(future, pos)`` when it
    submits its phase-1 chunk and ``record`` at harvest; a later batch
    that needs the same instance (job order keeps them adjacent, so
    only batch boundaries overlap) borrows the promise instead of
    re-submitting the solve."""

    __slots__ = ("future", "pos", "record")

    def __init__(self):
        self.future: Future | None = None
        self.pos: int | None = None
        self.record: dict | None = None

    def ready(self) -> bool:
        return self.record is not None or (
            self.future is not None and self.future.done())

    def result(self) -> dict:
        if self.record is None:
            self.record = self.future.result()[self.pos]
        return self.record


#: batch pipeline stages, in order
_MAT, _SOLVE, _RUN, _DONE = range(4)


class _BatchState:
    """One in-flight batch's progress through the three phases."""

    __slots__ = ("batch", "rows", "pending", "stage", "mat_futures",
                 "mat_borrowed", "to_solve", "own_promises", "borrowed",
                 "records", "run_futures")

    def __init__(self, batch: list):
        self.batch = batch
        self.rows: list = [None] * len(batch)
        self.pending: list[tuple[int, tuple, str]] = []
        self.stage = _MAT
        self.mat_futures: list[tuple[list, Future]] = []
        self.mat_borrowed: list[Future] = []
        self.to_solve: list[tuple] = []
        self.own_promises: dict[tuple, _Promise] = {}
        self.borrowed: dict[tuple, _Promise] = {}
        self.records: dict[tuple, dict] = {}
        self.run_futures: list[tuple[list, Future]] = []

    def unfinished_futures(self) -> list[Future]:
        """Futures the scheduler may need to block on."""
        futures = [f for _c, f in self.mat_futures if not f.done()]
        futures += [f for f in self.mat_borrowed if not f.done()]
        futures += [p.future for p in self.own_promises.values()
                    if p.future is not None and not p.future.done()]
        futures += [f for _chunk, f in self.run_futures if not f.done()]
        return futures

    def all_futures(self) -> list[Future]:
        futures = [f for _c, f in self.mat_futures]
        futures += [p.future for p in self.own_promises.values()
                    if p.future is not None]
        futures += [f for _chunk, f in self.run_futures]
        return futures


def run_grid(spec: GridSpec, *, n_jobs: int = 1, cache_dir=None,
             store_dir=None, force: bool = False,
             stats: dict | None = None, sink: ResultSink | None = None,
             batch_size: int | None = None,
             pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
             chunk_jobs: int | None = None):
    """Stream every job of a grid through the pipelined three-phase
    engine.

    Jobs are generated lazily and executed in bounded batches of
    ``batch_size`` (``None`` = one batch); each batch's finished rows
    are flushed — in job order — to the result ``sink``
    (:mod:`repro.runner.sinks`).  With the default ``sink=None`` an
    in-memory :class:`~repro.runner.sinks.ListSink` collects the rows
    and ``run_grid`` returns the historical ``list[dict]``; with a
    file-backed sink the parent holds at most
    O(``pipeline_depth`` x ``batch_size``) pending rows (the
    ``max_pending`` stat reports the observed peak) and ``run_grid``
    returns ``sink.result()``.

    With ``n_jobs > 1`` batches are *double-buffered* on the persistent
    pool: up to ``pipeline_depth`` batches are in flight, so batch
    N+1's phase-0 materializations and phase-1 solves are submitted
    while batch N's phase-2 chunks still run — the pool stays saturated
    end to end instead of idling at three serial barriers per batch.
    Phase dispatch is *fused*: ``chunk_jobs`` jobs ride one worker
    round-trip (``None`` auto-sizes, ``1`` disables fusion), and
    LCP-family jobs sharing an instance are replayed from one shared
    work-function sweep.  Rows are bit-identical for every
    ``(n_jobs, batch_size, pipeline_depth, chunk_jobs)`` combination.

    With ``cache_dir``, each job's row (and each instance's optimum) is
    read from the per-job content-addressed cache when present (unless
    ``force``) and written back the moment its chunk completes — so
    re-running any overlapping grid only executes the jobs it has not
    seen before, and a grid killed mid-run resumes paying only the
    unfinished jobs.  ``cache_dir`` may also be a ready-made
    :class:`JobCache` (e.g. one opened on the SQLite backend).  With
    ``store_dir``, phase 0 materializes each distinct pending instance
    into the shared :class:`~repro.runner.instancestore.InstanceStore`
    exactly once; phases 1 and 2 then mmap the payloads instead of
    rebuilding.

    Pass a dict as ``stats`` to receive counters: ``job_hits``,
    ``job_misses``, ``opt_hits``, ``opt_solved``, ``batches``,
    ``max_pending`` (peak result rows held in the parent at once —
    bounded by ``pipeline_depth x batch_size``), ``rows_written``,
    ``overlapped_batches`` (batches admitted while an earlier batch
    still had unfinished worker tasks — 0 on the serial path, > 0
    proves pipeline overlap), ``inflight_max`` (peak simultaneously
    admitted batches), ``inst_materialized`` (instances newly written
    to the store this call, wherever the build ran), plus this
    process's instance-resolution deltas ``inst_builds`` (scenario
    builds — with a store, at most one per distinct instance
    end-to-end), ``inst_loads`` (store mmap loads) and
    ``inst_memo_hits``.
    """
    cache = (cache_dir if isinstance(cache_dir, JobCache)
             else JobCache(cache_dir) if cache_dir is not None else None)
    store_root = None if store_dir is None else str(store_dir)
    _validate_pipelines(spec)
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    batches_iter = _batches(spec.iter_jobs(), batch_size)
    counters = {"job_hits": 0, "job_misses": 0, "opt_hits": 0,
                "opt_solved": 0, "inst_materialized": 0, "batches": 0,
                "max_pending": 0, "rows_written": 0,
                "overlapped_batches": 0, "inflight_max": 0}
    inst_stats_before = instancestore.build_stats()
    sink = ListSink() if sink is None else sink
    sink_ok = [True]   # False once the sink itself refused a write
    window = _RecordWindow()
    promises: dict[tuple, _Promise] = {}
    materializing: dict[tuple, Future] = {}
    inflight: collections.deque[_BatchState] = collections.deque()
    from .scenarios import get_scenario
    storable = {name: get_scenario(name).storable
                for name in spec.scenarios}

    def plan(batch: list) -> _BatchState:
        """Admit one batch: cache lookups, then submit phase 0 (and,
        via :func:`advance`, everything that is already unblocked)."""
        counters["batches"] += 1
        st = _BatchState(batch)
        for i, job in enumerate(batch):
            key = job_key(job)
            row = (cache.get("jobs", key)
                   if cache is not None and not force else None)
            if row is not None:
                st.rows[i] = row
                counters["job_hits"] += 1
            else:
                st.pending.append((i, job, key))
        counters["job_misses"] += len(st.pending)
        if not st.pending:
            st.stage = _DONE
            return st
        need = dict.fromkeys(_instance_coords(job)
                             for _, job, _ in st.pending)
        window.fit(len(need) * pipeline_depth)
        for coords in need:
            promise = promises.get(coords)
            if promise is not None:   # an earlier batch is solving it
                st.borrowed[coords] = promise
                continue
            rec = window.get(coords)
            if rec is None and cache is not None and not force:
                rec = cache.get("instances", instance_key(coords))
                if rec is not None:
                    window.put(coords, rec)
                    counters["opt_hits"] += 1
            if rec is not None:
                st.records[coords] = rec
            else:
                st.to_solve.append(coords)
                promises[coords] = st.own_promises[coords] = _Promise()
        # Phase 0: materialize each distinct pending instance once
        # (scenarios with dense payloads only).  Borrowed instances are
        # the previous batch's responsibility, and a materialization an
        # earlier in-flight batch already submitted is *waited on*, not
        # re-submitted — overlap must not duplicate instance builds.
        if store_root is not None:
            store = InstanceStore(store_root)
            missing = []
            for coords in need:
                if coords in st.borrowed or not storable[coords[0]]:
                    continue
                shared = materializing.get(coords)
                if shared is not None:
                    st.mat_borrowed.append(shared)
                elif not store.has(coords):
                    missing.append(coords)
            for chunk in _chunk_list(missing, n_jobs, chunk_jobs):
                future = _submit_task(instancestore._materialize_chunk,
                                      (chunk, store_root), n_jobs)
                st.mat_futures.append((chunk, future))
                for coords in chunk:
                    materializing[coords] = future
        return st

    def submit_solves(st: _BatchState) -> None:
        for chunk in _chunk_list(st.to_solve, n_jobs, chunk_jobs):
            future = _submit_task(_solve_chunk, (chunk, store_root),
                                  n_jobs)
            for pos, coords in enumerate(chunk):
                promise = st.own_promises[coords]
                promise.future, promise.pos = future, pos

    def submit_runs(st: _BatchState) -> None:
        for chunk in _chunk_list(st.pending, n_jobs, chunk_jobs):
            tasks = [(job, st.records[_instance_coords(job)], store_root)
                     for _i, job, _key in chunk]
            st.run_futures.append(
                (chunk, _submit_task(_run_chunk, tasks, n_jobs)))

    def advance(st: _BatchState) -> bool:
        """Move one batch through its stage machine; True on progress."""
        progressed = False
        if st.stage == _MAT and all(
                f.done() for _c, f in st.mat_futures) and all(
                f.done() for f in st.mat_borrowed):
            for chunk_coords, future in st.mat_futures:
                counters["inst_materialized"] += sum(
                    map(bool, future.result()))
                for coords in chunk_coords:
                    materializing.pop(coords, None)
            st.mat_futures = []
            st.mat_borrowed = []
            submit_solves(st)
            st.stage = _SOLVE
            progressed = True
        if st.stage == _SOLVE:
            for coords, promise in st.own_promises.items():
                # harvest is keyed on THIS batch's bookkeeping, not on
                # promise.record: a borrowing batch may have resolved
                # the promise first, and that must not skip the owner's
                # window/cache writes and opt_solved count
                if coords in st.records or not promise.ready():
                    continue
                rec = promise.result()
                st.records[coords] = rec
                window.put(coords, rec)
                counters["opt_solved"] += 1
                if cache is not None:
                    cache.put("instances", instance_key(coords), rec)
                promises.pop(coords, None)
                progressed = True
            if (all(coords in st.records
                    for coords in st.own_promises)
                    and all(p.ready() for p in st.borrowed.values())):
                for coords, promise in st.borrowed.items():
                    st.records[coords] = promise.result()
                submit_runs(st)
                st.stage = _RUN
                progressed = True
        if st.stage == _RUN:
            remaining = []
            for chunk, future in st.run_futures:
                if not future.done():
                    remaining.append((chunk, future))
                    continue
                for (i, _job, key), row in zip(chunk, future.result()):
                    st.rows[i] = row
                    if cache is not None:
                        cache.put("jobs", key, row)
                progressed = True
            st.run_futures = remaining
            if not remaining:
                st.stage = _DONE
                progressed = True
        return progressed

    def pump() -> bool:
        """Advance every in-flight batch; flush completed heads in
        admission order (the sink sees rows in job order)."""
        progressed = False
        for st in list(inflight):
            while advance(st):
                progressed = True
        while inflight and inflight[0].stage == _DONE:
            st = inflight.popleft()
            try:
                sink.write_many(st.rows)
            except BaseException:
                # a sink that refuses rows must stop ALL flushing —
                # the abort drain must not write later batches after a
                # torn one (kill+resume relies on a clean row prefix)
                sink_ok[0] = False
                raise
            counters["rows_written"] += len(st.rows)
            progressed = True
        return progressed

    def drain() -> None:
        """Abort path: cancel outstanding work, persist what finished.

        Completed-but-unharvested chunk rows are written to the job
        cache, and fully completed head batches are still flushed to
        the sink in order (the serial engine always flushed batch N-1
        before starting batch N; pipelining must not lose that) —
        unless the abort came from the sink itself.
        """
        for st in inflight:
            for future in st.all_futures():
                future.cancel()
        for st in inflight:   # best-effort: completed chunks still count
            remaining = []
            for chunk, future in st.run_futures:
                if not (future.done() and not future.cancelled()):
                    remaining.append((chunk, future))
                    continue
                try:
                    harvested = future.result()
                except Exception:
                    remaining.append((chunk, future))
                    continue
                for (i, _job, key), row in zip(chunk, harvested):
                    st.rows[i] = row
                    if cache is not None:
                        try:
                            cache.put("jobs", key, row)
                        except Exception:
                            pass
            st.run_futures = remaining
        while (sink_ok[0] and inflight
               and all(r is not None for r in inflight[0].rows)):
            st = inflight.popleft()
            try:
                sink.write_many(st.rows)
            except BaseException:
                break
            counters["rows_written"] += len(st.rows)

    sink.open(spec.to_dict())
    exhausted = False
    try:
        while True:
            while not exhausted and len(inflight) < pipeline_depth:
                batch = next(batches_iter, None)
                if batch is None:
                    exhausted = True
                    break
                if any(b.unfinished_futures() for b in inflight):
                    counters["overlapped_batches"] += 1
                inflight.append(plan(batch))
                counters["inflight_max"] = max(counters["inflight_max"],
                                               len(inflight))
                counters["max_pending"] = max(
                    counters["max_pending"],
                    sum(len(b.batch) for b in inflight))
                pump()
            if not inflight:
                if exhausted:
                    break
                continue
            if not pump():
                futures = [f for st in inflight
                           for f in st.unfinished_futures()]
                if not futures:  # pragma: no cover - defensive
                    raise RuntimeError("pipeline stalled without "
                                       "outstanding work")
                wait(futures, return_when=FIRST_COMPLETED)
    except BaseException:
        drain()
        raise
    finally:
        promises.clear()
        materializing.clear()
        sink.close()
    if stats is not None:
        inst_stats = instancestore.build_stats()
        counters.update({k: inst_stats[k] - inst_stats_before[k]
                         for k in inst_stats})
        stats.update(counters)
    return sink.result()


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.

    ``by`` is *param-aware*: any row column works, including the
    ``params``-axis columns the engine merges into each row (``beta``,
    ``eps``, ...), so ``by=("scenario", "algorithm", "T", "beta")``
    emits the E11-style per-beta tables from one grid (the CLI exposes
    this as ``--group-by``).  A key missing from a row groups under
    ``None`` rather than failing, so heterogeneous tables (e.g. game
    rows next to general rows) still aggregate.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(k) for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
