"""Work-function kernels: scalar reference vs whole-table vectorized.

The two hot recurrences of the reproduction — the ``hat-C^L`` work-
function sweep behind the Section 3 LCP bounds and Lemma 11's backward
projection — exist in two interchangeable implementations:

* :mod:`repro.kernels.scalar` — the original per-step loop over
  :class:`~repro.online.workfunction.WorkFunctions`, kept as the
  executable reference semantics;
* :mod:`repro.kernels.vectorized` — a fused whole-table sweep that
  writes the full ``(T, m+1)`` work-function table with a handful of
  in-place ufunc calls per step and extracts every per-step bound pair
  with two table-wide ``argmin`` passes.

Both produce **bit-identical** results (the vectorized kernel reorders
no floating-point operation; see ``docs/KERNELS.md`` for the derivation
and the equivalence contract, enforced by ``tests/test_kernels.py``).

Selection is process-wide through the ``REPRO_KERNEL`` environment
variable (``"vector"``, the default, or ``"scalar"``), read on every
dispatch so forked pool workers and mid-process :func:`use` blocks
agree.  The scalar setting also disables the whole-trajectory fast
paths of the online replay layer (:mod:`repro.online.base`), restoring
the pre-kernel per-step code paths end to end.

A small per-process memo (:func:`cached_sweep`) lets the engine's
phase-1 optimum computation and phase-2 shared replay reuse one sweep
per instance; see :func:`clear_sweep_cache` for benchmark hygiene.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from typing import NamedTuple

import numpy as np

__all__ = [
    "KERNELS",
    "SweepResult",
    "active",
    "backward_clamp",
    "backward_lcp",
    "cached_sweep",
    "clear_sweep_cache",
    "set_kernel",
    "sweep_workfunction",
    "use",
]

#: environment variable selecting the kernel implementation
ENV_VAR = "REPRO_KERNEL"

#: recognized kernel names
KERNELS = ("vector", "scalar")

_DEFAULT = "vector"


class SweepResult(NamedTuple):
    """Whole-trajectory output of one work-function sweep.

    ``lo[t]``/``hi[t]`` are the LCP bounds ``(x^L_{t+1}, x^U_{t+1})``
    of every prefix (Section 3.1) and ``opt`` is the offline optimum
    ``min_x hat-C^L_T(x)`` — bit-identical to
    :func:`repro.offline.dp.solve_dp`'s cost, because the ``hat-C^L``
    recurrence *is* the DP recurrence (see ``docs/KERNELS.md``).
    """

    lo: np.ndarray
    hi: np.ndarray
    opt: float


def active() -> str:
    """Currently selected kernel name (``"vector"`` or ``"scalar"``).

    Read from the environment on every call so the selection survives
    process forks and :func:`use` blocks without module-level state.
    """
    name = os.environ.get(ENV_VAR, _DEFAULT)
    if name not in KERNELS:
        raise ValueError(
            f"{ENV_VAR}={name!r} is not a known kernel; choose from "
            f"{KERNELS}")
    return name


def set_kernel(name: str) -> None:
    """Select the kernel process-wide (exported via ``os.environ`` so
    pool workers forked later inherit the choice)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {KERNELS}")
    os.environ[ENV_VAR] = name


@contextlib.contextmanager
def use(name: str):
    """Context manager pinning the kernel selection within a block."""
    before = os.environ.get(ENV_VAR)
    set_kernel(name)
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = before


def sweep_workfunction(costs: np.ndarray, beta: float) -> SweepResult:
    """One ``O(T m)`` work-function sweep over a ``(T, m+1)`` cost table.

    Dispatches to the selected kernel; both return bit-identical
    :class:`SweepResult` values (asserted by ``tests/test_kernels.py``).
    """
    if active() == "scalar":
        from . import scalar
        return scalar.sweep_workfunction(costs, beta)
    from . import vectorized
    return vectorized.sweep_workfunction(costs, beta)


def backward_clamp(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Lemma 11's backward projection pass.

    With ``x-hat_{T+1} = 0``, clamp backwards:
    ``x-hat_t = [x-hat_{t+1}]^{hi_t}_{lo_t}``.  Shared by both kernels
    (the pass is ``O(T)`` scalar work on integer bounds).
    """
    T = len(lo)
    x = np.empty(T, dtype=np.int64)
    nxt = 0
    llo, lhi = np.asarray(lo).tolist(), np.asarray(hi).tolist()
    for t in range(T - 1, -1, -1):
        b_lo, b_hi = llo[t], lhi[t]
        if nxt < b_lo:
            nxt = b_lo
        elif nxt > b_hi:
            nxt = b_hi
        x[t] = nxt
    return x


def backward_lcp(costs: np.ndarray, beta: float) -> np.ndarray:
    """Lemma 11 optimal schedule of a ``(T, m+1)`` cost table.

    One forward sweep for the prefix bounds (through the selected
    kernel) plus the shared backward clamp.
    """
    sweep = sweep_workfunction(costs, beta)
    return backward_clamp(sweep.lo, sweep.hi)


# ----------------------------------------------------------------------
# Per-process sweep memo: the engine's phase 1 (offline optimum) and
# phase 2 (shared LCP-family replay + backward solver) both need the
# same sweep of the same instance; keying it by instance coordinates
# lets whichever phase runs first in a worker pay for it once.
# ----------------------------------------------------------------------

_SWEEP_CACHE: OrderedDict = OrderedDict()
_SWEEP_CACHE_SIZE = 16


def cached_sweep(key, costs: np.ndarray, beta: float) -> SweepResult:
    """Memoized :func:`sweep_workfunction` keyed by ``key`` (hashable,
    e.g. the engine's instance coordinates) and the active kernel."""
    full_key = (active(), key)
    hit = _SWEEP_CACHE.get(full_key)
    if hit is not None:
        _SWEEP_CACHE.move_to_end(full_key)
        return hit
    result = sweep_workfunction(costs, beta)
    _SWEEP_CACHE[full_key] = result
    while len(_SWEEP_CACHE) > _SWEEP_CACHE_SIZE:
        _SWEEP_CACHE.popitem(last=False)
    return result


def clear_sweep_cache() -> None:
    """Drop the per-process sweep memo (benchmark/test hygiene)."""
    _SWEEP_CACHE.clear()
