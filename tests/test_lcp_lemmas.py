"""Tests for the Section 3 analysis machinery (Lemmas 11–17).

These lemmas relate LCP's trajectory to the backward-recursion optimal
schedule ``X*`` of Lemma 11; each is checked directly on random and
structured instances.
"""

import numpy as np
import pytest

from repro.core.schedule import (operating_cost, switching_cost_up)
from repro.offline import prefix_bounds, solve_backward_lcp, solve_dp
from repro.online import LCP, run_online
from tests.conftest import (bowl_instance, hinge_instance,
                            random_convex_instance, trace_instance)


def lcp_and_star(inst):
    """LCP trajectory and the Lemma-11 optimal schedule."""
    lcp = run_online(inst, LCP()).schedule.astype(int)
    star = solve_backward_lcp(inst).schedule
    return lcp, star


class TestLemma11:
    def test_backward_recursion_is_optimal(self):
        rng = np.random.default_rng(250)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 15)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.2, 4)))
            res = solve_backward_lcp(inst)
            assert res.cost == pytest.approx(
                solve_dp(inst, return_schedule=False).cost), "Lemma 11"

    def test_backward_recursion_on_structured_instances(self):
        for inst in (hinge_instance([0, 5, 0, 5, 2], m=6, beta=2.0),
                     bowl_instance([1, 4, 2, 5], m=6, beta=0.7),
                     trace_instance(seed=2, T=48, peak=8.0, beta=3.0)):
            res = solve_backward_lcp(inst)
            assert res.cost == pytest.approx(
                solve_dp(inst, return_schedule=False).cost)

    def test_schedule_within_prefix_bounds(self):
        rng = np.random.default_rng(251)
        inst = random_convex_instance(rng, 12, 7, 1.5)
        lo, hi = prefix_bounds(inst)
        star = solve_backward_lcp(inst).schedule
        assert np.all(lo <= star) and np.all(star <= hi)

    def test_empty_horizon(self):
        from repro.core.instance import Instance
        inst = Instance(beta=1.0, F=np.zeros((0, 3)))
        assert solve_backward_lcp(inst).cost == 0.0


class TestLemma12:
    def test_crossings_meet(self):
        """If LCP's curve crosses X* between consecutive steps, they are
        equal at the crossing step."""
        rng = np.random.default_rng(252)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(2, 20)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            prev_l, prev_s = 0, 0
            for l, s in zip(lcp, star):
                if prev_l < prev_s and l >= s:
                    assert l == s, "Lemma 12 (upward crossing)"
                if prev_l > prev_s and l <= s:
                    assert l == s, "Lemma 12 (downward crossing)"
                prev_l, prev_s = l, s


class TestLemma13:
    def test_between_meetings_both_monotone(self):
        """Strictly between meeting points, either LCP > X* and both are
        non-increasing, or LCP < X* and both are non-decreasing."""
        rng = np.random.default_rng(253)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(3, 25)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            T = inst.T
            # Meeting times (t0 = 0 with both at state 0).
            meets = [-1] + [t for t in range(T) if lcp[t] == star[t]] + [T]
            for a, b in zip(meets, meets[1:]):
                interior = range(a + 1, b)
                for t in interior:
                    assert lcp[t] != star[t]
                signs = {np.sign(lcp[t] - star[t]) for t in interior}
                assert len(signs) <= 1, "sign flip without meeting"
                if not interior:
                    continue
                sign = signs.pop()
                seq_l = [lcp[t] for t in interior]
                seq_s = [star[t] for t in interior]
                if sign > 0:
                    assert all(x >= y for x, y in zip(seq_l, seq_l[1:]))
                    assert all(x >= y for x, y in zip(seq_s, seq_s[1:]))
                else:
                    assert all(x <= y for x, y in zip(seq_l, seq_l[1:]))
                    assert all(x <= y for x, y in zip(seq_s, seq_s[1:]))


class TestLemma14:
    def test_lcp_switching_at_most_optimal_switching(self):
        """S^L_T(X^LCP) <= S^L_T(X*) for the Lemma-11 optimum."""
        rng = np.random.default_rng(254)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 25)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            assert switching_cost_up(inst, lcp) <= switching_cost_up(
                inst, star) + 1e-9, "Lemma 14"


class TestLemma15:
    def test_interval_inequalities(self):
        """Within increasing intervals (LCP below X*):
        hat-C^L_tau(x^LCP_tau) + f_{tau+1}(x^LCP_{tau+1})
            <= hat-C^L_{tau+1}(x^LCP_{tau+1})          (eq. 22)
        and the hat-C^U analogue on decreasing intervals (eq. 23)."""
        from repro.online.workfunction import WorkFunctions
        rng = np.random.default_rng(258)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(3, 20)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            # Work-function tables along the replay.
            CLs, CUs = [], []
            wf = WorkFunctions(inst.m, inst.beta)
            for t in range(inst.T):
                wf.update(inst.F[t])
                CLs.append(wf.CL.copy())
                CUs.append(wf.CU.copy())
            for tau in range(inst.T - 1):
                a, b = lcp[tau], lcp[tau + 1]
                if lcp[tau] == star[tau] or lcp[tau + 1] == star[tau + 1]:
                    continue  # interval boundaries are excluded
                if lcp[tau] < star[tau]:      # increasing interval (T+)
                    lhs = CLs[tau][a] + inst.F[tau + 1][b]
                    rhs = CLs[tau + 1][b]
                    assert lhs <= rhs + 1e-9, "Lemma 15 eq. (22)"
                elif lcp[tau] > star[tau]:    # decreasing interval (T-)
                    lhs = CUs[tau][a] + inst.F[tau + 1][b]
                    rhs = CUs[tau + 1][b]
                    assert lhs <= rhs + 1e-9, "Lemma 15 eq. (23)"


class TestLemma16:
    def test_lcp_operating_bound(self):
        """R_T(X^LCP) <= R_T(X*) + beta sum |Dx*| (movement measured on
        the closed trajectory, Lemma 16)."""
        rng = np.random.default_rng(255)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 25)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            path = np.concatenate([[0], star, [0]])
            movement = inst.beta * float(np.abs(np.diff(path)).sum())
            assert operating_cost(inst, lcp) <= operating_cost(
                inst, star) + movement + 1e-9, "Lemma 16"


class TestLemma17:
    def test_total_movement_is_twice_up_switching(self):
        """beta sum_{t=1}^{T+1} |Dx*| = 2 S^L_T(X*) for closed schedules."""
        rng = np.random.default_rng(256)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 15)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.2, 4)))
            star = solve_backward_lcp(inst).schedule
            path = np.concatenate([[0], star, [0]])
            movement = inst.beta * float(np.abs(np.diff(path)).sum())
            assert movement == pytest.approx(
                2 * switching_cost_up(inst, star)), "Lemma 17"


class TestTheorem2Assembly:
    def test_lemmas_assemble_into_three_competitiveness(self):
        """The Theorem 2 proof chain, evaluated numerically:
        C(LCP) = R(LCP) + S^L(LCP)
               <= [R(X*) + 2 S^L(X*)] + S^L(X*) = C(X*) + 2 S^L(X*)."""
        rng = np.random.default_rng(257)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 20)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.2, 4)))
            lcp, star = lcp_and_star(inst)
            lhs = operating_cost(inst, lcp) + switching_cost_up(inst, lcp)
            star_cost = (operating_cost(inst, star)
                         + switching_cost_up(inst, star))
            rhs = star_cost + 2 * switching_cost_up(inst, star)
            assert lhs <= rhs + 1e-9
            assert rhs <= 3 * star_cost + 1e-9
