"""Tests for the explicit Figure-1 graph (repro.offline.graph) — E1."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.offline import (build_graph, edge_count, solve_dp, solve_graph,
                           to_networkx, vertex_count)
from tests.conftest import random_convex_instance


class TestCensus:
    """Figure 1 structure: |V| = T(m+1)+2, |E| = 2(m+1) + (T-1)(m+1)^2."""

    @pytest.mark.parametrize("T,m", [(1, 1), (2, 3), (5, 4), (3, 0)])
    def test_counts_match_formulas(self, T, m):
        rng = np.random.default_rng(1)
        inst = random_convex_instance(rng, T, m, 1.0)
        g = build_graph(inst)
        assert g.num_vertices == vertex_count(T, m) == T * (m + 1) + 2
        assert g.num_edges == edge_count(T, m)
        assert g.num_edges == (m + 1) + (T - 1) * (m + 1) ** 2 + (m + 1)

    def test_vertex_id_layout(self):
        rng = np.random.default_rng(2)
        inst = random_convex_instance(rng, 3, 2, 1.0)
        g = build_graph(inst)
        assert g.vertex_id(0, 0) == 0
        assert g.vertex_id(1, 0) == 1
        assert g.vertex_id(1, 2) == 3
        assert g.vertex_id(2, 0) == 4
        assert g.vertex_id(4, 0) == g.num_vertices - 1

    def test_vertex_id_rejects_invalid(self):
        rng = np.random.default_rng(3)
        g = build_graph(random_convex_instance(rng, 2, 2, 1.0))
        with pytest.raises(ValueError):
            g.vertex_id(0, 1)
        with pytest.raises(ValueError):
            g.vertex_id(3, 1)
        with pytest.raises(ValueError):
            g.vertex_id(1, 5)

    def test_edge_weights_source_column(self):
        """v_{0,0} -> v_{1,j} weighs f_1(j) + beta j."""
        F = np.array([[2.0, 1.0, 3.0], [0.0, 0.5, 2.0]])
        inst = Instance(beta=1.5, F=F)
        g = build_graph(inst)
        src_mask = g.tails == 0
        weights = g.weights[src_mask]
        np.testing.assert_allclose(weights, F[0] + 1.5 * np.arange(3))

    def test_interior_edge_weight_formula(self):
        """v_{t-1,j} -> v_{t,j'} weighs beta (j'-j)^+ + f_t(j')."""
        F = np.array([[2.0, 1.0, 3.0], [0.0, 0.5, 2.0]])
        inst = Instance(beta=1.5, F=F)
        g = build_graph(inst)
        wanted = {}
        for i in range(g.num_edges):
            wanted[(int(g.tails[i]), int(g.heads[i]))] = float(g.weights[i])
        for j in range(3):
            for jp in range(3):
                u = g.vertex_id(1, j)
                v = g.vertex_id(2, jp)
                expect = 1.5 * max(jp - j, 0) + F[1, jp]
                assert wanted[(u, v)] == pytest.approx(expect)

    def test_sink_edges_zero_weight(self):
        rng = np.random.default_rng(4)
        g = build_graph(random_convex_instance(rng, 3, 2, 1.0))
        sink = g.num_vertices - 1
        np.testing.assert_allclose(g.weights[g.heads == sink], 0.0)

    def test_size_guard(self):
        inst = Instance(beta=1.0, F=np.zeros((10000, 4000)))
        with pytest.raises(ValueError, match="edges"):
            build_graph(inst)


class TestShortestPath:
    def test_matches_dp(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 10)),
                                          int(rng.integers(0, 6)),
                                          float(rng.uniform(0.3, 3.0)))
            assert solve_graph(inst).cost == pytest.approx(
                solve_dp(inst).cost)

    def test_schedule_achieves_cost(self):
        from repro.core.schedule import cost
        rng = np.random.default_rng(6)
        inst = random_convex_instance(rng, 8, 5, 1.0)
        res = solve_graph(inst)
        assert cost(inst, res.schedule) == pytest.approx(res.cost)

    def test_networkx_cross_check(self):
        import networkx as nx
        rng = np.random.default_rng(7)
        inst = random_convex_instance(rng, 4, 3, 1.2)
        g = build_graph(inst)
        G = to_networkx(g)
        nx_cost = nx.shortest_path_length(G, 0, g.num_vertices - 1,
                                          weight="weight")
        assert nx_cost == pytest.approx(solve_graph(inst).cost)

    def test_networkx_path_is_schedule(self):
        import networkx as nx
        rng = np.random.default_rng(8)
        inst = random_convex_instance(rng, 5, 3, 0.7)
        g = build_graph(inst)
        G = to_networkx(g)
        path = nx.shortest_path(G, 0, g.num_vertices - 1, weight="weight")
        # Interior vertices decode to one state per column.
        states = [(v - 1) % (inst.m + 1) for v in path[1:-1]]
        assert len(states) == inst.T
        from repro.core.schedule import cost
        assert cost(inst, np.array(states)) == pytest.approx(
            solve_graph(inst).cost)
