"""Command-line interface.

Subcommands, mirroring the library's pillars:

* ``repro solve``     — optimal offline schedule for a generated (or CSV)
  load trace, with solver selection and cost breakdown.
* ``repro simulate``  — replay online algorithms on a trace and report
  costs and empirical ratios against the offline optimum.
* ``repro sweep``     — batch (scenario x algorithm x seed x size x
  params) grids through the pipelined engine, with caching,
  bounded-memory batches (``--batch-size``), double-buffering
  (``--pipeline-depth``), fused dispatch (``--chunk-jobs``), pluggable
  result sinks (``--sink jsonl/sqlite``) and param-aware ratio
  aggregation (``--params``, ``--group-by``).
* ``repro bench``     — predefined engine grids with wall-clock timing.
* ``repro lowerbound`` — the Section 5 adversarial games as
  `game`-pipeline engine grids; prints the ratio-vs-eps curves.
* ``repro cache``     — administer the per-job result cache: stats,
  prune by age and/or LRU size bound, clear, and JSON-dir → SQLite
  migration.
* ``repro work``      — multi-worker execution on a shared lease
  queue: ``enqueue`` splits a grid into contiguous job leases,
  ``run`` drains them (any number of concurrent workers, crash-safe
  via heartbeat + reclaim), ``merge`` reassembles the per-worker rows
  into one bit-identical result set, ``status`` shows lease counts
  (``--json`` for the machine-readable service payload).
* ``repro serve``     — long-running HTTP grid service over a shared
  lease queue: submits are cache-probed (hits answered instantly,
  only misses enqueued), idempotent by grid digest, admission-
  controlled (429 over budget) and drained cleanly by
  ``POST /shutdown``.

Examples::

    repro solve --workload diurnal -T 96 --peak 20 --beta 6
    repro simulate --workload hotmail -T 168 --algorithms lcp,threshold
    repro sweep --scenarios diurnal,bursty --algorithms lcp,threshold \
        --seeds 0,1,2 -T 168 --n-jobs 4
    repro sweep --scenarios diurnal --algorithms lcp --seeds 0,1,2 \
        -T 168 --sink jsonl --sink-path rows.jsonl --batch-size 4
    repro sweep --scenarios case-msr --algorithms lcp,threshold \
        -T 168 --params '{"beta": 2.0};{"beta": 8.0}' \
        --group-by scenario,algorithm,T,beta
    repro bench --grid traces --n-jobs 4 --store-dir /tmp/store
    repro lowerbound --kind deterministic --eps 0.2,0.1,0.05
    repro solve --loads-csv trace.csv --beta 4 --solver dp
    repro cache stats --cache-dir /tmp/cache
    repro cache migrate --cache-dir /tmp/cache
    repro cache prune --cache-dir /tmp/cache --older-than 30d
    repro cache prune --cache-dir /tmp/cache --max-bytes 100m
    repro work enqueue --queue /tmp/q --scenarios diurnal,bursty \
        --algorithms lcp,threshold --seeds 0,1 -T 96 --lease-jobs 4
    repro work run --queue /tmp/q --cache-dir /tmp/cache  # xN workers
    repro work merge --queue /tmp/q --out merged.jsonl
    repro work status --queue /tmp/q --json
    repro serve --queue /tmp/q --cache-dir /tmp/cache --port 8600
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]

_WORKLOADS = ("diurnal", "msr", "hotmail", "bursty", "onoff", "sawtooth",
              "constant")
_SOLVERS = ("binary_search", "dp", "graph", "lp")
_ALGORITHMS = ("lcp", "threshold", "randomized", "memoryless", "followmin",
               "rhc", "afhc")

#: mirrors of :mod:`repro.runner.leasequeue` defaults, repeated here so
#: help text renders without importing the runner at module load
_DEFAULT_LEASE_JOBS = 8
_DEFAULT_TTL = 60.0

#: predefined engine grids for ``repro bench``
_BENCH_GRIDS = {
    "smoke": dict(scenarios=("diurnal", "bursty", "adversarial-hinge"),
                  algorithms=("lcp", "threshold", "randomized"),
                  seeds=(0,), sizes=(24,)),
    "traces": dict(scenarios=("diurnal", "msr-like", "hotmail-like",
                              "bursty", "onoff"),
                   algorithms=("lcp", "threshold", "randomized",
                               "memoryless"),
                   seeds=(0, 1, 2), sizes=(168,)),
    "solvers": dict(scenarios=("diurnal", "random-convex", "hetero-mix"),
                    algorithms=("binary_search", "dp", "graph", "lp"),
                    seeds=(0, 1), sizes=(96,)),
    "adversarial": dict(scenarios=("adversarial-hinge", "sawtooth",
                                   "regime-switching"),
                        algorithms=("lcp", "threshold", "randomized",
                                    "memoryless"),
                        seeds=(0,), sizes=(168, 1200)),
    "restricted": dict(scenarios=("restricted-diurnal",),
                       algorithms=("restricted", "lcp", "threshold",
                                   "memoryless"),
                       seeds=(0, 1), sizes=(96,)),
    "hetero": dict(scenarios=("hetero-fleet",),
                   algorithms=("dp_hetero", "static_hetero",
                               "greedy_hetero"),
                   seeds=(0, 1, 2), sizes=(96,)),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Right-sizing data centers (Albers & Quedenfeld, "
                    "SPAA 2018) — reproduction CLI")
    sub = p.add_subparsers(dest="command", required=True)

    def add_trace_args(sp):
        sp.add_argument("--workload", choices=_WORKLOADS, default="diurnal",
                        help="synthetic trace family")
        sp.add_argument("--loads-csv", metavar="PATH",
                        help="read loads (one per line) instead")
        sp.add_argument("-T", type=int, default=96, help="time steps")
        sp.add_argument("--peak", type=float, default=20.0,
                        help="peak load (server units)")
        sp.add_argument("--beta", type=float, default=6.0,
                        help="switching cost per power-up")
        sp.add_argument("--delay-weight", type=float, default=10.0,
                        help="latency penalty weight")
        sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("solve", help="optimal offline schedule")
    add_trace_args(sp)
    sp.add_argument("--solver", choices=_SOLVERS, default="binary_search")
    sp.add_argument("--show-schedule", action="store_true")
    sp.add_argument("--save-schedule", metavar="PATH",
                    help="write the optimal schedule as CSV")
    sp.add_argument("--save-instance", metavar="PATH",
                    help="write the generated instance as .npz")

    sp = sub.add_parser("simulate", help="online algorithms on a trace")
    add_trace_args(sp)
    sp.add_argument("--algorithms", default="lcp,threshold,randomized",
                    help=f"comma list from {_ALGORITHMS}")
    sp.add_argument("--lookahead", type=int, default=0,
                    help="prediction window w for lcp/rhc/afhc")

    def add_grid_args(sp):
        sp.add_argument("--scenarios",
                        default="diurnal,msr-like,hotmail-like,bursty,onoff",
                        help="comma list of scenario names (see --list)")
        sp.add_argument("--algorithms",
                        default="lcp,threshold,randomized,memoryless",
                        help="comma list of registry names (see --list)")
        sp.add_argument("--seeds", default="0,1,2",
                        help="comma list of integer seeds")
        sp.add_argument("-T", default="168",
                        help="comma list of horizon lengths")
        sp.add_argument("--lookahead", type=int, default=0,
                        help="prediction window for lookahead algorithms")
        sp.add_argument("--params", default=None, metavar="JSON",
                        help="semicolon list of scenario-parameter JSON "
                             "dicts crossed with the grid, e.g. "
                             "'{\"beta\": 2.0};{\"beta\": 8.0}'")

    def add_engine_args(sp, sink: bool = True):
        sp.add_argument("--n-jobs", type=int, default=1,
                        help="worker processes (1 = in-process); the "
                             "pool persists across phases and grids")
        sp.add_argument("--cache-dir", metavar="DIR",
                        help="per-job content-addressed result cache "
                             "under DIR (overlapping grids share work)")
        sp.add_argument("--cache-backend",
                        choices=("auto", "json", "sqlite"), default="auto",
                        help="cache storage backend (auto detects an "
                             "existing cache.db, else JSON dir)")
        sp.add_argument("--store-dir", metavar="DIR",
                        help="materialize each distinct instance once "
                             "into a shared mmap store under DIR "
                             "(phase 0); workers map it read-only "
                             "instead of rebuilding")
        sp.add_argument("--force", action="store_true",
                        help="recompute even on a cache hit")
        sp.add_argument("--batch-size", type=int, default=None,
                        metavar="N",
                        help="stream phase-2 jobs in batches of N so "
                             "the parent holds O(N x depth) pending "
                             "rows (default: one batch)")
        sp.add_argument("--pipeline-depth", type=int, default=2,
                        metavar="D",
                        help="batches kept in flight at once: with "
                             "n_jobs > 1, batch N+1's instances "
                             "materialize and solve while batch N's "
                             "algorithm jobs still run (1 = barrier "
                             "per batch)")
        sp.add_argument("--chunk-jobs", type=int, default=None,
                        metavar="K",
                        help="fuse K jobs per worker round-trip "
                             "(amortizes IPC; LCP-family jobs on one "
                             "instance share a work-function sweep); "
                             "default auto-sizes, 1 disables fusion")
        sp.add_argument("--max-retries", type=int, default=2,
                        metavar="R",
                        help="per-job retries (exponential backoff) "
                             "before the job is quarantined as a "
                             "status=failed row; the rest of the grid "
                             "always completes (0 disables retries)")
        if not sink:
            return
        sp.add_argument("--sink", choices=("list", "jsonl", "sqlite"),
                        default="list",
                        help="where result rows stream to: an in-memory "
                             "list (printed), a JSONL file or a SQLite "
                             "database")
        sp.add_argument("--sink-path", metavar="PATH",
                        help="output path for --sink jsonl/sqlite "
                             "(default rows.jsonl / rows.db)")

    sp = sub.add_parser("sweep",
                        help="batch a (scenario x algorithm x seed x size) "
                             "grid through the parallel engine")
    add_grid_args(sp)
    sp.add_argument("--group-by", default=None, metavar="COLS",
                    help="comma list of row columns to aggregate on "
                         "(default scenario,algorithm,T); params-axis "
                         "columns work too, e.g. "
                         "scenario,algorithm,T,beta for the E11 "
                         "per-beta tables")
    sp.add_argument("--per-row", action="store_true",
                    help="print every job row, not only aggregates")
    sp.add_argument("--list", action="store_true",
                    help="list scenarios and registered algorithms")
    add_engine_args(sp)

    sp = sub.add_parser("bench",
                        help="run a predefined engine grid with timing")
    sp.add_argument("--grid", choices=sorted(_BENCH_GRIDS),
                    default="smoke")
    sp.add_argument("--group-by", default=None, metavar="COLS",
                    help="comma list of row columns to aggregate on")
    add_engine_args(sp)

    sp = sub.add_parser("lowerbound",
                        help="Section 5 adversarial games (eps grids "
                             "run as game-pipeline engine jobs)")
    sp.add_argument("--kind",
                    choices=("deterministic", "continuous", "randomized",
                             "restricted"),
                    default="deterministic")
    sp.add_argument("--eps", default="0.2,0.1,0.05",
                    help="comma list of adversary slopes")
    sp.add_argument("--max-steps", type=int, default=30000)
    sp.add_argument("--n-jobs", type=int, default=1,
                    help="play the eps grid on a process pool")
    sp.add_argument("--cache-dir", metavar="DIR",
                    help="per-job result cache (eps points persist "
                         "like any other engine job)")

    sp = sub.add_parser("report",
                        help="assemble the experiment report from "
                             "benchmark artifacts")
    sp.add_argument("--results-dir", default="benchmarks/results")
    sp.add_argument("--check", action="store_true",
                    help="exit non-zero if any experiment is missing")

    sp = sub.add_parser("cache",
                        help="administer the per-job result cache")
    cache_sub = sp.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
            ("stats", "entry counts, bytes and backend of a cache"),
            ("prune", "remove records older than a cutoff"),
            ("clear", "remove every record"),
            ("migrate", "convert a JSON cache dir to the SQLite "
                        "backend (cache.db)")):
        csp = cache_sub.add_parser(name, help=help_text)
        csp.add_argument("--cache-dir", metavar="DIR", required=True)
        if name != "migrate":
            csp.add_argument("--cache-backend",
                             choices=("auto", "json", "sqlite"),
                             default="auto")
        if name == "prune":
            csp.add_argument("--older-than",
                             metavar="AGE",
                             help="age cutoff: number plus unit suffix "
                                  "s/m/h/d (plain numbers mean days), "
                                  "e.g. 30d, 12h, 90")
            csp.add_argument("--max-bytes", metavar="SIZE",
                             help="size bound: evict least-recently-"
                                  "accessed records until the cache "
                                  "holds at most SIZE bytes (suffixes "
                                  "k/m/g), e.g. 100m")

    sp = sub.add_parser("work",
                        help="multi-worker grid execution on a shared "
                             "lease queue")
    work_sub = sp.add_subparsers(dest="work_command", required=True)

    wsp = work_sub.add_parser(
        "enqueue", help="split a grid into contiguous job leases")
    wsp.add_argument("--queue", metavar="DIR", required=True,
                     help="queue directory shared by every worker")
    wsp.add_argument("--lease-jobs", type=int, default=None, metavar="N",
                     help="contiguous jobs per lease (default %d)"
                          % _DEFAULT_LEASE_JOBS)
    add_grid_args(wsp)

    wsp = work_sub.add_parser(
        "run", help="claim and run leases until the queue drains")
    wsp.add_argument("--queue", metavar="DIR", required=True)
    wsp.add_argument("--worker", default=None, metavar="ID",
                     help="worker identity (default host-pid); names "
                          "this worker's results file and leases")
    wsp.add_argument("--ttl", type=float, default=None, metavar="SECS",
                     help="lease time-to-live; heartbeats ride each "
                          "batch flush, so pick well above one batch's "
                          "wall time (default %.0fs)" % _DEFAULT_TTL)
    wsp.add_argument("--poll", type=float, default=None, metavar="SECS",
                     help="idle poll interval while waiting for "
                          "reclaimable leases")
    wsp.add_argument("--max-leases", type=int, default=None, metavar="N",
                     help="stop after N leases (default: drain the "
                          "queue)")
    add_engine_args(wsp, sink=False)

    wsp = work_sub.add_parser(
        "merge", help="reassemble per-worker rows into one result set")
    wsp.add_argument("--queue", metavar="DIR", required=True)
    wsp.add_argument("--grid-id", default=None,
                     help="grid to merge (default: the queue's only "
                          "grid)")
    wsp.add_argument("--out", metavar="PATH", default=None,
                     help="write merged rows to a JSONL file instead "
                          "of printing aggregate ratios")

    wsp = work_sub.add_parser(
        "retry-failed",
        help="re-enqueue only the quarantined (status=failed) jobs")
    wsp.add_argument("--queue", metavar="DIR", required=True)
    wsp.add_argument("--grid-id", default=None,
                     help="grid to retry (default: the only one)")

    wsp = work_sub.add_parser("status",
                              help="lease counts per grid, plus "
                                   "quarantined jobs and stale workers")
    wsp.add_argument("--queue", metavar="DIR", required=True)
    wsp.add_argument("--grid-id", default=None,
                     help="report one grid (default: every grid)")
    wsp.add_argument("--json", action="store_true",
                     help="machine-readable status: the same payload "
                          "the grid service's GET /grids/<id> serves")

    sp = sub.add_parser("serve",
                        help="HTTP grid service over a shared lease "
                             "queue (submit grids with POST /grids)")
    sp.add_argument("--queue", metavar="DIR", required=True,
                    help="lease-queue directory the worker fleet "
                         "shares")
    sp.add_argument("--cache-dir", metavar="DIR", default=None,
                    help="job cache probed on submit; hits are "
                         "answered without enqueueing")
    sp.add_argument("--cache-backend", choices=("auto", "json",
                                                "sqlite"),
                    default="auto", help="cache backend (default "
                                         "auto-detect)")
    sp.add_argument("--host", default="127.0.0.1",
                    help="bind address (default %(default)s)")
    sp.add_argument("--port", type=int, default=8600,
                    help="bind port; 0 picks an ephemeral port "
                         "(default %(default)s)")
    sp.add_argument("--budget", type=int, default=None, metavar="N",
                    help="admission control: max outstanding queued "
                         "jobs before submits get 429")
    sp.add_argument("--lease-jobs", type=int, default=None,
                    metavar="N",
                    help="contiguous jobs per enqueued lease "
                         "(default %d)" % _DEFAULT_LEASE_JOBS)
    sp.add_argument("--verbose", action="store_true",
                    help="log every request to stderr")
    return p


def _make_loads(args) -> np.ndarray:
    if args.loads_csv:
        loads = np.loadtxt(args.loads_csv, dtype=np.float64, ndmin=1)
        if loads.ndim != 1:
            raise SystemExit("loads CSV must contain one value per line")
        return loads
    from .workloads import (bursty_loads, constant_loads, diurnal_loads,
                            hotmail_like_loads, msr_like_loads, onoff_loads,
                            sawtooth_loads)
    rng = np.random.default_rng(args.seed)
    T, peak = args.T, args.peak
    return {
        "diurnal": lambda: diurnal_loads(T, peak=peak, rng=rng),
        "msr": lambda: msr_like_loads(T, peak=peak, rng=rng),
        "hotmail": lambda: hotmail_like_loads(T, peak=peak, rng=rng),
        "bursty": lambda: bursty_loads(T, peak=peak, rng=rng),
        "onoff": lambda: onoff_loads(T, peak=peak, rng=rng),
        "sawtooth": lambda: sawtooth_loads(T, peak=peak),
        "constant": lambda: constant_loads(T, peak),
    }[args.workload]()


def _make_instance(args):
    from .workloads import capacity_for, instance_from_loads
    loads = _make_loads(args)
    m = capacity_for(loads)
    return instance_from_loads(loads, m=m, beta=args.beta,
                               delay_weight=args.delay_weight)


def _cmd_solve(args) -> int:
    from .analysis import format_table
    from .core.schedule import cost_breakdown
    from .offline import solve_binary_search, solve_dp, solve_graph, solve_lp
    inst = _make_instance(args)
    solver = {"binary_search": solve_binary_search, "dp": solve_dp,
              "graph": solve_graph, "lp": solve_lp}[args.solver]
    res = solver(inst)
    b = cost_breakdown(inst, res.schedule)
    print(format_table([{
        "solver": res.method, "T": inst.T, "m": inst.m, "beta": inst.beta,
        "total": res.cost, "operating": b["operating"],
        "switching": b["switching"], "peak": b["peak"],
    }], title="offline optimum"))
    if args.show_schedule:
        print("schedule:", res.schedule.tolist())
    if args.save_schedule:
        from .io import save_schedule
        save_schedule(args.save_schedule, res.schedule)
        print(f"schedule written to {args.save_schedule}")
    if args.save_instance:
        from .io import save_instance
        save_instance(args.save_instance, inst)
        print(f"instance written to {args.save_instance}")
    return 0


def _make_algorithm(name: str, lookahead: int):
    from .runner import make_algorithm
    return make_algorithm(name, lookahead=lookahead, seed=0)


def _cmd_simulate(args) -> int:
    from .analysis import format_table, optimal_cost
    from .online import run_online
    inst = _make_instance(args)
    opt = optimal_cost(inst)
    rows = []
    for name in args.algorithms.split(","):
        name = name.strip().lower()
        if name not in _ALGORITHMS:
            raise SystemExit(f"unknown algorithm {name!r}; "
                             f"choose from {_ALGORITHMS}")
        res = run_online(inst, _make_algorithm(name, args.lookahead))
        rows.append({"algorithm": res.name, "cost": res.cost,
                     "opt": opt, "ratio": res.cost / opt})
    print(format_table(rows, title=f"online simulation "
                                   f"(T={inst.T}, m={inst.m}, "
                                   f"beta={inst.beta})"))
    return 0


def _split(csv: str, cast=str) -> tuple:
    try:
        return tuple(cast(part.strip()) for part in csv.split(",")
                     if part.strip())
    except ValueError:
        raise SystemExit(f"could not parse comma list {csv!r}") from None


def _build_spec(scenarios, algorithms, seeds, sizes, lookahead=0,
                instance_seed=None, params=None):
    """Validate names against the catalogs and build a GridSpec."""
    from .runner import (GridSpec, algorithm_names, game_names,
                         scenario_names, solver_names)
    known_scenarios = scenario_names()
    known_algorithms = algorithm_names() + solver_names() + game_names()
    for name in scenarios:
        if name not in known_scenarios:
            raise SystemExit(f"unknown scenario {name!r}; choose from "
                             f"{sorted(known_scenarios)}")
    for name in algorithms:
        if name not in known_algorithms:
            raise SystemExit(f"unknown algorithm {name!r}; choose from "
                             f"{sorted(known_algorithms)}")
    try:
        return GridSpec(scenarios=scenarios, algorithms=algorithms,
                        seeds=seeds, sizes=sizes, lookahead=lookahead,
                        instance_seed=instance_seed,
                        params=params if params else ({},))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _print_grid_results(rows, per_row: bool, title: str,
                        group_by=None) -> None:
    from .analysis import format_table
    from .runner import aggregate_rows
    if per_row:
        print(format_table(rows, title=f"{title} — rows"))
    by = group_by if group_by else ("scenario", "algorithm", "T")
    if group_by:
        # aggregate_rows tolerates missing keys (heterogeneous rows),
        # so a typo'd column would silently group everything under
        # None — catch it here, where the user can see the choices
        known = set().union(*(row.keys() for row in rows)) if rows else set()
        missing = [k for k in by if k not in known]
        if missing:
            raise SystemExit(
                f"unknown --group-by column(s) {', '.join(missing)}; "
                f"rows have {', '.join(sorted(known))}")
    print(format_table(aggregate_rows(rows, by=by),
                       title=f"{title} — aggregate ratios"))


def _print_cache_stats(stats: dict) -> None:
    print(f"cache: {stats['job_hits']} hits, {stats['job_misses']} misses, "
          f"{stats['opt_solved']} optima solved, "
          f"{stats['opt_hits']} optima cached")


def _make_cli_sink(args):
    """The result sink selected by --sink/--sink-path (None = list)."""
    if getattr(args, "sink", "list") == "list":
        return None
    from .runner import make_sink
    default = "rows.jsonl" if args.sink == "jsonl" else "rows.db"
    return make_sink(args.sink, args.sink_path or default)


def _print_sink_results(result, args, stats: dict, n_jobs: int,
                        title: str) -> None:
    """Report a file-backed sink's output without re-loading the rows
    into parent memory (that would defeat the streaming core)."""
    print(f"{title}: {stats['rows_written']} rows -> {result} "
          f"(sink {args.sink}, {stats['batches']} batches, "
          f"max {stats['max_pending']} pending rows, n_jobs={n_jobs}, "
          f"{stats['overlapped_batches']} overlapped)")


def _print_store_stats(stats: dict) -> None:
    print(f"store: {stats['inst_materialized']} instances materialized, "
          f"{stats['inst_builds']} built in-process, "
          f"{stats['inst_loads']} mmap loads, "
          f"{stats['inst_memo_hits']} memo hits")


def _open_cache(args):
    """The JobCache selected by --cache-dir/--cache-backend (or None)."""
    if not getattr(args, "cache_dir", None):
        return None
    from .runner import JobCache
    backend = getattr(args, "cache_backend", "auto")
    return JobCache(args.cache_dir,
                    backend=None if backend == "auto" else backend)


def _make_cli_config(args, sink=None):
    """The EngineConfig selected by the shared engine flags."""
    from .runner import EngineConfig
    return EngineConfig(n_jobs=args.n_jobs, cache_dir=_open_cache(args),
                        store_dir=getattr(args, "store_dir", None),
                        force=args.force, sink=sink,
                        batch_size=args.batch_size,
                        pipeline_depth=args.pipeline_depth,
                        chunk_jobs=args.chunk_jobs,
                        max_retries=getattr(args, "max_retries", 2))


def _cmd_sweep(args) -> int:
    if args.list:
        from .runner import algorithm_table, get_scenario, scenario_names
        print("scenarios:")
        for name in scenario_names():
            print(f"  {name:20s} {get_scenario(name).summary}")
        print("\nalgorithms/solvers:\n")
        print(algorithm_table())
        return 0
    from .runner import run_grid
    params = None
    if args.params:
        import json as _json
        try:
            params = tuple(_json.loads(part)
                           for part in args.params.split(";") if part)
        except ValueError:
            raise SystemExit(f"could not parse --params {args.params!r}; "
                             "use semicolon-separated JSON dicts"
                             ) from None
    spec = _build_spec(_split(args.scenarios), _split(args.algorithms),
                       _split(args.seeds, int), _split(args.T, int),
                       lookahead=args.lookahead, params=params)
    stats: dict = {}
    result = run_grid(spec, _make_cli_config(args, _make_cli_sink(args)),
                      stats=stats)
    title = f"sweep {len(spec)} jobs (key {spec.cache_key()})"
    if args.sink == "list":
        _print_grid_results(result, args.per_row, title,
                            group_by=_split(args.group_by)
                            if args.group_by else None)
    else:
        _print_sink_results(result, args, stats, args.n_jobs, title)
    if args.cache_dir:
        _print_cache_stats(stats)
    if args.store_dir:
        _print_store_stats(stats)
    return 0


def _cmd_bench(args) -> int:
    from .runner import GridSpec, run_grid
    spec = GridSpec(**_BENCH_GRIDS[args.grid])
    stats: dict = {}
    start = time.perf_counter()
    result = run_grid(spec, _make_cli_config(args, _make_cli_sink(args)),
                      stats=stats)
    elapsed = time.perf_counter() - start
    if args.sink == "list":
        _print_grid_results(result, per_row=False,
                            title=f"bench grid {args.grid!r}",
                            group_by=_split(args.group_by)
                            if args.group_by else None)
    else:
        _print_sink_results(result, args, stats, args.n_jobs,
                            f"bench grid {args.grid!r}")
    n = stats["rows_written"]
    print(f"\n{n} jobs in {elapsed:.2f}s "
          f"({n / elapsed:.1f} jobs/s, n_jobs={args.n_jobs})")
    if args.cache_dir:
        _print_cache_stats(stats)
    if args.store_dir:
        _print_store_stats(stats)
    return 0


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_SIZE_UNITS = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def _parse_age(text: str) -> float:
    """Age cutoff in seconds from '30d'/'12h'/'90' (plain = days)."""
    text = text.strip().lower()
    unit = _AGE_UNITS.get(text[-1:], None)
    digits = text[:-1] if unit is not None else text
    try:
        value = float(digits)
    except ValueError:
        raise SystemExit(f"could not parse age {text!r}; use e.g. "
                         "'30d', '12h', '45m', '30s' or plain days"
                         ) from None
    return value * (unit if unit is not None else 86400.0)


def _parse_size(text: str) -> int:
    """Byte size from '100m'/'2g'/'50000' (plain = bytes)."""
    text = text.strip().lower()
    unit = _SIZE_UNITS.get(text[-1:], None)
    digits = text[:-1] if unit is not None else text
    try:
        value = float(digits)
    except ValueError:
        raise SystemExit(f"could not parse size {text!r}; use e.g. "
                         "'500k', '100m', '2g' or plain bytes") from None
    return int(value * (unit if unit is not None else 1))


def _cmd_cache(args) -> int:
    from .runner import JobCache, migrate_cache
    cache = _open_cache(args)
    if args.cache_command == "stats":
        info = cache.stats()
        print(f"backend: {info['backend']}")
        if "auto_vacuum" in info:
            print(f"vacuum:  {info['auto_vacuum']}")
        print(f"root:    {cache.root}")
        for kind in sorted(info["entries"]):
            print(f"  {kind:12s} {info['entries'][kind]} records")
        print(f"total:   {info['total']} records, {info['bytes']} bytes")
        return 0
    if args.cache_command == "prune":
        if not args.older_than and not args.max_bytes:
            raise SystemExit("prune needs --older-than and/or --max-bytes")
        removed = 0
        if args.older_than:
            removed = cache.prune(_parse_age(args.older_than))
            print(f"pruned {removed} records older than {args.older_than}")
        if args.max_bytes:
            evicted = cache.prune_bytes(_parse_size(args.max_bytes))
            print(f"evicted {evicted} least-recently-used records "
                  f"(size bound {args.max_bytes})")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} records")
        return 0
    # migrate: JSON dir -> SQLite cache.db in the same directory
    src = JobCache(args.cache_dir, backend="json")
    if cache.backend == "sqlite":
        raise SystemExit(f"{args.cache_dir} already holds a cache.db")
    dst = JobCache(args.cache_dir, backend="sqlite")
    copied = migrate_cache(src, dst)
    removed = src.clear()
    print(f"migrated {copied} records to {dst.root / 'cache.db'} "
          f"({removed} JSON records removed)")
    return 0


#: (scenario, game player) realizing each historical --kind
_LOWERBOUND_GRIDS = {
    "deterministic": ("lb-deterministic", "game-lcp"),
    "restricted": ("lb-restricted", "game-lcp"),
    "continuous": ("lb-continuous", "game-algorithm-b"),
    "randomized": ("lb-continuous", "game-rounded"),
}


def _cmd_lowerbound(args) -> int:
    """The Section 5 eps grids as `game`-pipeline engine jobs: each
    (kind, eps) point is one grid job, so the eps sweep inherits the
    engine's process pool, per-job cache and deterministic seeding."""
    from .analysis import format_table
    from .runner import EngineConfig, run_grid
    scenario, algorithm = _LOWERBOUND_GRIDS[args.kind]
    spec = _build_spec((scenario,), (algorithm,), (0,), (args.max_steps,),
                       params=tuple({"eps": float(e)}
                                    for e in args.eps.split(",")))
    rows = run_grid(spec, EngineConfig(n_jobs=args.n_jobs,
                                       cache_dir=_open_cache(args)))
    table = [{"eps": r["eps"], "T": r["game_T"], "ratio": r["ratio"],
              "limit": r["limit"]} for r in rows]
    print(format_table(table, title=f"{args.kind} lower-bound game"))
    return 0


def _cmd_work(args) -> int:
    """Multi-worker lease-queue execution (enqueue/run/merge/status)."""
    from .runner import LeaseQueue, merge_results, work
    if args.work_command == "enqueue":
        import json as _json
        params = None
        if args.params:
            try:
                params = tuple(_json.loads(part)
                               for part in args.params.split(";") if part)
            except ValueError:
                raise SystemExit(
                    f"could not parse --params {args.params!r}; use "
                    "semicolon-separated JSON dicts") from None
        spec = _build_spec(_split(args.scenarios), _split(args.algorithms),
                           _split(args.seeds, int), _split(args.T, int),
                           lookahead=args.lookahead, params=params)
        queue = LeaseQueue(args.queue)
        kwargs = ({} if args.lease_jobs is None
                  else {"lease_jobs": args.lease_jobs})
        grid_id = queue.enqueue(spec, **kwargs)
        counts = queue.counts(grid_id)
        print(f"enqueued grid {grid_id}: {len(spec)} jobs in "
              f"{sum(counts.values())} leases -> {args.queue}")
        return 0
    if args.work_command == "run":
        from .runner.leasequeue import default_worker_id
        worker = args.worker or default_worker_id()
        kwargs = {k: v for k, v in
                  (("ttl", args.ttl), ("poll", args.poll),
                   ("max_leases", args.max_leases)) if v is not None}
        stats = work(args.queue, worker=worker,
                     config=_make_cli_config(args), **kwargs)
        print(f"worker {worker} done: {stats.leases_claimed} leases "
              f"claimed, {stats.leases_completed} completed, "
              f"{stats.leases_lost} lost, {stats.leases_reclaimed} "
              f"reclaimed, {stats.rows_written} rows")
        return 0
    if args.work_command == "merge":
        sink = None
        if args.out:
            from .runner import JsonlSink
            sink = JsonlSink(args.out)
        result = merge_results(args.queue, grid_id=args.grid_id, sink=sink)
        if args.out:
            print(f"merged {sink.rows_written} rows -> {result}")
        else:
            _print_grid_results(result, per_row=False,
                                title=f"merged grid ({len(result)} rows)")
        return 0
    if args.work_command == "retry-failed":
        from .runner import retry_failed
        n_failed, n_leases = retry_failed(args.queue,
                                          grid_id=args.grid_id)
        if n_failed == 0:
            print("no quarantined jobs — nothing to retry")
        else:
            print(f"re-enqueued {n_failed} quarantined jobs "
                  f"({n_leases} leases reopened); run more workers "
                  f"(repro work run) to retry them")
        return 0
    # status: lease counts per grid, plus failure/staleness visibility
    from .runner import failed_jobs
    queue = LeaseQueue(args.queue)
    grids = ([args.grid_id] if args.grid_id is not None
             else queue.grids())
    if args.json:
        # the exact payload the grid service's GET /grids/<id>
        # serves, from the same grid_status function
        import json as _json
        from .runner import grid_status
        payloads = [grid_status(queue, grid_id) for grid_id in grids]
        print(_json.dumps(payloads[0] if args.grid_id is not None
                          else payloads, sort_keys=True))
        return 0
    if not grids:
        print(f"queue {args.queue}: no grids enqueued")
        return 0
    for grid_id in grids:
        counts = queue.counts(grid_id)
        state = "drained" if queue.finished(grid_id) else "in progress"
        print(f"grid {grid_id}: {queue.total(grid_id)} jobs — "
              f"{counts['pending']} pending, {counts['leased']} leased, "
              f"{counts['done']} done leases ({state})")
        failed = failed_jobs(queue, grid_id)
        stale = queue.stale(grid_id)
        if failed:
            print(f"  {len(failed)} quarantined jobs (first: "
                  f"{sorted(failed)[:5]}) — repro work retry-failed "
                  f"re-enqueues them")
        if stale:
            print(f"  {stale} stale workers (heartbeat expired; "
                  f"reclaimed on the next worker loop)")
    return 0


def _cmd_serve(args) -> int:
    """Run the HTTP grid service until a drain shutdown ends it."""
    from .runner import GridService
    kwargs = {}
    if args.budget is not None:
        kwargs["budget"] = args.budget
    if args.lease_jobs is not None:
        kwargs["lease_jobs"] = args.lease_jobs
    service = GridService(
        args.queue, cache_dir=args.cache_dir,
        cache_backend=(None if args.cache_backend == "auto"
                       else args.cache_backend),
        host=args.host, port=args.port, verbose=args.verbose,
        **kwargs)
    print(f"serving grids on {service.url} (queue {args.queue}, "
          f"cache {args.cache_dir or 'disabled'}, "
          f"budget {service.budget})", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    print("grid service drained; exiting")
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import assemble_report, missing_experiments
    print(assemble_report(args.results_dir))
    if args.check:
        missing = missing_experiments(args.results_dir)
        if missing:
            print(f"MISSING EXPERIMENTS: {', '.join(missing)}",
                  file=sys.stderr)
            return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {"solve": _cmd_solve, "simulate": _cmd_simulate,
            "sweep": _cmd_sweep, "bench": _cmd_bench,
            "lowerbound": _cmd_lowerbound, "report": _cmd_report,
            "cache": _cmd_cache, "work": _cmd_work,
            "serve": _cmd_serve,
            }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
