"""Tests for the LP comparator (Lin et al.'s convex-program path)."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import (lp_relaxation_cost, solve_binary_search, solve_dp,
                           solve_lp)
from tests.conftest import (bowl_instance, hinge_instance,
                            random_convex_instance, trace_instance)


class TestLPOptimality:
    def test_matches_dp_random(self):
        rng = np.random.default_rng(150)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 12)),
                                          int(rng.integers(1, 10)),
                                          float(rng.uniform(0.2, 4)))
            lp = solve_lp(inst)
            dp = solve_dp(inst)
            assert lp.cost == pytest.approx(dp.cost, abs=1e-6)
            assert cost(inst, lp.schedule) == pytest.approx(lp.cost)

    def test_matches_binary_search_on_traces(self):
        inst = trace_instance(seed=5, T=72, peak=15.0, beta=4.0)
        assert solve_lp(inst).cost == pytest.approx(
            solve_binary_search(inst).cost, rel=1e-9)

    def test_hinge_and_bowl(self):
        for inst in (hinge_instance([0, 6, 2, 6], m=8, beta=2.0),
                     bowl_instance([1, 7, 3], m=8, beta=0.7)):
            assert solve_lp(inst).cost == pytest.approx(solve_dp(inst).cost)

    def test_relaxation_value_equals_integral_optimum(self):
        """The LP value itself (before rounding) equals the integral
        optimum — the structural fact behind Lemma 4."""
        rng = np.random.default_rng(151)
        for _ in range(10):
            inst = random_convex_instance(rng, 8, 6, 1.5)
            assert lp_relaxation_cost(inst) == pytest.approx(
                solve_dp(inst).cost, abs=1e-6)

    def test_schedule_is_integral_and_feasible(self):
        rng = np.random.default_rng(152)
        inst = random_convex_instance(rng, 10, 7, 1.0)
        res = solve_lp(inst)
        assert res.schedule.dtype == np.int64
        assert res.schedule.min() >= 0
        assert res.schedule.max() <= inst.m

    def test_empty_horizon(self):
        inst = Instance(beta=1.0, F=np.zeros((0, 4)))
        assert solve_lp(inst).cost == 0.0

    def test_single_state_space(self):
        """m = 0: only the all-zero schedule exists."""
        inst = Instance(beta=1.0, F=np.array([[2.0], [3.0]]))
        res = solve_lp(inst)
        assert res.cost == pytest.approx(5.0)
        np.testing.assert_array_equal(res.schedule, [0, 0])

    def test_large_beta_freezes_lp_too(self):
        inst = hinge_instance([0, 5, 0, 5], m=5, beta=500.0)
        assert solve_lp(inst).cost == pytest.approx(solve_dp(inst).cost)
