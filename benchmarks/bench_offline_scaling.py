"""E3 — Section 2.2: O(T log m) runtime scaling.

Regenerates the runtime comparison implicit in the paper's complexity
claims: the binary-search algorithm scales logarithmically in m while the
DP is linear in m (and the explicit graph quadratic).  Absolute times are
machine-specific; the *shape* — binary search flat in m, DP growing
linearly, crossover at moderate m — is the reproduced result.

Engine-backed: the timing grids run through :func:`repro.analysis.sweep`
(module-level measure functions over the engine's ``parallel_map``), and
a ``run_grid`` pass checks that every exact solver lands on the hoisted
per-instance optimum.
"""

import time

import numpy as np

from repro.analysis import sweep
from repro.offline import solve_binary_search, solve_dp, solve_graph
from repro.runner import GridSpec, run_grid

from conftest import random_convex_instance, record


def _time(fn, *args, repeats=3, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def _instance_at(T: int, m: int, salt: int):
    """Deterministic random-convex instance per grid point (each sweep
    point must be self-contained so it can run on any pool worker)."""
    rng = np.random.default_rng([salt, T, m])
    return random_convex_instance(rng, T, m, 2.0)


def _measure_bs_vs_dp(T: int, m: int) -> dict:
    inst = _instance_at(T, m, salt=11)
    t_bs = _time(solve_binary_search, inst, repeats=2)
    t_dp = _time(lambda i: solve_dp(i, return_schedule=False), inst,
                 repeats=2)
    return {"binary_search_s": t_bs, "dp_s": t_dp,
            "speedup_dp/bs": t_dp / t_bs}


def _measure_bs_vs_dp_in_T(T: int, m: int) -> dict:
    inst = _instance_at(T, m, salt=12)
    return {"binary_search_s": _time(solve_binary_search, inst),
            "dp_s": _time(lambda i: solve_dp(i, return_schedule=False),
                          inst)}


def _measure_graph_vs_dp(T: int, m: int) -> dict:
    inst = _instance_at(T, m, salt=13)
    return {"graph_s": _time(solve_graph, inst, repeats=2),
            "dp_s": _time(lambda i: solve_dp(i, return_schedule=False),
                          inst, repeats=2)}


def test_e3_scaling_in_m(benchmark):
    """Fixed T, growing m: binary search ~log m, DP ~m.

    NumPy's vectorized DP has a tiny per-state constant, so the crossover
    sits at large m (hundreds of thousands of states) — exactly the
    pseudo-polynomial-vs-polynomial story of Section 2: the DP's work is
    linear in m while the binary search pays log m times a fixed
    per-step cost.
    """
    rows = sweep(_measure_bs_vs_dp,
                 {"T": [128], "m": [1024, 8192, 65536, 262144]})
    record("E3_scaling_m", rows, title="E3: runtime vs m (T = 128)")
    # Shape assertions: binary search wins at the largest m, and its
    # growth from the smallest to the largest m is far below the DP's.
    assert rows[-1]["binary_search_s"] < rows[-1]["dp_s"]
    bs_growth = rows[-1]["binary_search_s"] / rows[0]["binary_search_s"]
    dp_growth = rows[-1]["dp_s"] / rows[0]["dp_s"]
    assert bs_growth < dp_growth
    # Benchmark the headline configuration.
    inst = _instance_at(128, 262144, salt=11)
    benchmark.pedantic(solve_binary_search, args=(inst,), rounds=3,
                       iterations=1)


def test_e3_scaling_in_T(benchmark):
    """Fixed m, growing T: both solvers are ~linear in T."""
    rows = sweep(_measure_bs_vs_dp_in_T,
                 {"T": [32, 128, 512, 2048], "m": [512]})
    record("E3_scaling_T", rows, title="E3: runtime vs T (m = 512)")
    # Linearity in T (loose factor-of-4 sanity window around 64x work).
    ratio = rows[-1]["binary_search_s"] / max(rows[0]["binary_search_s"],
                                              1e-9)
    assert ratio < 64 * 8
    inst = _instance_at(2048, 512, salt=12)
    benchmark.pedantic(solve_binary_search, args=(inst,), rounds=3,
                       iterations=1)


def test_e3_graph_quadratic_reference(benchmark):
    """The explicit Figure-1 relaxation is the O(T m^2) strawman."""
    rows = sweep(_measure_graph_vs_dp,
                 {"T": [64], "m": [64, 128, 256]})
    record("E3_graph_reference", rows,
           title="E3: explicit-graph relaxation vs DP")
    assert rows[-1]["dp_s"] < rows[-1]["graph_s"]
    inst = _instance_at(64, 256, salt=13)
    benchmark(solve_graph, inst)


def test_e3_exact_solvers_on_hoisted_optimum(benchmark):
    """Every exact solver reproduces the per-instance optimum the
    two-phase engine hoists in phase 1 (ratio exactly 1)."""
    spec = GridSpec(scenarios=("random-convex",),
                    algorithms=("binary_search", "dp", "graph"),
                    seeds=(0, 1), sizes=(64,))
    rows = run_grid(spec)
    record("E3_exact_grid",
           [{"algorithm": r["algorithm"], "seed": r["seed"],
             "cost": r["cost"], "ratio": r["ratio"]} for r in rows],
           title="E3: exact solvers vs hoisted optimum")
    assert all(abs(r["ratio"] - 1.0) < 1e-9 for r in rows)
    benchmark(run_grid, spec)
