"""Bridge between the simulator and the paper's abstract cost model.

``bridge_instance`` tabulates, for every step and every possible active
count ``j``, the *one-step* simulated cost (energy + weighted latency)
assuming the backlog is drained each step — a memoryless surrogate of
the simulator.  The result is a valid convex instance (convexified by
increment sorting where queueing makes the raw table slightly
non-convex) whose optimal schedules can then be *replayed* through the
real simulator.

This closes the loop the paper's model opens: Section 2's offline
algorithm runs on the bridged instance, and ``replay_schedule`` measures
what that schedule actually costs in the simulator — energy, latency,
backlog — so the abstraction can be validated (benchmark E13: optimized
schedules beat static provisioning in *simulated* cost, and abstract
cost tracks simulated cost).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from .datacenter import DataCenter, ServerPowerModel, SimLog
from .jobs import JobTrace

__all__ = ["SimPolicy", "SimulatorGame", "bridge_instance",
           "replay_schedule", "simulated_cost"]


_MAX_DELAY_FACTOR = 10.0


def _one_step_cost(power: ServerPowerModel, j: int, work: float,
                   latency_weight: float) -> float:
    """Expected one-step cost with ``j`` ready servers and fresh ``work``.

    The latency term uses the M/G/1-style sojourn inflation
    ``1/(1 - rho)`` (capped): a myopic "half a step per served unit"
    estimate badly underestimates the *compounding* backlog the real
    simulator accumulates when utilization approaches 1, which would
    make the optimizer under-provision.  The cap keeps the table finite
    and bounds the convexification error.
    """
    capacity = j * power.service_rate
    served = min(work, capacity)
    leftover = work - served
    busy = served / power.service_rate if power.service_rate > 0 else 0.0
    energy = busy * power.busy_power + (j - busy) * power.idle_power
    if capacity > 0:
        rho = min(work / capacity, 1.0)
        delay = min(1.0 / (1.0 - rho), _MAX_DELAY_FACTOR) if rho < 1.0 \
            else _MAX_DELAY_FACTOR
    else:
        delay = _MAX_DELAY_FACTOR
    # Served work waits ~half a step inflated by congestion; work that
    # cannot be served this step waits at least a full inflated step.
    latency = 0.5 * served * delay + leftover * (1.0 + delay)
    return energy + latency_weight * latency


def bridge_instance(trace: JobTrace | np.ndarray, m: int, beta: float, *,
                    power: ServerPowerModel | None = None,
                    latency_weight: float = 2.0,
                    smoothing: int = 1) -> Instance:
    """Tabulate the simulator's one-step costs into a convex instance.

    ``trace`` may be a :class:`JobTrace` or a plain work array; the
    controller-visible load is the ``smoothing``-window moving average
    (1 = clairvoyant per-step work).  Sleep power of the ``m - j``
    inactive servers is added so absolute costs are comparable with the
    simulator's energy accounting.
    """
    power = power or ServerPowerModel()
    if isinstance(trace, JobTrace):
        work = trace.smoothed_loads(smoothing)
    else:
        work = np.asarray(trace, dtype=np.float64)
    T = work.shape[0]
    F = np.empty((T, m + 1), dtype=np.float64)
    for t in range(T):
        row = np.array([_one_step_cost(power, j, float(work[t]),
                                       latency_weight)
                        for j in range(m + 1)])
        row += power.sleep_power * (m - np.arange(m + 1))
        # Queueing kinks can leave tiny non-convexities at the
        # served/unserved boundary; restore convexity by sorting the
        # increments (does not move the values off the true table by
        # more than the kink size).
        inc = np.sort(np.diff(row))
        row = np.concatenate([[row[0]], row[0] + np.cumsum(inc)])
        row -= min(row.min(), 0.0)
        F[t] = row
    return Instance(beta=beta, F=F)


def replay_schedule(schedule, trace: JobTrace | np.ndarray, m: int, *,
                    power: ServerPowerModel | None = None) -> SimLog:
    """Run a schedule through the real simulator against the trace."""
    work = trace.work if isinstance(trace, JobTrace) else np.asarray(
        trace, dtype=np.float64)
    dc = DataCenter(m, power or ServerPowerModel())
    return dc.run(np.asarray(schedule), work)


def simulated_cost(schedule, trace: JobTrace | np.ndarray, m: int, *,
                   power: ServerPowerModel | None = None,
                   latency_weight: float = 2.0) -> float:
    """Scalar simulated objective of a schedule (energy + w * latency)."""
    log = replay_schedule(schedule, trace, m, power=power)
    return log.total_cost(latency_weight)


# ----------------------------------------------------------------------
# Engine adapters: simulator rollouts as `game`-pipeline instances.
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SimulatorGame:
    """One E13 rollout as a `game`-pipeline instance.

    Holds the realized work trace and the bridged cost matrix — the
    expensive ``O(T m)`` tabulation — so the instance store can
    materialize both once (``store_payload``) and every policy job
    reopens them via mmap.  ``baseline`` is the simulated cost of the
    Section-2 optimal schedule: it is the pipeline's hoisted "optimum",
    so a policy row's ratio reads "simulated cost over the optimizer's
    simulated cost".
    """

    work: np.ndarray     # realized per-step service demand
    F: np.ndarray        # bridged (T, m+1) cost matrix
    m: int
    beta: float
    latency_weight: float = 2.0

    @property
    def T(self) -> int:
        return int(np.asarray(self.work).shape[0])

    def instance(self) -> Instance:
        """The abstract instance the optimizer/policies run on."""
        return Instance(beta=float(self.beta), F=np.asarray(self.F))

    def store_payload(self):
        return ({"work": np.asarray(self.work), "F": np.asarray(self.F)},
                {"m": int(self.m), "beta": float(self.beta),
                 "latency_weight": float(self.latency_weight)})

    @classmethod
    def from_payload(cls, arrays: dict, meta: dict) -> "SimulatorGame":
        return cls(work=arrays["work"], F=arrays["F"], m=meta["m"],
                   beta=meta["beta"],
                   latency_weight=meta["latency_weight"])

    def simulate(self, schedule) -> float:
        """Replay a schedule through the real simulator."""
        return simulated_cost(schedule, np.asarray(self.work), self.m,
                              latency_weight=self.latency_weight)

    def baseline(self) -> dict:
        """Phase-1 record: simulated cost (and switching count) of the
        optimal schedule.  The extra keys beyond opt/m/beta become the
        `sim-opt` row's columns — the engine synthesizes that row from
        this record instead of re-running the DP in phase 2."""
        from ..offline import solve_dp
        sched = solve_dp(self.instance()).schedule
        changes = int(np.count_nonzero(np.diff(
            np.concatenate([[0], sched]))))
        return {"opt": self.simulate(sched), "m": int(self.m),
                "beta": float(self.beta), "schedule_changes": changes}


@dataclasses.dataclass(frozen=True)
class SimPolicy:
    """A registered `game`-pipeline algorithm: compute a provisioning
    schedule on the bridged instance, replay it through the simulator.

    ``policy`` is ``"opt"`` (Section 2 DP), ``"lcp"`` (3-competitive
    online play) or ``"static"`` (best constant level in hindsight).
    Returns the engine row fragment; ``opt`` is ``None`` because the
    hoisted baseline already carries the pipeline optimum.
    """

    policy: str

    def schedule(self, game: "SimulatorGame") -> np.ndarray:
        inst = game.instance()
        if self.policy == "opt":
            from ..offline import solve_dp
            return solve_dp(inst).schedule
        if self.policy == "lcp":
            from ..online import LCP, run_online
            return run_online(inst, LCP()).schedule.astype(int)
        if self.policy == "static":
            from ..online import solve_static
            return solve_static(inst).schedule
        raise ValueError(f"unknown simulator policy {self.policy!r}")

    def __call__(self, game) -> dict:
        if not isinstance(game, SimulatorGame):
            raise TypeError(
                f"{type(game).__name__} is not a simulator game; sim-* "
                "policies only run on sim-* scenarios")
        sched = self.schedule(game)
        changes = int(np.count_nonzero(np.diff(
            np.concatenate([[0], np.asarray(sched)]))))
        return {"cost": game.simulate(sched), "opt": None,
                "schedule_changes": changes}
