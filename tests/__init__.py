"""Test package (enables `from tests.conftest import ...` under bare
pytest invocations, where the repository root is not on sys.path)."""
