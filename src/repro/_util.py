"""Small vectorized numeric kernels shared across solvers.

All kernels are NumPy-vectorized along the state axis (length ``m+1``)
following the project's HPC conventions: the time loop is sequential by
nature of the DP recurrences, so per-step work must be branch-free array
arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prefix_min",
    "suffix_min",
    "prefix_argmin",
    "suffix_argmin",
    "argmin_first",
    "argmin_last",
]


def prefix_min(v: np.ndarray) -> np.ndarray:
    """``out[j] = min(v[0..j])`` (running minimum)."""
    return np.minimum.accumulate(v)


def suffix_min(v: np.ndarray) -> np.ndarray:
    """``out[j] = min(v[j..])`` (reverse running minimum)."""
    return np.minimum.accumulate(v[::-1])[::-1]


def prefix_argmin(v: np.ndarray) -> np.ndarray:
    """``out[j] = smallest index i <= j with v[i] == min(v[0..j])``."""
    pm = np.minimum.accumulate(v)
    idx = np.arange(v.size, dtype=np.int64)
    # A strict improvement at i starts a new prefix minimum; ties keep the
    # earlier index, so carrying the last strict-improvement index forward
    # yields the smallest index attaining each prefix minimum.
    strict = np.empty(v.size, dtype=bool)
    strict[0] = True
    strict[1:] = v[1:] < pm[:-1]
    first = np.where(strict, idx, 0)
    return np.maximum.accumulate(first)


def suffix_argmin(v: np.ndarray) -> np.ndarray:
    """``out[j] = largest index i >= j with v[i] == min(v[j..])``."""
    r = prefix_argmin(v[::-1])
    return v.size - 1 - r[::-1]


def argmin_first(v: np.ndarray) -> int:
    """Index of the first (smallest-index) minimum of ``v``."""
    return int(np.argmin(v))


def argmin_last(v: np.ndarray) -> int:
    """Index of the last (largest-index) minimum of ``v``."""
    return int(v.size - 1 - np.argmin(v[::-1]))
