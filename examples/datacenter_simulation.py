#!/usr/bin/env python
"""Case study: a week of data-center operation on realistic traces.

Reproduces the shape of Lin et al.'s evaluation (the study the paper's
introduction builds on): how much does right-sizing save relative to
static provisioning, across trace families and switching costs?  Also
reports where the savings come from (operating vs switching) and what
each online algorithm leaves on the table.

Run:  python examples/datacenter_simulation.py
"""

import numpy as np

from repro import LCP, RandomizedRounding, ThresholdFractional, run_online
from repro.analysis import format_table, optimal_cost, savings_vs_static
from repro.offline import solve_dp
from repro.online import solve_static
from repro.workloads import (capacity_for, hotmail_like_loads,
                             instance_from_loads, msr_like_loads,
                             peak_to_mean_ratio)


def build(trace: str, beta: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    gen = msr_like_loads if trace == "msr" else hotmail_like_loads
    loads = gen(24 * 7, peak=40.0, rng=rng)
    inst = instance_from_loads(loads, m=capacity_for(loads), beta=beta,
                               delay_weight=10.0)
    return loads, inst


def main() -> None:
    rows = []
    for trace in ("msr", "hotmail"):
        for beta in (1.0, 4.0, 16.0):
            loads, inst = build(trace, beta)
            opt_schedule = solve_dp(inst).schedule
            lcp = run_online(inst, LCP())
            rand = run_online(
                inst, RandomizedRounding(ThresholdFractional(), rng=1))
            base = solve_static(inst)
            rows.append({
                "trace": trace,
                "PMR": peak_to_mean_ratio(loads),
                "beta": beta,
                "static": base.cost,
                "opt_saving_%":
                    100 * savings_vs_static(inst, opt_schedule)["saving"],
                "lcp_saving_%":
                    100 * savings_vs_static(inst, lcp.schedule)["saving"],
                "rand_saving_%":
                    100 * savings_vs_static(inst, rand.schedule)["saving"],
            })
    print(format_table(
        rows, title="right-sizing savings vs static provisioning (one week)"))

    # Zoom into one configuration: where does the optimum spend money?
    loads, inst = build("hotmail", 4.0)
    res = solve_dp(inst)
    from repro.analysis import schedule_stats
    stats = schedule_stats(inst, res.schedule)
    print("\nhotmail-like, beta=4 — optimal schedule anatomy:")
    print(f"  operating cost: {stats['operating']:.1f}")
    print(f"  switching cost: {stats['switching']:.1f}")
    print(f"  servers powered up over the week: {stats['power_ups']:.0f}")
    print(f"  peak active servers: {stats['peak']:.0f} "
          f"(capacity {inst.m})")
    print(f"  LCP ratio vs optimal: "
          f"{run_online(inst, LCP()).cost / optimal_cost(inst):.3f}")


if __name__ == "__main__":
    main()
