"""Nightly benchmark regression comparator.

Diffs the machine-readable benchmark JSON of the current run against the
previous run's downloaded artifact and fails (exit 1) when a tracked
metric drifts beyond its tolerance:

* **ratio metrics** (any numeric leaf whose key path contains ``ratio``,
  e.g. the per-algorithm ``mean_ratio`` fingerprints in
  ``BENCH_engine.json``) — tight tolerance; these are *correctness*
  fingerprints, a drift means reproduced results changed;
* **runtime metrics** (key path contains ``seconds``, ``jobs_per_sec``
  or ``speedup``) — loose tolerance; CI machines are noisy, only large
  regressions should fail.

Files are matched by basename between the two directories (searched
recursively for ``*.json`` starting with ``BENCH``); a missing previous
directory or no matching files exits 0 — the first run has nothing to
compare against.  Counters and other numeric leaves are not tracked,
so layout additions don't break the gate.

Usage::

    python benchmarks/compare_results.py previous-results benchmarks/results \
        --ratio-tol 0.05 --time-tol 0.5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RATIO_MARKERS = ("ratio",)
TIME_MARKERS = ("seconds", "jobs_per_sec", "speedup", "time")


def _numeric_leaves(node, path=()):
    """Yield ``(path, value)`` for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        for k, v in sorted(node.items()):
            yield from _numeric_leaves(v, path + (str(k),))
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from _numeric_leaves(v, path + (str(i),))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def _metric_kind(path: tuple) -> str | None:
    """'ratio', 'time' or None (untracked) for a leaf's key path."""
    joined = "/".join(path).lower()
    if any(m in joined for m in RATIO_MARKERS):
        return "ratio"
    if any(m in joined for m in TIME_MARKERS):
        return "time"
    return None


def _index_rows(doc):
    """Re-key ``results`` rows by (T, variant) so row order and added
    rows between runs don't misalign the comparison."""
    if isinstance(doc, dict) and isinstance(doc.get("results"), list):
        doc = dict(doc)
        doc["results"] = {
            f"{row.get('T')}-{row.get('variant')}": row
            for row in doc["results"] if isinstance(row, dict)}
    return doc


def compare_docs(previous, current, *, ratio_tol: float,
                 time_tol: float) -> list[str]:
    """Drift messages for tracked metrics present in both documents."""
    prev = dict(_numeric_leaves(_index_rows(previous)))
    cur = dict(_numeric_leaves(_index_rows(current)))
    problems = []
    for path in sorted(set(prev) & set(cur)):
        kind = _metric_kind(path)
        if kind is None:
            continue
        tol = ratio_tol if kind == "ratio" else time_tol
        a, b = prev[path], cur[path]
        scale = max(abs(a), abs(b), 1e-12)
        drift = abs(b - a) / scale
        if drift > tol:
            problems.append(
                f"{'/'.join(path)}: {a:g} -> {b:g} "
                f"({kind} drift {drift:.1%} > {tol:.1%})")
    return problems


def _bench_files(root: pathlib.Path) -> dict[str, pathlib.Path]:
    return {p.name: p for p in sorted(root.rglob("BENCH*.json"))}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("previous", help="previous run's artifact directory")
    ap.add_argument("current", help="current run's results directory")
    ap.add_argument("--ratio-tol", type=float, default=0.05,
                    help="relative tolerance for ratio metrics")
    ap.add_argument("--time-tol", type=float, default=0.5,
                    help="relative tolerance for runtime metrics")
    args = ap.parse_args(argv)
    previous = pathlib.Path(args.previous)
    current = pathlib.Path(args.current)
    if not previous.is_dir():
        print(f"no previous results at {previous}; nothing to compare")
        return 0
    prev_files = _bench_files(previous)
    cur_files = _bench_files(current)
    shared = sorted(set(prev_files) & set(cur_files))
    if not shared:
        print("no matching benchmark JSON files; nothing to compare")
        return 0
    failed = False
    for name in shared:
        try:
            prev_doc = json.loads(prev_files[name].read_text())
            cur_doc = json.loads(cur_files[name].read_text())
        except ValueError as exc:
            print(f"{name}: unreadable ({exc}); skipping")
            continue
        problems = compare_docs(prev_doc, cur_doc,
                                ratio_tol=args.ratio_tol,
                                time_tol=args.time_tol)
        if problems:
            failed = True
            print(f"REGRESSION in {name}:")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"{name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
