"""Tests for the direct restricted-model solver (no penalty encoding)."""

import numpy as np
import pytest

from repro.core.instance import RestrictedInstance
from repro.offline import solve_dp, solve_restricted
from repro.workloads import diurnal_loads, restricted_from_loads


def random_restricted(rng, T=8, m=6):
    loads = rng.uniform(0, m * 0.8, size=T)
    return RestrictedInstance(beta=float(rng.uniform(0.3, 3)), m=m,
                              f=lambda z: 1 + 2 * z * z, loads=loads)


class TestAgainstEncoding:
    def test_matches_general_model_encoding(self):
        rng = np.random.default_rng(260)
        for _ in range(15):
            ri = random_restricted(rng, T=int(rng.integers(1, 10)),
                                   m=int(rng.integers(2, 8)))
            direct = solve_restricted(ri)
            encoded = solve_dp(ri.to_general())
            assert direct.cost == pytest.approx(encoded.cost), ri
            assert ri.is_feasible(direct.schedule)

    def test_matches_bruteforce(self):
        import itertools
        rng = np.random.default_rng(261)
        for _ in range(8):
            ri = random_restricted(rng, T=3, m=3)
            direct = solve_restricted(ri)
            best = np.inf
            for combo in itertools.product(range(ri.m + 1), repeat=ri.T):
                X = np.array(combo)
                if not ri.is_feasible(X):
                    continue
                op = sum(ri.operating_cost(t + 1, X[t])
                         for t in range(ri.T))
                d = np.diff(np.concatenate([[0], X]))
                best = min(best, op + ri.beta * np.maximum(d, 0).sum())
            assert direct.cost == pytest.approx(best)


class TestStructure:
    def test_feasibility_enforced(self):
        rng = np.random.default_rng(262)
        loads = diurnal_loads(40, peak=5.0, rng=rng)
        ri = restricted_from_loads(loads, m=7, beta=2.0)
        res = solve_restricted(ri)
        assert np.all(res.schedule >= np.ceil(loads - 1e-12))

    def test_zero_horizon(self):
        ri = RestrictedInstance(beta=1.0, m=3, f=lambda z: z,
                                loads=np.zeros(0))
        assert solve_restricted(ri).cost == 0.0

    def test_full_load_forces_max(self):
        ri = RestrictedInstance(beta=1.0, m=3, f=lambda z: 1 + z,
                                loads=np.array([3.0, 3.0]))
        res = solve_restricted(ri)
        np.testing.assert_array_equal(res.schedule, [3, 3])

    def test_zero_loads_allow_shutdown(self):
        ri = RestrictedInstance(beta=1.0, m=4, f=lambda z: 1 + z,
                                loads=np.zeros(5))
        res = solve_restricted(ri)
        np.testing.assert_array_equal(res.schedule, 0)
        assert res.cost == pytest.approx(0.0)
