"""Tests for sensitivity analysis and instance/schedule persistence."""

import numpy as np
import pytest

from repro.analysis import beta_sweep, capacity_sweep, is_concave_sequence
from repro.analysis.sensitivity import (evaluate_envelope,
                                        exact_beta_envelope)
from repro.io import (load_instance, load_schedule, save_instance,
                      save_schedule)
from tests.conftest import random_convex_instance, trace_instance


class TestBetaSweep:
    def test_opt_is_nondecreasing_and_concave_in_beta(self):
        """The pointwise-min-of-affine envelope structure of OPT(beta)."""
        rng = np.random.default_rng(270)
        for _ in range(6):
            inst = random_convex_instance(rng, 12, 6, 1.0)
            betas = np.linspace(0.1, 8.0, 12)
            rows = beta_sweep(inst, betas)
            costs = [r["opt_cost"] for r in rows]
            assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
            assert is_concave_sequence(costs)

    def test_power_ups_nonincreasing_in_beta(self):
        """Envelope slope = optimal power-ups, so it must decrease."""
        inst = trace_instance(seed=3, T=72, peak=10.0)
        rows = beta_sweep(inst, [0.5, 2.0, 8.0, 32.0])
        ups = [r["power_ups"] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(ups, ups[1:]))

    def test_slope_matches_power_ups(self):
        """Finite-difference slope of OPT(beta) is bracketed by the
        optimal power-up counts at the endpoints (envelope theorem)."""
        inst = trace_instance(seed=4, T=48, peak=8.0)
        b1, b2 = 2.0, 2.2
        rows = beta_sweep(inst, [b1, b2])
        slope = (rows[1]["opt_cost"] - rows[0]["opt_cost"]) / (b2 - b1)
        assert rows[1]["power_ups"] - 1e-9 <= slope \
            <= rows[0]["power_ups"] + 1e-9


class TestExactEnvelope:
    def test_matches_dp_everywhere(self):
        """The parametric envelope equals the DP at every sampled beta."""
        from repro.offline import solve_dp
        rng = np.random.default_rng(274)
        for _ in range(6):
            inst = random_convex_instance(rng, int(rng.integers(2, 10)),
                                          int(rng.integers(1, 7)), 1.0)
            segs = exact_beta_envelope(inst, 0.1, 15.0)
            for beta in np.linspace(0.1, 15.0, 17):
                want = solve_dp(inst.with_beta(float(beta)),
                                return_schedule=False).cost
                assert evaluate_envelope(segs, float(beta)) == \
                    pytest.approx(want, rel=1e-9, abs=1e-9)

    def test_slopes_strictly_decreasing(self):
        """Concavity: segment slopes (power-ups) decrease left to right."""
        inst = trace_instance(seed=5, T=48, peak=8.0)
        segs = exact_beta_envelope(inst, 0.25, 24.0)
        ups = [s["power_ups"] for s in segs]
        assert all(b < a + 1e-9 for a, b in zip(ups, ups[1:]))

    def test_segments_tile_the_interval(self):
        inst = trace_instance(seed=6, T=48, peak=8.0)
        segs = exact_beta_envelope(inst, 0.5, 10.0)
        assert segs[0]["beta_lo"] == pytest.approx(0.5)
        assert segs[-1]["beta_hi"] == pytest.approx(10.0)
        for a, b in zip(segs, segs[1:]):
            assert b["beta_lo"] == pytest.approx(a["beta_hi"])

    def test_range_validation(self):
        rng = np.random.default_rng(275)
        inst = random_convex_instance(rng, 3, 2, 1.0)
        with pytest.raises(ValueError):
            exact_beta_envelope(inst, 0.0, 1.0)
        segs = exact_beta_envelope(inst, 1.0, 2.0)
        with pytest.raises(ValueError):
            evaluate_envelope(segs, 5.0)


class TestCapacitySweep:
    def test_opt_nonincreasing_in_m(self):
        rng = np.random.default_rng(271)
        inst = random_convex_instance(rng, 10, 8, 1.5)
        rows = capacity_sweep(inst, range(0, 9))
        costs = [r["opt_cost"] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_bounds_checked(self):
        rng = np.random.default_rng(272)
        inst = random_convex_instance(rng, 4, 3, 1.0)
        with pytest.raises(ValueError):
            capacity_sweep(inst, [5])


class TestConcavityCheck:
    def test_accepts_concave(self):
        assert is_concave_sequence([0.0, 1.0, 1.8, 2.4])

    def test_rejects_convex_kink(self):
        assert not is_concave_sequence([0.0, 1.0, 3.0])

    def test_short_sequences(self):
        assert is_concave_sequence([1.0])
        assert is_concave_sequence([3.0, 1.0])


class TestInstanceIO:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(273)
        inst = random_convex_instance(rng, 7, 5, 2.5)
        path = tmp_path / "instance.npz"
        save_instance(path, inst)
        loaded = load_instance(path)
        assert loaded.beta == inst.beta
        np.testing.assert_array_equal(loaded.F, inst.F)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, F=np.zeros((1, 2)), beta=np.float64(1.0),
                 version=np.int64(99))
        with pytest.raises(ValueError, match="version"):
            load_instance(path)

    def test_loaded_instance_revalidated(self, tmp_path):
        path = tmp_path / "nonconvex.npz"
        np.savez(path, F=np.array([[0.0, 5.0, 5.0, 0.0]]),
                 beta=np.float64(1.0), version=np.int64(1))
        with pytest.raises(ValueError):
            load_instance(path)


class TestScheduleIO:
    def test_integer_roundtrip(self, tmp_path):
        path = tmp_path / "sched.csv"
        save_schedule(path, np.array([0, 3, 2, 5]))
        out = load_schedule(path)
        np.testing.assert_array_equal(out, [0, 3, 2, 5])
        assert "3" in path.read_text()

    def test_fractional_roundtrip(self, tmp_path):
        path = tmp_path / "frac.csv"
        x = np.array([0.25, 1.75, 2.0])
        save_schedule(path, x)
        np.testing.assert_allclose(load_schedule(path), x)

    def test_single_value(self, tmp_path):
        path = tmp_path / "one.csv"
        save_schedule(path, np.array([4]))
        out = load_schedule(path)
        assert out.shape == (1,)
