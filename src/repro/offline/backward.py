"""Lemma 11: the backward-recursion optimal schedule.

The paper characterizes an optimal offline solution *backwards in time*:
with ``x-hat_{T+1} = 0``,

``x-hat_t = [x-hat_{t+1}]^{x^U_t}_{x^L_t}``    (projection into the LCP
bounds of the prefix ``f_1..f_t``),

is optimal (Lemma 11).  This is the optimal schedule the Section 3
analysis compares LCP against: it moves as late as possible, mirroring
LCP's laziness from the other end of time.

The solver runs one forward pass collecting ``(x^L_t, x^U_t)`` for every
prefix (``O(T m)``) and one backward clamping pass (``O(T)``).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost
from ..online.workfunction import WorkFunctions
from .result import OfflineResult

__all__ = ["solve_backward_lcp", "prefix_bounds"]


def prefix_bounds(instance: Instance) -> tuple[np.ndarray, np.ndarray]:
    """``(x^L_t, x^U_t)`` for every prefix ``t = 1..T`` (Section 3.1)."""
    T = instance.T
    lo = np.empty(T, dtype=np.int64)
    hi = np.empty(T, dtype=np.int64)
    wf = WorkFunctions(instance.m, instance.beta)
    for t in range(T):
        wf.update(instance.F[t])
        lo[t], hi[t] = wf.bounds()
    return lo, hi


def solve_backward_lcp(instance: Instance) -> OfflineResult:
    """Optimal schedule via Lemma 11's backward recursion."""
    T = instance.T
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="backward_lcp")
    lo, hi = prefix_bounds(instance)
    x = np.empty(T, dtype=np.int64)
    nxt = 0  # x-hat_{T+1} = 0
    for t in range(T - 1, -1, -1):
        nxt = max(int(lo[t]), min(int(hi[t]), nxt))
        x[t] = nxt
    return OfflineResult(schedule=x, cost=float(cost(instance, x)),
                         method="backward_lcp")
