"""Receding-horizon algorithms with prediction windows.

Section 5.4 analyzes online algorithms that see the next ``w`` functions.
Besides LCP(w), the model-predictive-control classics from the
right-sizing literature (Lin, Wierman et al.'s follow-up work) are the
natural comparators:

* **RHC** (Receding Horizon Control): at time ``tau``, solve the offline
  problem over the visible horizon ``f_tau .. f_{tau+w}`` starting from
  the current state, commit only the first action, re-solve next step.
* **AFHC** (Averaging Fixed Horizon Control): run ``w+1`` staggered
  fixed-horizon controllers, each committing a whole horizon plan, and
  play their (fractional) average — averaging restores worst-case
  guarantees that RHC lacks.

Both are provided as honest comparators for the E10 benchmark: the
Theorem 10 dilation starves them exactly as it starves LCP(w).
"""

from __future__ import annotations

import numpy as np

from .._util import prefix_min, suffix_min
from .base import OnlineAlgorithm

__all__ = ["RecedingHorizonControl", "AveragingFixedHorizonControl"]


def _horizon_plan(f_rows: np.ndarray, beta: float, x_start: int) -> np.ndarray:
    """Optimal integral plan for ``f_rows`` starting from state ``x_start``
    (power-up charged, free end) — the inner DP of both controllers.

    Returns the argmin-first optimal plan, one state per row.
    """
    H, width = f_rows.shape
    states = np.arange(width, dtype=np.float64)
    Ds = np.empty((H, width), dtype=np.float64)
    Ds[0] = f_rows[0] + beta * np.maximum(states - x_start, 0.0)
    for i in range(1, H):
        up = beta * states + prefix_min(Ds[i - 1] - beta * states)
        down = suffix_min(Ds[i - 1])
        Ds[i] = f_rows[i] + np.minimum(up, down)
    plan = np.empty(H, dtype=np.int64)
    plan[H - 1] = int(np.argmin(Ds[H - 1]))
    for i in range(H - 2, -1, -1):
        j = plan[i + 1]
        trans = Ds[i] + beta * np.maximum(j - states, 0.0)
        plan[i] = int(np.argmin(trans))
    return plan


class RecedingHorizonControl(OnlineAlgorithm):
    """RHC: re-solve the visible horizon each step, commit one action."""

    fractional = False

    def __init__(self, lookahead: int = 0):
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.lookahead = lookahead
        self.name = f"rhc(w={lookahead})"

    def reset(self, m: int, beta: float) -> None:
        self._m = m
        self._beta = beta
        self._set_state(0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        rows = [np.asarray(f_row, dtype=np.float64)]
        if future is not None and future.shape[0] > 0:
            rows.extend(np.asarray(future, dtype=np.float64))
        plan = _horizon_plan(np.stack(rows), self._beta, self.state)
        x = int(plan[0])
        self._set_state(x)
        return x


class AveragingFixedHorizonControl(OnlineAlgorithm):
    """AFHC: average of ``w+1`` staggered fixed-horizon plans (fractional).

    Controller ``k`` re-plans at times ``tau ≡ k (mod w+1)``, committing
    its optimal (w+1)-step plan from its own trajectory's current state;
    the played state is the average of the controllers' committed states.
    """

    fractional = True

    def __init__(self, lookahead: int = 0):
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.lookahead = lookahead
        self.name = f"afhc(w={lookahead})"

    def reset(self, m: int, beta: float) -> None:
        self._m = m
        self._beta = beta
        k = self.lookahead + 1
        self._plans: list[list[int]] = [[] for _ in range(k)]
        self._last: list[int] = [0] * k
        self._t = 0
        self._set_state(0.0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> float:
        k = self.lookahead + 1
        rows = [np.asarray(f_row, dtype=np.float64)]
        if future is not None and future.shape[0] > 0:
            rows.extend(np.asarray(future, dtype=np.float64))
        horizon = np.stack(rows)
        states = []
        for c in range(k):
            if self._t % k == c or not self._plans[c]:
                plan = _horizon_plan(horizon, self._beta, self._last[c])
                self._plans[c] = list(plan)
            x_c = int(self._plans[c].pop(0))
            self._last[c] = x_c
            states.append(x_c)
        self._t += 1
        x = float(np.mean(states))
        self._set_state(x)
        return x
