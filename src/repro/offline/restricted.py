"""Exact offline solver for the restricted model (eq. (2)).

The general-model encoding (`RestrictedInstance.to_general`) prices
infeasible states with a steep convex penalty, which is exact for
optimal schedules but leaves penalty magnitudes in the instance.  This
solver instead enforces the feasibility constraint ``x_t >= lambda_t``
*structurally*: the DP simply masks states below ``ceil(lambda_t)`` per
column — the layered-graph picture of Figure 1 with rows removed per
column, which leaves the prefix/suffix relaxation intact.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import prefix_min, suffix_min
from ..core.instance import RestrictedInstance
from .result import OfflineResult

__all__ = ["solve_restricted"]

_INF = np.inf


def solve_restricted(ri: RestrictedInstance) -> OfflineResult:
    """Optimal schedule of a restricted-model instance (``O(T m)``).

    Returns the schedule and its eq. (2) cost; feasibility
    ``x_t >= lambda_t`` holds by construction.
    """
    T, m, beta = ri.T, ri.m, ri.beta
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="restricted_dp")
    states = np.arange(m + 1, dtype=np.float64)
    # Tabulate feasible operating costs; infeasible cells become +inf.
    F = np.full((T, m + 1), _INF)
    floors = np.zeros(T, dtype=np.int64)
    for t in range(T):
        lo = max(int(math.ceil(float(ri.loads[t]) - 1e-12)), 0)
        floors[t] = lo
        for j in range(lo, m + 1):
            F[t, j] = ri.operating_cost(t + 1, j)
    Ds = np.empty((T, m + 1))
    Ds[0] = F[0] + beta * states
    for t in range(1, T):
        prev = Ds[t - 1]
        # Masked prefix/suffix relaxation: +inf cells propagate safely
        # (numpy min with inf is well defined).
        with np.errstate(invalid="ignore"):
            up = beta * states + prefix_min(prev - beta * states)
        down = suffix_min(prev)
        Ds[t] = F[t] + np.minimum(up, down)
    x = np.empty(T, dtype=np.int64)
    x[T - 1] = int(np.argmin(Ds[T - 1]))
    cost = float(Ds[T - 1, x[T - 1]])
    if not np.isfinite(cost):
        raise ValueError("restricted instance has no feasible schedule")
    for t in range(T - 2, -1, -1):
        trans = Ds[t] + beta * np.maximum(x[t + 1] - states, 0.0)
        x[t] = int(np.argmin(trans))
    return OfflineResult(schedule=x, cost=cost, method="restricted_dp")
