"""Robustness and structural-invariance tests.

These pin down properties that must survive refactoring: scaling and
time-reversal invariances of the objective, behavior at numerical
extremes, degenerate instances, and determinism.
"""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import solve_binary_search, solve_dp
from repro.online import LCP, ThresholdFractional, run_online
from tests.conftest import random_convex_instance


class TestScalingInvariance:
    def test_cost_scales_linearly(self):
        """Scaling F and beta by c scales every schedule's cost by c and
        leaves optimal schedules unchanged."""
        rng = np.random.default_rng(200)
        for _ in range(10):
            inst = random_convex_instance(rng, 8, 6,
                                          float(rng.uniform(0.5, 3)))
            c = float(rng.uniform(0.01, 100))
            scaled = Instance(beta=inst.beta * c, F=inst.F * c)
            a = solve_dp(inst)
            b = solve_dp(scaled)
            assert b.cost == pytest.approx(c * a.cost, rel=1e-9)
            np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_lcp_is_scale_invariant(self):
        rng = np.random.default_rng(201)
        inst = random_convex_instance(rng, 20, 8, 1.7)
        scaled = Instance(beta=inst.beta * 37.0, F=inst.F * 37.0)
        a = run_online(inst, LCP())
        b = run_online(scaled, LCP())
        np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_threshold_is_scale_invariant(self):
        rng = np.random.default_rng(202)
        inst = random_convex_instance(rng, 20, 8, 1.7)
        scaled = Instance(beta=inst.beta * 0.03, F=inst.F * 0.03)
        a = run_online(inst, ThresholdFractional())
        b = run_online(scaled, ThresholdFractional())
        np.testing.assert_allclose(a.schedule, b.schedule, atol=1e-9)


class TestTimeReversal:
    def test_optimal_cost_is_reversal_invariant(self):
        """ups(0 -> x_1 .. x_T) = downs + x_T = ups of the reversed path,
        so reversing the rows of F preserves the optimal cost exactly."""
        rng = np.random.default_rng(203)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 12)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.3, 4)))
            rev = Instance(beta=inst.beta, F=inst.F[::-1].copy())
            assert optimal_cost(rev) == pytest.approx(optimal_cost(inst))

    def test_schedule_reversal_cost_identity(self):
        rng = np.random.default_rng(204)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 10)),
                                          int(rng.integers(1, 7)), 2.1)
            rev = Instance(beta=inst.beta, F=inst.F[::-1].copy())
            X = rng.integers(0, inst.m + 1, size=inst.T)
            assert cost(rev, X[::-1].copy()) == pytest.approx(cost(inst, X))


class TestNumericalExtremes:
    def test_huge_costs(self):
        rng = np.random.default_rng(205)
        inst = random_convex_instance(rng, 10, 6, 1.0)
        huge = Instance(beta=1e9, F=inst.F * 1e9)
        res = solve_dp(huge)
        assert np.isfinite(res.cost)
        assert solve_binary_search(huge).cost == pytest.approx(res.cost)

    def test_tiny_beta(self):
        """beta -> 0: the optimum follows per-step minimizers."""
        rng = np.random.default_rng(206)
        inst = random_convex_instance(rng, 10, 6, 1.0)
        tiny = inst.with_beta(1e-12)
        res = solve_dp(tiny)
        mins = inst.F.min(axis=1)
        assert res.cost == pytest.approx(float(mins.sum()), abs=1e-6)

    def test_huge_beta(self):
        """beta -> inf: switching dominates; the optimum is monotone
        nondecreasing (powering up is paid once; powering down is free
        but re-powering would be fatal)."""
        rng = np.random.default_rng(207)
        inst = random_convex_instance(rng, 10, 6, 1.0).with_beta(1e12)
        res = solve_dp(inst)
        d = np.diff(np.concatenate([[0], res.schedule]))
        # Total power-up must be minimal: at most max level once.
        assert np.sum(np.maximum(d, 0)) == res.schedule.max()

    def test_mixed_magnitudes(self):
        F = np.array([[1e-9, 1e9], [1e9, 1e-9], [1e-9, 1e9]])
        inst = Instance(beta=1.0, F=F)
        res = solve_dp(inst)
        assert res.cost < 10.0  # oscillate, paying switching only

    def test_guarantees_hold_at_extremes(self):
        rng = np.random.default_rng(208)
        for scale in (1e-6, 1e6):
            inst = random_convex_instance(rng, 15, 6, 1.0)
            inst = Instance(beta=inst.beta * scale, F=inst.F * scale)
            opt = optimal_cost(inst)
            assert run_online(inst, LCP()).cost <= 3 * opt * (1 + 1e-9)
            assert run_online(inst, ThresholdFractional()).cost \
                <= 2 * opt * (1 + 1e-9)


class TestDegenerateInstances:
    def test_all_zero_costs(self):
        inst = Instance(beta=1.0, F=np.zeros((5, 4)))
        assert solve_dp(inst).cost == 0.0
        res = run_online(inst, LCP())
        np.testing.assert_array_equal(res.schedule, 0)
        frac = run_online(inst, ThresholdFractional())
        np.testing.assert_allclose(frac.schedule, 0.0)

    def test_constant_rows(self):
        inst = Instance(beta=2.0, F=np.full((6, 5), 3.0))
        res = solve_dp(inst)
        assert res.cost == pytest.approx(18.0)
        np.testing.assert_array_equal(res.schedule, 0)

    def test_single_step_single_server(self):
        inst = Instance(beta=0.5, F=np.array([[1.0, 0.0]]))
        assert solve_dp(inst).cost == pytest.approx(0.5)
        assert run_online(inst, LCP()).cost <= 3 * 0.5 + 1e-12

    def test_m_zero_everywhere(self):
        inst = Instance(beta=1.0, F=np.array([[1.0], [2.0], [0.5]]))
        assert solve_dp(inst).cost == pytest.approx(3.5)
        assert solve_binary_search(inst).cost == pytest.approx(3.5)
        res = run_online(inst, LCP())
        np.testing.assert_array_equal(res.schedule, 0)

    def test_forced_full_capacity(self):
        """Steep decreasing rows force x = m throughout."""
        F = np.array([[100.0, 50.0, 0.0]] * 4)
        inst = Instance(beta=0.1, F=F)
        res = solve_dp(inst)
        np.testing.assert_array_equal(res.schedule, 2)


class TestDeterminism:
    def test_solvers_are_deterministic(self):
        rng = np.random.default_rng(209)
        inst = random_convex_instance(rng, 12, 9, 1.3)
        a = solve_binary_search(inst)
        b = solve_binary_search(inst)
        np.testing.assert_array_equal(a.schedule, b.schedule)
        assert a.cost == b.cost

    def test_online_replay_is_deterministic(self):
        rng = np.random.default_rng(210)
        inst = random_convex_instance(rng, 30, 7, 2.0)
        for make in (LCP, ThresholdFractional):
            a = run_online(inst, make())
            b = run_online(inst, make())
            np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_instance_is_immutable_through_solving(self):
        rng = np.random.default_rng(211)
        inst = random_convex_instance(rng, 10, 5, 1.0)
        before = inst.F.copy()
        solve_dp(inst)
        solve_binary_search(inst)
        run_online(inst, LCP())
        run_online(inst, ThresholdFractional())
        np.testing.assert_array_equal(inst.F, before)


class TestLongHorizons:
    def test_long_horizon_smoke(self):
        """T = 20000 stays fast and the guarantees hold."""
        rng = np.random.default_rng(212)
        from repro.workloads import diurnal_loads, instance_from_loads
        loads = diurnal_loads(20000, peak=8.0, rng=rng)
        inst = instance_from_loads(loads, m=10, beta=3.0)
        opt = solve_dp(inst, return_schedule=False).cost
        assert solve_binary_search(inst).cost == pytest.approx(opt)
        assert run_online(inst, LCP()).cost <= 3 * opt + 1e-6
