"""Tests for the multi-host lease queue: claim/heartbeat/expiry/reclaim
lifecycle, concurrent workers draining one grid without executing any
job twice, crash recovery after a SIGKILL'd worker, and the merge step's
bit-identity with a single-process run_grid."""

import json
import subprocess
import sys
import threading

import pytest

from repro.runner import (EngineConfig, GridSpec, LeaseLost, LeaseQueue,
                          merge_results, run_grid, work)

SMALL = GridSpec(scenarios=("diurnal", "bursty"),
                 algorithms=("lcp", "threshold"),
                 seeds=(0, 1), sizes=(16,))


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestLeaseQueue:
    def test_enqueue_partitions_grid_and_is_idempotent(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL, lease_jobs=3)
        assert queue.enqueue(SMALL, lease_jobs=3) == grid_id
        assert queue.grids() == [grid_id]
        assert queue.total(grid_id) == len(SMALL)
        # the ranges tile [0, total) exactly, in order
        ranges = []
        worker = "w"
        while (lease := queue.claim(worker)) is not None:
            ranges.append((lease.start, lease.stop))
        assert ranges[0][0] == 0 and ranges[-1][1] == len(SMALL)
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
        assert queue.counts(grid_id)["leased"] == len(ranges)
        # idempotent enqueue did not add leases
        assert sum(queue.counts(grid_id).values()) == len(ranges)

    def test_enqueue_rejects_nonpositive_lease_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="lease_jobs"):
            LeaseQueue(tmp_path).enqueue(SMALL, lease_jobs=0)

    def test_spec_roundtrips(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL)
        assert queue.spec(grid_id) == SMALL
        with pytest.raises(KeyError):
            queue.spec("no-such-grid")

    def test_spec_rejects_engine_version_mismatch(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL)
        d = queue.spec_dict(grid_id)
        d["engine_version"] = 999
        queue._conn.execute(
            "UPDATE grids SET spec = ? WHERE grid_id = ?",
            (json.dumps(d, sort_keys=True), grid_id))
        with pytest.raises(ValueError, match="engine version"):
            queue.spec(grid_id)

    def test_two_claims_never_share_a_range(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.enqueue(SMALL, lease_jobs=4)
        a = queue.claim("alice")
        b = queue.claim("bob")
        assert a.start != b.start
        assert (a.start, a.stop) != (b.start, b.stop)

    def test_heartbeat_renews_and_reclaim_expires(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        grid_id = queue.enqueue(SMALL, lease_jobs=4)
        lease = queue.claim("w1", ttl=10.0)
        assert lease.deadline == 10.0
        clock.now = 8.0
        assert queue.reclaim_expired() == 0   # still alive
        queue.heartbeat(lease, ttl=10.0)      # deadline -> 18.0
        clock.now = 15.0
        assert queue.reclaim_expired() == 0   # renewal held it
        clock.now = 19.0
        assert queue.reclaim_expired() == 1   # now it lapsed
        assert queue.counts(grid_id)["leased"] == 0

    def test_lost_lease_raises_on_heartbeat_and_complete(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        queue.enqueue(SMALL, lease_jobs=4)
        lease = queue.claim("w1", ttl=5.0)
        clock.now = 6.0
        assert queue.reclaim_expired() == 1
        with pytest.raises(LeaseLost):
            queue.heartbeat(lease)
        with pytest.raises(LeaseLost):
            queue.complete(lease)
        # the range is claimable again — by anyone
        again = queue.claim("w2", ttl=5.0)
        assert (again.start, again.stop) == (lease.start, lease.stop)

    def test_complete_marks_done_and_finished(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL, lease_jobs=len(SMALL))
        lease = queue.claim("w1")
        assert not queue.finished(grid_id)
        queue.complete(lease)
        assert queue.finished(grid_id)
        assert queue.counts(grid_id) == {"pending": 0, "leased": 0,
                                         "done": 1}


class TestWorkAndMerge:
    def test_single_worker_drains_and_merge_is_bit_identical(
            self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=3)
        stats = work(tmp_path / "q", worker="solo",
                     config=EngineConfig(batch_size=2))
        assert queue.finished(grid_id)
        n_leases = -(-len(SMALL) // 3)
        assert stats.leases_claimed == n_leases
        assert stats.leases_completed == n_leases
        assert stats.leases_lost == 0
        assert stats.rows_written == len(SMALL)
        assert merge_results(tmp_path / "q") == run_grid(SMALL)

    def test_max_leases_bounds_the_drain(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=3)
        stats = work(tmp_path / "q", worker="w1", max_leases=1)
        assert stats.leases_claimed == 1
        assert not queue.finished(grid_id)

    def test_merge_refuses_an_undrained_grid(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        queue.enqueue(SMALL, lease_jobs=3)
        with pytest.raises(ValueError, match="not drained"):
            merge_results(tmp_path / "q")

    def test_merge_detects_missing_rows(self, tmp_path):
        # leases completed without rows: coverage check must fire
        queue = LeaseQueue(tmp_path / "q")
        queue.enqueue(SMALL, lease_jobs=len(SMALL))
        queue.complete(queue.claim("cheater"))
        with pytest.raises(ValueError, match="missing"):
            merge_results(tmp_path / "q")

    def test_merge_detects_conflicting_duplicates(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=len(SMALL))
        work(tmp_path / "q", worker="honest")
        evil = queue.results_dir / "evil.jsonl"
        evil.write_text(json.dumps(
            {"seq": 0, "grid": grid_id, "row": {"bogus": 1}}) + "\n")
        with pytest.raises(ValueError, match="determinism"):
            merge_results(tmp_path / "q")

    def test_merge_ignores_torn_tails_and_foreign_grids(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=4)
        work(tmp_path / "q", worker="w1")
        extra = queue.results_dir / "crashed.jsonl"
        extra.write_text(
            json.dumps({"seq": 0, "grid": "other-grid",
                        "row": {"x": 1}}) + "\n"
            + '{"seq": 1, "grid": "' + grid_id + '", "ro')  # torn tail
        assert merge_results(tmp_path / "q") == run_grid(SMALL)

    def test_two_workers_drain_one_grid_without_running_a_job_twice(
            self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=2)
        config = EngineConfig(cache_dir=tmp_path / "cache", batch_size=2)
        results = {}

        def drain(name):
            results[name] = work(tmp_path / "q", worker=name,
                                 config=config, poll=0.01)

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert queue.finished(grid_id)
        total_claimed = sum(s.leases_claimed for s in results.values())
        assert total_claimed == -(-len(SMALL) // 2)
        # shared cache proves no job executed twice: every job was a
        # miss exactly once across both workers
        assert sum(s.job_misses for s in results.values()) == len(SMALL)
        assert sum(s.job_hits for s in results.values()) == 0
        assert merge_results(tmp_path / "q") == run_grid(SMALL)


_DOOMED_WORKER = """
import os, signal, sys
from repro.runner import EngineConfig, LeaseQueue, run_grid
from repro.runner import leasequeue as lq

root, cache = sys.argv[1], sys.argv[2]
queue = LeaseQueue(root)
lease = queue.claim("doomed", ttl=0.5)
assert lease is not None

class DoomedSink(lq._LeaseSink):
    def write_many(self, rows):
        super().write_many(rows)
        # leave a torn tail, then die without warning
        self._fh.write('{"seq": %d, "grid": "' % self.lease.start)
        self._fh.flush()
        os.kill(os.getpid(), signal.SIGKILL)

run_grid(queue.spec(lease.grid_id),
         EngineConfig(sink=DoomedSink(queue, lease, 0.5), batch_size=2,
                      cache_dir=cache),
         job_slice=(lease.start, lease.stop))
"""


class TestCrashRecovery:
    def test_sigkilled_worker_lease_is_reclaimed_and_merge_matches(
            self, tmp_path):
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(SMALL, lease_jobs=4)
        cache = tmp_path / "cache"
        proc = subprocess.run(
            [sys.executable, "-c", _DOOMED_WORKER,
             str(tmp_path / "q"), str(cache)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -9, proc.stderr
        assert queue.counts(grid_id)["leased"] == 1
        with pytest.raises(ValueError, match="not drained"):
            merge_results(tmp_path / "q")
        # the survivor polls until the doomed lease's TTL lapses,
        # reclaims it, and finishes the grid
        stats = work(tmp_path / "q", worker="survivor", poll=0.05,
                     config=EngineConfig(cache_dir=cache, batch_size=2))
        assert queue.finished(grid_id)
        assert stats.leases_reclaimed == 1
        assert stats.leases_lost == 0
        # the doomed worker cached its first batch before dying, so the
        # survivor replays those jobs from cache instead of recomputing
        assert stats.job_hits >= 2
        # duplicate seqs (doomed's flushed batch + survivor's re-run)
        # and the torn tail are both absorbed; rows are bit-identical
        # to a single-process run
        assert merge_results(tmp_path / "q") == run_grid(SMALL)


class TestSubsetEnqueueAndStatus:
    """Partial enqueue (cache-aware submits) and the shared
    ``grid_status`` payload the CLI and the grid service both serve."""

    def test_contiguous_runs_groups_and_caps(self):
        from repro.runner.leasequeue import _contiguous_runs
        assert _contiguous_runs([0, 1, 2, 5, 6, 9], 2) == \
            [(0, 2), (2, 3), (5, 7), (9, 10)]
        assert _contiguous_runs([], 4) == []
        assert _contiguous_runs([3], 4) == [(3, 4)]

    def test_enqueue_subset_leases_only_those_jobs(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL, lease_jobs=4, jobs=[0, 1, 2, 5])
        # grid total is still the full spec; only the subset is leased
        assert queue.total(grid_id) == len(SMALL)
        assert queue.outstanding_jobs() == 4
        ranges = []
        while (lease := queue.claim("w")) is not None:
            ranges.append((lease.start, lease.stop))
        assert ranges == [(0, 3), (5, 6)] or ranges == [(0, 4), (5, 6)]

    def test_enqueue_subset_rejects_out_of_range(self, tmp_path):
        with pytest.raises(ValueError, match="out of range"):
            LeaseQueue(tmp_path).enqueue(SMALL, jobs=[0, len(SMALL)])

    def test_enqueue_empty_subset_is_immediately_drained(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL, jobs=[])
        assert queue.claim("w") is None
        assert queue.finished(grid_id)
        assert queue.outstanding_jobs() == 0

    def test_grid_status_transitions(self, tmp_path):
        from repro.runner import grid_status
        queue = LeaseQueue(tmp_path)
        grid_id = queue.enqueue(SMALL, lease_jobs=4)
        status = grid_status(tmp_path)
        assert status["grid"] == grid_id
        assert status["state"] == "pending"
        assert status["jobs"]["pending"] == len(SMALL)
        assert "rows" not in status
        work(tmp_path, worker="w", config=EngineConfig(batch_size=4))
        done = grid_status(tmp_path, grid_id)
        assert done["state"] == "done"
        assert done["jobs"]["done"] == len(SMALL)
        assert done["jobs"]["pending"] == 0
        assert done["rows"] == run_grid(SMALL)
        assert grid_status(tmp_path, grid_id,
                           include_rows=False).get("rows") is None

    def test_grid_status_degraded_on_stale_heartbeat(self, tmp_path):
        from repro.runner import grid_status
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        queue.enqueue(SMALL, lease_jobs=len(SMALL))
        assert queue.claim("doomed", ttl=10.0) is not None
        clock.now = 1000.0  # the worker never heartbeats again
        status = grid_status(queue)
        assert status["state"] == "degraded"
        assert status["stale"] >= 1

    def test_queue_claim_lock_fault_heals_via_busy_retry(self, tmp_path):
        from repro.runner import FaultPlan, FaultSpec, busy_stats
        from repro.runner import faults as faults_mod
        queue = LeaseQueue(tmp_path)
        queue.enqueue(SMALL, lease_jobs=4)
        faults_mod.activate(FaultPlan(specs=(
            FaultSpec(site="queue_claim", nth=(1,), kind="lock"),)))
        before = busy_stats()["sqlite_busy_retries"]
        lease = queue.claim("w")
        assert lease is not None  # the transient lock healed in-place
        assert busy_stats()["sqlite_busy_retries"] > before
