"""Engine throughput benchmark: rebuild vs store vs pipeline vs cache.

Measures grid throughput (jobs/sec) of ``run_grid`` on a multi-algorithm
grid at several horizons, under five execution variants:

* ``rebuild``    — the pre-store behavior: the per-process memo is
  disabled, so every phase-1/phase-2 job re-tabulates its instance's
  cost matrix (what PR 2 shipped);
* ``mmap_store`` — phase 0 has materialized the instance store; jobs
  reopen the payload read-only via mmap (memo cleared between runs, so
  the measurement is load-from-store, not load-from-memory), with
  fusion disabled (``chunk_jobs=1``) — the PR 3 steady state;
* ``pipelined``  — the store plus double-buffered batches
  (``pipeline_depth=2``): batch N+1's phase 0/1 is submitted while
  batch N's phase 2 runs (with ``n_jobs=1`` this isolates the pipeline
  machinery's overhead — it must not lose to ``mmap_store``);
* ``fused``      — ``pipelined`` plus fused chunk dispatch: several
  jobs per worker round-trip, and LCP-family jobs on one instance
  replayed from a single shared work-function sweep;
* ``warm_cache`` — every row is served from the per-job result cache
  (the incremental-grid steady state);
* ``kernel``     — ``fused`` with the vectorized work-function kernels
  (``REPRO_KERNEL=vector``): whole-table sweeps, whole-trajectory
  replay fast paths, and one memoized sweep per instance shared by the
  phase-1 optimum, the LCP family and the backward solver;
* ``kernel_unfused`` — the vectorized kernels under per-job dispatch
  (``chunk_jobs=1``), isolating the kernels' contribution from chunk
  fusion (the per-process sweep memo still deduplicates sweeps);
* ``kernel_multi`` / ``batched`` — a *multi-instance* grid (six
  instance seeds, same algorithms) under the vector and batched
  kernels respectively, the whole grid in one batch: ``batched``
  stacks co-scheduled same-shape instances into single
  ``(B, T, m+1)`` sweep launches (``REPRO_KERNEL=batched``), so its
  gain over ``kernel_multi`` is pure launch amortization on an
  identical job set.

The legacy variants are pinned to ``REPRO_KERNEL=scalar`` so they keep
measuring the historical per-step code paths (and stay comparable
across runs); the ``kernel*`` variants measure the vectorized paths.
Every variant must produce bit-identical rows (the multi-instance
variants against each other — their job set is larger).

The report also carries a ``restricted_solver`` section timing
``solve_restricted`` under the scalar vs vectorized kernel on one
restricted instance per horizon — the whole-table rewrite of the
masked DP's forward/backward passes.

Results are written as machine-readable JSON (default
``BENCH_engine.json`` at the repo root) so the nightly regression
comparator (``benchmarks/compare_results.py``) can diff runs; per-
algorithm mean ratios ride along as a correctness fingerprint.

Run directly (not collected by pytest — no ``test_`` functions)::

    python benchmarks/bench_engine.py --sizes 1000,10000 --out BENCH.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

DEFAULT_SIZES = (1_000, 10_000, 100_000)
#: lcp and eager-lcp lead so they share a batch (and therefore one
#: work-function sweep) under the ``fused`` variant's chunking
DEFAULT_ALGORITHMS = ("lcp", "eager-lcp", "threshold", "memoryless",
                      "followmin", "never-off")
VARIANTS = ("rebuild", "mmap_store", "pipelined", "fused", "warm_cache",
            "kernel", "kernel_unfused")
#: multi-instance variants, measured on the six-seed grid
MULTI_VARIANTS = ("kernel_multi", "batched")
MULTI_SEEDS = tuple(range(6))


def _run_variant(spec, variant: str, workdir: pathlib.Path,
                 n_jobs: int) -> dict:
    """Time one run_grid execution under one variant; returns a row."""
    from repro import kernels
    from repro.runner import EngineConfig, run_grid, shutdown_pool
    from repro.runner import instancestore
    store_dir = workdir / "store"
    cache_dir = workdir / "cache"
    # chunk_jobs=1 pins the historical per-job dispatch so the legacy
    # variants keep measuring what they always measured
    kwargs: dict = {"chunk_jobs": 1}
    previous = None
    batched = max(1, len(spec) // 3)
    if variant == "rebuild":
        previous = instancestore.set_memo_size(0)
    elif variant == "mmap_store":
        kwargs["store_dir"] = store_dir
    elif variant == "pipelined":
        kwargs.update(store_dir=store_dir, batch_size=batched,
                      pipeline_depth=2)
    elif variant in ("fused", "kernel"):
        kwargs.update(store_dir=store_dir, batch_size=batched,
                      pipeline_depth=2, chunk_jobs=None)
    elif variant == "kernel_unfused":
        kwargs.update(store_dir=store_dir, batch_size=batched,
                      pipeline_depth=2)
    elif variant in MULTI_VARIANTS:
        # whole grid in one batch: the fused phase-1 chunk sees every
        # co-scheduled instance, so the batched kernel can stack all
        # same-shape sweeps into single launches
        kwargs.update(store_dir=store_dir, batch_size=len(spec),
                      pipeline_depth=2, chunk_jobs=None)
    else:
        kwargs["cache_dir"] = cache_dir
    kernel = ("batched" if variant == "batched"
              else "vector" if variant.startswith("kernel") else "scalar")
    best = None
    try:
        with kernels.use(kernel):
            for _repeat in range(3):  # best-of-3 damps scheduler noise
                instancestore.clear_memo()
                kernels.clear_sweep_cache()
                # drop the persistent pool so forked workers inherit the
                # variant's memo state instead of the warm-up run's
                # (matters for n_jobs > 1)
                shutdown_pool()
                stats: dict = {}
                start = time.perf_counter()
                rows = run_grid(spec,
                                EngineConfig(n_jobs=n_jobs, **kwargs),
                                stats=stats)
                elapsed = time.perf_counter() - start
                row = {"variant": variant, "jobs": len(rows),
                       "seconds": round(elapsed, 6),
                       "jobs_per_sec": round(len(rows) / elapsed, 3),
                       "inst_builds": stats.get("inst_builds"),
                       "inst_loads": stats.get("inst_loads"),
                       "rows": rows}
                if best is not None and best["rows"] != rows:
                    raise AssertionError(
                        f"variant {variant!r} rows differ between repeats")
                if best is None or row["seconds"] < best["seconds"]:
                    best = row
    finally:
        if previous is not None:
            instancestore.set_memo_size(previous)
    return best


def bench_engine(sizes=DEFAULT_SIZES, algorithms=DEFAULT_ALGORITHMS,
                 scenario: str = "diurnal", n_jobs: int = 1,
                 workdir=None) -> dict:
    """Run the three variants at every horizon; returns the report."""
    from repro.runner import EngineConfig, GridSpec, aggregate_rows, run_grid

    def measure(T: int, workdir: pathlib.Path) -> list[dict]:
        spec = GridSpec(scenarios=(scenario,), algorithms=tuple(algorithms),
                        seeds=(0,), sizes=(int(T),))
        multi = GridSpec(scenarios=(scenario,),
                         algorithms=tuple(algorithms),
                         seeds=MULTI_SEEDS, sizes=(int(T),))
        # warm the store and the result cache first (phase 0 / first run
        # are what 'cold' pays; the variants measure the steady state)
        for s in (spec, multi):
            run_grid(s, EngineConfig(n_jobs=n_jobs,
                                     store_dir=workdir / "store",
                                     cache_dir=workdir / "cache"))
        out = []
        references: dict = {}
        for variant in VARIANTS + MULTI_VARIANTS:
            vspec = multi if variant in MULTI_VARIANTS else spec
            row = _run_variant(vspec, variant, workdir, n_jobs)
            rows = row.pop("rows")
            reference = references.setdefault(id(vspec), rows)
            if rows != reference:
                raise AssertionError(
                    f"variant {variant!r} rows differ at T={T}")
            row["T"] = int(T)
            row["mean_ratio"] = {
                a["algorithm"]: round(a["mean_ratio"], 12)
                for a in aggregate_rows(rows)}
            out.append(row)
        return out

    results = []
    for T in sizes:
        if workdir is None:
            with tempfile.TemporaryDirectory() as tmp:
                results.extend(measure(T, pathlib.Path(tmp)))
        else:
            results.extend(measure(T, pathlib.Path(workdir)))
    by = {(r["T"], r["variant"]): r for r in results}
    speedup = {str(T): round(by[(T, "mmap_store")]["jobs_per_sec"]
                             / by[(T, "rebuild")]["jobs_per_sec"], 3)
               for T in sizes}
    speedup_fused = {str(T): round(by[(T, "fused")]["jobs_per_sec"]
                                   / by[(T, "mmap_store")]["jobs_per_sec"],
                                   3)
                     for T in sizes}
    speedup_kernel = {str(T): round(by[(T, "kernel")]["jobs_per_sec"]
                                    / by[(T, "fused")]["jobs_per_sec"], 3)
                      for T in sizes}
    # batched vs kernel: the headline launch-amortization gain over the
    # single-instance kernel variant (the committed baseline); batched
    # vs kernel_multi isolates it on an identical job set
    speedup_batched = {
        str(T): round(by[(T, "batched")]["jobs_per_sec"]
                      / by[(T, "kernel")]["jobs_per_sec"], 3)
        for T in sizes}
    speedup_batched_multi = {
        str(T): round(by[(T, "batched")]["jobs_per_sec"]
                      / by[(T, "kernel_multi")]["jobs_per_sec"], 3)
        for T in sizes}
    return {"bench": "engine_throughput", "version": 4,
            "scenario": scenario, "algorithms": list(algorithms),
            "n_jobs": n_jobs, "results": results,
            "speedup_store_vs_rebuild": speedup,
            "speedup_fused_vs_store": speedup_fused,
            "speedup_kernel_vs_fused": speedup_kernel,
            "speedup_batched_vs_kernel": speedup_batched,
            "speedup_batched_vs_kernel_multi": speedup_batched_multi,
            "restricted_solver": bench_restricted(sizes)}


def bench_restricted(sizes, scenario: str = "restricted-diurnal") -> dict:
    """Time ``solve_restricted`` under the scalar vs vectorized kernel
    (best-of-3) on one restricted instance per horizon."""
    from repro import kernels
    from repro.offline import solve_restricted
    from repro.runner.scenarios import build_instance
    out = {}
    for T in sizes:
        inst = build_instance(scenario, int(T), 0, pipeline="restricted")
        timings = {}
        for name in ("scalar", "vector"):
            with kernels.use(name):
                solve_restricted(inst)  # warm-up
                best = min(
                    _timed(lambda: solve_restricted(inst))
                    for _repeat in range(3))
            timings[f"{name}_seconds"] = round(best, 6)
        timings["speedup"] = round(timings["scalar_seconds"]
                                   / timings["vector_seconds"], 3)
        out[str(T)] = timings
    return out


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                    help="comma list of horizons")
    ap.add_argument("--algorithms",
                    default=",".join(DEFAULT_ALGORITHMS),
                    help="comma list of registry names")
    ap.add_argument("--scenario", default="diurnal")
    ap.add_argument("--n-jobs", type=int, default=1)
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="where to write the JSON report")
    args = ap.parse_args(argv)
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    algorithms = tuple(a.strip() for a in args.algorithms.split(",")
                       if a.strip())
    report = bench_engine(sizes=sizes, algorithms=algorithms,
                          scenario=args.scenario, n_jobs=args.n_jobs)
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2,
                                                 sort_keys=True) + "\n")
    for row in report["results"]:
        print(f"T={row['T']:>7} {row['variant']:<11} "
              f"{row['jobs_per_sec']:>8.2f} jobs/s "
              f"({row['seconds']:.2f}s, builds={row['inst_builds']})")
    print("speedup store vs rebuild:",
          report["speedup_store_vs_rebuild"])
    print("speedup kernel vs fused:",
          report["speedup_kernel_vs_fused"])
    print("speedup batched vs kernel:",
          report["speedup_batched_vs_kernel"])
    print("restricted solver:", report["restricted_solver"])
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
