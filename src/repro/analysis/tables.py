"""Plain-text tables — every benchmark prints its paper-shaped artifact.

No plotting dependencies: series and tables render as aligned monospace
text, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(v, floatfmt: str) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        return format(v, floatfmt)
    return str(v)


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 *, floatfmt: str = ".4g", title: str | None = None) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(r.get(c, ""), floatfmt) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(xs: Sequence, ys: Sequence, *, xlabel: str = "x",
                  ylabel: str = "y", floatfmt: str = ".4g",
                  title: str | None = None) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [{xlabel: x, ylabel: y} for x, y in zip(xs, ys)]
    return format_table(rows, [xlabel, ylabel], floatfmt=floatfmt,
                        title=title)
