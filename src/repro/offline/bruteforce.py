"""Exhaustive offline solver — ground truth for tiny instances.

Enumerates all ``(m+1)^T`` schedules.  Used exclusively by the test suite
to validate the polynomial solvers; guarded against accidental use on
instances where enumeration would explode.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost
from .result import OfflineResult

__all__ = ["solve_bruteforce", "enumerate_optima"]

_MAX_SCHEDULES = 2_000_000


def _check_size(instance: Instance) -> None:
    n = (instance.m + 1) ** instance.T
    if n > _MAX_SCHEDULES:
        raise ValueError(
            f"brute force would enumerate {n} schedules; "
            f"limit is {_MAX_SCHEDULES}")


def solve_bruteforce(instance: Instance) -> OfflineResult:
    """Optimal schedule by exhaustive enumeration (lexicographically
    smallest among optima)."""
    _check_size(instance)
    best_cost = np.inf
    best = None
    for X in itertools.product(range(instance.m + 1), repeat=instance.T):
        c = cost(instance, np.asarray(X, dtype=np.float64))
        if c < best_cost - 1e-12:
            best_cost = c
            best = X
    schedule = np.asarray(best, dtype=np.int64)
    return OfflineResult(schedule=schedule, cost=float(best_cost),
                         method="bruteforce")


def enumerate_optima(instance: Instance, tol: float = 1e-9) -> list:
    """All optimal schedules (within ``tol`` of the optimum).

    Exponential; only for tiny instances in tests of tie-breaking and of
    Lemma 4 (rounding of fractional optima).
    """
    _check_size(instance)
    costs = []
    schedules = []
    for X in itertools.product(range(instance.m + 1), repeat=instance.T):
        x = np.asarray(X, dtype=np.float64)
        costs.append(cost(instance, x))
        schedules.append(np.asarray(X, dtype=np.int64))
    best = min(costs)
    return [s for s, c in zip(schedules, costs) if c <= best + tol]
