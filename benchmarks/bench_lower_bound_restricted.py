"""E7 — Theorems 5 and 9: the lower bounds survive the restricted model.

Regenerates the ratio curves of the two-state games embedded in Lin et
al.'s restricted model (single per-server cost f(z) = eps|1-2z| on two
servers, loads in {1/2, 1}): deterministic -> 3, randomized -> 2.

The curves run as `game`-pipeline engine grids (`lb-restricted` /
`lb-continuous` scenarios); the feasibility sanity check keeps the raw
adversary loop because it inspects the adversary's internal load trace.
"""

from repro.lower_bounds import (ContinuousAdversary,
                                RestrictedDiscreteAdversary, play_game,
                                play_randomized_game)
from repro.online import LCP, ThresholdFractional
from repro.runner import GridSpec, run_grid

from conftest import record


def test_e7_restricted_deterministic(benchmark):
    spec = GridSpec(scenarios=("lb-restricted",),
                    algorithms=("game-lcp",), seeds=(0,), sizes=(40000,),
                    params=tuple({"eps": e} for e in (0.2, 0.1, 0.05)))
    rows = [{"eps": r["eps"], "T": r["game_T"], "ratio": r["ratio"]}
            for r in run_grid(spec)]
    record("E7_restricted_det", rows,
           title="E7: restricted-model deterministic bound (-> 3)")
    assert rows[-1]["ratio"] > 2.85
    assert all(r["ratio"] <= 3 + 1e-7 for r in rows)
    benchmark(play_game, RestrictedDiscreteAdversary(0.05), LCP(), 2000)


def test_e7_restricted_randomized(benchmark):
    """Theorem 9: the randomized bound 2 in the restricted encoding.

    The continuous adversary's hinge pair is realizable in the restricted
    model (Theorem 7's f(z) = eps|1 - kz| with loads {0, 1/k}); the game
    itself is identical, so we replay it and verify the -> 2 curve.
    """
    spec = GridSpec(scenarios=("lb-continuous",),
                    algorithms=("game-rounded",), seeds=(0,),
                    sizes=(40000,),
                    params=tuple({"eps": e} for e in (0.2, 0.1, 0.05)))
    rows = [{"eps": r["eps"], "T": r["game_T"], "ratio": r["ratio"]}
            for r in run_grid(spec)]
    record("E7_restricted_rand", rows,
           title="E7/E9: restricted-model randomized bound (-> 2)")
    assert rows[-1]["ratio"] > 1.9
    assert all(r["ratio"] <= 2 + 1e-7 for r in rows)
    benchmark(play_randomized_game, ContinuousAdversary(0.05),
              ThresholdFractional(), 2000)


def test_e7_feasibility_of_embedding(benchmark):
    """The adversary's rows really are restricted-model costs: the play
    never uses infeasible states and the loads are consistent."""
    adv = RestrictedDiscreteAdversary(0.1)
    res = play_game(adv, LCP(), 2000)
    assert (res.schedule >= 1).all()
    assert len(adv.loads) == 2000
    assert set(adv.loads) <= {0.5, 1.0}
    record("E7_embedding", [{
        "states_used": f"{int(res.schedule.min())}..{int(res.schedule.max())}",
        "loads_seen": sorted(set(adv.loads)),
        "feasible": True,
    }], title="E7: restricted embedding sanity")
    benchmark(play_game, RestrictedDiscreteAdversary(0.1), LCP(), 1000)
