"""Nightly benchmark regression comparator.

Diffs the machine-readable benchmark JSON of the current run against the
previous run's downloaded artifact and fails (exit 1) when a tracked
metric drifts beyond its tolerance:

* **ratio metrics** (any numeric leaf whose key path contains ``ratio``,
  e.g. the per-algorithm ``mean_ratio`` fingerprints in
  ``BENCH_engine.json``) — tight tolerance; these are *correctness*
  fingerprints, a drift means reproduced results changed;
* **runtime metrics** (key path contains ``seconds``, ``jobs_per_sec``,
  ``speedup`` or the ``timings/`` stats of a pytest-benchmark autosave)
  — loose tolerance; CI machines are noisy, only large regressions
  should fail.

Documents are matched by their **bench identity**, not by filename: a
``BENCH_*.json`` document is keyed by its embedded ``"bench"`` field
(falling back to the basename only when the field is absent), and its
``results`` rows are re-keyed by ``(T, variant)`` — so renaming an
artifact between runs cannot silently drop it from the comparison, and
row insertions don't misalign the diff.  A bench present in the
previous run but missing from the current one fails the gate.

pytest-benchmark autosave files (machine-suffixed directories, counter
plus commit/timestamp filenames like
``.benchmarks/Linux-CPython-3.12-64bit/0001_xxx_20260727_041500.json``)
are folded in under the normalized identity ``autosave-<counter>``:
the machine directory and the per-run name suffix are stripped, and
each timing is re-keyed by its benchmark ``fullname`` with only the
stable location stats (``mean``/``median``/``min``) tracked.

Usage::

    python benchmarks/compare_results.py previous-results benchmarks/results \
        --ratio-tol 0.05 --time-tol 0.5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

RATIO_MARKERS = ("ratio",)
TIME_MARKERS = ("seconds", "jobs_per_sec", "speedup", "time", "timings/")

#: pytest-benchmark autosave basename: counter, then commit/timestamp noise
_AUTOSAVE_RE = re.compile(r"^(\d{4})_.*\.json$")

#: the per-benchmark stats worth diffing (location, not dispersion)
_AUTOSAVE_STATS = ("mean", "median", "min")


def _numeric_leaves(node, path=()):
    """Yield ``(path, value)`` for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        for k, v in sorted(node.items()):
            yield from _numeric_leaves(v, path + (str(k),))
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from _numeric_leaves(v, path + (str(i),))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def _metric_kind(path: tuple) -> str | None:
    """'ratio', 'time' or None (untracked) for a leaf's key path."""
    joined = "/".join(path).lower()
    if joined.startswith("timings/"):
        # autosave wall-clock stats: always runtime, even when the
        # benchmark's own name contains "ratio" (test_e4_ratio_table)
        return "time"
    if any(m in joined for m in RATIO_MARKERS):
        return "ratio"
    if any(m in joined for m in TIME_MARKERS):
        return "time"
    return None


def _is_autosave(doc) -> bool:
    """Whether a JSON document is a pytest-benchmark autosave."""
    return (isinstance(doc, dict) and "benchmarks" in doc
            and "machine_info" in doc)


def _index_rows(doc):
    """Re-key a document's repeated structures by stable identities so
    row order and added rows between runs don't misalign the diff:
    ``results`` lists by (T, variant), pytest-benchmark ``benchmarks``
    lists by the benchmark fullname (location stats only — everything
    machine/run-specific is dropped)."""
    if _is_autosave(doc):
        return {"timings": {
            row.get("fullname", row.get("name", "?")): {
                stat: row["stats"][stat] for stat in _AUTOSAVE_STATS
                if stat in row.get("stats", {})}
            for row in doc["benchmarks"] if isinstance(row, dict)}}
    if isinstance(doc, dict) and isinstance(doc.get("results"), list):
        doc = dict(doc)
        doc["results"] = {
            f"{row.get('T')}-{row.get('variant')}": row
            for row in doc["results"] if isinstance(row, dict)}
    return doc


def compare_docs(previous, current, *, ratio_tol: float,
                 time_tol: float) -> list[str]:
    """Drift messages for tracked metrics present in both documents."""
    prev = dict(_numeric_leaves(_index_rows(previous)))
    cur = dict(_numeric_leaves(_index_rows(current)))
    problems = []
    for path in sorted(set(prev) & set(cur)):
        kind = _metric_kind(path)
        if kind is None:
            continue
        tol = ratio_tol if kind == "ratio" else time_tol
        a, b = prev[path], cur[path]
        scale = max(abs(a), abs(b), 1e-12)
        drift = abs(b - a) / scale
        if drift > tol:
            problems.append(
                f"{'/'.join(path)}: {a:g} -> {b:g} "
                f"({kind} drift {drift:.1%} > {tol:.1%})")
    return problems


def _bench_identity(path: pathlib.Path, doc) -> str:
    """The document's run-stable identity: the embedded bench name for
    ``BENCH_*`` documents, the normalized counter for pytest-benchmark
    autosaves, the basename otherwise."""
    if _is_autosave(doc):
        m = _AUTOSAVE_RE.match(path.name)
        return f"autosave-{m.group(1) if m else path.stem}"
    if isinstance(doc, dict) and isinstance(doc.get("bench"), str):
        return f"bench-{doc['bench']}"
    return path.name


def _bench_files(root: pathlib.Path) -> dict[str, tuple]:
    """Map bench identity -> (path, parsed document) under ``root``."""
    out: dict[str, tuple] = {}
    candidates = sorted(root.rglob("BENCH*.json"))
    candidates += [p for p in sorted(root.rglob("*.json"))
                   if _AUTOSAVE_RE.match(p.name)]
    for path in candidates:
        try:
            doc = json.loads(path.read_text())
        except ValueError as exc:
            print(f"{path}: unreadable ({exc}); skipping")
            continue
        out[_bench_identity(path, doc)] = (path, doc)
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("previous", help="previous run's artifact directory")
    ap.add_argument("current", help="current run's results directory")
    ap.add_argument("--ratio-tol", type=float, default=0.05,
                    help="relative tolerance for ratio metrics")
    ap.add_argument("--time-tol", type=float, default=0.5,
                    help="relative tolerance for runtime metrics")
    args = ap.parse_args(argv)
    previous = pathlib.Path(args.previous)
    current = pathlib.Path(args.current)
    if not previous.is_dir():
        print(f"no previous results at {previous}; nothing to compare")
        return 0
    prev_files = _bench_files(previous)
    cur_files = _bench_files(current)
    if not prev_files:
        print("no previous benchmark JSON files; nothing to compare")
        return 0
    failed = False
    missing = sorted(set(prev_files) - set(cur_files))
    if missing:
        # a renamed/dropped artifact must not silently pass the gate
        failed = True
        for name in missing:
            print(f"MISSING from current run: {name} "
                  f"(was {prev_files[name][0]})")
    for name in sorted(set(prev_files) & set(cur_files)):
        problems = compare_docs(prev_files[name][1], cur_files[name][1],
                                ratio_tol=args.ratio_tol,
                                time_tol=args.time_tol)
        if problems:
            failed = True
            print(f"REGRESSION in {name}:")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"{name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
