"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro import (LCP, RandomizedRounding, ThresholdFractional,
                   run_online, solve_binary_search, solve_dp)
from repro.analysis import optimal_cost, savings_vs_static
from repro.online import MemorylessBalance, expected_cost_exact, solve_static
from repro.workloads import (capacity_for, diurnal_loads, hotmail_like_loads,
                             instance_from_loads, msr_like_loads,
                             restricted_from_loads)


class TestTracePipeline:
    def build(self, seed=0, T=96):
        """High-PMR trace with a steep latency penalty: the regime where
        right-sizing pays (Lin et al.'s setting)."""
        rng = np.random.default_rng(seed)
        loads = hotmail_like_loads(T, peak=30.0, rng=rng)
        m = capacity_for(loads)
        return instance_from_loads(loads, m=m, beta=3.0, delay_weight=10.0)

    def test_offline_solvers_agree(self):
        inst = self.build()
        assert solve_binary_search(inst).cost == pytest.approx(
            solve_dp(inst).cost)

    def test_guarantee_chain(self):
        """OPT <= LCP <= 3 OPT; OPT <= E[rounded threshold] <= 2 OPT."""
        inst = self.build(seed=1)
        opt = optimal_cost(inst)
        lcp = run_online(inst, LCP())
        assert opt - 1e-9 <= lcp.cost <= 3 * opt + 1e-7
        fr = run_online(inst, ThresholdFractional())
        exp = expected_cost_exact(inst, fr.schedule)["total"]
        assert opt - 1e-7 <= exp <= 2 * opt + 1e-7

    def test_right_sizing_saves_on_diurnal_traces(self):
        """The paper's motivation: dynamic right-sizing beats static
        provisioning on diurnal workloads."""
        inst = self.build(seed=2, T=24 * 7)
        res = solve_dp(inst)
        out = savings_vs_static(inst, res.schedule)
        assert out["saving"] > 0.05

    def test_lcp_captures_part_of_the_savings(self):
        """LCP beats static provisioning and captures a sizable fraction
        of the achievable savings (its laziness gives up the rest; with
        large beta LCP can even lose to static — see the case-study
        bench, which sweeps beta)."""
        inst = self.build(seed=3, T=24 * 7)
        static = solve_static(inst).cost
        opt = optimal_cost(inst)
        lcp = run_online(inst, LCP()).cost
        assert lcp < static
        assert (static - lcp) >= 0.25 * (static - opt)

    def test_online_algorithms_ranked_sanely(self):
        """Aggregated over seeds: LCP stays close to the memoryless
        balancer on natural traces (neither dominates per-instance) and
        both stay within the 3x guarantee envelope."""
        total_lcp = total_mem = total_opt = 0.0
        for seed in range(4):
            inst = self.build(seed=10 + seed, T=96)
            total_lcp += run_online(inst, LCP()).cost
            total_mem += run_online(inst, MemorylessBalance()).cost
            total_opt += optimal_cost(inst)
        assert total_lcp <= 1.15 * total_mem
        assert total_lcp <= 3 * total_opt
        assert total_mem <= 3 * total_opt


class TestRestrictedPipeline:
    def test_restricted_end_to_end(self):
        rng = np.random.default_rng(5)
        loads = diurnal_loads(60, peak=6.0, rng=rng)
        ri = restricted_from_loads(loads, m=8, beta=3.0)
        inst = ri.to_general()
        res = solve_dp(inst)
        assert ri.is_feasible(res.schedule)
        lcp = run_online(inst, LCP())
        assert ri.is_feasible(lcp.schedule)
        assert lcp.cost <= 3 * res.cost + 1e-7


class TestRandomizedPipeline:
    def test_sampled_costs_concentrate_around_exact_expectation(self):
        rng = np.random.default_rng(6)
        loads = hotmail_like_loads(48, peak=8.0, rng=rng)
        inst = instance_from_loads(loads, m=capacity_for(loads), beta=2.0)
        fr = run_online(inst, ThresholdFractional())
        exact = expected_cost_exact(inst, fr.schedule)["total"]
        costs = [run_online(inst, RandomizedRounding(ThresholdFractional(),
                                                     rng=s)).cost
                 for s in range(200)]
        assert np.mean(costs) == pytest.approx(exact, rel=0.05)

    def test_rounded_schedule_integral_and_near_fractional(self):
        rng = np.random.default_rng(7)
        loads = diurnal_loads(48, peak=8.0, rng=rng)
        inst = instance_from_loads(loads, m=capacity_for(loads), beta=2.0)
        algo = RandomizedRounding(ThresholdFractional(), rng=0)
        res = run_online(inst, algo)
        xb = np.asarray(algo.fractional_log)
        assert np.all(np.abs(res.schedule - xb) <= 1.0 + 1e-9)
        assert np.allclose(res.schedule, np.round(res.schedule))


class TestScaleSanity:
    def test_moderately_large_instance(self):
        """T = 500, m = 200: all three offline solvers agree; LCP and the
        threshold rule stay within their guarantees."""
        rng = np.random.default_rng(8)
        loads = msr_like_loads(500, peak=150.0, rng=rng)
        inst = instance_from_loads(loads, m=200, beta=10.0)
        dp = solve_dp(inst, return_schedule=False).cost
        bs = solve_binary_search(inst).cost
        assert bs == pytest.approx(dp)
        lcp = run_online(inst, LCP())
        assert lcp.cost <= 3 * dp + 1e-6
        fr = run_online(inst, ThresholdFractional())
        assert fr.cost <= 2 * dp + 1e-6
