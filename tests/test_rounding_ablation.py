"""Tests for the independent-rounding ablation: why the Markov kernel of
Section 4 is necessary."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.online import (ThresholdFractional, expected_cost_exact,
                          expected_cost_independent, independent_rounding,
                          run_online)
from tests.conftest import random_convex_instance


class TestIndependentRounding:
    def test_marginals_still_correct(self):
        """Lemma 18 needs only the marginals, which independent rounding
        preserves."""
        rng = np.random.default_rng(220)
        xbars = np.array([0.3, 0.3, 0.3, 0.3])
        ups = 0
        n = 4000
        for seed in range(n):
            x = independent_rounding(xbars, np.random.default_rng(seed))
            ups += int(np.sum(x))
        assert ups / (n * 4) == pytest.approx(0.3, abs=0.03)

    def test_operating_cost_unchanged(self):
        """Lemma 19 survives: operating expectation equals fractional."""
        rng = np.random.default_rng(221)
        inst = random_convex_instance(rng, 10, 5, 1.0)
        fr = run_online(inst, ThresholdFractional())
        markov = expected_cost_exact(inst, fr.schedule)
        indep = expected_cost_independent(inst, fr.schedule)
        assert indep["operating"] == pytest.approx(markov["operating"],
                                                   abs=1e-9)

    def test_switching_cost_blows_up(self):
        """Lemma 20 breaks: a constant fractional schedule has zero
        marginal movement but independent rounding flips states at
        Bernoulli variance rate every step."""
        T = 50
        xbars = np.full(T, 2.5)
        inst = Instance(beta=2.0, F=np.zeros((T, 6)))
        markov = expected_cost_exact(inst, xbars)
        indep = expected_cost_independent(inst, xbars)
        # Markov kernel: pay only the initial ramp 2.5 * beta.
        assert markov["switching"] == pytest.approx(2.0 * 2.5)
        # Independent: ~ beta * p(1-p) per interior step on top.
        expected_extra = 2.0 * 0.25 * (T - 1)
        assert indep["switching"] == pytest.approx(
            markov["switching"] + expected_extra)

    def test_independent_breaks_two_competitiveness(self):
        """On a long flat-fractional instance the independent rounding's
        expected total exceeds 2x OPT, while the Markov kernel stays
        within the guarantee."""
        T = 200
        eps = 0.01
        # Rows that pin the threshold algorithm mid-cell: a tiny slope
        # toward state 1 first, then flat.
        rows = [[2.0 * 0.5, 0.0]] + [[eps, eps]] * (T - 1)
        inst = Instance(beta=2.0, F=np.array(rows))
        fr = run_online(inst, ThresholdFractional())
        assert 0.2 < fr.schedule[-1] < 0.8  # genuinely fractional
        from repro.analysis import optimal_cost
        opt = optimal_cost(inst)
        markov = expected_cost_exact(inst, fr.schedule)["total"]
        indep = expected_cost_independent(inst, fr.schedule)["total"]
        assert markov <= 2 * opt + 1e-7
        assert indep > 2 * opt

    def test_monte_carlo_matches_closed_form(self):
        rng = np.random.default_rng(222)
        inst = random_convex_instance(rng, 12, 4, 1.5)
        fr = run_online(inst, ThresholdFractional())
        exact = expected_cost_independent(inst, fr.schedule)["total"]
        from repro.core.schedule import cost
        total = 0.0
        n = 800
        for seed in range(n):
            x = independent_rounding(fr.schedule,
                                     np.random.default_rng(seed))
            total += cost(inst, x.astype(np.float64))
        assert total / n == pytest.approx(exact, rel=0.05)
