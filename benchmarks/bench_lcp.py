"""E4 — Theorem 2: discrete LCP is 3-competitive.

Regenerates the empirical competitive-ratio table of LCP across workload
families and switching costs: every ratio must stay below 3, with the
adversarial hinge family pushing toward it.
"""

import numpy as np

from repro.analysis import optimal_cost
from repro.core.instance import Instance
from repro.online import LCP, run_online

from conftest import random_convex_instance, record, trace_suite


def _hinge_instance(T: int, eps: float) -> Instance:
    """The trace the Theorem-4 adversary produces against LCP, replayed
    non-adaptively: blocks of ~2/eps identical hinges, flipping right
    after LCP's laziness threshold (k eps >= beta) so LCP pays waiting
    cost ~beta, then switching beta, every block."""
    block = int(np.ceil(2.0 / eps)) + 1
    rows = np.empty((T, 2))
    for t in range(T):
        up_phase = (t // block) % 2 == 0
        rows[t] = [eps, 0.0] if up_phase else [0.0, eps]
    return Instance(beta=2.0, F=rows)


def test_e4_ratio_table(benchmark):
    rows = []
    worst = 0.0
    for name, inst in trace_suite(T=168):
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"workload": name, "beta": inst.beta,
                     "lcp_cost": res.cost, "opt_cost": opt,
                     "ratio": res.cost / opt})
        worst = max(worst, res.cost / opt)
    rng = np.random.default_rng(21)
    for i in range(3):
        inst = random_convex_instance(rng, 100, 20,
                                      float(rng.uniform(0.5, 6)))
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"workload": f"random-{i}", "beta": inst.beta,
                     "lcp_cost": res.cost, "opt_cost": opt,
                     "ratio": res.cost / opt})
        worst = max(worst, res.cost / opt)
    record("E4_lcp_ratios", rows, title="E4: LCP competitive ratios")
    assert worst <= 3.0 + 1e-7
    # Timing: LCP replay on a long trace.
    name, inst = trace_suite(T=2000)[1]
    benchmark(run_online, inst, LCP())


def test_e4_adversarial_ratio_approaches_three(benchmark):
    rows = []
    for eps in (0.2, 0.1, 0.05, 0.02):
        T = int(6 / eps ** 2)
        inst = _hinge_instance(T, eps)
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"eps": eps, "T": T, "ratio": res.cost / opt})
    record("E4_lcp_adversarial", rows,
           title="E4: LCP on the worst-case hinge pattern")
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] > 2.8
    assert all(r <= 3.0 + 1e-7 for r in ratios)
    benchmark(run_online, _hinge_instance(2000, 0.05), LCP())


def test_e4_beta_sweep(benchmark):
    """Ratio vs switching cost: LCP's laziness is hardest hit at
    moderate beta."""
    from repro.workloads import (capacity_for, hotmail_like_loads,
                                 instance_from_loads)
    rng = np.random.default_rng(22)
    loads = hotmail_like_loads(168, peak=24.0, rng=rng)
    m = capacity_for(loads)
    rows = []
    for beta in (0.5, 2.0, 8.0, 32.0):
        inst = instance_from_loads(loads, m=m, beta=beta, delay_weight=10.0)
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"beta": beta, "ratio": res.cost / opt,
                     "lcp_cost": res.cost, "opt_cost": opt})
    record("E4_beta_sweep", rows, title="E4: LCP ratio vs beta")
    assert all(r["ratio"] <= 3.0 + 1e-7 for r in rows)
    benchmark(run_online, inst, LCP())
