"""Extensions beyond the paper's homogeneous setting (outlook features)."""

from .heterogeneous import (HeterogeneousInstance, hetero_cost,
                            hetero_instance_from_loads, solve_dp_hetero,
                            solve_greedy_hetero, solve_static_hetero)

__all__ = [
    "HeterogeneousInstance", "hetero_cost", "hetero_instance_from_loads",
    "solve_dp_hetero", "solve_greedy_hetero", "solve_static_hetero",
]
