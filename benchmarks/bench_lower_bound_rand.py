"""E9 — Theorem 8: randomized lower bound 2 (discrete, oblivious).

Regenerates the reduction of Section 5.3: the oblivious adversary plays
against the expected trajectory; the exact expected cost of the rounded
algorithm (Lemma 24 with equality for the Section 4 rounding) over the
offline optimum approaches 2.

The curve runs as a `game`-pipeline engine grid (`lb-continuous` x
`game-rounded`); the Lemma 24 equality check compares the fractional
and rounded players' engine rows on the identical realized game.
"""

from repro.lower_bounds import ContinuousAdversary, play_randomized_game
from repro.online import ThresholdFractional
from repro.runner import GridSpec, run_grid

from conftest import record


def test_e9_randomized_curve(benchmark):
    spec = GridSpec(scenarios=("lb-continuous",),
                    algorithms=("game-rounded",), seeds=(0,),
                    sizes=(60000,),
                    params=tuple({"eps": e}
                                 for e in (0.2, 0.1, 0.05, 0.02)))
    rows = [{"eps": r["eps"], "T": r["game_T"],
             "expected_ratio": r["ratio"]} for r in run_grid(spec)]
    record("E9_randomized_lb", rows,
           title="E9: randomized lower bound (-> 2)")
    assert rows[-1]["expected_ratio"] > 1.95
    assert all(r["expected_ratio"] <= 2 + 1e-7 for r in rows)
    benchmark(play_randomized_game, ContinuousAdversary(0.05),
              ThresholdFractional(), 4000)


def test_e9_lemma24_equality_for_our_rounding(benchmark):
    """E[C(X)] = C(x-bar) for the Section 4 rounding: the reduction's
    inequality (Lemma 24) is tight here."""
    spec = GridSpec(scenarios=("lb-continuous",),
                    algorithms=("game-threshold", "game-rounded"),
                    seeds=(0,), sizes=(10000,), params=({"eps": 0.1},))
    by_alg = {r["algorithm"]: r for r in run_grid(spec)}
    frac = by_alg["game-threshold"]
    rand = by_alg["game-rounded"]
    assert frac["game_T"] == rand["game_T"]  # the same realized game
    record("E9_lemma24", [{
        "fractional_cost": frac["cost"],
        "expected_rounded_cost": rand["cost"],
        "difference": abs(frac["cost"] - rand["cost"]),
    }], title="E9: Lemma 24 equality check")
    assert abs(frac["cost"] - rand["cost"]) < 1e-6
    from repro.lower_bounds import play_game
    from repro.online import expected_cost_exact
    game = play_game(ContinuousAdversary(0.1), ThresholdFractional(),
                     10000)
    benchmark(expected_cost_exact, game.instance, game.schedule)
