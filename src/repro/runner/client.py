"""HTTP client for the grid service with deterministic retry/backoff.

:class:`ServiceClient` is the programmatic face of ``repro serve``:
submit a :class:`~repro.runner.engine.GridSpec`, poll its status, wait
for the merged rows.  Its retry loop reuses the engine's
:class:`~repro.runner.executor.RetryPolicy` — the same capped
exponential backoff schedule (``backoff_delay``) that job retries use
— with an injectable ``sleep`` and transport so tests can replay the
exact schedule without wall-clock time or sockets.

What retries, what doesn't:

* transport failures (connection refused/reset, timeouts, and the
  injected ``http_request`` fault site) retry up to
  ``policy.max_retries`` times;
* ``429`` (admission control) and ``5xx``/``503`` responses retry the
  same way — the service is healthy but busy or briefly degraded;
* every other ``4xx`` raises :class:`RequestError` immediately — the
  request itself is wrong and resending it cannot help.

Retrying a submit is always safe: the grid's id is its content digest
and the server treats a known digest as a no-op, so a duplicated POST
(response lost, client retried) can never double-enqueue work.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from . import faults
from .executor import RetryPolicy, backoff_delay

__all__ = ["RequestError", "ServiceClient", "ServiceUnavailable"]


class RequestError(RuntimeError):
    """A non-retryable HTTP failure: carries the response ``status``
    and the decoded error ``payload`` (the service's envelope)."""

    def __init__(self, status: int, payload):
        """Record the failed response."""
        detail = ""
        if isinstance(payload, dict) and "error" in payload:
            err = payload["error"]
            detail = f": {err.get('code')}: {err.get('message')}"
        super().__init__(f"HTTP {status}{detail}")
        self.status = int(status)
        self.payload = payload


class ServiceUnavailable(RuntimeError):
    """Every attempt (initial + retries) failed transiently."""


def _default_transport(method: str, url: str, body, timeout: float):
    """One real HTTP exchange via :mod:`urllib.request`; returns
    ``(status, raw_bytes)``.  HTTP error statuses are returned, not
    raised — the retry loop decides what is retryable."""
    data = None if body is None else json.dumps(
        body, sort_keys=True).encode()
    headers = {"Content-Type": "application/json"} if data else {}
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()


class ServiceClient:
    """A retrying client for one grid-service base URL.

    ``policy`` is the engine's :class:`RetryPolicy` (attempts =
    ``max_retries + 1``); ``transport``, ``sleep`` and ``clock`` are
    injectable for tests.  All methods raise :class:`RequestError` for
    non-retryable client errors and :class:`ServiceUnavailable` once
    the retry budget is spent.
    """

    def __init__(self, base_url: str, *,
                 policy: RetryPolicy | None = None,
                 timeout: float = 30.0, transport=None,
                 sleep=time.sleep, clock=time.time):
        """Remember the wiring; nothing touches the network yet."""
        self.base_url = base_url.rstrip("/")
        self.policy = RetryPolicy() if policy is None else policy
        self.timeout = float(timeout)
        self._transport = (_default_transport if transport is None
                           else transport)
        self._sleep = sleep
        self._clock = clock

    # -- the retry loop ------------------------------------------------

    def request(self, method: str, path: str, body=None) -> dict:
        """One logical request with deterministic retry/backoff.

        Fires the ``http_request`` fault site (token ``"METHOD
        path"``) before every attempt, so ``REPRO_FAULTS`` chaos plans
        reach the HTTP layer end-to-end.
        """
        attempts = self.policy.max_retries + 1
        last: Exception | None = None
        for attempt in range(1, attempts + 1):
            try:
                faults.fire("http_request", f"{method} {path}")
                status, raw = self._transport(
                    method, self.base_url + path, body, self.timeout)
            except (OSError, urllib.error.URLError,
                    faults.InjectedFault) as exc:
                last = exc
            else:
                payload = self._decode(raw)
                if status < 400:
                    return payload
                if status == 429 or status >= 500:
                    last = RequestError(status, payload)
                else:
                    raise RequestError(status, payload)
            if attempt < attempts:
                self._sleep(backoff_delay(self.policy, attempt))
        raise ServiceUnavailable(
            f"{method} {self.base_url}{path} failed after {attempts} "
            f"attempts: {last}") from last

    @staticmethod
    def _decode(raw):
        """Parse a response body, tolerating empty/non-JSON bodies."""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError:
            return {"raw": raw.decode(errors="replace")}

    # -- the service API -----------------------------------------------

    def submit(self, spec) -> dict:
        """Submit a grid (a :class:`GridSpec` or its ``to_dict``
        form); returns the submit receipt (grid id, cache hits,
        enqueued misses).  Safe to retry: submits are idempotent by
        grid digest."""
        body = spec if isinstance(spec, dict) else spec.to_dict()
        return self.request("POST", "/grids", body)

    def status(self, grid_id: str) -> dict:
        """The shared ``grid_status`` payload for one grid."""
        return self.request("GET", f"/grids/{grid_id}")

    def wait(self, grid_id: str, *, timeout: float = 60.0,
             poll: float = 0.2) -> dict:
        """Poll until the grid reaches a terminal state (``done`` or
        ``degraded`` — the latter returns instead of hanging on a dead
        fleet); raises :class:`TimeoutError` past ``timeout``."""
        deadline = self._clock() + timeout
        while True:
            payload = self.status(grid_id)
            if payload.get("state") in ("done", "degraded"):
                return payload
            if self._clock() >= deadline:
                raise TimeoutError(
                    f"grid {grid_id} still {payload.get('state')!r} "
                    f"after {timeout}s")
            self._sleep(poll)

    def healthz(self) -> dict:
        """Liveness probe payload."""
        return self.request("GET", "/healthz")

    def readyz(self) -> bool:
        """Whether the replica reports itself ready to take work."""
        try:
            return bool(self.request("GET", "/readyz").get("ready"))
        except (RequestError, ServiceUnavailable):
            return False

    def shutdown(self) -> dict:
        """Ask the service to drain and exit its serve loop."""
        return self.request("POST", "/shutdown")
