"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.solver == "binary_search"
        assert args.workload == "diurnal"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--solver", "magic"])


class TestSolve:
    @pytest.mark.parametrize("solver", ["binary_search", "dp", "graph",
                                        "lp"])
    def test_all_solvers_run(self, solver, capsys):
        rc = main(["solve", "-T", "24", "--peak", "8", "--beta", "3",
                   "--solver", solver])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offline optimum" in out
        assert solver.split("_")[0] in out or "binary" in out

    def test_solvers_agree(self, capsys):
        totals = []
        for solver in ("binary_search", "dp", "lp"):
            main(["solve", "-T", "24", "--peak", "8", "--seed", "3",
                  "--solver", solver])
            out = capsys.readouterr().out
            line = out.splitlines()[3]
            totals.append(float(line.split()[4]))
        assert max(totals) - min(totals) < 1e-6 * max(totals)

    def test_show_schedule(self, capsys):
        rc = main(["solve", "-T", "12", "--peak", "5", "--show-schedule"])
        assert rc == 0
        assert "schedule:" in capsys.readouterr().out

    def test_loads_csv(self, tmp_path, capsys):
        path = tmp_path / "loads.csv"
        np.savetxt(path, np.array([1.0, 4.0, 2.0, 5.0]))
        rc = main(["solve", "--loads-csv", str(path), "--beta", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert " 4 " in out  # T = 4

    def test_save_roundtrip(self, tmp_path, capsys):
        sched_path = tmp_path / "sched.csv"
        inst_path = tmp_path / "inst.npz"
        rc = main(["solve", "-T", "12", "--peak", "5",
                   "--save-schedule", str(sched_path),
                   "--save-instance", str(inst_path)])
        assert rc == 0
        from repro.io import load_instance, load_schedule
        from repro.core.schedule import cost
        from repro.offline import solve_dp
        inst = load_instance(inst_path)
        sched = load_schedule(sched_path)
        assert cost(inst, sched) == pytest.approx(solve_dp(inst).cost)


class TestSimulate:
    def test_default_algorithms(self, capsys):
        rc = main(["simulate", "-T", "24", "--peak", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("lcp", "threshold", "rounded"):
            assert name in out

    def test_window_algorithms(self, capsys):
        rc = main(["simulate", "-T", "24", "--peak", "8",
                   "--algorithms", "rhc,afhc", "--lookahead", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rhc(w=3)" in out and "afhc(w=3)" in out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["simulate", "--algorithms", "oracle"])

    def test_ratios_at_least_one(self, capsys):
        main(["simulate", "-T", "36", "--peak", "10",
              "--algorithms", "lcp,followmin,memoryless"])
        out = capsys.readouterr().out
        for line in out.splitlines()[3:]:
            ratio = float(line.split()[-1])
            assert ratio >= 1.0 - 1e-9


class TestReport:
    def test_report_renders(self, tmp_path, capsys):
        (tmp_path / "E1_census.txt").write_text("E1\nT m\n- -\n1 1\n")
        rc = main(["report", "--results-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## E1" in out and "## E13" in out

    def test_check_flags_missing(self, tmp_path, capsys):
        rc = main(["report", "--results-dir", str(tmp_path), "--check"])
        assert rc == 1
        assert "MISSING" in capsys.readouterr().err


class TestLowerBound:
    @pytest.mark.parametrize("kind,limit", [
        ("deterministic", 3.0), ("continuous", 2.0), ("randomized", 2.0),
        ("restricted", 3.0),
    ])
    def test_games_run_and_respect_limits(self, kind, limit, capsys):
        rc = main(["lowerbound", "--kind", kind, "--eps", "0.2",
                   "--max-steps", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        line = out.splitlines()[3]
        ratio = float(line.split()[2])
        assert 1.0 <= ratio <= limit + 1e-7

    def test_eps_list_parsed(self, capsys):
        rc = main(["lowerbound", "--eps", "0.3,0.2", "--max-steps", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 5

    def test_parallel_eps_grid_matches_serial(self, capsys):
        args = ["lowerbound", "--eps", "0.3,0.2,0.15", "--max-steps",
                "500"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--n-jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestWorkStatusAndServe:
    def test_work_status_json_matches_service_payload(self, tmp_path,
                                                      capsys):
        import json

        from repro.runner import GridSpec, LeaseQueue, grid_status
        spec = GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                        seeds=(0,), sizes=(16,))
        queue = LeaseQueue(tmp_path / "q")
        grid_id = queue.enqueue(spec)
        queue.close()
        rc = main(["work", "status", "--queue", str(tmp_path / "q"),
                   "--json"])
        assert rc == 0
        payloads = json.loads(capsys.readouterr().out)
        assert payloads == [grid_status(tmp_path / "q", grid_id)]
        # --grid-id narrows to one payload, same shared function
        rc = main(["work", "status", "--queue", str(tmp_path / "q"),
                   "--grid-id", grid_id, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == grid_status(tmp_path / "q", grid_id)
        assert payload["state"] == "pending"

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--queue", "/tmp/q"])
        assert args.port == 8600
        assert args.host == "127.0.0.1"
        assert args.cache_dir is None
        assert args.cache_backend == "auto"
