"""repro — reproduction of *Optimal Algorithms for Right-Sizing Data
Centers* (Albers & Quedenfeld, SPAA 2018 / arXiv:1807.05112).

The library implements the discrete data-center optimization problem
end to end:

* :mod:`repro.core` — convex cost toolkit, problem instances (general and
  restricted models), cost functionals, instance transforms.
* :mod:`repro.offline` — optimal offline solvers: the O(T log m)
  binary-search algorithm of Section 2, the O(Tm) DP, the explicit
  Figure-1 graph, brute force, and the fractional/Lemma-4 machinery.
* :mod:`repro.online` — LCP (3-competitive, Section 3), the fractional
  threshold rule + randomized rounding (2-competitive, Section 4),
  algorithm B, work functions, and baselines.
* :mod:`repro.lower_bounds` — the Section 5 adversaries and game harness
  (lower bounds 3, 2, 2 and the prediction-window dilation).
* :mod:`repro.workloads` — synthetic traces (diurnal, bursty, ...).
* :mod:`repro.analysis` — ratios, sweeps, text tables.

Quickstart::

    import numpy as np
    from repro import Instance, solve_binary_search, LCP, run_online

    rng = np.random.default_rng(0)
    from repro.workloads import diurnal_loads, instance_from_loads
    loads = diurnal_loads(96, peak=20, rng=rng)
    inst = instance_from_loads(loads, m=25, beta=6.0)

    opt = solve_binary_search(inst)           # optimal offline schedule
    online = run_online(inst, LCP())          # 3-competitive online
    print(online.cost / opt.cost)
"""

from .core import (AbsCost, AffineEnergyCost, ConstantCost, CostFunction,
                   Instance, PerspectiveCost, PiecewiseLinearCost,
                   QuadraticCost, QueueingDelayCost, RestrictedInstance,
                   SLAHingeCost, ScaledCost, SumCost, TabulatedCost, cost,
                   cost_L, cost_U, phi0, phi1)
from .offline import (OfflineResult, solve_binary_search, solve_bruteforce,
                      solve_dp, solve_fractional, solve_graph)
from .online import (LCP, AlgorithmB, FollowTheMinimizer, MemorylessBalance,
                     NeverSwitchOn, OnlineAlgorithm, OnlineResult,
                     RandomizedRounding, ThresholdFractional, WorkFunctions,
                     run_online, solve_static)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AbsCost", "AffineEnergyCost", "ConstantCost", "CostFunction",
    "Instance", "PerspectiveCost", "PiecewiseLinearCost", "QuadraticCost",
    "QueueingDelayCost", "RestrictedInstance", "SLAHingeCost", "ScaledCost",
    "SumCost", "TabulatedCost", "cost", "cost_L", "cost_U", "phi0", "phi1",
    # offline
    "OfflineResult", "solve_binary_search", "solve_bruteforce", "solve_dp",
    "solve_fractional", "solve_graph",
    # online
    "LCP", "AlgorithmB", "FollowTheMinimizer", "MemorylessBalance",
    "NeverSwitchOn", "OnlineAlgorithm", "OnlineResult", "RandomizedRounding",
    "ThresholdFractional", "WorkFunctions", "run_online", "solve_static",
]
