#!/usr/bin/env python
"""Right-sizing a heterogeneous fleet (extension beyond the paper).

Two server types share the load: fast-but-hungry machines (type 1) and
slow-but-frugal ones (type 2).  The exact product-space DP (an extension
of the paper's homogeneous DP via the same prefix/suffix relaxation
trick, applied per axis) finds the optimal joint schedule; the example
shows how the optimal *fleet mix* shifts with demand and switching
costs.

Run:  python examples/heterogeneous_fleet.py
"""

import numpy as np

from repro.analysis import format_table, schedule_chart
from repro.extensions import (hetero_instance_from_loads,
                              solve_dp_hetero, solve_greedy_hetero,
                              solve_static_hetero)
from repro.workloads import diurnal_loads


def main() -> None:
    rng = np.random.default_rng(5)
    loads = diurnal_loads(48, peak=8.0, base_frac=0.2, noise=0.05, rng=rng)
    inst = hetero_instance_from_loads(
        loads, m1=10, m2=12, beta1=4.0, beta2=1.0,
        rate1=1.0, rate2=0.6, power1=1.0, power2=0.45)

    X1, X2, opt = solve_dp_hetero(inst)
    sX1, sX2, static = solve_static_hetero(inst)
    gX1, gX2, greedy = solve_greedy_hetero(inst)

    print(format_table([
        {"policy": "optimal (product DP)", "cost": opt,
         "type1_peak": int(X1.max()), "type2_peak": int(X2.max())},
        {"policy": "best static pair", "cost": static,
         "type1_peak": int(sX1.max()), "type2_peak": int(sX2.max())},
        {"policy": "greedy per-step", "cost": greedy,
         "type1_peak": int(gX1.max()), "type2_peak": int(gX2.max())},
    ], title="two-type fleet over two days (beta1=4, beta2=1)"))

    print("\noptimal fleet trajectory:")
    print(schedule_chart(loads, X1 + 0.0, height_labels=False)
          .replace("servers", "type-1 "))
    print("type-2   " + schedule_chart(loads, X2 + 0.0,
                                       height_labels=False)
          .splitlines()[1][9:])

    # The frugal type carries the base load; the fast type rides peaks.
    day = slice(8, 18)
    night = slice(0, 6)
    print(f"\nnight mix: type1={X1[night].mean():.1f} "
          f"type2={X2[night].mean():.1f}")
    print(f"peak  mix: type1={X1[day].mean():.1f} "
          f"type2={X2[day].mean():.1f}")
    print(f"\nsavings vs static: {100 * (1 - opt / static):.1f}%  "
          f"(greedy overpays switching: {greedy / opt:.2f}x optimal)")


if __name__ == "__main__":
    main()
