"""Hand-computed worked examples.

Each test pins an algorithm's exact arithmetic on a miniature instance
small enough to verify with pencil and paper — the reproduction's
equivalent of the paper's inline examples.  If any of these change, an
algorithm's semantics changed.
"""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.offline import (dp_value_table, solve_backward_lcp, solve_dp,
                           solve_binary_search)
from repro.online import (LCP, AlgorithmB, ThresholdFractional,
                          WorkFunctions, exact_rounding_distribution,
                          run_online)


class TestOfflineByHand:
    """Instance: beta = 1, m = 2, rows
    f1 = (4, 1, 0), f2 = (0, 1, 4), f3 = (4, 1, 0)."""

    def make(self):
        return Instance(beta=1.0, F=np.array([
            [4.0, 1.0, 0.0],
            [0.0, 1.0, 4.0],
            [4.0, 1.0, 0.0],
        ]))

    def test_dp_value_table(self):
        """D1 = f1 + x = (4, 2, 2);
        D2(j) = f2(j) + min(D1 under up-charge):
          D2(0) = 0 + min(4, 2, 2) = 2
          D2(1) = 1 + min(4+1, 2, 2) = 3
          D2(2) = 4 + min(4+2, 2+1, 2) = 6
        D3(0) = 4 + min(2,3,6) = 6; D3(1) = 1 + min(2+1,3,6) = 4;
        D3(2) = 0 + min(2+2,3+1,6) = 4."""
        D = dp_value_table(self.make())
        np.testing.assert_allclose(D[0], [4, 2, 2])
        np.testing.assert_allclose(D[1], [2, 3, 6])
        np.testing.assert_allclose(D[2], [6, 4, 4])

    def test_optimal_cost_and_schedules(self):
        inst = self.make()
        res = solve_dp(inst)
        assert res.cost == pytest.approx(4.0)
        # The optimum is not unique: (1,1,1) costs 3 ops + 1 up = 4 and
        # (1,0,1) costs 2 ops + 2 ups = 4.  The smallest-tie backward
        # reconstruction chooses the smaller state at t=2: (1, 0, 1).
        np.testing.assert_array_equal(res.schedule, [1, 0, 1])
        assert solve_binary_search(inst).cost == pytest.approx(4.0)
        assert solve_backward_lcp(inst).cost == pytest.approx(4.0)

    def test_largest_tie_optimum(self):
        """(2, 1, 2) costs 0+1+0 + 2+1 = 4 as well? ups: 2 then +1 = 3;
        total = 1 + 3 = 4. The largest-tie reconstruction must also cost
        4."""
        res = solve_dp(self.make(), tie="largest")
        assert res.cost == pytest.approx(4.0)
        from repro.core.schedule import cost
        assert cost(self.make(), res.schedule) == pytest.approx(4.0)


class TestWorkFunctionsByHand:
    def test_two_steps(self):
        """beta = 1, m = 2, f1 = (4, 1, 0):
        CL1 = f1 + x = (4, 2, 2)  -> x^L_1 = 1 (smallest argmin)
        CU1 = f1     = (4, 1, 0)  -> x^U_1 = 2 (largest argmin)
        After f2 = (0, 1, 4):
        CL2(x) = f2(x) + min(x' <= x relax) = (2, 3, 6) (DP row 2)
        CU2 = CL2 - x = (2, 2, 4) -> x^U_2 = 1."""
        wf = WorkFunctions(2, 1.0, track_U=True)
        wf.update(np.array([4.0, 1.0, 0.0]))
        np.testing.assert_allclose(wf.CL, [4, 2, 2])
        np.testing.assert_allclose(wf.CU, [4, 1, 0])
        assert wf.bounds() == (1, 2)
        wf.update(np.array([0.0, 1.0, 4.0]))
        np.testing.assert_allclose(wf.CL, [2, 3, 6])
        np.testing.assert_allclose(wf.CU, [2, 2, 4])
        assert wf.bounds() == (0, 1)


class TestLCPByHand:
    def test_three_steps(self):
        """Same instance as above: bounds are (1,2) then (0,1) then...
        LCP: x1 = clamp(0 -> [1,2]) = 1; x2 = clamp(1 -> [0,1]) = 1;
        f3 = (4,1,0): CL3 = (6,4,4) -> x^L_3 = 1; x^U from
        CU3 = (6,3,2) -> x^U_3 = 2; x3 = clamp(1 -> [1,2]) = 1."""
        inst = Instance(beta=1.0, F=np.array([
            [4.0, 1.0, 0.0],
            [0.0, 1.0, 4.0],
            [4.0, 1.0, 0.0],
        ]))
        algo = LCP(record_bounds=True)
        res = run_online(inst, algo)
        assert algo.bounds_log == [(1, 2), (0, 1), (1, 2)]
        np.testing.assert_array_equal(res.schedule, [1, 1, 1])
        assert res.cost == pytest.approx(4.0)


class TestThresholdByHand:
    def test_two_server_steps(self):
        """beta = 2, m = 2, f = (2, 1, 2): increments g = (-1, +1), so
        q1 += 1/2, q2 -= 1/2 (clamped at 0): x = 0.5.
        Repeating the same row: q1 = 1.0, q2 = 0: x = 1.0."""
        algo = ThresholdFractional()
        algo.reset(2, 2.0)
        row = np.array([2.0, 1.0, 2.0])
        assert algo.step(row) == pytest.approx(0.5)
        assert algo.step(row) == pytest.approx(1.0)
        assert algo.step(row) == pytest.approx(1.0)  # clamped
        np.testing.assert_allclose(algo.thresholds, [1.0, 0.0])

    def test_algorithm_b_steps(self):
        """beta = 2, phi1 = (0.4, 0): B moves 0.2 per step toward 1."""
        algo = AlgorithmB()
        algo.reset(1, 2.0)
        row = np.array([0.4, 0.0])
        assert algo.step(row) == pytest.approx(0.2)
        assert algo.step(row) == pytest.approx(0.4)


class TestRoundingByHand:
    def test_three_step_chain(self):
        """x-bar = (0.5, 1.5, 1.0):
        t1: from 0, P(up) = frac = 0.5 -> states {0,1} at (0.5, 0.5);
        t2: increasing into cell [1,2]; from state <= 1 projection is 1,
            P(up) = 0.5; from either previous state the same -> p = 0.5;
            E[(x2-x1)^+]: pairs (0->1):.25*1,(0->2):.25*2,(1->1):.25*0,
            (1->2):.25*1 = 1.0 = (1.5-0.5)^+.
        t3: decreasing to integral 1.0: everyone lands on 1, p_up = 0."""
        dist = exact_rounding_distribution(np.array([0.5, 1.5, 1.0]))
        np.testing.assert_allclose(dist.p_upper, [0.5, 0.5, 0.0])
        np.testing.assert_array_equal(dist.lowers, [0, 1, 1])
        np.testing.assert_allclose(dist.expected_up, [0.5, 1.0, 0.0])
