"""Zero-rebuild parallel batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon); the engine expands it into
jobs and executes them in three phases — in-process or on a persistent
process pool with chunking:

* **Phase 0 — materialization.**  With a ``store_dir``, each distinct
  ``(scenario, pipeline, T, inst_seed)`` instance is built exactly once
  and its dense payload written to the content-addressed
  :class:`~repro.runner.instancestore.InstanceStore`; later phases (and
  every other grid sharing the store) reopen it read-only via ``mmap``
  instead of re-tabulating cost matrices.  Even without a store, a
  per-process memo guarantees no process builds the same instance twice.
* **Phase 1 — instances.**  Each distinct instance's offline optimum is
  solved exactly once, however many algorithms the grid runs on it.
  Optima are persisted when a cache directory is given, so a grid with
  ``A`` algorithms pays roughly ``1/A`` of the naive per-job cost.
* **Phase 2 — algorithms.**  Algorithm jobs fan out over
  :func:`parallel_map`, each reusing its instance's hoisted optimum.

Three properties make this the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows — with or
  without the instance store (``np.save`` round-trips float64 exactly).
* **Caching** — results persist per *job* in a content-addressed store
  (:class:`~repro.runner.jobcache.JobCache`, JSON-dir or SQLite
  backend): one record per job key, plus one per instance optimum.
  Overlapping grids share work, and extending a grid by one seed
  executes only the new seed's jobs.
* **Pool reuse** — :func:`parallel_map` keeps one module-level
  ``ProcessPoolExecutor`` alive across phases, grids and callers
  (``analysis/sweep``, ``repro lowerbound``), so the many small grids
  the benches run don't pay a pool fork each; :func:`shutdown_pool`
  tears it down explicitly (and at interpreter exit).  Jobs are handed
  to workers in contiguous chunks to amortize IPC, while row order
  always matches job order.

Algorithms are resolved through :mod:`repro.runner.registry`; the
registry entry's ``pipeline`` selects the instance representation, so
restricted-model (``restricted``) and heterogeneous (``dp_hetero``,
``static_hetero``, ``greedy_hetero``) solvers run under the same engine
— and land in the same aggregate tables — as the general-model
algorithms.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor

from . import instancestore
from .instancestore import InstanceStore, get_instance
from .jobcache import JobCache, content_key

__all__ = [
    "GridSpec",
    "run_grid",
    "aggregate_rows",
    "job_key",
    "instance_key",
    "JobCache",
    "parallel_map",
    "shutdown_pool",
]

#: bump when row contents / seeding change, to invalidate stale caches
ENGINE_VERSION = 2

_JOB_FIELDS = ("scenario", "algorithm", "T", "inst_seed", "seed",
               "lookahead")


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms and offline solvers interchangeably; both are resolved
    through :mod:`repro.runner.registry`.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples)."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    def cache_key(self) -> str:
        """Stable content hash of the spec (used as a display id; the
        result cache is keyed per job, not per grid)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        out = []
        for T in self.sizes:
            for scenario in self.scenarios:
                for seed in self.seeds:
                    inst_seed = (seed if self.instance_seed is None
                                 else self.instance_seed)
                    for algorithm in self.algorithms:
                        out.append((scenario, algorithm, T, inst_seed,
                                    seed, self.lookahead))
        return out

    def __len__(self) -> int:
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead = job
    blob = f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
    return zlib.crc32(blob.encode())


def job_key(job: tuple) -> str:
    """Content-addressed cache key of one grid job."""
    return content_key({"kind": "job",
                        "engine_version": ENGINE_VERSION,
                        **dict(zip(_JOB_FIELDS, job))})


def _instance_coords(job: tuple) -> tuple:
    """The phase-0/1 coordinates a job's instance is built from."""
    from .registry import get_spec
    scenario, algorithm, T, inst_seed, _seed, _lookahead = job
    return (scenario, get_spec(algorithm).pipeline, T, inst_seed)


def instance_key(coords: tuple) -> str:
    """Content-addressed cache key of one instance's offline optimum."""
    scenario, pipeline, T, inst_seed = coords
    return content_key({"kind": "instance",
                        "engine_version": ENGINE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed})


def _solve_instance(task: tuple) -> dict:
    """Phase-1 job: resolve one instance, solve its offline optimum once.

    ``task`` is ``(coords, store_root)``; must stay module-level (pool
    pickling).  Returns the per-instance record reused by every phase-2
    job on the same instance.
    """
    coords, store_root = task
    pipeline = coords[1]
    inst = get_instance(coords, store_root)
    if pipeline == "general":
        from ..analysis import optimal_cost
        opt, m, beta = optimal_cost(inst), inst.m, inst.beta
    elif pipeline == "restricted":
        from ..offline import solve_restricted
        opt, m, beta = solve_restricted(inst).cost, inst.m, inst.beta
    else:  # hetero: report the pooled fleet size and the type-1 beta
        from ..extensions import solve_dp_hetero
        opt = solve_dp_hetero(inst)[2]
        m, beta = inst.m1 + inst.m2, inst.beta1
    return {"opt": float(opt), "m": int(m), "beta": float(beta)}


def _run_job(task: tuple) -> dict:
    """Phase-2 job: run one algorithm against its hoisted optimum.

    ``task`` is ``(job, inst_record, store_root)`` with the record
    produced by :func:`_solve_instance`; must stay module-level (pool
    pickling).
    """
    from .registry import get_spec, pipeline_optimum
    job, inst_record, store_root = task
    scenario, algorithm, T, inst_seed, seed, lookahead = job
    spec = get_spec(algorithm)
    if algorithm == pipeline_optimum(spec.pipeline):
        return {
            "scenario": scenario, "algorithm": algorithm,
            "pipeline": spec.pipeline, "T": T,
            "m": inst_record["m"], "beta": inst_record["beta"],
            "seed": seed, "cost": inst_record["opt"],
            "opt": inst_record["opt"], "ratio": 1.0,
        }
    inst = get_instance((scenario, spec.pipeline, T, inst_seed), store_root)
    if spec.pipeline == "hetero":
        cost = spec.make()(inst)[2]
    elif spec.kind == "online":
        from ..online.base import run_online
        cost = run_online(inst, spec.make(lookahead=lookahead,
                                          seed=_job_seed(job))).cost
    else:
        cost = spec.make()(inst).cost
    opt = inst_record["opt"]
    return {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": spec.pipeline, "T": T,
        "m": inst_record["m"], "beta": inst_record["beta"], "seed": seed,
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Persistent worker pool.
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _get_pool(n_jobs: int) -> ProcessPoolExecutor:
    """The module-level executor, grown (never shrunk) to ``n_jobs``."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS < n_jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        _POOL = ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx)
        _POOL_WORKERS = n_jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent; also runs at
    interpreter exit).  The next parallel call starts a fresh pool."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on the persistent pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The pool outlives the call — it
    is reused by both engine phases, by every subsequent grid, and by
    ``analysis/sweep`` and ``repro lowerbound`` — so pool startup is
    amortized across the many small grids the benches run.  The
    in-process path is a plain ``map`` so tests can monkeypatch ``fn``'s
    module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    try:
        return list(_get_pool(n_jobs).map(fn, items, chunksize=chunksize))
    except Exception:
        # a dead/broken pool must not poison later calls — drop it so
        # the next parallel_map starts fresh, then surface the error
        shutdown_pool()
        raise


def _validate_pipelines(jobs) -> None:
    """Fail fast (in the parent) when a job pairs an algorithm with a
    scenario that cannot build its pipeline's instance representation."""
    from .registry import get_spec
    from .scenarios import get_scenario
    for scenario, algorithm, *_ in {(j[0], j[1]) for j in jobs}:
        pipeline = get_spec(algorithm).pipeline
        supported = get_scenario(scenario).pipelines
        if pipeline not in supported:
            raise ValueError(
                f"algorithm {algorithm!r} needs the {pipeline!r} pipeline "
                f"but scenario {scenario!r} only builds {supported}")


def run_grid(spec: GridSpec, *, n_jobs: int = 1, cache_dir=None,
             store_dir=None, force: bool = False,
             stats: dict | None = None) -> list[dict]:
    """Run every job of a grid and return one row dict per job.

    With ``cache_dir``, each job's row (and each instance's optimum) is
    read from the per-job content-addressed cache when present (unless
    ``force``) and written back after a live run — so re-running any
    overlapping grid only executes the jobs it has not seen before.
    ``cache_dir`` may also be a ready-made :class:`JobCache` (e.g. one
    opened on the SQLite backend).  With ``store_dir``, phase 0
    materializes each distinct pending instance into the shared
    :class:`~repro.runner.instancestore.InstanceStore` exactly once;
    phases 1 and 2 then mmap the payloads instead of rebuilding.

    Pass a dict as ``stats`` to receive counters: ``job_hits``,
    ``job_misses``, ``opt_hits``, ``opt_solved``,
    ``inst_materialized`` (instances newly written to the store this
    call, wherever the build ran), plus this process's
    instance-resolution deltas ``inst_builds`` (scenario builds — with a
    store, at most one per distinct instance end-to-end), ``inst_loads``
    (store mmap loads) and ``inst_memo_hits``.
    """
    cache = (cache_dir if isinstance(cache_dir, JobCache)
             else JobCache(cache_dir) if cache_dir is not None else None)
    store_root = None if store_dir is None else str(store_dir)
    jobs = spec.jobs()
    _validate_pipelines(jobs)
    counters = {"job_hits": 0, "job_misses": 0, "opt_hits": 0,
                "opt_solved": 0, "inst_materialized": 0}
    inst_stats_before = instancestore.build_stats()
    rows: list = [None] * len(jobs)
    pending: list[tuple[int, tuple, str]] = []
    for i, job in enumerate(jobs):
        key = job_key(job)
        row = (cache.get("jobs", key)
               if cache is not None and not force else None)
        if row is not None:
            rows[i] = row
            counters["job_hits"] += 1
        else:
            pending.append((i, job, key))
    counters["job_misses"] = len(pending)
    if pending:
        need = dict.fromkeys(_instance_coords(job) for _, job, _ in pending)
        # Phase 0: materialize each distinct pending instance once.
        if store_root is not None:
            store = InstanceStore(store_root)
            missing = [c for c in need if not store.has(c)]
            built = parallel_map(instancestore._materialize_job,
                                 [(c, store_root) for c in missing],
                                 n_jobs=n_jobs)
            # a concurrent grid may have materialized some of them first
            counters["inst_materialized"] = sum(map(bool, built))
        # Phase 1: solve each distinct pending instance's optimum once.
        records: dict[tuple, dict] = {}
        unsolved = []
        for coords in need:
            rec = (cache.get("instances", instance_key(coords))
                   if cache is not None and not force else None)
            if rec is not None:
                records[coords] = rec
                counters["opt_hits"] += 1
            else:
                unsolved.append(coords)
        for coords, rec in zip(unsolved,
                               parallel_map(_solve_instance,
                                            [(c, store_root)
                                             for c in unsolved],
                                            n_jobs=n_jobs)):
            records[coords] = rec
            counters["opt_solved"] += 1
            if cache is not None:
                cache.put("instances", instance_key(coords), rec)
        # Phase 2: fan the algorithm jobs out, reusing the optima.
        tasks = [(job, records[_instance_coords(job)], store_root)
                 for _, job, _ in pending]
        for (i, _job, key), row in zip(pending,
                                       parallel_map(_run_job, tasks,
                                                    n_jobs=n_jobs)):
            rows[i] = row
            if cache is not None:
                cache.put("jobs", key, row)
    if stats is not None:
        inst_stats = instancestore.build_stats()
        counters.update({k: inst_stats[k] - inst_stats_before[k]
                         for k in inst_stats})
        stats.update(counters)
    return rows


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row[k] for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
