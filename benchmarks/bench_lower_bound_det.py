"""E6 — Theorem 4: deterministic lower bound 3 (discrete setting).

Regenerates the ratio-vs-eps curve of the adaptive two-state adversary
against LCP (the optimal deterministic algorithm) and against naive
baselines: all curves approach 3 from below as eps -> 0 and the explicit
proof bound 3 - eps - 6/(T eps/2 + 2) is met.

The eps grids run as `game`-pipeline engine jobs (`lb-deterministic`
scenario x `game-*` players with an eps ``params`` axis), so they share
the engine's process pool, per-job cache and deterministic seeding with
every other experiment; the timed kernel stays the raw adaptive loop.
"""

from repro.lower_bounds import DeterministicDiscreteAdversary, play_game
from repro.online import LCP, FollowTheMinimizer
from repro.runner import GridSpec, run_grid

from conftest import record


def proof_bound(eps: float, T: int) -> float:
    return 3 - eps - (2 * (1 - eps) + 4) / (T * eps / 2 + 2)


def test_e6_ratio_curve(benchmark):
    spec = GridSpec(scenarios=("lb-deterministic",),
                    algorithms=("game-lcp",), seeds=(0,), sizes=(40000,),
                    params=tuple({"eps": e}
                                 for e in (0.2, 0.1, 0.05, 0.02)))
    rows = [{"eps": r["eps"], "T": r["game_T"], "lcp_ratio": r["ratio"],
             "proof_bound": proof_bound(r["eps"], r["game_T"])}
            for r in run_grid(spec)]
    record("E6_det_lower_bound", rows,
           title="E6: deterministic lower bound (-> 3)")
    for row in rows:
        assert row["lcp_ratio"] >= row["proof_bound"] - 1e-9
        assert row["lcp_ratio"] <= 3.0 + 1e-7
    assert rows[-1]["lcp_ratio"] > 2.9
    adv = DeterministicDiscreteAdversary(0.05)
    benchmark(play_game, adv, LCP(), 2000)


def test_e6_any_algorithm_bounded(benchmark):
    """The adversary defeats other deterministic algorithms too."""
    spec = GridSpec(scenarios=("lb-deterministic",),
                    algorithms=("game-lcp", "game-followmin"),
                    seeds=(0,), sizes=(20000,),
                    params=({"eps": 0.05},))
    names = {"game-lcp": "lcp", "game-followmin": "follow-min"}
    rows = [{"algorithm": names[r["algorithm"]], "ratio": r["ratio"],
             "proof_bound": proof_bound(r["eps"], r["game_T"])}
            for r in run_grid(spec)]
    record("E6_all_algorithms", rows,
           title="E6: the bound binds every deterministic algorithm")
    for row in rows:
        assert row["ratio"] >= row["proof_bound"] - 1e-9
    benchmark(play_game, DeterministicDiscreteAdversary(0.05),
              FollowTheMinimizer(), 2000)
