"""Tests for the data-center simulator substrate and its cost bridge."""

import numpy as np
import pytest

from repro.offline import solve_dp
from repro.online import solve_static
from repro.simulator import (DataCenter, JobTrace, ServerPowerModel,
                             bridge_instance, poisson_job_trace,
                             replay_schedule, simulated_cost)
from repro.workloads import diurnal_loads


class TestJobTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobTrace(work=np.array([1.0, -1.0]), jobs=np.array([1, 1]))
        with pytest.raises(ValueError):
            JobTrace(work=np.array([1.0]), jobs=np.array([1, 2]))

    def test_poisson_trace_matches_rate_in_expectation(self):
        rng = np.random.default_rng(0)
        rate = np.full(4000, 5.0)
        trace = poisson_job_trace(rate, rng=rng)
        assert trace.T == 4000
        assert np.mean(trace.work) == pytest.approx(5.0, rel=0.1)

    def test_zero_rate_zero_work(self):
        trace = poisson_job_trace(np.zeros(10), rng=1)
        assert np.all(trace.work == 0)
        assert np.all(trace.jobs == 0)

    def test_deterministic_services(self):
        trace = poisson_job_trace(np.full(100, 4.0), service_cv=0.0,
                                  mean_service=2.0, rng=2)
        # Work is an exact multiple of the job size.
        np.testing.assert_allclose(trace.work, trace.jobs * 2.0)

    def test_heavier_tail_larger_variance(self):
        rate = np.full(2000, 5.0)
        light = poisson_job_trace(rate, service_cv=0.2, rng=3).work
        heavy = poisson_job_trace(rate, service_cv=3.0, rng=3).work
        assert np.var(heavy) > np.var(light)

    def test_smoothed_loads(self):
        trace = JobTrace(work=np.array([0.0, 4.0, 0.0, 4.0]),
                         jobs=np.array([0, 1, 0, 1]))
        sm = trace.smoothed_loads(2)
        np.testing.assert_allclose(sm, [0.0, 2.0, 2.0, 2.0])
        with pytest.raises(ValueError):
            trace.smoothed_loads(0)

    def test_seed_determinism(self):
        rate = np.full(50, 3.0)
        a = poisson_job_trace(rate, rng=np.random.default_rng(9)).work
        b = poisson_job_trace(rate, rng=np.random.default_rng(9)).work
        np.testing.assert_array_equal(a, b)


class TestDataCenter:
    def test_work_conservation(self):
        """Work in == work served + final backlog."""
        rng = np.random.default_rng(10)
        dc = DataCenter(5)
        sched = rng.integers(0, 6, size=200)
        work = rng.uniform(0, 4, size=200)
        log = dc.run(sched, work)
        served = sum(s.served_work for s in log.steps)
        assert served + log.final_backlog == pytest.approx(float(work.sum()))

    def test_capacity_limits_service(self):
        dc = DataCenter(4)
        m1 = dc.step(2, 5.0)
        assert m1.served_work == pytest.approx(2.0)
        assert m1.backlog == pytest.approx(3.0)
        assert m1.utilization == pytest.approx(1.0)

    def test_idle_energy_accounting(self):
        p = ServerPowerModel(busy_power=1.0, idle_power=0.5, sleep_power=0.0,
                             transition_energy=0.0)
        dc = DataCenter(4, p)
        m1 = dc.step(2, 1.0)  # one server-busy of work on two servers
        # busy = 1.0, idle = 1.0 servers.
        assert m1.energy == pytest.approx(1.0 * 1.0 + 1.0 * 0.5)

    def test_sleep_energy_accounting(self):
        p = ServerPowerModel(sleep_power=0.1, transition_energy=0.0)
        dc = DataCenter(10, p)
        m1 = dc.step(0, 0.0)
        assert m1.energy == pytest.approx(1.0)

    def test_transition_energy_on_powerup_only(self):
        p = ServerPowerModel(transition_energy=3.0)
        dc = DataCenter(4, p)
        up = dc.step(3, 0.0)
        assert up.transition_energy == pytest.approx(9.0)
        down = dc.step(1, 0.0)
        assert down.transition_energy == 0.0
        up2 = dc.step(2, 0.0)
        assert up2.transition_energy == pytest.approx(3.0)

    def test_setup_delay_blocks_service(self):
        p = ServerPowerModel(setup_steps=2, transition_energy=0.0)
        dc = DataCenter(2, p)
        m1 = dc.step(2, 2.0)
        assert m1.ready == 0 and m1.served_work == 0.0
        m2 = dc.step(2, 0.0)
        assert m2.ready == 0
        m3 = dc.step(2, 0.0)
        assert m3.ready == 2
        assert m3.served_work == pytest.approx(2.0)

    def test_powering_down_drops_warming_servers_first(self):
        p = ServerPowerModel(setup_steps=3, transition_energy=0.0)
        dc = DataCenter(4, p)
        dc.step(2, 0.0)   # 2 warming
        dc.step(4, 0.0)   # +2 warming
        m = dc.step(1, 0.0)
        assert m.active == 1

    def test_latency_grows_with_backlog(self):
        dc = DataCenter(2)
        lat_low = dc.step(2, 1.0).latency
        dc.reset()
        lat_high = dc.step(2, 6.0).latency
        assert lat_high > lat_low

    def test_validation(self):
        with pytest.raises(ValueError):
            DataCenter(0)
        dc = DataCenter(2)
        with pytest.raises(ValueError):
            dc.step(3, 0.0)
        with pytest.raises(ValueError):
            dc.step(1, -1.0)
        with pytest.raises(ValueError):
            ServerPowerModel(busy_power=-1.0)
        with pytest.raises(ValueError):
            dc.run([1, 2], [1.0])

    def test_log_aggregates(self):
        dc = DataCenter(3)
        log = dc.run([1, 2, 2], [0.5, 1.0, 0.0])
        assert log.total_energy > 0
        assert log.total_cost(0.0) == pytest.approx(log.total_energy)
        assert log.total_cost(2.0) == pytest.approx(
            log.total_energy + 2 * log.total_latency)


class TestBridge:
    def make_trace(self, T=72, peak=10.0, seed=0):
        rng = np.random.default_rng(seed)
        rate = diurnal_loads(T, peak=peak, rng=rng)
        return poisson_job_trace(rate, rng=rng)

    def test_bridge_instance_valid(self):
        trace = self.make_trace()
        inst = bridge_instance(trace, m=14, beta=5.0)
        assert inst.T == trace.T and inst.m == 14
        # Construction validates convexity; rows must be finite/nonneg.
        assert np.all(np.isfinite(inst.F))

    def test_bridge_costs_fall_then_rise(self):
        """More servers first reduce latency then waste energy."""
        trace = JobTrace(work=np.array([6.0]), jobs=np.array([3]))
        inst = bridge_instance(trace, m=15, beta=1.0, latency_weight=0.5)
        row = inst.F[0]
        j_star = int(np.argmin(row))
        assert 6 <= j_star <= 13
        assert row[0] > row[j_star]
        assert row[15] > row[j_star]

    def test_bridge_latency_weight_moves_minimizer_up(self):
        trace = JobTrace(work=np.array([6.0]), jobs=np.array([3]))
        lo = bridge_instance(trace, m=15, beta=1.0, latency_weight=0.25)
        hi = bridge_instance(trace, m=15, beta=1.0, latency_weight=2.0)
        assert int(np.argmin(hi.F[0])) >= int(np.argmin(lo.F[0]))

    def test_optimizer_beats_always_max_too(self):
        """With the congestion-aware bridge the optimizer also beats
        maximal provisioning (it stops buying latency once the queue is
        drained)."""
        trace = self.make_trace(T=96, peak=12.0, seed=7)
        m = 18
        from repro.simulator import ServerPowerModel
        power = ServerPowerModel(idle_power=0.7, transition_energy=3.0)
        inst = bridge_instance(trace, m, beta=6.0, power=power,
                               latency_weight=0.5)
        opt = solve_dp(inst).schedule
        always_max = np.full(trace.T, m)
        from repro.simulator import replay_schedule
        c_opt = replay_schedule(opt, trace, m, power=power).total_cost(0.5)
        c_max = replay_schedule(always_max, trace, m,
                                power=power).total_cost(0.5)
        assert c_opt < c_max

    def test_optimized_schedule_beats_static_in_simulation(self):
        """E13's headline: the Section-2 optimum of the bridged instance
        costs less in the *simulator* than static provisioning."""
        trace = self.make_trace(T=96, peak=12.0, seed=1)
        m = 18
        inst = bridge_instance(trace, m, beta=6.0)
        opt = solve_dp(inst).schedule
        static = solve_static(inst).schedule
        assert simulated_cost(opt, trace, m) < simulated_cost(
            static, trace, m)

    def test_abstract_cost_tracks_simulated_cost(self):
        """Across a family of schedules, abstract and simulated costs are
        strongly rank-correlated."""
        trace = self.make_trace(T=48, peak=8.0, seed=2)
        m = 12
        inst = bridge_instance(trace, m, beta=4.0)
        from repro.core.schedule import cost as abstract_cost
        rng = np.random.default_rng(3)
        abstract, simulated = [], []
        for _ in range(25):
            level = int(rng.integers(1, m + 1))
            jitter = rng.integers(-2, 3, size=trace.T)
            sched = np.clip(level + jitter, 0, m)
            abstract.append(abstract_cost(inst, sched.astype(float)))
            simulated.append(simulated_cost(sched, trace, m))
        from scipy.stats import spearmanr
        rho = spearmanr(abstract, simulated).statistic
        assert rho > 0.8

    def test_replay_matches_datacenter_run(self):
        trace = self.make_trace(T=24, peak=6.0, seed=4)
        sched = np.full(24, 8)
        log = replay_schedule(sched, trace, m=10)
        dc = DataCenter(10)
        direct = dc.run(sched, trace.work)
        assert log.total_energy == pytest.approx(direct.total_energy)

    def test_plain_array_trace_accepted(self):
        inst = bridge_instance(np.array([2.0, 3.0]), m=5, beta=1.0)
        assert inst.T == 2
