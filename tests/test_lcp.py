"""Tests for discrete LCP (Section 3): 3-competitiveness, laziness,
Lemma 6, and the prediction-window variant."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.online import LCP, run_online
from repro.online.lcp import lookahead_bounds
from repro.online.workfunction import WorkFunctions
from repro.offline import solve_dp
from tests.conftest import (bowl_instance, hinge_instance,
                            random_convex_instance, trace_instance)


class TestCompetitiveness:
    def test_three_competitive_random(self):
        rng = np.random.default_rng(90)
        for _ in range(40):
            inst = random_convex_instance(rng, int(rng.integers(1, 25)),
                                          int(rng.integers(1, 12)),
                                          float(rng.uniform(0.2, 5)))
            res = run_online(inst, LCP())
            opt = optimal_cost(inst)
            assert res.cost <= 3 * opt + 1e-7, (res.cost, opt)

    def test_three_competitive_traces(self):
        for seed in range(5):
            inst = trace_instance(seed=seed, T=60, peak=10.0,
                                  beta=float(2 + seed))
            res = run_online(inst, LCP())
            assert res.cost <= 3 * optimal_cost(inst) + 1e-7

    def test_three_competitive_hinges(self):
        inst = hinge_instance([0, 5, 0, 5, 0, 5], m=5, beta=2.0)
        res = run_online(inst, LCP())
        assert res.cost <= 3 * optimal_cost(inst) + 1e-9

    def test_optimal_on_monotone_demand(self):
        """On steadily rising bowls LCP tracks the optimum closely."""
        inst = bowl_instance([1, 2, 3, 4, 5, 6], m=8, beta=0.1, a=5.0)
        res = run_online(inst, LCP())
        assert res.cost <= 1.2 * optimal_cost(inst)


class TestLaziness:
    def test_moves_only_to_bounds(self):
        """Whenever LCP changes state, it lands exactly on x^L or x^U
        (the projection property of eq. (13))."""
        rng = np.random.default_rng(91)
        for _ in range(10):
            inst = random_convex_instance(rng, int(rng.integers(2, 20)),
                                          int(rng.integers(1, 9)),
                                          float(rng.uniform(0.3, 3)))
            algo = LCP(record_bounds=True)
            res = run_online(inst, algo)
            prev = 0
            for t, x in enumerate(res.schedule.astype(int)):
                lo, hi = algo.bounds_log[t]
                assert lo <= x <= hi
                if x != prev:
                    assert x in (lo, hi)
                    # And the previous state was outside the bounds.
                    assert prev < lo or prev > hi
                prev = x

    def test_stays_put_when_inside_bounds(self):
        rng = np.random.default_rng(92)
        inst = random_convex_instance(rng, 15, 6, 1.5)
        algo = LCP(record_bounds=True)
        res = run_online(inst, algo)
        prev = 0
        for t, x in enumerate(res.schedule.astype(int)):
            lo, hi = algo.bounds_log[t]
            if lo <= prev <= hi:
                assert x == prev
            prev = x


class TestLemma6:
    def test_optimum_within_bounds(self):
        """x^L_tau <= x*_tau <= x^U_tau for optimal schedules (both tie
        rules) — Lemma 6."""
        rng = np.random.default_rng(93)
        for _ in range(12):
            inst = random_convex_instance(rng, int(rng.integers(2, 12)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.3, 3)))
            stars = [solve_dp(inst, tie="smallest").schedule,
                     solve_dp(inst, tie="largest").schedule]
            wf = WorkFunctions(inst.m, inst.beta)
            for tau in range(1, inst.T + 1):
                wf.update(inst.F[tau - 1])
                lo, hi = wf.bounds()
                for star in stars:
                    assert lo <= star[tau - 1] <= hi, (tau, lo, hi, star)


class TestPredictionWindow:
    def test_lookahead_zero_equals_plain(self):
        rng = np.random.default_rng(94)
        inst = random_convex_instance(rng, 20, 6, 1.2)
        a = run_online(inst, LCP())
        b = run_online(inst, LCP(lookahead=0))
        np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_lookahead_still_three_competitive(self):
        rng = np.random.default_rng(95)
        for w in (1, 3, 7):
            for _ in range(8):
                inst = random_convex_instance(rng, int(rng.integers(3, 20)),
                                              int(rng.integers(1, 8)),
                                              float(rng.uniform(0.3, 3)))
                res = run_online(inst, LCP(lookahead=w))
                assert res.cost <= 3 * optimal_cost(inst) + 1e-7, w

    def test_lookahead_helps_on_average(self):
        """On diurnal traces, a day of lookahead should not hurt and
        typically helps (aggregate comparison over seeds)."""
        total_plain = total_look = total_opt = 0.0
        for seed in range(6):
            inst = trace_instance(seed=seed, T=72, peak=12.0, beta=6.0)
            total_plain += run_online(inst, LCP()).cost
            total_look += run_online(inst, LCP(lookahead=12)).cost
            total_opt += optimal_cost(inst)
        assert total_look <= total_plain * 1.001
        assert total_look / total_opt < total_plain / total_opt + 1e-9

    def test_full_lookahead_near_optimal(self):
        """With the whole future visible the bounds pin the offline
        optimizer's component; LCP then tracks it closely."""
        rng = np.random.default_rng(96)
        for _ in range(6):
            inst = random_convex_instance(rng, 12, 6,
                                          float(rng.uniform(0.3, 3)))
            res = run_online(inst, LCP(lookahead=inst.T))
            assert res.cost <= 1.5 * optimal_cost(inst) + 1e-9

    def test_lookahead_bounds_ordering(self):
        rng = np.random.default_rng(97)
        inst = random_convex_instance(rng, 10, 7, 1.0)
        wf = WorkFunctions(inst.m, inst.beta)
        for tau in range(1, 6):
            wf.update(inst.F[tau - 1])
        lo, hi = lookahead_bounds(wf, inst.F[5:9])
        assert 0 <= lo <= hi <= inst.m

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError):
            LCP(lookahead=-1)


class TestWorkedExample:
    def test_hand_computed_two_steps(self):
        """Tiny instance worked by hand.

        beta = 1, m = 1, f1 = (0, 10), f2 = (0, 10):
        hat-C^L_1 = (0, 11) -> x^L_1 = 0; hat-C^U_1 = (0, 10) -> x^U_1 = 0;
        LCP stays at 0 throughout.
        """
        from repro.core.instance import Instance
        inst = Instance(beta=1.0, F=np.array([[0.0, 10.0], [0.0, 10.0]]))
        res = run_online(inst, LCP())
        np.testing.assert_array_equal(res.schedule, [0, 0])
        assert res.cost == pytest.approx(0.0)

    def test_hand_computed_forced_up(self):
        """f1 = (10, 0), beta = 1: hat-C^L_1 = (10, 1) -> x^L_1 = 1, so LCP
        must power up immediately."""
        from repro.core.instance import Instance
        inst = Instance(beta=1.0, F=np.array([[10.0, 0.0]]))
        res = run_online(inst, LCP())
        np.testing.assert_array_equal(res.schedule, [1])
        assert res.cost == pytest.approx(1.0)
