"""Deterministic fault injection for the execution engine.

The fault-tolerance layer (retry/quarantine in the engine, pool
respawn in the executor, first-wins merging in the lease queue) is only
trustworthy if its failure paths are *exercised deterministically*.
This module is the chaos harness: a :class:`FaultPlan` names faults by
``(site, match, nth)`` and the instrumented sites call :func:`fire`
with a descriptive token; when a spec matches, the site raises (or the
worker process dies) exactly where a real failure would.

Sites (each fired with a token the ``match`` substring selects on):

===============  ====================================================
``run_job``       one phase-2 algorithm job attempt (token: job coords)
``solve_instance``one phase-1 optimum solve attempt (token: coords)
``materialize``   one phase-0 instance store write (token: coords)
``cache_put``     one job/optimum cache write (token: cache key)
``sink_write``    one sink batch flush (token: sink class name)
``worker_exit``   one phase-2 chunk *start*, worker processes only —
                  the process SIGKILLs itself (pool-crash injection)
``sqlite_lock``   one SQLite cache-backend insert (token: cache key)
``queue_claim``   one lease-queue claim attempt (token: worker id)
``http_request``  one ServiceClient HTTP request (token: METHOD path)
===============  ====================================================

Determinism: each process counts matching invocations per
``(site, match)`` key, so ``nth=(1,)`` fails the first matching attempt
in a process and lets the in-process retry succeed — the canonical
*transient* fault — while ``nth=None`` fails every attempt (a *poison*
job).  Faults that must fire once **globally** (a worker crash would
otherwise recur on the resubmitted chunk) set ``once=True`` with a
``state_dir``: the first process to atomically create the marker file
wins.

Activation: :func:`activate` installs a plan in-process (what
``EngineConfig.fault_plan`` does), and the ``REPRO_FAULTS`` environment
variable carries the JSON form — re-read lazily per process, so pool
workers forked *after* the variable is set inherit the plan with no
extra plumbing (``run_grid`` tears the pool down around a faulted run
for exactly this reason).

With no active plan :func:`fire` is a near-free no-op; production runs
pay one ``None`` check per site.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import sqlite3

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "activate",
    "as_plan",
    "counters",
    "deactivate",
    "fire",
    "mark_worker",
    "reset",
]

#: environment variable carrying a plan's JSON form to forked workers
ENV_VAR = "REPRO_FAULTS"

#: the instrumented sites a spec may target
FAULT_SITES = ("run_job", "solve_instance", "materialize", "cache_put",
               "sink_write", "worker_exit", "sqlite_lock",
               "queue_claim", "http_request")

#: what a triggered spec does: raise InjectedFault, raise a SQLite
#: lock error, or SIGKILL the worker process
FAULT_KINDS = ("error", "lock", "exit")


class InjectedFault(RuntimeError):
    """The error an ``error``-kind fault raises at its site."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One named fault: fire at ``site`` when ``match`` is a substring
    of the site's token, on the ``nth`` matching invocation(s) of this
    process (1-based; ``None`` = every invocation, i.e. poison)."""

    site: str
    match: str = ""
    nth: tuple[int, ...] | None = (1,)
    kind: str = "error"
    once: bool = False

    def __post_init__(self):
        """Validate site/kind and canonicalize ``nth`` to a tuple."""
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.nth is not None:
            object.__setattr__(self, "nth",
                               tuple(int(n) for n in self.nth))

    def to_dict(self) -> dict:
        """JSON-serializable form (:meth:`FaultPlan.to_json`)."""
        return {"site": self.site, "match": self.match,
                "nth": None if self.nth is None else list(self.nth),
                "kind": self.kind, "once": self.once}

    @classmethod
    def from_dict(cls, d: dict) -> FaultSpec:
        """Rebuild a spec from :meth:`to_dict` output."""
        nth = d.get("nth", (1,))
        return cls(site=d["site"], match=d.get("match", ""),
                   nth=None if nth is None else tuple(nth),
                   kind=d.get("kind", "error"),
                   once=bool(d.get("once", False)))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` plus the shared
    ``state_dir`` that ``once=True`` specs coordinate through."""

    specs: tuple[FaultSpec, ...] = ()
    state_dir: str | None = None

    def __post_init__(self):
        """Coerce ``specs`` entries (dicts allowed) into FaultSpecs."""
        object.__setattr__(self, "specs", tuple(
            s if isinstance(s, FaultSpec) else FaultSpec.from_dict(s)
            for s in self.specs))

    def to_json(self) -> str:
        """The JSON form carried by the ``REPRO_FAULTS`` variable."""
        return json.dumps({"specs": [s.to_dict() for s in self.specs],
                           "state_dir": self.state_dir},
                          sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> FaultPlan:
        """Parse :meth:`to_json` output (also accepts a bare list of
        spec dicts, the hand-written CI form)."""
        data = json.loads(blob)
        if isinstance(data, list):
            data = {"specs": data}
        return cls(specs=tuple(FaultSpec.from_dict(d)
                               for d in data.get("specs", ())),
                   state_dir=data.get("state_dir"))


def as_plan(value) -> FaultPlan:
    """Coerce ``EngineConfig.fault_plan`` values — a ready
    :class:`FaultPlan`, a JSON string, a dict, or a list of spec
    dicts — into a :class:`FaultPlan`."""
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, str):
        return FaultPlan.from_json(value)
    if isinstance(value, dict):
        return FaultPlan(specs=tuple(value.get("specs", ())),
                         state_dir=value.get("state_dir"))
    return FaultPlan(specs=tuple(value))


# ----------------------------------------------------------------------
# Per-process state.
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_RAW: str | None = None
_ENV_PLAN: FaultPlan | None = None
_COUNTS: dict[tuple[str, str], int] = {}
_ONCE_LOCAL: set[tuple[str, int]] = set()
_IS_WORKER = False


def mark_worker() -> None:
    """Flag this process as a pool worker (pool initializer calls
    this).  Only marked processes honor ``exit``-kind faults — the
    parent and the inline ``n_jobs=1`` path must never SIGKILL
    themselves."""
    global _IS_WORKER
    _IS_WORKER = True


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` in this process (wins over ``REPRO_FAULTS``)."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Remove the in-process plan (``REPRO_FAULTS`` still applies)."""
    global _ACTIVE
    _ACTIVE = None


def reset() -> None:
    """Clear invocation counters and cached env state (test isolation)."""
    global _ENV_RAW, _ENV_PLAN
    _COUNTS.clear()
    _ONCE_LOCAL.clear()
    _ENV_RAW = None
    _ENV_PLAN = None


def counters() -> dict:
    """Copy of this process's ``(site, match) -> invocations`` counts."""
    return dict(_COUNTS)


def _plan_from_env() -> FaultPlan | None:
    """The plan carried by ``REPRO_FAULTS``, parsed lazily and cached
    by raw value — forked workers inherit the variable and build their
    own counters."""
    global _ENV_RAW, _ENV_PLAN
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENV_PLAN = FaultPlan.from_json(raw)
    return _ENV_PLAN


def active_plan() -> FaultPlan | None:
    """The plan :func:`fire` consults (explicit beats environment)."""
    return _ACTIVE if _ACTIVE is not None else _plan_from_env()


def _claim_once(plan: FaultPlan, index: int, site: str) -> bool:
    """Atomically claim a fire-once-globally fault.  With a
    ``state_dir`` the first process to create the marker file wins;
    without one the claim is per-process."""
    if plan.state_dir is None:
        key = (site, index)
        if key in _ONCE_LOCAL:
            return False
        _ONCE_LOCAL.add(key)
        return True
    os.makedirs(plan.state_dir, exist_ok=True)
    marker = os.path.join(plan.state_dir, f"fired-{index}-{site}")
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _trigger(spec: FaultSpec, site: str, token: str) -> None:
    """Carry out one matched fault."""
    if spec.kind == "lock":
        raise sqlite3.OperationalError(
            f"database is locked (injected at {site}: {token})")
    if spec.kind == "exit":
        if _IS_WORKER:
            os.kill(os.getpid(), signal.SIGKILL)
        return  # never kill the parent / the inline path
    raise InjectedFault(f"injected fault at {site}: {token}")


def fire(site: str, token: str = "") -> None:
    """Instrumentation hook: called by each fault site with a
    descriptive ``token``.  No-op without an active plan; otherwise
    counts the invocation per matching ``(site, match)`` key and
    triggers any spec whose ``nth`` (and ``once`` claim) is met."""
    plan = _ACTIVE if _ACTIVE is not None else _plan_from_env()
    if plan is None:
        return
    bumped: set[tuple[str, str]] = set()
    for index, spec in enumerate(plan.specs):
        if spec.site != site or spec.match not in token:
            continue
        key = (site, spec.match)
        if key not in bumped:
            _COUNTS[key] = _COUNTS.get(key, 0) + 1
            bumped.add(key)
        if spec.nth is not None and _COUNTS[key] not in spec.nth:
            continue
        if spec.once and not _claim_once(plan, index, site):
            continue
        _trigger(spec, site, token)
