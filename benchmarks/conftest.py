"""Shared infrastructure for the experiment benchmarks (E1–E12).

Every benchmark both *times* a representative kernel (pytest-benchmark)
and *regenerates the paper-shaped artifact* — a table or series — which
is printed and persisted under ``benchmarks/results/`` so EXPERIMENTS.md
can quote it.  Shape assertions (who wins, where curves converge) are
part of the benchmarks: a silent regression in a reproduced result fails
the bench run.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.analysis import format_table  # noqa: E402
from repro.runner.scenarios import trace_suite  # noqa: E402,F401
from repro.workloads import random_convex_instance  # noqa: E402,F401

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def record(name: str, rows, columns=None, title: str | None = None) -> str:
    """Render, print and persist an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_table(rows, columns, title=title or name)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


@pytest.fixture
def rng():
    return np.random.default_rng(2018)
