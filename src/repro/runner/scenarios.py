"""Named scenario catalog.

One place for every workload the experiments run on: the five synthetic
trace families of the evaluation (formerly duplicated as
``benchmarks/conftest.py:trace_suite``), deterministic stress patterns,
random convex instances, the adversarial hinge trace of the Theorem-4
game, a restricted-model (eq. (2)) encoding and a heterogeneous-cost mix.

Each :class:`Scenario` builds an :class:`~repro.core.instance.Instance`
from ``(T, seed)`` with deterministic per-scenario seeding, so a grid job
is fully reproducible from its ``(scenario, T, seed)`` coordinates alone
— the property the batch engine's process pool and result cache rely on.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Callable

import numpy as np

__all__ = [
    "Scenario",
    "scenario_names",
    "get_scenario",
    "build_instance",
    "trace_suite",
    "adversarial_hinge_instance",
    "TRACE_FAMILIES",
]

#: defaults matching the historical trace_suite construction
_PEAK = 24.0
_BETA = 4.0
_DELAY_WEIGHT = 10.0

#: the five families of the online-algorithm experiments (E4/E5/E10...)
TRACE_FAMILIES = ("diurnal", "msr-like", "hotmail-like", "bursty", "onoff")


def _scenario_rng(name: str, seed: int) -> np.random.Generator:
    """Independent, process-stable generator per (scenario, seed)."""
    return np.random.default_rng([seed, zlib.crc32(name.encode())])


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named instance builder: ``build(T, rng) -> Instance``.

    ``build`` is the general-model builder; scenarios may additionally
    (or instead) carry builders for the engine's other pipelines —
    ``build_restricted`` returning a
    :class:`~repro.core.instance.RestrictedInstance` and ``build_hetero``
    returning a :class:`~repro.extensions.HeterogeneousInstance`.  All
    builders of one scenario share the ``(scenario, seed)`` generator, so
    e.g. the restricted view and its general-model encoding are built
    from identical loads and their optima agree.
    """

    name: str
    build: Callable | None
    tags: tuple[str, ...]
    summary: str = ""
    build_restricted: Callable | None = None
    build_hetero: Callable | None = None

    @property
    def pipelines(self) -> tuple[str, ...]:
        """Engine pipelines this scenario can build instances for."""
        out = []
        if self.build is not None:
            out.append("general")
        if self.build_restricted is not None:
            out.append("restricted")
        if self.build_hetero is not None:
            out.append("hetero")
        return tuple(out)

    def instance(self, T: int, seed: int = 0, pipeline: str = "general"):
        """Build the scenario's instance for a horizon and seed."""
        builder = {"general": self.build,
                   "restricted": self.build_restricted,
                   "hetero": self.build_hetero}.get(pipeline)
        if builder is None:
            raise ValueError(
                f"scenario {self.name!r} has no {pipeline!r} builder; it "
                f"supports {self.pipelines}")
        return builder(T, _scenario_rng(self.name, seed))


def _from_loads(loads, *, beta: float = _BETA,
                delay_weight: float = _DELAY_WEIGHT):
    from ..workloads import capacity_for, instance_from_loads
    return instance_from_loads(loads, m=capacity_for(loads), beta=beta,
                               delay_weight=delay_weight)


def _build_diurnal(T, rng):
    from ..workloads import diurnal_loads
    return _from_loads(diurnal_loads(T, peak=_PEAK, rng=rng))


def _build_msr(T, rng):
    from ..workloads import msr_like_loads
    return _from_loads(msr_like_loads(T, peak=_PEAK, rng=rng))


def _build_hotmail(T, rng):
    from ..workloads import hotmail_like_loads
    return _from_loads(hotmail_like_loads(T, peak=_PEAK, rng=rng))


def _build_bursty(T, rng):
    from ..workloads import bursty_loads
    return _from_loads(bursty_loads(T, peak=_PEAK, rng=rng))


def _build_onoff(T, rng):
    from ..workloads import onoff_loads
    return _from_loads(onoff_loads(T, peak=_PEAK, rng=rng))


def _build_sawtooth(T, rng):
    from ..workloads import sawtooth_loads
    return _from_loads(sawtooth_loads(T, peak=_PEAK))


def _build_regime(T, rng):
    from ..workloads import regime_switching_loads
    return _from_loads(regime_switching_loads(T, peak=_PEAK, rng=rng))


def _build_random_convex(T, rng):
    from ..workloads import random_convex_instance
    beta = float(rng.uniform(0.5, 6.0))
    return random_convex_instance(rng, T, m=20, beta=beta)


def adversarial_hinge_instance(T: int, eps: float = 0.05):
    """The trace the Theorem-4 adversary produces against LCP, replayed
    non-adaptively: blocks of ~2/eps identical hinges, flipping right
    after LCP's laziness threshold (k*eps >= beta) so LCP pays waiting
    cost ~beta, then switching beta, every block."""
    from ..core.instance import Instance
    block = int(np.ceil(2.0 / eps)) + 1
    up_phase = (np.arange(T) // block) % 2 == 0
    rows = np.where(up_phase[:, None], [eps, 0.0], [0.0, eps])
    return Instance(beta=2.0, F=rows)


def _build_adversarial_hinge(T, rng):
    return adversarial_hinge_instance(T)


def _build_restricted_diurnal_ri(T, rng):
    """Restricted model (eq. (2)) on a diurnal trace, as the structural
    :class:`RestrictedInstance` the masked DP consumes."""
    from ..workloads import (capacity_for, diurnal_loads,
                             restricted_from_loads)
    loads = diurnal_loads(T, peak=_PEAK, rng=rng)
    return restricted_from_loads(loads, m=capacity_for(loads), beta=_BETA)


def _build_restricted_diurnal(T, rng):
    """Restricted model (eq. (2)) on a diurnal trace, encoded as a
    general instance via the perspective cost."""
    return _build_restricted_diurnal_ri(T, rng).to_general()


def _build_hetero_mix(T, rng):
    """Heterogeneous cost structure: per-step costs drawn from three
    convex families (queueing delay, quadratic bowl, SLA hinge) along one
    diurnal load trajectory — stresses algorithms whose analysis leans on
    the cost family staying fixed."""
    from ..core.costs import (AffineEnergyCost, QuadraticCost,
                              QueueingDelayCost, SLAHingeCost, SumCost)
    from ..core.instance import Instance
    from ..workloads import capacity_for, diurnal_loads
    loads = diurnal_loads(T, peak=_PEAK, rng=rng)
    m = capacity_for(loads)
    fs = []
    for t, lam in enumerate(loads):
        lam = float(lam)
        kind = t % 3
        if kind == 0:
            body = QueueingDelayCost(lam, weight=_DELAY_WEIGHT)
        elif kind == 1:
            body = QuadraticCost(0.5, lam)
        else:
            body = SLAHingeCost(lam, 8.0)
        fs.append(SumCost(AffineEnergyCost(1.0), body))
    return Instance.from_functions(fs, m, _BETA)


def _build_hetero_fleet(T, rng):
    """Two-type fleet (fast/hungry vs slow/frugal) on a diurnal trace —
    the instance family of the E14 extension benchmark."""
    from ..extensions import hetero_instance_from_loads
    from ..workloads import diurnal_loads
    loads = diurnal_loads(T, peak=8.0, base_frac=0.2, noise=0.05, rng=rng)
    return hetero_instance_from_loads(loads, m1=10, m2=12, beta1=4.0,
                                      beta2=1.0)


_CATALOG: dict[str, Scenario] = {}

for _sc in (
    Scenario("diurnal", _build_diurnal, ("trace",),
             "sinusoidal day/night swing with noise"),
    Scenario("msr-like", _build_msr, ("trace",),
             "MSR-trace shape: PMR ~2 diurnal with lulls"),
    Scenario("hotmail-like", _build_hotmail, ("trace",),
             "Hotmail-trace shape: PMR ~4-5, weekly dip, bursts"),
    Scenario("bursty", _build_bursty, ("trace",),
             "low base load with flash-crowd bursts"),
    Scenario("onoff", _build_onoff, ("trace",),
             "two-state Markov-modulated demand"),
    Scenario("sawtooth", _build_sawtooth, ("deterministic",),
             "sawtooth oscillation punishing eager switching"),
    Scenario("regime-switching", _build_regime, ("trace",),
             "stepwise regime changes stressing laziness thresholds"),
    Scenario("random-convex", _build_random_convex, ("random",),
             "random convex rows, random beta (property-test family)"),
    Scenario("adversarial-hinge", _build_adversarial_hinge,
             ("adversarial", "deterministic"),
             "Theorem-4 hinge blocks pushing LCP toward ratio 3"),
    Scenario("restricted-diurnal", _build_restricted_diurnal,
             ("restricted", "trace"),
             "eq. (2) restricted model via the perspective encoding",
             build_restricted=_build_restricted_diurnal_ri),
    Scenario("hetero-mix", _build_hetero_mix, ("heterogeneous", "trace"),
             "per-step costs alternate between three convex families"),
    Scenario("hetero-fleet", None, ("heterogeneous",),
             "two-type fleet: fast/hungry vs slow/frugal servers",
             build_hetero=_build_hetero_fleet),
):
    _CATALOG[_sc.name] = _sc


def scenario_names(tag: str | None = None) -> tuple[str, ...]:
    """All scenario names, optionally filtered by tag."""
    return tuple(n for n, s in _CATALOG.items()
                 if tag is None or tag in s.tags)


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario; raises ``KeyError`` with choices."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choose from "
                       f"{sorted(_CATALOG)}") from None


def build_instance(name: str, T: int, seed: int = 0,
                   pipeline: str = "general"):
    """Build the instance of scenario ``name`` for ``(T, seed)`` under
    one of the engine pipelines (``general``/``restricted``/``hetero``)."""
    return get_scenario(name).instance(T, seed, pipeline)


def trace_suite(T: int = 168, seed: int = 0) -> list:
    """The (name, instance) suite of the five evaluation trace families.

    Replaces the duplicated ``benchmarks/conftest.py:trace_suite``; kept
    as a function so existing benchmarks keep working unchanged.
    """
    return [(name, build_instance(name, T, seed))
            for name in TRACE_FAMILIES]
