"""Tests for the batch runner: registry, scenarios, engine, cache, CLI."""

import json
import pathlib

import numpy as np
import pytest

import repro.offline
import repro.online
from repro.online.base import OnlineAlgorithm
from repro.runner import (GridSpec, JobCache, aggregate_rows,
                          algorithm_names, algorithm_table, build_instance,
                          get_scenario, get_spec, instance_key, job_key,
                          make_algorithm, make_solver, run_grid,
                          scenario_names, solver_names, trace_suite)
from repro.runner import engine as engine_mod
from tests.conftest import random_convex_instance


class TestRegistry:
    def test_every_online_name_resolves(self):
        for name in algorithm_names():
            algo = make_algorithm(name, lookahead=2, seed=7)
            assert isinstance(algo, OnlineAlgorithm), name

    def test_every_general_solver_name_resolves_and_solves(self, rng):
        inst = random_convex_instance(rng, 5, 3, 1.5)
        for name in solver_names("general"):
            res = make_solver(name)(inst)
            assert res.cost >= 0, name
            assert res.schedule.shape == (inst.T,), name

    def test_exact_solvers_agree_with_dp(self, rng):
        from repro.offline import solve_dp
        inst = random_convex_instance(rng, 6, 4, 2.0)
        opt = solve_dp(inst).cost
        for name in solver_names("general"):
            spec = get_spec(name)
            if spec.optimal and spec.discrete:
                assert make_solver(name)(inst).cost == pytest.approx(opt), \
                    name

    def test_registry_covers_every_exported_online_algorithm(self):
        covered = {type(make_algorithm(name)) for name in algorithm_names()}
        for export in repro.online.__all__:
            obj = getattr(repro.online, export)
            if (isinstance(obj, type) and issubclass(obj, OnlineAlgorithm)
                    and obj is not OnlineAlgorithm):
                assert obj in covered, f"{export} missing from registry"

    def test_registry_covers_every_exported_solver(self):
        # includes solve_restricted, which runs under the restricted
        # pipeline on RestrictedInstance inputs
        resolved = {make_solver(name) for name in solver_names()}
        for export in repro.offline.__all__:
            if export.startswith("solve_"):
                assert getattr(repro.offline, export) in resolved, \
                    f"{export} missing from registry"

    def test_pipeline_entries(self):
        assert get_spec("restricted").pipeline == "restricted"
        for name in ("dp_hetero", "static_hetero", "greedy_hetero"):
            assert get_spec(name).pipeline == "hetero", name
        assert get_spec("lcp").pipeline == "general"
        assert "restricted" in solver_names("restricted")
        assert "dp_hetero" not in solver_names("general")

    def test_kind_mixups_rejected(self):
        with pytest.raises(ValueError, match="offline solver"):
            make_algorithm("dp")
        with pytest.raises(ValueError, match="online algorithm"):
            make_solver("lcp")
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_spec("nope")

    def test_table_lists_every_name(self):
        table = algorithm_table()
        for name in algorithm_names() + solver_names():
            assert f"`{name}`" in table


class TestScenarios:
    def test_every_scenario_builds_reproducibly(self):
        for name in scenario_names():
            sc = get_scenario(name)
            assert sc.pipelines, name
            for pipeline in sc.pipelines:
                a = build_instance(name, 12, seed=3, pipeline=pipeline)
                b = build_instance(name, 12, seed=3, pipeline=pipeline)
                assert a.T == 12
                payload = {"restricted": "loads",
                           "game": None}.get(pipeline, "F")
                if payload is None:  # games: compare the dense payloads
                    pa, pb = a.store_payload(), b.store_payload()
                    if pa is None:  # adaptive game: dataclass equality
                        assert a == b
                    else:
                        for key in pa[0]:
                            np.testing.assert_array_equal(pa[0][key],
                                                          pb[0][key])
                else:
                    np.testing.assert_array_equal(getattr(a, payload),
                                                  getattr(b, payload))

    def test_seeds_vary_random_scenarios(self):
        a = build_instance("random-convex", 12, seed=0)
        b = build_instance("random-convex", 12, seed=1)
        assert not np.array_equal(a.F, b.F)

    def test_tag_filter(self):
        assert "adversarial-hinge" in scenario_names("adversarial")
        assert "diurnal" not in scenario_names("adversarial")

    def test_unsupported_pipeline_rejected(self):
        with pytest.raises(ValueError, match="no 'hetero' builder"):
            build_instance("diurnal", 12, pipeline="hetero")
        with pytest.raises(ValueError, match="no 'general' builder"):
            build_instance("hetero-fleet", 12)

    def test_restricted_encoding_agrees_with_structural_view(self):
        """The general-pipeline encoding of restricted-diurnal and its
        structural RestrictedInstance share loads and optimum."""
        from repro.analysis import optimal_cost
        from repro.offline import solve_restricted
        ri = build_instance("restricted-diurnal", 16, seed=1,
                            pipeline="restricted")
        enc = build_instance("restricted-diurnal", 16, seed=1)
        assert optimal_cost(enc) == pytest.approx(solve_restricted(ri).cost)

    def test_trace_suite_families(self):
        suite = trace_suite(T=24)
        assert [name for name, _ in suite] == [
            "diurnal", "msr-like", "hotmail-like", "bursty", "onoff"]
        assert all(inst.T == 24 for _, inst in suite)

    def test_benchmarks_conftest_reuses_catalog(self):
        # the benchmark suite must not re-grow its own copy
        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "benchmarks" / "conftest.py").read_text()
        assert "from repro.runner.scenarios import trace_suite" in text
        assert "from repro.workloads import random_convex_instance" in text


SMALL = GridSpec(scenarios=("diurnal", "random-convex"),
                 algorithms=("lcp", "randomized"),
                 seeds=(0, 1), sizes=(24,))


def _cache_stats(stats: dict) -> dict:
    """Just the result-cache counters (instance-resolution counters are
    process-wide and depend on what earlier tests left in the memo)."""
    return {k: stats[k] for k in ("job_hits", "job_misses", "opt_hits",
                                  "opt_solved")}


def _count_calls(monkeypatch, name):
    """Wrap a module-level engine function, recording its arguments."""
    calls = []
    real = getattr(engine_mod, name)
    monkeypatch.setattr(engine_mod, name,
                        lambda arg: calls.append(arg) or real(arg))
    return calls


class TestEngine:
    def test_rows_match_jobs(self):
        rows = run_grid(SMALL)
        assert len(rows) == len(SMALL) == 8
        assert all(1.0 - 1e-9 <= r["ratio"] for r in rows)
        assert all(r["pipeline"] == "general" for r in rows)

    def test_parallel_identical_to_serial(self):
        rows1 = run_grid(SMALL, n_jobs=1)
        rows4 = run_grid(SMALL, n_jobs=4)
        assert rows1 == rows4  # bit-identical, including float fields

    def test_offline_solver_jobs_have_ratio_one(self):
        rows = run_grid(GridSpec(scenarios=("diurnal",),
                                 algorithms=("binary_search", "dp"),
                                 seeds=(0,), sizes=(16,)))
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows)

    def test_instance_seed_pins_the_instance(self):
        rows = run_grid(GridSpec(scenarios=("diurnal",),
                                 algorithms=("randomized",),
                                 seeds=(0, 1, 2), sizes=(24,),
                                 instance_seed=4))
        assert len({r["opt"] for r in rows}) == 1   # same instance
        assert len({r["cost"] for r in rows}) == 3  # different rounding

    def test_opt_solved_once_per_instance(self, monkeypatch):
        """Phase 1 computes each distinct instance's optimum exactly
        once, however many algorithms the grid fans out."""
        solves = _count_calls(monkeypatch, "_solve_instance")
        spec = GridSpec(scenarios=("diurnal", "sawtooth"),
                        algorithms=("lcp", "threshold", "memoryless"),
                        seeds=(0, 1), sizes=(16,))
        rows = run_grid(spec)
        assert len(rows) == 12          # 2 scenarios x 3 algorithms x 2
        assert len(solves) == 4         # 2 scenarios x 2 seeds: once each
        assert len(set(solves)) == 4

    def test_hoisted_opt_matches_per_job_recompute(self):
        """The phase-1 hoisted optimum equals what each job would have
        computed for itself (the pre-two-phase behavior)."""
        from repro.analysis import optimal_cost
        rows = run_grid(GridSpec(scenarios=("diurnal", "bursty"),
                                 algorithms=("lcp", "followmin"),
                                 seeds=(0, 1), sizes=(20,)))
        for row in rows:
            inst = build_instance(row["scenario"], row["T"], row["seed"])
            assert row["opt"] == optimal_cost(inst), row

    def test_mismatched_pipeline_fails_fast(self):
        with pytest.raises(ValueError, match="needs the 'restricted'"):
            run_grid(GridSpec(scenarios=("diurnal",),
                              algorithms=("restricted",)))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            GridSpec(scenarios=(), algorithms=("lcp",))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                     seeds=(-1,))
        with pytest.raises(ValueError, match="positive horizon"):
            GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                     sizes=(0,))

    def test_aggregate_keeps_sizes_apart(self):
        rows = run_grid(GridSpec(scenarios=("sawtooth",),
                                 algorithms=("lcp",), seeds=(0,),
                                 sizes=(16, 32)))
        agg = aggregate_rows(rows)
        assert [a["T"] for a in agg] == [16, 32]  # never averaged across T

    def test_aggregate_rows(self):
        rows = run_grid(SMALL)
        agg = aggregate_rows(rows)
        assert len(agg) == 4  # 2 scenarios x 2 algorithms
        first = agg[0]
        assert first["n"] == 2
        assert first["max_ratio"] >= first["mean_ratio"] >= 1.0 - 1e-9


class TestPipelines:
    def test_restricted_rows_flow_through_aggregates(self):
        spec = GridSpec(scenarios=("restricted-diurnal",),
                        algorithms=("restricted", "lcp"),
                        seeds=(0, 1), sizes=(16,))
        rows = run_grid(spec)
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["restricted"]["pipeline"] == "restricted"
        assert by_alg["lcp"]["pipeline"] == "general"
        # the structural DP *is* the restricted optimum
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows
                   if r["algorithm"] == "restricted")
        # both pipelines see the same loads, so their optima agree and
        # lcp's ratio is comparable across the mixed table
        assert all(r["ratio"] >= 1.0 - 1e-9 for r in rows)
        agg = aggregate_rows(rows)
        assert {a["algorithm"] for a in agg} == {"restricted", "lcp"}
        assert all(a["n"] == 2 for a in agg)

    def test_hetero_rows_flow_through_aggregates(self):
        spec = GridSpec(scenarios=("hetero-fleet",),
                        algorithms=("dp_hetero", "static_hetero",
                                    "greedy_hetero"),
                        seeds=(0,), sizes=(24,))
        rows = run_grid(spec)
        assert all(r["pipeline"] == "hetero" for r in rows)
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["dp_hetero"]["ratio"] == pytest.approx(1.0)
        assert by_alg["static_hetero"]["ratio"] >= 1.0 - 1e-9
        assert by_alg["greedy_hetero"]["ratio"] >= 1.0 - 1e-9
        agg = aggregate_rows(rows)
        assert {a["algorithm"] for a in agg} == set(spec.algorithms)

    def test_hetero_parallel_identical_to_serial(self):
        spec = GridSpec(scenarios=("hetero-fleet",),
                        algorithms=("dp_hetero", "greedy_hetero"),
                        seeds=(0, 1), sizes=(16,))
        assert run_grid(spec, n_jobs=1) == run_grid(spec, n_jobs=4)

    def test_pipeline_opt_solver_not_resolved_twice(self, monkeypatch):
        """The solver that defines a pipeline's optimum runs once, in
        phase 1 — its phase-2 job reuses the hoisted value."""
        import repro.extensions
        calls = []
        real = repro.extensions.solve_dp_hetero
        monkeypatch.setattr(repro.extensions, "solve_dp_hetero",
                            lambda inst: calls.append(1) or real(inst))
        rows = run_grid(GridSpec(scenarios=("hetero-fleet",),
                                 algorithms=("dp_hetero",
                                             "greedy_hetero"),
                                 seeds=(0,), sizes=(12,)))
        assert len(calls) == 1  # phase 1 only, not again for the job
        assert rows[0]["algorithm"] == "dp_hetero"
        assert rows[0]["cost"] == rows[0]["opt"] and rows[0]["ratio"] == 1.0
        assert rows[1]["ratio"] >= 1.0 - 1e-9


class TestJobCache:
    def test_cache_hit_skips_all_recomputation(self, tmp_path,
                                               monkeypatch):
        rows = run_grid(SMALL, cache_dir=tmp_path)
        runs = _count_calls(monkeypatch, "_run_job")
        solves = _count_calls(monkeypatch, "_solve_instance")
        cached = run_grid(SMALL, cache_dir=tmp_path)
        assert cached == rows and not runs and not solves
        forced = run_grid(SMALL, cache_dir=tmp_path, force=True)
        assert forced == rows and len(runs) == len(SMALL)

    def test_stats_counters(self, tmp_path):
        first, second = {}, {}
        run_grid(SMALL, cache_dir=tmp_path, stats=first)
        run_grid(SMALL, cache_dir=tmp_path, stats=second)
        assert _cache_stats(first) == {"job_hits": 0, "job_misses": 8,
                                       "opt_hits": 0, "opt_solved": 4}
        assert _cache_stats(second) == {"job_hits": 8, "job_misses": 0,
                                        "opt_hits": 0, "opt_solved": 0}
        # instance-resolution counters ride along
        assert {"inst_builds", "inst_loads", "inst_memo_hits"} <= set(first)

    def test_extending_grid_pays_only_new_jobs(self, tmp_path,
                                               monkeypatch):
        run_grid(SMALL, cache_dir=tmp_path)
        extended = GridSpec(scenarios=SMALL.scenarios,
                            algorithms=SMALL.algorithms,
                            seeds=(0, 1, 2), sizes=SMALL.sizes)
        runs = _count_calls(monkeypatch, "_run_job")
        solves = _count_calls(monkeypatch, "_solve_instance")
        stats = {}
        rows = run_grid(extended, cache_dir=tmp_path, stats=stats)
        assert len(rows) == 12
        # only the new seed's jobs executed: 2 scenarios x 2 algorithms
        assert len(runs) == 4
        assert all(job[4] == 2 for job, _rec, _store in runs)
        assert len(solves) == 2
        assert all(coords[3] == 2 for coords, _store in solves)
        assert _cache_stats(stats) == {"job_hits": 8, "job_misses": 4,
                                       "opt_hits": 0, "opt_solved": 2}

    def test_overlapping_grids_share_instance_optima(self, tmp_path):
        run_grid(GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                          seeds=(0,), sizes=(16,)), cache_dir=tmp_path)
        stats = {}
        run_grid(GridSpec(scenarios=("diurnal",),
                          algorithms=("threshold",),
                          seeds=(0,), sizes=(16,)),
                 cache_dir=tmp_path, stats=stats)
        # different job, same instance: the optimum is reused, not resolved
        assert _cache_stats(stats) == {"job_hits": 0, "job_misses": 1,
                                       "opt_hits": 1, "opt_solved": 0}

    def test_corrupt_job_record_recomputes_and_heals(self, tmp_path):
        good = run_grid(SMALL, cache_dir=tmp_path)
        cache = JobCache(tmp_path)
        key = job_key(SMALL.jobs()[0])
        path = cache.path("jobs", key)
        path.write_text(path.read_text()[:25])  # truncate mid-record
        assert cache.get("jobs", key) is None
        stats = {}
        rows = run_grid(SMALL, cache_dir=tmp_path, stats=stats)
        assert rows == good
        assert stats["job_misses"] == 1 and stats["job_hits"] == 7
        assert cache.get("jobs", key) == good[0]  # rewritten

    def test_foreign_content_treated_as_miss(self, tmp_path):
        cache = JobCache(tmp_path)
        key = job_key(SMALL.jobs()[0])
        path = cache.path("jobs", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # valid JSON, wrong embedded key: content does not match address
        path.write_text(json.dumps({"key": "somebody-else",
                                    "record": {"cost": -1.0}}))
        assert cache.get("jobs", key) is None
        rows = run_grid(SMALL, cache_dir=tmp_path)
        assert all(r["cost"] >= 0 for r in rows)

    def test_corrupt_instance_record_recomputes(self, tmp_path):
        run_grid(SMALL, cache_dir=tmp_path)
        cache = JobCache(tmp_path)
        coords = engine_mod._instance_coords(SMALL.jobs()[0])
        path = cache.path("instances", instance_key(coords))
        assert path.exists()
        path.write_text("{not json")
        stats = {}
        # force job misses so phase 1 runs again; the damaged instance
        # record is re-solved, the healthy one is reused
        rows = run_grid(SMALL, cache_dir=tmp_path, force=True, stats=stats)
        assert len(rows) == len(SMALL)
        assert stats["opt_solved"] == 4  # force bypasses reads entirely

    def test_job_keys_are_coordinate_stable(self):
        jobs = SMALL.jobs()
        assert job_key(jobs[0]) == job_key(jobs[0])
        assert len({job_key(j) for j in jobs}) == len(jobs)

    def test_cache_is_spec_shape_independent(self, tmp_path):
        """The same job reached through two different grid shapes hits."""
        run_grid(GridSpec(scenarios=("diurnal", "bursty"),
                          algorithms=("lcp",), seeds=(0,), sizes=(16,)),
                 cache_dir=tmp_path)
        stats = {}
        run_grid(GridSpec(scenarios=("diurnal",),
                          algorithms=("lcp", "threshold"),
                          seeds=(0,), sizes=(16,)),
                 cache_dir=tmp_path, stats=stats)
        assert stats["job_hits"] == 1 and stats["job_misses"] == 1


def _measure(T: int, m: int) -> dict:
    return {"area": T * m}


def _measure_np(T: int) -> dict:
    return {"v": np.float64(T) / 3.0, "pair": (T, 2 * T)}


class TestAnalysisSweep:
    def test_sweep_serial_and_parallel_agree(self):
        from repro.analysis import sweep
        grid = {"T": [2, 3], "m": [4, 5, 6]}
        serial = sweep(_measure, grid)
        parallel = sweep(_measure, grid, n_jobs=2)
        assert serial == parallel
        assert serial[0] == {"T": 2, "m": 4, "area": 8}
        assert len(serial) == 6

    def test_sweep_per_point_cache(self, tmp_path):
        from repro.analysis import sweep
        grid = {"T": [2, 3], "m": [4, 5]}
        stats1, stats2, stats3 = {}, {}, {}
        rows = sweep(_measure, grid, cache_dir=tmp_path, stats=stats1)
        again = sweep(_measure, grid, cache_dir=tmp_path, stats=stats2)
        assert rows == again
        assert stats1 == {"hits": 0, "misses": 4}
        assert stats2 == {"hits": 4, "misses": 0}
        # extending an axis pays only the new points
        sweep(_measure, {"T": [2, 3], "m": [4, 5, 6]},
              cache_dir=tmp_path, stats=stats3)
        assert stats3 == {"hits": 4, "misses": 2}

    def test_sweep_cache_rejects_ambiguous_functions(self, tmp_path):
        # lambdas/closures share qualnames (and partials have none), so
        # caching them would let different functions share records
        import functools
        from repro.analysis import sweep
        with pytest.raises(ValueError, match="module-level"):
            sweep(lambda T: {"a": T}, {"T": [1]}, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="module-level"):
            sweep(functools.partial(_measure, m=4), {"T": [1]},
                  cache_dir=tmp_path)
        assert sweep(lambda T: {"a": T}, {"T": [1]}) == [{"T": 1, "a": 1}]

    def test_sweep_cache_hit_and_miss_rows_identical(self, tmp_path):
        # miss rows are canonicalized through the JSON form, so a rerun
        # served from cache returns bit-identical rows
        from repro.analysis import sweep
        first = sweep(_measure_np, {"T": [2, 3]}, cache_dir=tmp_path)
        again = sweep(_measure_np, {"T": [2, 3]}, cache_dir=tmp_path)
        assert first == again
        assert isinstance(first[0]["v"], float)
        assert first[0]["pair"] == [2, 4]


class TestCLI:
    def test_sweep_runs_grid(self, capsys):
        from repro.cli import main
        rc = main(["sweep", "--scenarios", "diurnal,bursty,sawtooth",
                   "--algorithms", "lcp,threshold,randomized,memoryless",
                   "--seeds", "0,1,2", "-T", "16", "--per-row"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate ratios" in out and "sawtooth" in out
        assert "36 jobs" in out

    def test_sweep_list(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "adversarial-hinge" in out and "`binary_search`" in out
        assert "hetero-fleet" in out and "`restricted`" in out

    def test_sweep_rejects_unknown_names(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["sweep", "--scenarios", "nope"])
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["sweep", "--algorithms", "oracle"])

    def test_sweep_cache_stats_line(self, tmp_path, capsys):
        from repro.cli import main
        args = ["sweep", "--scenarios", "diurnal",
                "--algorithms", "lcp,threshold", "--seeds", "0",
                "-T", "16", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "cache: 0 hits, 2 misses, 1 optima solved" \
            in capsys.readouterr().out
        assert main(args) == 0
        assert "cache: 2 hits, 0 misses, 0 optima solved" \
            in capsys.readouterr().out

    def test_bench_smoke_grid(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["bench", "--grid", "smoke",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs/s" in out and "cache:" in out
        assert list(tmp_path.glob("jobs/*/*.json"))
        assert list(tmp_path.glob("instances/*/*.json"))

    def test_bench_pipeline_grids(self, capsys):
        from repro.cli import main
        for grid, marker in (("restricted", "restricted"),
                             ("hetero", "dp_hetero")):
            assert main(["bench", "--grid", grid]) == 0
            assert marker in capsys.readouterr().out


class TestReadmeTable:
    def test_readme_algorithm_table_is_current(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "README.md").read_text()
        begin = text.index("BEGIN ALGORITHM TABLE")
        end = text.index("<!-- END ALGORITHM TABLE -->")
        block = text[text.index("\n", begin) + 1:end].strip()
        assert block == algorithm_table(), \
            "README table stale — regenerate with " \
            "`python -m repro.runner.registry`"
