"""Tests for the synthetic workload generators and trace builders."""

import numpy as np
import pytest

from repro.core.costs import is_convex_table
from repro.workloads import (bursty_loads, capacity_for, constant_loads,
                             default_server_cost, diurnal_loads,
                             hotmail_like_loads, instance_from_loads,
                             msr_like_loads, onoff_loads, peak_to_mean_ratio,
                             random_walk_loads, restricted_from_loads,
                             sawtooth_loads)


class TestGenerators:
    @pytest.mark.parametrize("gen,kwargs", [
        (diurnal_loads, dict(peak=10.0)),
        (bursty_loads, dict(peak=10.0)),
        (random_walk_loads, dict(peak=10.0)),
        (onoff_loads, dict(peak=10.0)),
        (msr_like_loads, dict(peak=10.0)),
        (hotmail_like_loads, dict(peak=10.0)),
    ])
    def test_shape_and_nonnegativity(self, gen, kwargs):
        loads = gen(200, rng=np.random.default_rng(0), **kwargs)
        assert loads.shape == (200,)
        assert np.all(loads >= 0)

    @pytest.mark.parametrize("gen,kwargs", [
        (diurnal_loads, dict(peak=10.0)),
        (bursty_loads, dict(peak=10.0)),
        (random_walk_loads, dict(peak=10.0)),
        (onoff_loads, dict(peak=10.0)),
        (msr_like_loads, dict(peak=10.0)),
        (hotmail_like_loads, dict(peak=10.0)),
    ])
    def test_seed_determinism(self, gen, kwargs):
        a = gen(100, rng=np.random.default_rng(7), **kwargs)
        b = gen(100, rng=np.random.default_rng(7), **kwargs)
        np.testing.assert_array_equal(a, b)

    def test_diurnal_period_structure(self):
        loads = diurnal_loads(48, peak=10.0, period=24, noise=0.0)
        # Trough at t=0, peak mid-period.
        assert loads[12] > loads[0]
        assert loads[0] == pytest.approx(loads[24])

    def test_diurnal_base_frac(self):
        loads = diurnal_loads(48, peak=10.0, base_frac=0.5, noise=0.0)
        assert loads.min() == pytest.approx(5.0, abs=1e-6)
        assert loads.max() == pytest.approx(10.0, abs=1e-6)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_loads(10, peak=-1.0)
        with pytest.raises(ValueError):
            diurnal_loads(10, peak=1.0, base_frac=1.5)

    def test_sawtooth_shape(self):
        loads = sawtooth_loads(10, peak=9.0, period=10)
        np.testing.assert_allclose(loads, np.arange(10.0))

    def test_constant(self):
        np.testing.assert_allclose(constant_loads(5, 3.0), 3.0)
        with pytest.raises(ValueError):
            constant_loads(5, -1.0)

    def test_random_walk_reflects_at_bounds(self):
        loads = random_walk_loads(500, peak=5.0, step_frac=0.3,
                                  rng=np.random.default_rng(3))
        assert np.all(loads >= 0) and np.all(loads <= 5.0)

    def test_onoff_two_levels(self):
        loads = onoff_loads(300, peak=8.0, base_frac=0.25,
                            rng=np.random.default_rng(4))
        assert set(np.round(loads, 6)) <= {2.0, 8.0}

    def test_pmr_targets(self):
        """MSR-like traces are smoother than Hotmail-like ones."""
        rng = np.random.default_rng(5)
        msr = peak_to_mean_ratio(msr_like_loads(24 * 14, rng=rng))
        hot = peak_to_mean_ratio(hotmail_like_loads(24 * 14,
                                                    rng=np.random.default_rng(5)))
        assert 1.2 < msr < 3.5
        assert hot > msr

    def test_pmr_validation(self):
        with pytest.raises(ValueError):
            peak_to_mean_ratio(np.zeros(5))


class TestBuilders:
    def test_capacity_for(self):
        assert capacity_for(np.array([4.0, 7.9]), slack=1.25) == 10
        assert capacity_for(np.array([0.0])) == 1

    def test_instance_rows_convex(self):
        loads = diurnal_loads(30, peak=6.0, rng=np.random.default_rng(1))
        inst = instance_from_loads(loads, m=8, beta=3.0, sla_penalty=2.0)
        assert inst.T == 30 and inst.m == 8
        for t in range(30):
            assert is_convex_table(inst.F[t])

    def test_instance_rejects_undersized_m(self):
        with pytest.raises(ValueError):
            instance_from_loads(np.array([5.0]), m=4, beta=1.0)

    def test_energy_delay_tension(self):
        """Cost decreases then increases around the sweet spot."""
        inst = instance_from_loads(np.array([4.0]), m=12, beta=1.0,
                                   energy=1.0, delay_weight=8.0)
        row = inst.F[0]
        j = int(np.argmin(row))
        assert 4 <= j <= 12
        assert row[0] > row[j] or row[0] == pytest.approx(row[j])

    def test_restricted_builder(self):
        loads = diurnal_loads(20, peak=5.0, rng=np.random.default_rng(2))
        ri = restricted_from_loads(loads, m=6, beta=2.0)
        assert ri.T == 20
        inst = ri.to_general()
        res_schedule = np.full(20, 6)
        assert ri.is_feasible(res_schedule)
        for t in range(20):
            assert is_convex_table(inst.F[t])

    def test_default_server_cost_convex_increasing(self):
        f = default_server_cost()
        zs = np.linspace(0, 1, 11)
        vals = np.array([f(z) for z in zs])
        assert np.all(np.diff(vals) >= 0)
        assert np.all(np.diff(vals, n=2) >= -1e-12)
