"""Dependency-free text plots for schedules and traces.

The repository has no plotting dependency; examples and benchmarks
render loads and schedules as Unicode sparklines and block charts so
results are inspectable in a terminal and in the persisted artifacts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "block_chart", "schedule_chart"]

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values, *, lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line sparkline of a sequence (8 height levels)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return ""
    lo = float(np.min(v)) if lo is None else lo
    hi = float(np.max(v)) if hi is None else hi
    if hi <= lo:
        return _SPARKS[0] * v.size
    idx = np.clip(((v - lo) / (hi - lo) * (len(_SPARKS) - 1)).round(), 0,
                  len(_SPARKS) - 1).astype(int)
    return "".join(_SPARKS[i] for i in idx)


def block_chart(values, *, width: int = 40, label: str = "",
                unit: str = "") -> str:
    """Horizontal bar for a single scalar relative to ``width``."""
    v = float(values)
    if v < 0:
        raise ValueError("block_chart draws non-negative values")
    bar = "#" * max(int(round(v)), 0)
    return f"{label:>16s} {bar[:width]} {v:g}{unit}"


def schedule_chart(loads, schedule, *, height_labels: bool = True,
                   every: int = 1) -> str:
    """Two aligned sparklines: demand vs active servers.

    Both series are scaled to the same range so over/under-provisioning
    is visible at a glance.
    """
    loads = np.asarray(loads, dtype=np.float64)[::every]
    schedule = np.asarray(schedule, dtype=np.float64)[::every]
    if loads.shape != schedule.shape:
        raise ValueError("loads and schedule must have equal length")
    hi = float(max(loads.max(initial=0.0), schedule.max(initial=0.0)))
    lines = [
        "load     " + sparkline(loads, lo=0.0, hi=hi),
        "servers  " + sparkline(schedule, lo=0.0, hi=hi),
    ]
    if height_labels:
        lines.append(f"scale    0..{hi:g}")
    return "\n".join(lines)
