"""Tests for the Section 4 randomized rounding (Lemmas 18–20, Theorem 3)."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.core.schedule import interp_operating
from repro.online import (RandomizedRounding, ThresholdFractional, ceil_star,
                          exact_rounding_distribution, expected_cost_exact,
                          run_online, sample_rounding, transition_prob_up)
from tests.conftest import random_convex_instance


def random_fractional_schedule(rng, T, m):
    """A generic fractional schedule (bounded random walk in [0, m])."""
    x = np.empty(T)
    cur = 0.0
    for t in range(T):
        cur = float(np.clip(cur + rng.uniform(-1.5, 1.5), 0.0, m))
        # Occasionally land exactly on integers to hit the edge cases.
        if rng.random() < 0.25:
            cur = float(np.round(cur))
        x[t] = cur
    return x


def frac(x):
    return x - np.floor(x)


class TestCeilStar:
    def test_fractional_argument(self):
        assert ceil_star(2.3) == 3

    def test_integral_argument_shifts_up(self):
        """ceil*(n) = n + 1 on integers (Section 4.1)."""
        assert ceil_star(2.0) == 3
        assert ceil_star(0.0) == 1

    def test_identity_floor_plus_one(self):
        for x in (0.0, 0.4, 1.0, 1.999, 5.5):
            assert ceil_star(x) == int(np.floor(x)) + 1


class TestLemma18:
    def test_upper_probability_equals_frac(self):
        """P[x_t = ceil*(x-bar_t)] = frac(x-bar_t) — exact propagation."""
        rng = np.random.default_rng(110)
        for _ in range(30):
            T, m = int(rng.integers(1, 40)), int(rng.integers(1, 8))
            xbars = random_fractional_schedule(rng, T, m)
            dist = exact_rounding_distribution(xbars)
            np.testing.assert_allclose(dist.p_upper, frac(xbars), atol=1e-9)

    def test_support_brackets_fractional_state(self):
        rng = np.random.default_rng(111)
        xbars = random_fractional_schedule(rng, 25, 5)
        dist = exact_rounding_distribution(xbars)
        assert np.all(dist.lowers <= xbars + 1e-9)
        assert np.all(dist.uppers >= xbars - 1e-9)
        np.testing.assert_array_equal(dist.uppers, dist.lowers + 1)


class TestLemma19:
    def test_expected_operating_equals_fractional(self):
        rng = np.random.default_rng(112)
        for _ in range(20):
            T, m = int(rng.integers(1, 25)), int(rng.integers(1, 7))
            inst = random_convex_instance(rng, T, m, 1.0)
            xbars = random_fractional_schedule(rng, T, m)
            res = expected_cost_exact(inst, xbars)
            assert res["operating"] == pytest.approx(
                res["fractional_operating"], abs=1e-9)

    def test_operating_matches_interp_row_by_row(self):
        rng = np.random.default_rng(113)
        inst = random_convex_instance(rng, 10, 4, 1.0)
        xbars = random_fractional_schedule(rng, 10, 4)
        dist = exact_rounding_distribution(xbars)
        per_step = interp_operating(inst.F, xbars)
        for t in range(10):
            lo, up, p = dist.lowers[t], dist.uppers[t], dist.p_upper[t]
            f_up = inst.F[t, up] if up <= inst.m else 0.0
            got = (1 - p) * inst.F[t, lo] + p * f_up
            assert got == pytest.approx(per_step[t], abs=1e-9)


class TestLemma20:
    def test_expected_switching_equals_fractional_per_step(self):
        """E[(x_t - x_{t-1})^+] = (x-bar_t - x-bar_{t-1})^+ exactly."""
        rng = np.random.default_rng(114)
        for _ in range(30):
            T, m = int(rng.integers(1, 40)), int(rng.integers(1, 8))
            xbars = random_fractional_schedule(rng, T, m)
            dist = exact_rounding_distribution(xbars)
            d = np.diff(np.concatenate([[0.0], xbars]))
            np.testing.assert_allclose(dist.expected_up,
                                       np.maximum(d, 0.0), atol=1e-9)

    def test_total_expected_cost_equals_fractional(self):
        rng = np.random.default_rng(115)
        for _ in range(20):
            T, m = int(rng.integers(1, 25)), int(rng.integers(1, 7))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.3, 4)))
            xbars = random_fractional_schedule(rng, T, m)
            res = expected_cost_exact(inst, xbars)
            assert res["total"] == pytest.approx(res["fractional_total"],
                                                 abs=1e-8)


class TestTheorem3:
    def test_rounded_threshold_is_two_competitive_in_expectation(self):
        rng = np.random.default_rng(116)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 20)),
                                          int(rng.integers(1, 10)),
                                          float(rng.uniform(0.3, 4)))
            fr = run_online(inst, ThresholdFractional())
            res = expected_cost_exact(inst, fr.schedule)
            assert res["total"] <= 2 * optimal_cost(inst) + 1e-7


class TestKernel:
    def test_increasing_from_below(self):
        # x-bar: 0 -> 0.6; from state 0 the up-probability is frac = 0.6.
        assert transition_prob_up(0.0, 0.6, 0) == pytest.approx(0.6)

    def test_increasing_keep_upper(self):
        # Same cell, already up: keep.
        assert transition_prob_up(0.4, 0.6, 1) == pytest.approx(1.0)

    def test_increasing_from_lower_same_cell(self):
        # p-up = (0.6 - 0.4) / (1 - 0.4) = 1/3.
        assert transition_prob_up(0.4, 0.6, 0) == pytest.approx(1 / 3)

    def test_decreasing_keep_lower(self):
        assert transition_prob_up(0.8, 0.3, 0) == pytest.approx(0.0)

    def test_decreasing_from_upper_same_cell(self):
        # p-down = (0.8 - 0.3)/0.8; P(up) = 1 - p-down = 0.375.
        assert transition_prob_up(0.8, 0.3, 1) == pytest.approx(0.375)

    def test_decreasing_across_cells(self):
        # x-bar: 2.5 -> 0.4; projection clamps to ceil* = 1, in-cell pos 1;
        # p-down = (1 - 0.4)/1, so P(up) = 0.4 = frac — Lemma 18 shape.
        assert transition_prob_up(2.5, 0.4, 2) == pytest.approx(0.4)
        assert transition_prob_up(2.5, 0.4, 3) == pytest.approx(0.4)

    def test_increasing_across_cells(self):
        # x-bar: 0.2 -> 2.7; projection clamps to floor = 2;
        # p-up = (2.7 - 2)/(1 - 0) = 0.7 = frac.
        assert transition_prob_up(0.2, 2.7, 0) == pytest.approx(0.7)
        assert transition_prob_up(0.2, 2.7, 1) == pytest.approx(0.7)

    def test_integral_target_decreasing(self):
        # x-bar: 2.5 -> 2.0: always land on 2.
        assert transition_prob_up(2.5, 2.0, 2) == pytest.approx(0.0)
        assert transition_prob_up(2.5, 2.0, 3) == pytest.approx(0.0)

    def test_snap_tolerance(self):
        # A value within 1e-9 of an integer is treated as that integer.
        p = transition_prob_up(0.0, 1.0 - 1e-12, 0)
        assert p == pytest.approx(0.0)


class TestSampling:
    def test_samples_stay_in_support(self):
        rng = np.random.default_rng(117)
        xbars = random_fractional_schedule(rng, 60, 6)
        for seed in range(5):
            x = sample_rounding(xbars, np.random.default_rng(seed), m=7)
            assert np.all(x >= np.floor(xbars) - 1e-9)
            assert np.all(x <= np.floor(xbars) + 1)

    def test_marginals_match_lemma18(self):
        """Monte Carlo marginals converge to frac(x-bar)."""
        rng = np.random.default_rng(118)
        xbars = random_fractional_schedule(rng, 15, 4)
        n = 4000
        ups = np.zeros(15)
        for seed in range(n):
            x = sample_rounding(xbars, np.random.default_rng(1000 + seed))
            ups += (x == np.floor(xbars) + 1)
        np.testing.assert_allclose(ups / n, frac(xbars), atol=0.05)

    def test_online_wrapper_reproducible(self):
        rng = np.random.default_rng(119)
        inst = random_convex_instance(rng, 20, 6, 1.0)
        a = run_online(inst, RandomizedRounding(ThresholdFractional(), rng=7))
        b = run_online(inst, RandomizedRounding(ThresholdFractional(), rng=7))
        np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_online_wrapper_expected_cost(self):
        """Mean sampled cost converges to the exact expectation."""
        rng = np.random.default_rng(120)
        inst = random_convex_instance(rng, 15, 5, 1.5)
        fr = run_online(inst, ThresholdFractional())
        exact = expected_cost_exact(inst, fr.schedule)["total"]
        from repro.core.schedule import cost
        total = 0.0
        n = 600
        for seed in range(n):
            res = run_online(inst,
                             RandomizedRounding(ThresholdFractional(),
                                                rng=seed))
            total += res.cost
        assert total / n == pytest.approx(exact, rel=0.05)

    def test_wrapper_requires_fractional_inner(self):
        from repro.online import LCP
        with pytest.raises(ValueError):
            RandomizedRounding(LCP())

    def test_wrapper_fractional_log(self):
        rng = np.random.default_rng(121)
        inst = random_convex_instance(rng, 10, 4, 1.0)
        algo = RandomizedRounding(ThresholdFractional(), rng=3)
        run_online(inst, algo)
        fr = run_online(inst, ThresholdFractional())
        np.testing.assert_allclose(algo.fractional_log, fr.schedule)
