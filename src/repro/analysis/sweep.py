"""Parameter-sweep harness used by the benchmarks.

A sweep is the cartesian product of parameter axes; each grid point is
evaluated by a user function returning a dict of measurements, and the
results are collected as a list of flat row dicts ready for
:mod:`repro.analysis.tables`.

Evaluation rides the batch engine's pipelined dispatch: passing
``n_jobs > 1`` fans grid points out over the engine's *persistent*
process pool (the function must then be picklable, i.e. module-level)
in fused chunks — several points per worker round-trip — and up to
``pipeline_depth`` batches stay in flight, so the pool keeps working
while the parent flushes the previous batch's rows to the sink.  The
pool is shared with ``run_grid`` and ``repro lowerbound`` and survives
across sweeps, so many small sweeps don't pay a pool fork each.
Passing ``cache_dir``
(a directory, or a ready-made
:class:`~repro.runner.jobcache.JobCache` — e.g. one opened on the
SQLite backend) stores each point's measurements in the engine's
per-job content-addressed cache, keyed by the function's qualified name
and the point — extending a sweep's axes re-evaluates only the new
points.  Cached measurements must be JSON-serializable (numpy scalars
are converted); don't cache wall-clock timings you mean to re-measure.
For named (scenario x algorithm) grids with ratio aggregation, prefer
:func:`repro.runner.run_grid`.
"""

from __future__ import annotations

import collections
import itertools
from typing import Callable, Mapping, Sequence

from ..runner.engine import _batches, _chunk_list, _submit_task
from ..runner.jobcache import JobCache, content_key, jsonify

__all__ = ["sweep"]

#: bump when the sweep cache record shape changes
_SWEEP_CACHE_VERSION = 1


class _EvalChunk:
    """Picklable fused evaluator: one worker round-trip runs a whole
    chunk of grid points through ``fn(**point)``."""

    def __init__(self, fn: Callable[..., Mapping]):
        self.fn = fn

    def __call__(self, points: list[dict]) -> list[dict]:
        return [dict(self.fn(**point)) for point in points]


def _point_key(fn: Callable, point: dict) -> str:
    qualname = getattr(fn, "__qualname__", None)
    fn_id = f"{getattr(fn, '__module__', '?')}.{qualname}"
    if qualname is None or "<lambda>" in fn_id or "<locals>" in fn_id:
        # lambdas/closures share qualnames and partials have none at
        # all, so two different functions would silently share records
        raise ValueError(
            "cache_dir requires a module-level function (lambdas, "
            "closures and partials have ambiguous cache identities): "
            f"{fn_id if qualname is not None else fn!r}")
    return content_key({"kind": "sweep", "version": _SWEEP_CACHE_VERSION,
                        "fn": fn_id, "point": point})


def sweep(fn: Callable[..., Mapping], grid: Mapping[str, Sequence], *,
          n_jobs: int = 1, cache_dir=None,
          stats: dict | None = None, sink=None,
          batch_size: int | None = None, pipeline_depth: int = 2,
          chunk_points: int | None = None):
    """Evaluate ``fn(**point)`` on every point of the parameter grid.

    ``grid`` maps parameter names to value lists; the returned rows merge
    the grid point with ``fn``'s measurement dict (measurements win on
    key collisions being forbidden).  ``n_jobs > 1`` evaluates points on
    a process pool; row order is always the grid-product order.  With
    ``cache_dir``, previously evaluated points are read back from the
    per-point cache; pass a dict as ``stats`` to receive ``hits`` and
    ``misses`` counters.

    Like :func:`repro.runner.run_grid`, a sweep streams *and
    pipelines*: points run in bounded batches of ``batch_size``
    (``None`` = one batch) dispatched as fused chunks of
    ``chunk_points`` (``None`` auto-sizes), up to ``pipeline_depth``
    batches stay in flight on the pool, and rows flow into a
    :mod:`repro.runner.sinks` ``sink`` — always in grid-product order —
    as each batch finishes.  The default ``sink=None`` collects and
    returns the historical ``list[dict]``; a file-backed sink keeps
    parent memory at O(depth x batch) and ``sweep`` returns
    ``sink.result()``.
    """
    from ..runner.sinks import ListSink
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    names = list(grid.keys())
    points = (dict(zip(names, values))
              for values in itertools.product(*(grid[n] for n in names)))
    cache = (cache_dir if isinstance(cache_dir, JobCache)
             else JobCache(cache_dir) if cache_dir is not None else None)
    sink = ListSink() if sink is None else sink
    flush_ok = [True]   # False once a flush failed (row prefix is torn)
    hits = misses = 0
    inflight: collections.deque = collections.deque()

    def flush(entry) -> None:
        batch, results, futures = entry
        try:
            for chunk, future in futures:
                for (i, _point, key), result in zip(chunk,
                                                    future.result()):
                    # canonicalize through the JSON form so hit and
                    # miss rows are indistinguishable (numpy scalars ->
                    # float, tuples -> lists)
                    results[i] = (jsonify(result) if cache is not None
                                  else result)
                    if cache is not None:
                        cache.put("sweep", key, result)
            for point, result in zip(batch, results):
                clash = set(point) & set(result)
                if clash:
                    raise ValueError(
                        f"measurement keys collide with grid: {clash}")
                sink.write({**point, **result})
        except BaseException:
            # once a flush tears, the abort drain must not keep
            # writing later batches — killed sinks keep a clean prefix
            flush_ok[0] = False
            raise

    sink.open()
    try:
        for batch in _batches(points, batch_size):
            results: list = [None] * len(batch)
            pending: list[tuple[int, dict, str]] = []
            for i, point in enumerate(batch):
                key = _point_key(fn, point) if cache is not None else ""
                cached = (cache.get("sweep", key)
                          if cache is not None else None)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                else:
                    pending.append((i, point, key))
            misses += len(pending)
            futures = [
                (chunk, _submit_task(_EvalChunk(fn),
                                     [p for _, p, _ in chunk], n_jobs))
                for chunk in _chunk_list(pending, n_jobs, chunk_points)]
            inflight.append((batch, results, futures))
            # double-buffer: flush the oldest batch only once the pool
            # holds pipeline_depth batches, so workers chew on batch
            # N+1 while the parent writes batch N's rows
            while len(inflight) >= pipeline_depth:
                flush(inflight.popleft())
        while inflight:
            flush(inflight.popleft())
    finally:
        # abort path: completed head batches still flush to the sink
        # in order (the pre-pipeline sweep always wrote batch N before
        # starting N+1; double-buffering must not lose that) — unless
        # a flush itself is what failed
        while (flush_ok[0] and inflight
               and all(f.done() and not f.cancelled()
                       for _c, f in inflight[0][2])):
            try:
                flush(inflight[0])
            except BaseException:
                break
            inflight.popleft()
        # then cancel what never started, persisting the measurements
        # of chunks that did complete — a killed sweep must not
        # recompute points it already paid for
        for _batch, _results, futures in inflight:
            for chunk, future in futures:
                future.cancel()
                if cache is None or not future.done() or \
                        future.cancelled():
                    continue
                try:
                    for (_i, _point, key), result in zip(chunk,
                                                         future.result()):
                        cache.put("sweep", key, result)
                except Exception:
                    pass
        sink.close()
    if stats is not None:
        stats.update({"hits": hits, "misses": misses})
    return sink.result()
