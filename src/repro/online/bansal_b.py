"""Algorithm B of Section 5.2.1 — the two-state fractional stepper.

On the adversarial workloads of the lower-bound constructions (hinge
functions ``phi_0(x) = eps|x|`` and ``phi_1(x) = eps|1-x|`` with switching
cost ``beta = 2``), algorithm B moves its fractional state ``b_t in [0,1]``
by ``eps/2`` toward the arriving function's minimizer:

``b_{t+1} = max(b_t - eps/2, 0)``  if ``f_t = phi_0``,
``b_{t+1} = min(b_t + eps/2, 1)``  if ``f_t = phi_1``.

The paper notes B "is equivalent to the algorithm of Bansal et al. [7]
for the special case of phi_0 and phi_1 functions"; B is likewise exactly
the ``m = 1`` case of :class:`repro.online.threshold.ThresholdFractional`
(step size ``slope/beta = eps/2``), implemented here as its own class for
generality in slope and for use by the continuous lower-bound game
(Lemmas 21–23), where its ratio provably approaches ``2 - eps/2``.
"""

from __future__ import annotations

import numpy as np

from .base import OnlineAlgorithm

__all__ = ["AlgorithmB"]


class AlgorithmB(OnlineAlgorithm):
    """Section 5.2.1's algorithm B on the two-state continuous problem."""

    fractional = True
    name = "algorithm-B"

    def reset(self, m: int, beta: float) -> None:
        if m != 1:
            raise ValueError(
                "algorithm B is defined on the single-server state space "
                f"{{0, 1}}; got m = {m}")
        self.beta = beta
        self._set_state(0.0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> float:
        # For a hinge of slope eps toward its minimizer, the move is
        # eps/beta (= eps/2 for the paper's beta = 2 convention).
        g = float(f_row[1]) - float(f_row[0])
        b = min(max(self.state - g / self.beta, 0.0), 1.0)
        self._set_state(b)
        return b
