"""Batch experiment runner: registry, scenario catalog, parallel engine.

The runner is the substrate every large-scale experiment stands on:

* :mod:`repro.runner.registry` — every offline solver and online
  algorithm under a stable name with the paper's taxonomy (variant,
  discrete/fractional, competitive ratio, lookahead support).
* :mod:`repro.runner.scenarios` — one named catalog of workload
  scenarios: the trace families of the experimental evaluation plus
  adversarial, random-convex and heterogeneous-cost instances.
* :mod:`repro.runner.executor` — the shared pipelined batch executor:
  the persistent process pool, the :class:`EngineConfig` /
  :class:`RunStats` value objects and the one double-buffer /
  in-order-drain scheduling loop (:func:`run_pipeline`) the engine,
  ``analysis/sweep`` and the lease-queue worker all run on.
* :mod:`repro.runner.engine` — expands a :class:`GridSpec` of
  (scenario x algorithm x seed x size) into jobs, materializes each
  distinct instance once (phase 0), solves each instance's offline
  optimum once (phase 1), fans the algorithm jobs out on a persistent
  process pool with deterministic per-job seeding (phase 2) and
  aggregates competitive ratios.
* :mod:`repro.runner.leasequeue` — multi-host execution: a WAL-mode
  SQLite lease queue workers claim contiguous job ranges from
  (heartbeat, expiry, reclaim), plus the :func:`merge_results` step
  that reassembles per-worker rows into one bit-identical result set.
* :mod:`repro.runner.instancestore` — the shared mmap-backed store of
  materialized instance payloads plus the per-process build memo, so no
  process ever tabulates the same cost matrix twice.
* :mod:`repro.runner.jobcache` — the per-job content-addressed result
  store behind incremental grids (JSON-dir or single-file SQLite
  backend): one record per job / instance optimum, shared by every
  overlapping grid.
* :mod:`repro.runner.faults` — the deterministic fault-injection
  harness behind the chaos tests: a :class:`FaultPlan` names failures
  by (site, match, nth) and the instrumented seams raise — or kill the
  worker — exactly where a real failure would.
* :mod:`repro.runner.service` / :mod:`repro.runner.client` — the
  serving layer: a stdlib-HTTP ``repro serve`` daemon that answers
  cache hits instantly and enqueues only misses on the lease queue
  (admission control, structured errors, drain shutdown), plus the
  retrying :class:`ServiceClient` that talks to it.
"""

from .client import RequestError, ServiceClient, ServiceUnavailable
from .engine import (GridSpec, aggregate_rows, instance_key, job_key,
                     run_grid)
from .executor import (EngineConfig, PipelineBatch, RetryPolicy,
                       RunStats, parallel_map, run_pipeline,
                       shutdown_pool)
from .faults import FaultPlan, FaultSpec, InjectedFault
from .instancestore import InstanceStore, get_instance
from .jobcache import (JobCache, busy_stats, migrate_cache,
                       with_busy_retry)
from .leasequeue import (Lease, LeaseLost, LeaseQueue, failed_jobs,
                         grid_status, merge_results, retry_failed,
                         work)
from .service import GridService, ServiceError
from .registry import (PIPELINES, AlgorithmSpec, algorithm_names,
                       algorithm_table, game_names, get_spec,
                       make_algorithm, make_solver, pipeline_optimum,
                       solver_names)
from .scenarios import (Scenario, build_instance, get_scenario,
                        scenario_names, trace_suite)
from .sinks import (JsonlSink, ListSink, MergeError, ResultSink,
                    SqliteSink, make_sink, read_jsonl_rows,
                    read_sqlite_rows)

__all__ = [
    "AlgorithmSpec", "PIPELINES", "algorithm_names", "algorithm_table",
    "game_names", "get_spec", "make_algorithm", "make_solver",
    "pipeline_optimum", "solver_names",
    "Scenario", "build_instance", "get_scenario", "scenario_names",
    "trace_suite",
    "GridSpec", "InstanceStore", "JobCache", "aggregate_rows",
    "busy_stats", "get_instance", "instance_key", "job_key",
    "migrate_cache", "run_grid", "with_busy_retry",
    "EngineConfig", "PipelineBatch", "RetryPolicy", "RunStats",
    "parallel_map", "run_pipeline", "shutdown_pool",
    "FaultPlan", "FaultSpec", "InjectedFault",
    "Lease", "LeaseLost", "LeaseQueue", "failed_jobs", "grid_status",
    "merge_results", "retry_failed", "work",
    "GridService", "RequestError", "ServiceClient", "ServiceError",
    "ServiceUnavailable",
    "JsonlSink", "ListSink", "MergeError", "ResultSink", "SqliteSink",
    "make_sink", "read_jsonl_rows", "read_sqlite_rows",
]
