"""Batched work-function kernel: one sweep for a stack of instances.

The vectorized kernel already collapsed the per-step loop into whole-
table ufunc passes, but every instance still pays its own kernel
launch: ``T`` rounds of six ufunc dispatches on ``(m+1,)`` rows.  At
small ``T``/``m`` that dispatch overhead dominates.  This kernel stacks
``B`` *same-shape* instances into one ``(B, T, m+1)`` tensor and runs
the identical op sequence on ``(B, m+1)`` slabs, so one launch serves
the whole stack and the per-instance dispatch cost divides by ``B``.

Bit-identity holds *per slice*: every ufunc is elementwise (or an
``accumulate``/``argmin`` along the last axis, which never mixes
lanes), so lane ``b`` of every intermediate equals the corresponding
intermediate of :func:`repro.kernels.vectorized.sweep_workfunction` on
instance ``b`` alone — same IEEE ops, same order, same operands.  The
derivation lives in ``docs/KERNELS.md`` and ``tests/test_kernels.py``
asserts the slice-by-slice equality.

Only same-shape instances stack; callers (``cached_sweep_many``)
group by ``(T, m)`` and fall back to per-instance sweeps for
singletons or ragged groups.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["sweep_workfunction_many"]


def sweep_workfunction_many(costs: np.ndarray, betas: Sequence[float]):
    """Sweep ``B`` same-shape instances in one ``(B, T, m+1)`` pass.

    ``costs`` is a ``(B, T, m+1)`` stack of cost tables, ``betas`` the
    matching per-instance switching costs.  Returns a list of ``B``
    :class:`~repro.kernels.SweepResult` values, each bit-identical to
    the vector kernel run on that slice alone.
    """
    from . import SweepResult
    F = np.asarray(costs, dtype=np.float64)
    if F.ndim != 3:
        raise ValueError(f"expected a (B, T, m+1) stack, got shape {F.shape}")
    B, T, m = F.shape[0], F.shape[1], F.shape[2] - 1
    if len(betas) != B:
        raise ValueError(f"{B} cost slices but {len(betas)} betas")
    if B == 0:
        return []
    if T == 0:
        empty = np.empty(0, dtype=np.int64)
        return [SweepResult(lo=empty, hi=empty, opt=0.0) for _ in range(B)]
    states = np.arange(m + 1, dtype=np.float64)
    # One beta row per lane; lane b sees exactly the vector kernel's
    # ``beta * states``.
    bstates = np.asarray(betas, dtype=np.float64)[:, None] * states
    D = np.empty((B, T, m + 1), dtype=np.float64)
    np.add(F[:, 0], bstates, out=D[:, 0])
    buf = np.empty((B, m + 1), dtype=np.float64)
    acc = np.minimum.accumulate
    sub, add, mini = np.subtract, np.add, np.minimum
    # Hoist the (B, m+1) slab views; per step the six dispatches below
    # are the *whole* Python cost for all B lanes.
    slabs = [D[:, t] for t in range(T)]
    slabs_r = [D[:, t, ::-1] for t in range(T)]
    fslabs = [F[:, t] for t in range(T)]
    prev, prev_r = slabs[0], slabs_r[0]
    for t in range(1, T):
        cur, cur_r = slabs[t], slabs_r[t]
        # up = beta x + prefix_min(prev - beta x), per lane
        sub(prev, bstates, out=buf)
        acc(buf, axis=-1, out=buf)
        add(buf, bstates, out=buf)
        # down = suffix_min(prev), via reversed views
        acc(prev_r, axis=-1, out=cur_r)
        # D[:, t] = f_t + min(up, down)
        mini(buf, cur, out=cur)
        add(cur, fslabs[t], out=cur)
        prev, prev_r = cur, cur_r
    # Bounds, whole-stack: argmin along the state axis never mixes
    # lanes, so each (b, t) entry matches the single-instance pass.
    lo = D.argmin(axis=2).astype(np.int64, copy=False)
    CU = D - bstates[:, None, :]
    hi = (m - CU[:, :, ::-1].argmin(axis=2)).astype(np.int64, copy=False)
    return [
        SweepResult(lo=lo[b], hi=hi[b], opt=float(D[b, -1].min()))
        for b in range(B)
    ]
