"""Tests for problem-instance containers (repro.core.instance)."""

import numpy as np
import pytest

from repro.core.costs import phi0, phi1
from repro.core.instance import Instance, RestrictedInstance
from repro.core.schedule import cost
from repro.offline import solve_dp


def two_state_rows(eps: float, pattern: str) -> np.ndarray:
    rows = {"0": [0.0, eps], "1": [eps, 0.0]}
    return np.array([rows[c] for c in pattern])


class TestInstance:
    def test_shape_accessors(self):
        inst = Instance(beta=1.0, F=np.zeros((7, 4)))
        assert inst.T == 7
        assert inst.m == 3

    def test_from_functions(self):
        inst = Instance.from_functions([phi0(1.0), phi1(1.0)], m=2, beta=0.5)
        np.testing.assert_allclose(inst.F, [[0, 1, 2], [1, 0, 1]])

    def test_from_matrix(self):
        F = [[1.0, 0.0], [0.0, 1.0]]
        inst = Instance.from_matrix(F, beta=2.0)
        assert inst.m == 1 and inst.beta == 2.0

    def test_f_accessor_one_based(self):
        inst = Instance.from_functions([phi0(1.0), phi1(1.0)], m=1, beta=1.0)
        np.testing.assert_allclose(inst.f(1), [0.0, 1.0])
        np.testing.assert_allclose(inst.f(2), [1.0, 0.0])

    def test_f_accessor_bounds(self):
        inst = Instance(beta=1.0, F=np.zeros((3, 2)))
        with pytest.raises(IndexError):
            inst.f(0)
        with pytest.raises(IndexError):
            inst.f(4)

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            Instance(beta=0.0, F=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Instance(beta=-1.0, F=np.zeros((2, 2)))

    def test_rejects_nonconvex(self):
        with pytest.raises(ValueError):
            Instance(beta=1.0, F=np.array([[0.0, 3.0, 1.0, 5.0]]))

    def test_matrix_readonly(self):
        inst = Instance(beta=1.0, F=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            inst.F[0, 0] = 1.0

    def test_prefix(self):
        inst = Instance(beta=1.0, F=np.arange(12, dtype=float).reshape(4, 3))
        pre = inst.prefix(2)
        assert pre.T == 2
        np.testing.assert_allclose(pre.F, inst.F[:2])

    def test_prefix_bounds(self):
        inst = Instance(beta=1.0, F=np.zeros((3, 2)))
        with pytest.raises(IndexError):
            inst.prefix(4)
        assert inst.prefix(0).T == 0

    def test_with_beta(self):
        inst = Instance(beta=1.0, F=np.zeros((2, 2)))
        assert inst.with_beta(5.0).beta == 5.0

    def test_repr(self):
        inst = Instance(beta=1.5, F=np.zeros((2, 3)))
        assert "T=2" in repr(inst) and "m=2" in repr(inst)

    def test_empty_horizon_allowed(self):
        inst = Instance(beta=1.0, F=np.zeros((0, 5)))
        assert inst.T == 0


class TestRestrictedInstance:
    def make(self, loads=(1.0, 2.0, 0.5), m=4, beta=1.0):
        return RestrictedInstance(beta=beta, m=m, f=lambda z: 1 + z * z,
                                  loads=np.array(loads))

    def test_accessors(self):
        ri = self.make()
        assert ri.T == 3
        assert ri.m == 4

    def test_operating_cost_formula(self):
        ri = self.make(loads=(2.0,))
        # x f(lambda/x) with f = 1 + z^2, x=2, lambda=2 -> 2*(1+1)=4.
        assert ri.operating_cost(1, 2) == pytest.approx(4.0)
        assert ri.operating_cost(1, 4) == pytest.approx(4 * (1 + 0.25))

    def test_operating_cost_zero_state_zero_load(self):
        ri = self.make(loads=(0.0,))
        assert ri.operating_cost(1, 0) == 0.0

    def test_operating_cost_infeasible_raises(self):
        ri = self.make(loads=(3.0,))
        with pytest.raises(ValueError, match="infeasible"):
            ri.operating_cost(1, 2)

    def test_loads_above_m_rejected(self):
        with pytest.raises(ValueError):
            RestrictedInstance(beta=1.0, m=2, f=lambda z: z,
                               loads=np.array([3.0]))

    def test_negative_loads_rejected(self):
        with pytest.raises(ValueError):
            RestrictedInstance(beta=1.0, m=2, f=lambda z: z,
                               loads=np.array([-0.1]))

    def test_is_feasible(self):
        ri = self.make(loads=(1.0, 2.0))
        assert ri.is_feasible([1, 2])
        assert ri.is_feasible([4, 4])
        assert not ri.is_feasible([0, 2])

    def test_to_general_matches_feasible_costs(self):
        ri = self.make(loads=(1.0, 2.0), m=3)
        inst = ri.to_general()
        assert inst.T == 2 and inst.m == 3
        for t in (1, 2):
            lam = ri.loads[t - 1]
            for x in range(int(np.ceil(lam)), 4):
                assert inst.f(t)[x] == pytest.approx(
                    ri.operating_cost(t, x)), (t, x)

    def test_to_general_penalizes_infeasible(self):
        ri = self.make(loads=(3.0,), m=4)
        inst = ri.to_general()
        # The infeasible states must cost more than the entire always-m
        # schedule, so no optimal schedule ever touches them.
        always_m_cost = ri.beta * ri.m + ri.operating_cost(1, ri.m)
        assert inst.f(1)[0] > 10 * always_m_cost
        assert inst.f(1)[2] > 10 * always_m_cost
        assert inst.f(1)[2] < inst.f(1)[0]

    def test_optimal_schedule_of_encoding_is_feasible(self):
        rng = np.random.default_rng(7)
        loads = rng.uniform(0, 5, size=12)
        ri = RestrictedInstance(beta=2.0, m=6, f=lambda z: 1 + 2 * z * z,
                                loads=loads)
        res = solve_dp(ri.to_general())
        assert ri.is_feasible(res.schedule)

    def test_encoding_cost_matches_restricted_cost(self):
        ri = self.make(loads=(1.0, 2.0, 0.5), m=4)
        inst = ri.to_general()
        X = np.array([2, 3, 1])
        expected_op = sum(ri.operating_cost(t, X[t - 1]) for t in (1, 2, 3))
        expected = expected_op + ri.beta * (2 + 1)  # ups: 0->2, 2->3
        assert cost(inst, X) == pytest.approx(expected)
