"""Setup entry point.

The project intentionally ships setup.py/setup.cfg instead of a
pyproject.toml build-system table so that `pip install -e .` works in
fully offline environments: PEP 517/660 editable builds spawn an isolated
environment and try to download build requirements, which fails without
network access, whereas the legacy path builds against the interpreter's
installed setuptools.  All metadata lives in setup.cfg.
"""

from setuptools import setup

setup()
