"""Parallel batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon); the engine expands it into
jobs, executes them — in-process or on a ``multiprocessing`` pool with
chunking — and aggregates empirical competitive ratios.  Three
properties make it the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows.
* **Caching** — results persist as JSON under a cache directory, keyed
  by a hash of the spec (plus engine version); re-running the same grid
  is a file read, changing any coordinate invalidates the key.
* **Chunking** — jobs are handed to workers in contiguous chunks to
  amortize IPC, while row order always matches job order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import pathlib
import zlib

__all__ = [
    "GridSpec",
    "run_grid",
    "aggregate_rows",
    "cache_path",
    "parallel_map",
]

#: bump when row contents / seeding change, to invalidate stale caches
ENGINE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms and offline solvers interchangeably; both are resolved
    through :mod:`repro.runner.registry`.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples) so a dict loaded back
        from a cache file compares equal to a live spec's."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    def cache_key(self) -> str:
        """Stable content hash of the spec (and engine version)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        out = []
        for T in self.sizes:
            for scenario in self.scenarios:
                for seed in self.seeds:
                    inst_seed = (seed if self.instance_seed is None
                                 else self.instance_seed)
                    for algorithm in self.algorithms:
                        out.append((scenario, algorithm, T, inst_seed,
                                    seed, self.lookahead))
        return out

    def __len__(self) -> int:
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead = job
    blob = f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
    return zlib.crc32(blob.encode())


def _run_job(job: tuple) -> dict:
    """Execute one grid job; must stay module-level (pool pickling)."""
    from ..analysis import optimal_cost
    from ..online.base import run_online
    from .registry import get_spec
    from .scenarios import build_instance

    scenario, algorithm, T, inst_seed, seed, lookahead = job
    inst = build_instance(scenario, T, inst_seed)
    spec = get_spec(algorithm)
    if spec.kind == "online":
        res = run_online(inst, spec.make(lookahead=lookahead,
                                         seed=_job_seed(job)))
        cost = res.cost
    else:
        cost = spec.make()(inst).cost
    opt = optimal_cost(inst)
    return {
        "scenario": scenario, "algorithm": algorithm, "T": T,
        "m": inst.m, "beta": inst.beta, "seed": seed,
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
    }


def parallel_map(fn, items, n_jobs: int = 1, chunksize: int | None = None):
    """Order-preserving map, in-process or on a process pool.

    ``fn`` and the items must be picklable for ``n_jobs > 1`` (module
    -level functions and plain data).  The in-process path is a plain
    ``map`` so tests can monkeypatch ``fn``'s module-level dependencies.
    """
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n_jobs = min(n_jobs, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_jobs))
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    with ctx.Pool(processes=n_jobs) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def cache_path(spec: GridSpec, cache_dir) -> pathlib.Path:
    """Where a grid's rows live on disk."""
    return pathlib.Path(cache_dir) / f"grid_{spec.cache_key()}.json"


def run_grid(spec: GridSpec, *, n_jobs: int = 1, cache_dir=None,
             force: bool = False) -> list[dict]:
    """Run every job of a grid and return one row dict per job.

    With ``cache_dir``, rows are loaded from the spec-keyed JSON file
    when present (unless ``force``) and written back after a live run.
    """
    path = cache_path(spec, cache_dir) if cache_dir is not None else None
    if path is not None and not force and path.exists():
        try:
            payload = json.loads(path.read_text())
            if payload["spec"] == spec.to_dict():
                return payload["rows"]
        except (ValueError, KeyError):
            pass  # corrupt/truncated cache file: fall through and recompute
    rows = parallel_map(_run_job, spec.jobs(), n_jobs=n_jobs)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(
            {"spec": spec.to_dict(), "rows": rows}, indent=1))
        tmp.replace(path)  # atomic: never leave a half-written cache
    return rows


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row[k] for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
