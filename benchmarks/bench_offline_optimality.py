"""E2 — Theorem 1: the binary-search algorithm is optimal.

Regenerates the optimality table: across instance families, the
O(T log m) algorithm, the O(Tm) DP, the explicit graph shortest path and
(on tiny instances) brute force all report the same optimum.
"""

import numpy as np

from repro.offline import (solve_binary_search, solve_bruteforce, solve_dp,
                           solve_graph)

from conftest import random_convex_instance, record, trace_suite


def test_e2_optimality_table(benchmark):
    rng = np.random.default_rng(7)
    rows = []
    # Tiny instances: include brute force.
    for i in range(4):
        inst = random_convex_instance(rng, T=5, m=4, beta=1.0 + i)
        bs = solve_binary_search(inst).cost
        rows.append({
            "family": f"tiny-{i}", "T": inst.T, "m": inst.m,
            "binary_search": bs,
            "dp": solve_dp(inst).cost,
            "graph": solve_graph(inst).cost,
            "bruteforce": solve_bruteforce(inst).cost,
        })
    # Trace instances: polynomial solvers only.
    for name, inst in trace_suite(T=96):
        rows.append({
            "family": name, "T": inst.T, "m": inst.m,
            "binary_search": solve_binary_search(inst).cost,
            "dp": solve_dp(inst).cost,
            "graph": solve_graph(inst).cost,
            "bruteforce": float("nan"),
        })
    record("E2_optimality", rows, title="E2: offline optimality (Theorem 1)")
    for row in rows:
        assert abs(row["binary_search"] - row["dp"]) < 1e-6 * max(
            1.0, row["dp"])
    # Timing: the headline solver on a mid-size instance.
    inst = random_convex_instance(np.random.default_rng(8), T=256, m=1024,
                                  beta=3.0)
    res = benchmark(solve_binary_search, inst)
    assert abs(res.cost - solve_dp(inst, return_schedule=False).cost) < 1e-6
