"""Named scenario catalog.

One place for every workload the experiments run on: the five synthetic
trace families of the evaluation (formerly duplicated as
``benchmarks/conftest.py:trace_suite``), deterministic stress patterns,
random convex instances, the adversarial hinge trace of the Theorem-4
game, a restricted-model (eq. (2)) encoding and a heterogeneous-cost mix.

Each :class:`Scenario` builds an :class:`~repro.core.instance.Instance`
from ``(T, seed)`` with deterministic per-scenario seeding, so a grid job
is fully reproducible from its ``(scenario, T, seed)`` coordinates alone
— the property the batch engine's process pool and result cache rely on.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Callable

import numpy as np

__all__ = [
    "Scenario",
    "scenario_names",
    "get_scenario",
    "build_instance",
    "trace_suite",
    "adversarial_hinge_instance",
    "TRACE_FAMILIES",
]

#: defaults matching the historical trace_suite construction
_PEAK = 24.0
_BETA = 4.0
_DELAY_WEIGHT = 10.0

#: the five families of the online-algorithm experiments (E4/E5/E10...)
TRACE_FAMILIES = ("diurnal", "msr-like", "hotmail-like", "bursty", "onoff")


def _scenario_rng(name: str, seed: int) -> np.random.Generator:
    """Independent, process-stable generator per (scenario, seed)."""
    return np.random.default_rng([seed, zlib.crc32(name.encode())])


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named instance builder: ``build(T, rng, **params) -> Instance``.

    ``build`` is the general-model builder; scenarios may additionally
    (or instead) carry builders for the engine's other pipelines —
    ``build_restricted`` returning a
    :class:`~repro.core.instance.RestrictedInstance`, ``build_hetero``
    returning a :class:`~repro.extensions.HeterogeneousInstance`, and
    ``build_game`` returning a game-pipeline instance (a
    :class:`~repro.lower_bounds.games.LowerBoundGame` or
    :class:`~repro.simulator.bridge.SimulatorGame`).  All builders of
    one scenario share the ``(scenario, seed)`` generator, so e.g. the
    restricted view and its general-model encoding are built from
    identical loads and their optima agree.

    ``params`` are the optional keyword knobs of a grid's ``params``
    axis (e.g. the adversary slope ``eps``, the case study's ``beta``);
    builders declare them with defaults so the scenario also builds with
    no parameters.  ``storable=False`` marks scenarios whose instances
    have no dense payload (adaptive games) so the engine skips phase-0
    materialization for them.
    """

    name: str
    build: Callable | None
    tags: tuple[str, ...]
    summary: str = ""
    build_restricted: Callable | None = None
    build_hetero: Callable | None = None
    build_game: Callable | None = None
    storable: bool = True

    @property
    def pipelines(self) -> tuple[str, ...]:
        """Engine pipelines this scenario can build instances for."""
        out = []
        if self.build is not None:
            out.append("general")
        if self.build_restricted is not None:
            out.append("restricted")
        if self.build_hetero is not None:
            out.append("hetero")
        if self.build_game is not None:
            out.append("game")
        return tuple(out)

    def instance(self, T: int, seed: int = 0, pipeline: str = "general",
                 params: dict | None = None):
        """Build the scenario's instance for a horizon, seed and
        optional parameter dict."""
        builder = {"general": self.build,
                   "restricted": self.build_restricted,
                   "hetero": self.build_hetero,
                   "game": self.build_game}.get(pipeline)
        if builder is None:
            raise ValueError(
                f"scenario {self.name!r} has no {pipeline!r} builder; it "
                f"supports {self.pipelines}")
        rng = _scenario_rng(self.name, seed)
        try:
            return builder(T, rng, **(params or {}))
        except TypeError as exc:
            raise ValueError(
                f"scenario {self.name!r} rejected params {params!r}: "
                f"{exc}") from None


def _from_loads(loads, *, beta: float = _BETA,
                delay_weight: float = _DELAY_WEIGHT):
    from ..workloads import capacity_for, instance_from_loads
    return instance_from_loads(loads, m=capacity_for(loads), beta=beta,
                               delay_weight=delay_weight)


def _build_diurnal(T, rng):
    from ..workloads import diurnal_loads
    return _from_loads(diurnal_loads(T, peak=_PEAK, rng=rng))


def _build_msr(T, rng):
    from ..workloads import msr_like_loads
    return _from_loads(msr_like_loads(T, peak=_PEAK, rng=rng))


def _build_hotmail(T, rng):
    from ..workloads import hotmail_like_loads
    return _from_loads(hotmail_like_loads(T, peak=_PEAK, rng=rng))


def _build_bursty(T, rng):
    from ..workloads import bursty_loads
    return _from_loads(bursty_loads(T, peak=_PEAK, rng=rng))


def _build_onoff(T, rng):
    from ..workloads import onoff_loads
    return _from_loads(onoff_loads(T, peak=_PEAK, rng=rng))


def _build_sawtooth(T, rng):
    from ..workloads import sawtooth_loads
    return _from_loads(sawtooth_loads(T, peak=_PEAK))


def _build_regime(T, rng):
    from ..workloads import regime_switching_loads
    return _from_loads(regime_switching_loads(T, peak=_PEAK, rng=rng))


def _build_random_convex(T, rng):
    from ..workloads import random_convex_instance
    beta = float(rng.uniform(0.5, 6.0))
    return random_convex_instance(rng, T, m=20, beta=beta)


def adversarial_hinge_instance(T: int, eps: float = 0.05):
    """The trace the Theorem-4 adversary produces against LCP, replayed
    non-adaptively: blocks of ~2/eps identical hinges, flipping right
    after LCP's laziness threshold (k*eps >= beta) so LCP pays waiting
    cost ~beta, then switching beta, every block."""
    from ..core.instance import Instance
    block = int(np.ceil(2.0 / eps)) + 1
    up_phase = (np.arange(T) // block) % 2 == 0
    rows = np.where(up_phase[:, None], [eps, 0.0], [0.0, eps])
    return Instance(beta=2.0, F=rows)


def _build_adversarial_hinge(T, rng):
    return adversarial_hinge_instance(T)


def _build_restricted_diurnal_ri(T, rng):
    """Restricted model (eq. (2)) on a diurnal trace, as the structural
    :class:`RestrictedInstance` the masked DP consumes."""
    from ..workloads import (capacity_for, diurnal_loads,
                             restricted_from_loads)
    loads = diurnal_loads(T, peak=_PEAK, rng=rng)
    return restricted_from_loads(loads, m=capacity_for(loads), beta=_BETA)


def _build_restricted_diurnal(T, rng):
    """Restricted model (eq. (2)) on a diurnal trace, encoded as a
    general instance via the perspective cost."""
    return _build_restricted_diurnal_ri(T, rng).to_general()


def _build_hetero_mix(T, rng):
    """Heterogeneous cost structure: per-step costs drawn from three
    convex families (queueing delay, quadratic bowl, SLA hinge) along one
    diurnal load trajectory — stresses algorithms whose analysis leans on
    the cost family staying fixed."""
    from ..core.costs import (AffineEnergyCost, QuadraticCost,
                              QueueingDelayCost, SLAHingeCost, SumCost)
    from ..core.instance import Instance
    from ..workloads import capacity_for, diurnal_loads
    loads = diurnal_loads(T, peak=_PEAK, rng=rng)
    m = capacity_for(loads)
    fs = []
    for t, lam in enumerate(loads):
        lam = float(lam)
        kind = t % 3
        if kind == 0:
            body = QueueingDelayCost(lam, weight=_DELAY_WEIGHT)
        elif kind == 1:
            body = QuadraticCost(0.5, lam)
        else:
            body = SLAHingeCost(lam, 8.0)
        fs.append(SumCost(AffineEnergyCost(1.0), body))
    return Instance.from_functions(fs, m, _BETA)


def _build_hetero_fleet(T, rng):
    """Two-type fleet (fast/hungry vs slow/frugal) on a diurnal trace —
    the instance family of the E14 extension benchmark."""
    from ..extensions import hetero_instance_from_loads
    from ..workloads import diurnal_loads
    loads = diurnal_loads(T, peak=8.0, base_frac=0.2, noise=0.05, rng=rng)
    return hetero_instance_from_loads(loads, m1=10, m2=12, beta1=4.0,
                                      beta2=1.0)


# ----------------------------------------------------------------------
# Game-pipeline scenarios: Section 5 lower-bound games and E13
# simulator rollouts as engine instances.
# ----------------------------------------------------------------------

def _lb_builder(kind):
    def build(T, rng, eps=0.1):
        from ..lower_bounds.games import LowerBoundGame
        return LowerBoundGame(kind=kind, eps=float(eps), max_steps=T)
    build.__name__ = f"_build_lb_{kind}"
    return build


_build_lb_deterministic = _lb_builder("deterministic")
_build_lb_continuous = _lb_builder("continuous")
_build_lb_restricted = _lb_builder("restricted")


def _build_sim_diurnal(T, rng, peak=12.0, m=18, beta=6.0):
    """E13 rollout: a Poisson job trace on a diurnal rate curve plus the
    bridged cost matrix the optimizer and policies run on."""
    from ..simulator import SimulatorGame, bridge_instance, poisson_job_trace
    from ..workloads import diurnal_loads
    trace = poisson_job_trace(diurnal_loads(T, peak=peak, rng=rng), rng=rng)
    inst = bridge_instance(trace, int(m), beta=float(beta))
    return SimulatorGame(work=trace.work, F=inst.F, m=int(m),
                         beta=float(beta))


# ----------------------------------------------------------------------
# Case-study scenarios (E11): Lin et al.-style traces with the
# switching cost exposed as a grid parameter.
# ----------------------------------------------------------------------

#: case-study scenario name -> its workloads generator name
_CASE_GENERATORS = {"case-msr": "msr_like_loads",
                    "case-hotmail": "hotmail_like_loads"}
_CASE_PEAK = 30.0


def case_study_loads(name: str, T: int, rng) -> "np.ndarray":
    """The load trace a case-study scenario derives its instance from.

    ``rng`` may be a seed or a generator; the E11 benchmark reuses this
    (with the scenario's ``(name, seed)`` generator) to report the PMR
    of exactly the trace the grid jobs ran on.
    """
    import repro.workloads as workloads
    if not hasattr(rng, "uniform"):
        rng = _scenario_rng(name, int(rng))
    return getattr(workloads, _CASE_GENERATORS[name])(T, peak=_CASE_PEAK,
                                                      rng=rng)


def _case_study(name):
    def build(T, rng, beta=4.0):
        return _from_loads(case_study_loads(name, T, rng),
                           beta=float(beta))
    build.__name__ = f"_build_{name.replace('-', '_')}"
    return build


_build_case_msr = _case_study("case-msr")
_build_case_hotmail = _case_study("case-hotmail")


_CATALOG: dict[str, Scenario] = {}

for _sc in (
    Scenario("diurnal", _build_diurnal, ("trace",),
             "sinusoidal day/night swing with noise"),
    Scenario("msr-like", _build_msr, ("trace",),
             "MSR-trace shape: PMR ~2 diurnal with lulls"),
    Scenario("hotmail-like", _build_hotmail, ("trace",),
             "Hotmail-trace shape: PMR ~4-5, weekly dip, bursts"),
    Scenario("bursty", _build_bursty, ("trace",),
             "low base load with flash-crowd bursts"),
    Scenario("onoff", _build_onoff, ("trace",),
             "two-state Markov-modulated demand"),
    Scenario("sawtooth", _build_sawtooth, ("deterministic",),
             "sawtooth oscillation punishing eager switching"),
    Scenario("regime-switching", _build_regime, ("trace",),
             "stepwise regime changes stressing laziness thresholds"),
    Scenario("random-convex", _build_random_convex, ("random",),
             "random convex rows, random beta (property-test family)"),
    Scenario("adversarial-hinge", _build_adversarial_hinge,
             ("adversarial", "deterministic"),
             "Theorem-4 hinge blocks pushing LCP toward ratio 3"),
    Scenario("restricted-diurnal", _build_restricted_diurnal,
             ("restricted", "trace"),
             "eq. (2) restricted model via the perspective encoding",
             build_restricted=_build_restricted_diurnal_ri),
    Scenario("hetero-mix", _build_hetero_mix, ("heterogeneous", "trace"),
             "per-step costs alternate between three convex families"),
    Scenario("hetero-fleet", None, ("heterogeneous",),
             "two-type fleet: fast/hungry vs slow/frugal servers",
             build_hetero=_build_hetero_fleet),
    Scenario("lb-deterministic", None, ("game", "adversarial"),
             "Theorem 4 two-state game vs integral algorithms (-> 3)",
             build_game=_build_lb_deterministic, storable=False),
    Scenario("lb-continuous", None, ("game", "adversarial"),
             "Theorem 6/8 fractional game (B-simulating adversary, -> 2)",
             build_game=_build_lb_continuous, storable=False),
    Scenario("lb-restricted", None, ("game", "adversarial"),
             "Theorem 5/9 game embedded in the restricted model (-> 3)",
             build_game=_build_lb_restricted, storable=False),
    Scenario("sim-diurnal", None, ("game", "simulator"),
             "E13 rollout: Poisson jobs on a diurnal rate curve, "
             "policies replayed through the simulator",
             build_game=_build_sim_diurnal),
    Scenario("case-msr", _build_case_msr, ("trace", "case-study"),
             "E11 case study: MSR-shaped trace, switching cost as a "
             "grid parameter"),
    Scenario("case-hotmail", _build_case_hotmail, ("trace", "case-study"),
             "E11 case study: Hotmail-shaped trace, switching cost as "
             "a grid parameter"),
):
    _CATALOG[_sc.name] = _sc


def scenario_names(tag: str | None = None) -> tuple[str, ...]:
    """All scenario names, optionally filtered by tag."""
    return tuple(n for n, s in _CATALOG.items()
                 if tag is None or tag in s.tags)


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario; raises ``KeyError`` with choices."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choose from "
                       f"{sorted(_CATALOG)}") from None


def build_instance(name: str, T: int, seed: int = 0,
                   pipeline: str = "general",
                   params: dict | None = None):
    """Build the instance of scenario ``name`` for ``(T, seed)`` under
    one of the engine pipelines
    (``general``/``restricted``/``hetero``/``game``), optionally with
    the scenario-parameter dict of a grid's ``params`` axis."""
    return get_scenario(name).instance(T, seed, pipeline, params)


def trace_suite(T: int = 168, seed: int = 0) -> list:
    """The (name, instance) suite of the five evaluation trace families.

    Replaces the duplicated ``benchmarks/conftest.py:trace_suite``; kept
    as a function so existing benchmarks keep working unchanged.
    """
    return [(name, build_instance(name, T, seed))
            for name in TRACE_FAMILIES]
