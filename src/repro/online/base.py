"""Online algorithm protocol and replay harness.

An online algorithm sees the tabulated cost function ``f_t`` (one row of
the instance's cost matrix) and must commit to a state ``x_t`` before
``f_{t+1}`` is revealed.  Algorithms with a prediction window ``w``
additionally receive the next ``w`` rows (Section 5.4).

Fractional algorithms return float states in ``[0, m]`` and are evaluated
against the continuous extension ``P-bar``; integral algorithms return
integer states.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import kernels
from ..core.instance import Instance
from ..core.schedule import cost as schedule_cost

__all__ = ["OnlineAlgorithm", "OnlineResult", "run_online",
           "run_online_many"]


class OnlineAlgorithm:
    """Base class for online algorithms.

    Subclasses set :attr:`name`, :attr:`fractional` and
    :attr:`lookahead`, implement :meth:`reset` and :meth:`step`, and may
    keep arbitrary internal state between steps.

    Algorithms of the LCP family additionally set
    :attr:`consumes_bounds` and implement :meth:`step_bounds`: their
    decision at time ``tau`` is a pure function of the work-function
    bounds ``(x^L_tau, x^U_tau)`` (plus their own previous state), so a
    single ``O(T m)`` :class:`~repro.online.workfunction.WorkFunctions`
    sweep can serve every such algorithm replayed on the same instance
    (:func:`run_online_many`).
    """

    name: str = "online"
    #: whether :meth:`step` returns fractional states
    fractional: bool = False
    #: prediction-window length ``w`` (rows passed via ``future``)
    lookahead: int = 0
    #: whether the step decision factors through the LCP bounds
    #: ``(x^L, x^U)`` — enables the shared work-function replay
    consumes_bounds: bool = False

    def reset(self, m: int, beta: float) -> None:
        """Prepare for a fresh instance with states ``0..m``."""
        raise NotImplementedError

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None):
        """Process the next cost function and return the chosen state.

        ``f_row`` is the tabulated ``f_t`` on ``0..m``; ``future`` holds
        the next ``min(w, remaining)`` rows when ``lookahead > 0``.
        """
        raise NotImplementedError

    def step_bounds(self, lo: int, hi: int):
        """Commit the step from externally computed bounds (only for
        algorithms with :attr:`consumes_bounds`)."""
        raise NotImplementedError(
            f"{self.name} does not consume work-function bounds")

    def run_bounds(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Commit a whole trajectory from precomputed per-step bounds.

        Used by the replay harness when the vectorized kernel supplies
        the full ``(x^L_t, x^U_t)`` trajectory at once (only for
        algorithms with :attr:`consumes_bounds`).  The default simply
        loops :meth:`step_bounds`, so any consumer is automatically
        bit-identical to its per-step replay; subclasses may override
        with a tighter loop.
        """
        out = np.empty(len(lo),
                       dtype=np.float64 if self.fractional else np.int64)
        for t, (b_lo, b_hi) in enumerate(zip(np.asarray(lo).tolist(),
                                             np.asarray(hi).tolist())):
            out[t] = self.step_bounds(b_lo, b_hi)
        return out

    def run_table(self, F: np.ndarray):
        """Optional whole-trajectory fast path over the full cost table.

        Called by the replay harness (after :meth:`reset`, instead of
        the per-step loop) when the vectorized kernel is active.
        Implementations must return the full state trajectory as an
        array **bit-identical** to stepping :meth:`step` row by row, or
        ``None`` to decline — the harness then falls back to the
        per-step loop (a declining implementation must return before
        mutating any internal state).  Algorithms whose decisions depend on unrevealed
        rows must not implement this (the harness never passes future
        information the per-step protocol would not have revealed).
        """
        return None

    @property
    def state(self):
        """Most recent state (``x_{t-1}``); defined after :meth:`reset`."""
        return self._state

    def _set_state(self, x) -> None:
        self._state = x


@dataclasses.dataclass(frozen=True)
class OnlineResult:
    """Replay result: schedule, its cost, and bookkeeping."""

    schedule: np.ndarray
    cost: float
    name: str
    fractional: bool

    def __post_init__(self):
        s = np.ascontiguousarray(np.asarray(self.schedule, dtype=np.float64))
        s.setflags(write=False)
        object.__setattr__(self, "schedule", s)


def _checked_state(algorithm: OnlineAlgorithm, x, t: int, m: int):
    """Validate and clip one committed state (shared by both replays)."""
    if algorithm.fractional:
        xf = float(x)
        if not -1e-9 <= xf <= m + 1e-9:
            raise ValueError(
                f"{algorithm.name} left [0, m] at t={t + 1}: {xf}")
        return min(max(xf, 0.0), float(m))
    xi = int(x)
    if not 0 <= xi <= m:
        raise ValueError(
            f"{algorithm.name} left [0, m] at t={t + 1}: {xi}")
    return xi


def _priced(instance: Instance, algorithm: OnlineAlgorithm,
            xs: np.ndarray) -> OnlineResult:
    """Price a committed schedule with eq. (1) — via the continuous
    extension for fractional algorithms."""
    total = schedule_cost(instance, xs.astype(np.float64),
                          integral=not algorithm.fractional)
    return OnlineResult(schedule=xs, cost=total, name=algorithm.name,
                        fractional=algorithm.fractional)


def _checked_schedule(algorithm: OnlineAlgorithm, xs, m: int) -> np.ndarray:
    """Validate and clip a whole fast-path trajectory at once.

    Vectorized twin of :func:`_checked_state`: same tolerance, same
    clipping, and the same error message (anchored at the first
    offending step) when an algorithm leaves ``[0, m]``.
    """
    if algorithm.fractional:
        xs = np.asarray(xs, dtype=np.float64)
        bad = (xs < -1e-9) | (xs > m + 1e-9) | np.isnan(xs)
        if bad.any():
            t = int(bad.argmax())
            raise ValueError(
                f"{algorithm.name} left [0, m] at t={t + 1}: {float(xs[t])}")
        return np.clip(xs, 0.0, float(m))
    xs = np.asarray(xs, dtype=np.int64)
    bad = (xs < 0) | (xs > m)
    if bad.any():
        t = int(bad.argmax())
        raise ValueError(
            f"{algorithm.name} left [0, m] at t={t + 1}: {int(xs[t])}")
    return xs


def _fast_trajectory(instance: Instance, algorithm: OnlineAlgorithm,
                     bounds) -> np.ndarray | None:
    """One algorithm's whole-trajectory fast path, or ``None``.

    Active only under the vectorized kernel (``REPRO_KERNEL=scalar``
    restores the per-step reference loops end to end).  Consumers of
    work-function bounds replay from a shared kernel sweep (``bounds``,
    computed here when the caller has none); other algorithms may offer
    :meth:`OnlineAlgorithm.run_table`.  The algorithm must already be
    reset.
    """
    if algorithm.consumes_bounds and algorithm.lookahead == 0:
        if bounds is None:
            bounds = kernels.sweep_workfunction(instance.F, instance.beta)
        return _checked_schedule(
            algorithm, algorithm.run_bounds(bounds.lo, bounds.hi),
            instance.m)
    xs = algorithm.run_table(instance.F)
    if xs is None:
        return None
    return _checked_schedule(algorithm, xs, instance.m)


def _replay_loop(instance: Instance, algorithms, outs) -> None:
    """The per-step reference replay (shared work-function sweep).

    Fills one preallocated schedule array per algorithm.  Algorithms
    must already be reset; consumers share a single
    :class:`~repro.online.workfunction.WorkFunctions` maintenance, with
    window-extended bounds computed once per distinct window length per
    step.
    """
    T, m = instance.T, instance.m
    wf = None
    if any(a.consumes_bounds for a in algorithms):
        from .lcp import lookahead_bounds
        from .workfunction import WorkFunctions
        wf = WorkFunctions(m, instance.beta)
    for t in range(T):
        f_row = instance.F[t]
        if wf is not None:
            wf.update(f_row)
        bounds: dict[int, tuple[int, int]] = {}
        for algorithm, out in zip(algorithms, outs):
            w = algorithm.lookahead
            future = instance.F[t + 1:t + 1 + w] if w > 0 else None
            if algorithm.consumes_bounds:
                eff = (w if w > 0 and future is not None
                       and future.shape[0] > 0 else 0)
                if eff not in bounds:
                    bounds[eff] = (lookahead_bounds(wf, future) if eff
                                   else wf.bounds())
                x = algorithm.step_bounds(*bounds[eff])
            else:
                x = algorithm.step(f_row, future)
            out[t] = _checked_state(algorithm, x, t, m)


def run_online(instance: Instance, algorithm: OnlineAlgorithm, *,
               bounds=None) -> OnlineResult:
    """Replay an instance through an online algorithm.

    The algorithm sees rows of ``instance.F`` one at a time (plus its
    prediction window, if any) and the resulting schedule is priced with
    eq. (1) — via the continuous extension for fractional algorithms.

    Under a vectorized kernel (:func:`repro.kernels.is_vectorized`,
    i.e. ``"vector"`` — the default — or ``"batched"``) algorithms
    that consume work-function bounds replay from one whole-table kernel sweep — ``bounds`` may
    pass a precomputed :class:`repro.kernels.SweepResult` (e.g. the
    engine's per-instance memo) — and algorithms offering
    :meth:`OnlineAlgorithm.run_table` commit their whole trajectory in
    one call.  Both fast paths are bit-identical to the per-step loop
    (enforced by ``tests/test_kernels.py``); ``REPRO_KERNEL=scalar``
    disables them.
    """
    T, m = instance.T, instance.m
    algorithm.reset(m, instance.beta)
    if kernels.is_vectorized():
        xs = _fast_trajectory(instance, algorithm, bounds)
        if xs is not None:
            return _priced(instance, algorithm, xs)
    xs = np.empty(T, dtype=np.float64 if algorithm.fractional else np.int64)
    _replay_loop(instance, [algorithm], [xs])
    return _priced(instance, algorithm, xs)


def run_online_many(instance: Instance, algorithms, *,
                    bounds=None) -> list[OnlineResult]:
    """Replay several online algorithms over one instance in one pass.

    Algorithms with :attr:`OnlineAlgorithm.consumes_bounds` (the LCP
    family) share a single work-function sweep: the ``O(T m)``
    maintenance of ``hat-C^L_tau`` — the dominant kernel of the
    Section 3 discrete algorithms — is paid once per *instance* instead
    of once per *job*, and each consumer commits its steps from the
    same ``(x^L, x^U)`` trajectory.  Under a vectorized kernel the
    sweep is one whole-table kernel call (or the precomputed ``bounds``
    handed in by the engine) and other algorithms may take their
    :meth:`OnlineAlgorithm.run_table` fast path; everything else —
    including every algorithm when ``REPRO_KERNEL=scalar`` — is stepped
    in the per-step reference loop.  Algorithms with a prediction
    window get the window-extended bounds, computed once per distinct
    window length per step.

    Results are bit-identical to replaying each algorithm through
    :func:`run_online` separately: the bounds are deterministic
    functions of the revealed prefix, and validation and pricing are
    shared code paths.
    """
    algorithms = list(algorithms)
    if not algorithms:
        return []
    T, m = instance.T, instance.m
    for algorithm in algorithms:
        algorithm.reset(m, instance.beta)
    xs = [np.empty(T, dtype=np.float64 if a.fractional else np.int64)
          for a in algorithms]
    slow_idx = list(range(len(algorithms)))
    if kernels.is_vectorized():
        slow_idx = []
        for i, algorithm in enumerate(algorithms):
            if (bounds is None and algorithm.consumes_bounds
                    and algorithm.lookahead == 0):
                bounds = kernels.sweep_workfunction(instance.F,
                                                    instance.beta)
            fast = _fast_trajectory(instance, algorithm, bounds)
            if fast is None:
                slow_idx.append(i)
            else:
                xs[i] = fast
    if slow_idx:
        _replay_loop(instance, [algorithms[i] for i in slow_idx],
                     [xs[i] for i in slow_idx])
    return [_priced(instance, algorithm, x)
            for algorithm, x in zip(algorithms, xs)]
