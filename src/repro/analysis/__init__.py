"""Analysis utilities: metrics, sweeps, text tables."""

from .metrics import (competitive_ratio, empirical_ratios, optimal_cost,
                      regret_vs_static, savings_vs_static, schedule_stats)
from .plotting import block_chart, schedule_chart, sparkline
from .report import (EXPERIMENTS, assemble_report, headline_numbers,
                     load_results, missing_experiments)
from .sensitivity import beta_sweep, capacity_sweep, is_concave_sequence
from .sweep import sweep
from .tables import format_series, format_table

__all__ = [
    "competitive_ratio", "empirical_ratios", "optimal_cost",
    "regret_vs_static", "savings_vs_static", "schedule_stats",
    "block_chart", "schedule_chart", "sparkline",
    "EXPERIMENTS", "assemble_report", "headline_numbers", "load_results",
    "missing_experiments",
    "beta_sweep", "capacity_sweep", "is_concave_sequence",
    "sweep",
    "format_series", "format_table",
]
