"""Tests for the online runner protocol and result containers."""

import numpy as np
import pytest

from repro.lower_bounds import DeterministicDiscreteAdversary, ratio_curve
from repro.offline.result import OfflineResult
from repro.online import LCP, OnlineAlgorithm, run_online
from tests.conftest import random_convex_instance


class _RogueInteger(OnlineAlgorithm):
    fractional = False
    name = "rogue"

    def reset(self, m, beta):
        self._set_state(0)

    def step(self, f_row, future=None):
        return 999


class _RogueFractional(OnlineAlgorithm):
    fractional = True
    name = "rogue-frac"

    def reset(self, m, beta):
        self._set_state(0.0)

    def step(self, f_row, future=None):
        return -3.5


class _EchoLookahead(OnlineAlgorithm):
    fractional = False
    name = "echo"
    lookahead = 3

    def reset(self, m, beta):
        self.windows = []
        self._set_state(0)

    def step(self, f_row, future=None):
        self.windows.append(0 if future is None else future.shape[0])
        return 0


class TestRunner:
    def test_out_of_range_integer_state_rejected(self):
        rng = np.random.default_rng(280)
        inst = random_convex_instance(rng, 3, 2, 1.0)
        with pytest.raises(ValueError, match="left \\[0, m\\]|left \\[0,"):
            run_online(inst, _RogueInteger())

    def test_out_of_range_fractional_state_rejected(self):
        rng = np.random.default_rng(281)
        inst = random_convex_instance(rng, 3, 2, 1.0)
        with pytest.raises(ValueError):
            run_online(inst, _RogueFractional())

    def test_lookahead_window_sizes(self):
        """The runner passes min(w, remaining) future rows."""
        rng = np.random.default_rng(282)
        inst = random_convex_instance(rng, 6, 2, 1.0)
        algo = _EchoLookahead()
        run_online(inst, algo)
        assert algo.windows == [3, 3, 3, 2, 1, 0]

    def test_result_schedule_readonly(self):
        rng = np.random.default_rng(283)
        inst = random_convex_instance(rng, 4, 3, 1.0)
        res = run_online(inst, LCP())
        with pytest.raises(ValueError):
            res.schedule[0] = 5.0

    def test_base_class_abstract(self):
        algo = OnlineAlgorithm()
        with pytest.raises(NotImplementedError):
            algo.reset(1, 1.0)
        with pytest.raises(NotImplementedError):
            algo.step(np.zeros(2))


class TestOfflineResult:
    def test_schedule_frozen(self):
        res = OfflineResult(schedule=np.array([1, 2]), cost=1.0,
                            method="x")
        with pytest.raises(ValueError):
            res.schedule[0] = 7

    def test_none_schedule_allowed(self):
        res = OfflineResult(schedule=None, cost=2.0, method="x")
        assert res.schedule is None


class TestRatioCurve:
    def test_curve_rows_and_monotone_shape(self):
        rows = ratio_curve(DeterministicDiscreteAdversary, LCP,
                           [0.3, 0.1], T_cap=3000)
        assert [r["eps"] for r in rows] == [0.3, 0.1]
        for r in rows:
            assert 1.0 <= r["ratio"] <= 3.0 + 1e-9
            assert r["alg_cost"] >= r["opt_cost"] - 1e-9
        assert rows[1]["ratio"] >= rows[0]["ratio"] - 0.2
