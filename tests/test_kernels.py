"""Scalar vs vectorized kernel equivalence (the PR 6 acceptance suite).

The contract (docs/KERNELS.md): the vectorized whole-table kernels are
**bit-identical** to the per-step scalar reference — same bound
trajectories, same optimum float, same replayed schedules and costs —
for every sweep-sharing algorithm, the backward solver, and whole
engine grids across pipelines.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import scalar as scalar_kernel
from repro.kernels import vectorized as vector_kernel
from repro.offline import solve_backward_lcp, solve_dp
from repro.offline.backward import prefix_bounds
from repro.online import run_online, run_online_many
from repro.online.workfunction import WorkFunctions
from repro.runner import GridSpec, run_grid
from repro.runner.registry import _REGISTRY, get_spec
from repro.runner.scenarios import build_instance


def _random_instances():
    """A spread of shapes: tiny horizons, flat ties, real scenarios."""
    rng = np.random.default_rng(7)
    for trial in range(8):
        T = int(rng.integers(1, 40))
        m = int(rng.integers(0, 9))
        beta = float(rng.uniform(0.2, 6.0))
        yield rng.uniform(0.0, 10.0, size=(T, m + 1)), beta
    # plateaus: many exact argmin ties exercise first/last tie-breaking
    yield np.zeros((12, 6)), 1.5
    yield np.tile([3.0, 1.0, 1.0, 1.0, 5.0], (9, 1)), 2.0
    for scenario, T, seed in (("diurnal", 96, 0), ("sawtooth", 64, 1),
                              ("bursty", 128, 2)):
        inst = build_instance(scenario, T, seed)
        yield np.asarray(inst.F), float(inst.beta)


class TestSweepEquivalence:
    def test_sweep_bit_identical(self):
        """lo/hi/opt agree exactly between kernels on every shape."""
        for F, beta in _random_instances():
            s = scalar_kernel.sweep_workfunction(F, beta)
            v = vector_kernel.sweep_workfunction(F, beta)
            assert np.array_equal(s.lo, v.lo)
            assert np.array_equal(s.hi, v.hi)
            assert s.opt == v.opt  # bitwise, no tolerance

    def test_sweep_matches_per_step_workfunctions(self):
        """Protocol-level bound equality: the whole-table trajectories
        equal the per-step ``WorkFunctions.bounds()`` stream."""
        for F, beta in _random_instances():
            v = vector_kernel.sweep_workfunction(F, beta)
            wf = WorkFunctions(F.shape[1] - 1, beta)
            for t in range(F.shape[0]):
                wf.update(F[t])
                lo, hi = wf.bounds()
                assert (v.lo[t], v.hi[t]) == (lo, hi), f"t={t}"

    def test_opt_is_dp_optimum_bitwise(self):
        """The final work-function row's minimum *is* the Section 2 DP
        optimum — the identity the engine's phase 1 relies on."""
        for scenario, T, seed in (("diurnal", 96, 0), ("onoff", 200, 4)):
            inst = build_instance(scenario, T, seed)
            dp = solve_dp(inst, return_schedule=False).cost
            for name in kernels.KERNELS:
                with kernels.use(name):
                    sweep = kernels.sweep_workfunction(inst.F, inst.beta)
                assert sweep.opt == dp

    def test_empty_table(self):
        for name in kernels.KERNELS:
            with kernels.use(name):
                sweep = kernels.sweep_workfunction(
                    np.zeros((0, 4)), 1.0)
            assert sweep.lo.size == 0 and sweep.hi.size == 0
            assert sweep.opt == 0.0


class TestDispatch:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels.active() == "vector"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        assert kernels.active() == "scalar"

    def test_unknown_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        with pytest.raises(ValueError):
            kernels.active()
        with pytest.raises(ValueError):
            kernels.set_kernel("cuda")

    def test_use_restores_prior_selection(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        with kernels.use("vector"):
            assert kernels.active() == "vector"
        assert kernels.active() == "scalar"

    def test_cached_sweep_memoizes_per_kernel(self):
        kernels.clear_sweep_cache()
        inst = build_instance("diurnal", 24, 0)
        with kernels.use("vector"):
            first = kernels.cached_sweep("k", inst.F, inst.beta)
            again = kernels.cached_sweep("k", inst.F, inst.beta)
        assert again is first  # memo hit
        with kernels.use("scalar"):
            other = kernels.cached_sweep("k", inst.F, inst.beta)
        assert other is not first  # keyed by active kernel too
        assert np.array_equal(other.lo, first.lo)
        kernels.clear_sweep_cache()


def _sharing_online_names():
    return [name for name, spec in _REGISTRY.items()
            if spec.shares_workfunction and spec.kind == "online"]


class TestReplayEquivalence:
    """Every sweep-sharing algorithm and every fast-path baseline
    replays bit-identically under both kernels."""

    FAST_PATH_BASELINES = ("threshold", "memoryless", "followmin",
                          "never-off")

    def _replay(self, name, inst, kernel):
        with kernels.use(kernel):
            return run_online(inst, get_spec(name).make())

    @pytest.mark.parametrize("scenario,T,seed",
                             [("diurnal", 96, 0), ("sawtooth", 64, 1),
                              ("onoff", 200, 2)])
    def test_sharers_and_baselines_bit_identical(self, scenario, T, seed):
        inst = build_instance(scenario, T, seed)
        names = _sharing_online_names() + list(self.FAST_PATH_BASELINES)
        for name in names:
            s = self._replay(name, inst, "scalar")
            v = self._replay(name, inst, "vector")
            assert v.cost == s.cost, name
            assert np.array_equal(v.schedule, s.schedule), name

    def test_run_online_many_bit_identical(self):
        inst = build_instance("bursty", 128, 3)
        names = _sharing_online_names() + list(self.FAST_PATH_BASELINES)
        results = {}
        for kernel in kernels.KERNELS:
            with kernels.use(kernel):
                results[kernel] = run_online_many(
                    inst, [get_spec(n).make() for n in names])
        for name, s, v in zip(names, results["scalar"],
                              results["vector"]):
            assert v.cost == s.cost, name
            assert np.array_equal(v.schedule, s.schedule), name

    def test_lookahead_consumer_falls_back_identically(self):
        from repro.online import LCP
        inst = build_instance("diurnal", 48, 1)
        outs = {}
        for kernel in kernels.KERNELS:
            with kernels.use(kernel):
                outs[kernel] = run_online_many(
                    inst, [LCP(lookahead=3), LCP()])
        for s, v in zip(outs["scalar"], outs["vector"]):
            assert v.cost == s.cost
            assert np.array_equal(v.schedule, s.schedule)

    def test_lcp_bounds_log_matches_kernel_trajectory(self):
        """Protocol-level equality at the replay seam: the per-step
        ``bounds_log`` equals the kernel's whole-table trajectory."""
        from repro.online import LCP
        inst = build_instance("sawtooth", 64, 0)
        logs = {}
        for kernel in kernels.KERNELS:
            alg = LCP(record_bounds=True)
            with kernels.use(kernel):
                run_online(inst, alg)
            logs[kernel] = alg.bounds_log
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        expected = list(zip(sweep.lo.tolist(), sweep.hi.tolist()))
        assert logs["scalar"] == expected
        assert logs["vector"] == expected


class TestBackwardSolver:
    def test_backward_lcp_bit_identical(self):
        for scenario, T, seed in (("diurnal", 96, 0), ("onoff", 200, 4)):
            inst = build_instance(scenario, T, seed)
            outs = {}
            for kernel in kernels.KERNELS:
                with kernels.use(kernel):
                    outs[kernel] = solve_backward_lcp(inst)
            assert outs["vector"].cost == outs["scalar"].cost
            assert np.array_equal(outs["vector"].schedule,
                                  outs["scalar"].schedule)

    def test_precomputed_bounds_short_circuit(self):
        inst = build_instance("diurnal", 48, 0)
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        direct = solve_backward_lcp(inst)
        handed = solve_backward_lcp(inst, bounds=sweep)
        assert handed.cost == direct.cost
        assert np.array_equal(handed.schedule, direct.schedule)

    def test_prefix_bounds_roundtrip(self):
        inst = build_instance("sawtooth", 32, 2)
        lo, hi = prefix_bounds(inst)
        sweep = kernels.sweep_workfunction(inst.F, inst.beta)
        assert np.array_equal(lo, sweep.lo)
        assert np.array_equal(hi, sweep.hi)
        assert (lo <= hi).all()  # Lemma 6


class TestEngineGrids:
    """Whole grids — every pipeline, sharers + backward solver mixed —
    produce bit-identical rows under both kernels."""

    GRIDS = {
        "general": GridSpec(
            scenarios=("diurnal", "sawtooth"),
            algorithms=("lcp", "eager-lcp", "threshold", "memoryless",
                        "followmin", "never-off", "backward_lcp", "dp"),
            seeds=(0, 1), sizes=(24,)),
        "restricted": GridSpec(
            scenarios=("restricted-diurnal",),
            algorithms=("restricted", "lcp", "eager-lcp"),
            seeds=(0,), sizes=(16,)),
        "hetero": GridSpec(
            scenarios=("hetero-fleet",),
            algorithms=("dp_hetero", "greedy_hetero"),
            seeds=(0,), sizes=(16,)),
        "lookahead": GridSpec(
            scenarios=("diurnal",),
            algorithms=("lcp", "eager-lcp", "backward_lcp"),
            seeds=(0,), sizes=(32,), lookahead=2),
    }

    @pytest.mark.parametrize("grid", sorted(GRIDS), ids=sorted(GRIDS))
    def test_grid_rows_bit_identical(self, grid):
        spec = self.GRIDS[grid]
        rows = {}
        for kernel in kernels.KERNELS:
            kernels.clear_sweep_cache()
            with kernels.use(kernel):
                rows[kernel] = run_grid(spec)
        kernels.clear_sweep_cache()
        assert rows["vector"] == rows["scalar"]

    def test_fused_chunks_share_one_sweep_with_backward(self):
        """With the vectorized kernel, a fused chunk serves the LCP
        family, the backward solver *and* the phase-1 optimum from a
        single memoized sweep per instance."""
        calls = 0
        real = vector_kernel.sweep_workfunction

        def counting(costs, beta):
            nonlocal calls
            calls += 1
            return real(costs, beta)

        spec = GridSpec(scenarios=("diurnal",),
                        algorithms=("lcp", "eager-lcp", "backward_lcp"),
                        seeds=(0,), sizes=(24,))
        kernels.clear_sweep_cache()
        vector_kernel.sweep_workfunction = counting
        try:
            with kernels.use("vector"):
                rows = run_grid(spec)
        finally:
            vector_kernel.sweep_workfunction = real
            kernels.clear_sweep_cache()
        assert len(rows) == 3
        assert calls == 1  # one instance -> one sweep, shared by all
