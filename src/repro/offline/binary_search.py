"""The paper's polynomial-time offline algorithm (Section 2.2).

The algorithm refines a coarse schedule through ``log2(m) - 1`` iterations.
Iteration ``k`` (counted ``K = log2(m) - 2`` down to ``0``) only considers
states that are multiples of ``2^k``, and only a *window* of five such
states per column:

* iteration ``K`` uses the rows ``{0, m/4, m/2, 3m/4, m}``;
* given the optimal windowed schedule ``x-hat^k`` of iteration ``k``,
  iteration ``k-1`` uses ``V^{k-1}_t = {x-hat^k_t + xi * 2^{k-1} :
  xi in {-2,-1,0,1,2}} inter [m]_0``.

Lemma 5 guarantees an optimal schedule of ``P_{k-1}`` inside that window,
so by induction (Theorem 1) the final iteration returns an optimum of the
original instance.  Each iteration is a DP over at most five states per
column, i.e. ``O(T)`` work, for ``O(T log m)`` total.

``m`` is padded to a power of two with the adverse convex extension
``f'_t(x) = x (f_t(m) + eps)`` for ``x > m`` (Section 2.2); the padded
costs are evaluated lazily so the memory footprint stays ``O(T + m)``.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.transforms import next_power_of_two
from .dp import solve_dp
from .result import OfflineResult

__all__ = ["solve_binary_search", "windowed_dp", "window_states"]


def _padded_cost_matrix(F: np.ndarray, S: np.ndarray,
                        eps: float) -> np.ndarray:
    """Operating costs of the padded instance on per-column states ``S``.

    ``S`` has shape ``(T, width)`` of int64 states (possibly ``> m``).
    Returns the matching ``(T, width)`` float64 cost matrix using the
    convex Section 2.2 extension for states above ``m`` (see
    :func:`repro.core.transforms.padded_cost` for the formula and the
    note on the paper's displayed variant).
    """
    T, m_plus = F.shape
    m = m_plus - 1
    rows = np.arange(T)[:, None]
    inside = np.minimum(S, m)
    vals = F[rows, inside].astype(np.float64, copy=True)
    over = S > m
    if np.any(over):
        top = np.broadcast_to(F[:, m][:, None], S.shape)
        vals[over] = top[over] + (S[over] - m) * (top[over] + eps)
    return vals


def windowed_dp(instance: Instance, S: np.ndarray,
                eps: float = 1.0) -> tuple[np.ndarray, float]:
    """Optimal schedule restricted to per-column state windows.

    ``S`` is an int64 matrix of shape ``(T, width)``; column ``t`` may only
    use the states ``S[t]`` (rows must be sorted; duplicate entries are
    allowed and act as padding).  States above ``instance.m`` are priced by
    the Section 2.2 padding with slope offset ``eps``.

    Returns ``(schedule, cost)`` where the cost is with respect to the
    padded instance (equal to the original cost whenever the schedule stays
    within ``0..m``).  Runs the ``O(T * width^2)`` window DP — ``O(T)`` for
    the constant window width of the paper's algorithm.
    """
    T = instance.T
    if S.shape[0] != T:
        raise ValueError(f"state windows must have {T} rows")
    beta = instance.beta
    Sf = S.astype(np.float64)
    op = _padded_cost_matrix(instance.F, S, eps)
    width = S.shape[1]
    # Hoist the per-step (width x width) switching kernels out of the
    # sequential loop: switch[t-1, i, j] = beta (S[t, j] - S[t-1, i])^+.
    # The DP loop then only does small adds and argmins (profiling shows
    # the loop is dispatch-bound, so direct ndarray methods are used).
    if T > 1:
        switch = beta * np.maximum(
            Sf[1:, None, :] - Sf[:-1, :, None], 0.0)
    D = op[0] + beta * Sf[0]
    parents = np.zeros((T, width), dtype=np.int64)
    cols = np.arange(width)
    for t in range(1, T):
        trans = D[:, None] + switch[t - 1]
        par = trans.argmin(axis=0)
        parents[t] = par
        D = op[t] + trans[par, cols]
    idx = np.empty(T, dtype=np.int64)
    idx[T - 1] = int(D.argmin())
    cost = float(D[idx[T - 1]])
    for t in range(T - 1, 0, -1):
        idx[t - 1] = parents[t, idx[t]]
    schedule = S[np.arange(T), idx]
    return schedule, cost


def window_states(center: np.ndarray, half_step: int, m_padded: int,
                  span: int = 2) -> np.ndarray:
    """Refinement windows ``{center_t + xi * half_step : |xi| <= span}``.

    Intersected with ``[0, m_padded]`` as in the paper (out-of-range states
    are clamped, which duplicates boundary states — harmless padding for
    the window DP).  Returns a sorted ``(T, 2*span+1)`` int64 matrix.
    """
    offsets = np.arange(-span, span + 1, dtype=np.int64) * half_step
    S = center[:, None] + offsets[None, :]
    np.clip(S, 0, m_padded, out=S)
    S.sort(axis=1)
    return S


def solve_binary_search(instance: Instance, eps: float = 1.0,
                        validate: bool = False) -> OfflineResult:
    """Optimal offline schedule via the paper's ``O(T log m)`` algorithm.

    Parameters
    ----------
    eps:
        Slope offset of the power-of-two padding (any positive value gives
        the same optimum; exposed for the robustness tests).
    validate:
        Assert after every iteration that the refined windows contain the
        states required by Lemma 5 (debugging aid used in tests).
    """
    T, m = instance.T, instance.m
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="binary_search")
    if m <= 3:
        # The construction needs m >= 4 (K = log2(m) - 2 >= 0); tiny state
        # spaces are solved directly, matching the paper's assumption that
        # m is a (reasonably large) power of two.
        res = solve_dp(instance)
        return OfflineResult(schedule=res.schedule, cost=res.cost,
                             method="binary_search", iterations=1)
    m_padded = next_power_of_two(m)
    K = int(np.log2(m_padded)) - 2
    # Iteration K: rows {0, m/4, m/2, 3m/4, m} for every column.
    quarter = m_padded // 4
    first = np.arange(5, dtype=np.int64) * quarter
    S = np.broadcast_to(first, (T, 5)).copy()
    schedule, cost = windowed_dp(instance, S, eps)
    iterations = 1
    for k in range(K, 0, -1):
        half = 1 << (k - 1)
        S = window_states(schedule, half, m_padded)
        if validate:
            assert np.all(S % half == 0), "window left the 2^(k-1) grid"
        schedule, cost = windowed_dp(instance, S, eps)
        iterations += 1
    if np.any(schedule > m):  # pragma: no cover - padding is adverse
        raise AssertionError("optimal schedule used a padded state")
    return OfflineResult(schedule=schedule, cost=cost,
                         method="binary_search", iterations=iterations)
