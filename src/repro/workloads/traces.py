"""Turn load traces into problem instances.

Two encodings:

* :func:`instance_from_loads` — the **general model**: per-step convex
  cost built from an energy term (linear in active servers) plus an
  M/M/1-style latency penalty that explodes as capacity approaches the
  load, optionally an SLA hinge.  This is the cost structure Lin et al.
  motivate (energy + delay).
* :func:`restricted_from_loads` — the **restricted model** (eq. (2)):
  a single per-server utilization cost ``f`` shared by all steps.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.costs import (AffineEnergyCost, QueueingDelayCost, SLAHingeCost,
                          SumCost)
from ..core.instance import Instance, RestrictedInstance

__all__ = [
    "instance_from_loads",
    "restricted_from_loads",
    "default_server_cost",
    "capacity_for",
]


def capacity_for(loads: np.ndarray, slack: float = 1.25) -> int:
    """A data-center size comfortably above the trace's peak."""
    peak = float(np.max(np.asarray(loads, dtype=np.float64)))
    return max(int(math.ceil(peak * slack)), 1)


def instance_from_loads(loads, m: int, beta: float, *,
                        energy: float = 1.0, delay_weight: float = 2.0,
                        sla_penalty: float = 0.0) -> Instance:
    """General-model instance from a load trace.

    ``f_t(x) = energy * x + delay_weight * QueueingDelay(load_t)(x)
    [+ sla_penalty * (load_t - x)^+]`` — convex in ``x`` (sum of convex
    parts), non-negative, and exhibiting the tension the paper studies:
    few servers are cheap on energy but expensive on latency.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if np.any(loads > m):
        raise ValueError("m must be at least the peak load")
    fs = []
    for lam in loads:
        parts = [AffineEnergyCost(energy),
                 QueueingDelayCost(float(lam), weight=delay_weight)]
        if sla_penalty > 0:
            parts.append(SLAHingeCost(float(lam), sla_penalty))
        fs.append(SumCost(*parts))
    return Instance.from_functions(fs, m, beta)


def default_server_cost(e0: float = 1.0, e1: float = 1.0):
    """Per-server utilization cost ``f(z) = e0 + e1 * z^2`` (convex,
    increasing on [0, 1]) for the restricted model."""

    def f(z: float) -> float:
        return e0 + e1 * z * z

    return f


def restricted_from_loads(loads, m: int, beta: float,
                          f=None) -> RestrictedInstance:
    """Restricted-model instance (eq. (2)) from a load trace."""
    if f is None:
        f = default_server_cost()
    return RestrictedInstance(beta=beta, m=m, f=f,
                              loads=np.asarray(loads, dtype=np.float64))
