"""Tests for the noisy-forecast harness."""

import numpy as np
import pytest

from repro.analysis import optimal_cost
from repro.core.costs import is_convex_table
from repro.online import LCP, RecedingHorizonControl, run_online
from repro.workloads import forecast_runner, noisy_future
from tests.conftest import random_convex_instance, trace_instance


class TestNoisyFuture:
    def test_zero_noise_close_to_exact(self):
        """With sigma = 0 only the re-convexification runs, which leaves
        convex inputs unchanged."""
        rng = np.random.default_rng(170)
        inst = random_convex_instance(rng, 5, 6, 1.0)
        out = noisy_future(inst.F, 0.0, rng)
        np.testing.assert_allclose(out, inst.F, atol=1e-9)

    def test_outputs_convex_and_nonnegative(self):
        rng = np.random.default_rng(171)
        inst = random_convex_instance(rng, 8, 7, 1.0)
        for noise in (0.05, 0.3, 1.0):
            out = noisy_future(inst.F, noise, rng)
            for row in out:
                assert is_convex_table(row)
                assert np.all(row >= -1e-12)

    def test_noise_grows_with_distance(self):
        """Further-out forecasts deviate more (averaged over draws)."""
        rng = np.random.default_rng(172)
        inst = random_convex_instance(rng, 10, 6, 1.0, scale=3.0)
        near = far = 0.0
        for _ in range(40):
            out = noisy_future(inst.F, 0.2, rng)
            near += float(np.abs(out[0] - inst.F[0]).mean())
            far += float(np.abs(out[-1] - inst.F[-1]).mean())
        assert far > near

    def test_negative_noise_rejected(self):
        rng = np.random.default_rng(173)
        with pytest.raises(ValueError):
            noisy_future(np.zeros((2, 3)), -0.1, rng)


class TestForecastRunner:
    def test_zero_noise_matches_exact_runner(self):
        inst = trace_instance(seed=1, T=48, peak=10.0, beta=4.0)
        exact = run_online(inst, LCP(lookahead=6))
        noisy = forecast_runner(inst, LCP(lookahead=6), noise=0.0, rng=0)
        np.testing.assert_array_equal(exact.schedule, noisy.schedule)

    def test_no_lookahead_immune_to_noise(self):
        inst = trace_instance(seed=2, T=48, peak=10.0, beta=4.0)
        a = forecast_runner(inst, LCP(), noise=0.0, rng=0)
        b = forecast_runner(inst, LCP(), noise=5.0, rng=0)
        np.testing.assert_array_equal(a.schedule, b.schedule)

    def test_guarantee_preserved_with_noise(self):
        """The present is always observed exactly, so LCP(w) under any
        forecast noise is still a valid online algorithm; its cost stays
        within 3x of optimal."""
        inst = trace_instance(seed=3, T=72, peak=10.0, beta=4.0)
        opt = optimal_cost(inst)
        for noise in (0.1, 0.5, 2.0):
            res = forecast_runner(inst, LCP(lookahead=12), noise=noise,
                                  rng=7)
            assert res.cost <= 3 * opt + 1e-7

    def test_forecast_value_decays_with_noise(self):
        """Aggregate: noisier forecasts help less (RHC is forecast-
        sensitive)."""
        costs = {}
        for noise in (0.0, 0.25, 4.0):
            total = 0.0
            for seed in range(4):
                inst = trace_instance(seed=seed, T=72, peak=10.0, beta=6.0)
                total += forecast_runner(
                    inst, RecedingHorizonControl(lookahead=8),
                    noise=noise, rng=seed).cost
            costs[noise] = total
        assert costs[0.0] <= costs[4.0]

    def test_reproducible_by_seed(self):
        inst = trace_instance(seed=4, T=48, peak=10.0, beta=4.0)
        a = forecast_runner(inst, LCP(lookahead=6), noise=0.3, rng=5)
        b = forecast_runner(inst, LCP(lookahead=6), noise=0.3, rng=5)
        np.testing.assert_array_equal(a.schedule, b.schedule)
