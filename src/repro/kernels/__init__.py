"""Work-function kernels: scalar reference vs whole-table vectorized.

The two hot recurrences of the reproduction — the ``hat-C^L`` work-
function sweep behind the Section 3 LCP bounds and Lemma 11's backward
projection — exist in two interchangeable implementations:

* :mod:`repro.kernels.scalar` — the original per-step loop over
  :class:`~repro.online.workfunction.WorkFunctions`, kept as the
  executable reference semantics;
* :mod:`repro.kernels.vectorized` — a fused whole-table sweep that
  writes the full ``(T, m+1)`` work-function table with a handful of
  in-place ufunc calls per step and extracts every per-step bound pair
  with two table-wide ``argmin`` passes;
* :mod:`repro.kernels.batched` — the same op sequence lifted to a
  ``(B, T, m+1)`` stack of same-shape instances, so one kernel launch
  amortizes ufunc-dispatch overhead across ``B`` co-scheduled
  instances (:func:`sweep_workfunction_many` groups through
  :func:`cached_sweep_many`).

All three produce **bit-identical** results — the batched kernel per
slice (no floating-point operation is reordered; see
``docs/KERNELS.md`` for the derivation and the equivalence contract,
enforced by ``tests/test_kernels.py``).

Selection is process-wide through the ``REPRO_KERNEL`` environment
variable (``"vector"``, the default, ``"batched"``, or ``"scalar"``),
read on every dispatch so forked pool workers and mid-process
:func:`use` blocks agree.  The scalar setting also disables the
whole-trajectory fast paths of the online replay layer
(:mod:`repro.online.base`), restoring the pre-kernel per-step code
paths end to end; ``"batched"`` keeps every vector fast path
(:func:`is_vectorized`) and additionally stacks same-shape sweeps.

A small per-process memo (:func:`cached_sweep`, sized by the
``REPRO_SWEEP_MEMO`` environment variable, default 16) lets the
engine's phase-1 optimum computation and phase-2 shared replay reuse
one sweep per instance; :func:`sweep_stats` exposes monotonic per-
process hit/miss counters and :func:`clear_sweep_cache` drops the memo
for benchmark hygiene.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from typing import NamedTuple

import numpy as np

__all__ = [
    "KERNELS",
    "SweepResult",
    "active",
    "backward_clamp",
    "backward_lcp",
    "cached_sweep",
    "cached_sweep_many",
    "clear_sweep_cache",
    "is_vectorized",
    "peek_sweep",
    "set_kernel",
    "sweep_stats",
    "sweep_workfunction",
    "sweep_workfunction_many",
    "use",
]

#: environment variable selecting the kernel implementation
ENV_VAR = "REPRO_KERNEL"

#: environment variable sizing the per-process sweep memo
ENV_MEMO = "REPRO_SWEEP_MEMO"

#: recognized kernel names
KERNELS = ("vector", "scalar", "batched")

_DEFAULT = "vector"


class SweepResult(NamedTuple):
    """Whole-trajectory output of one work-function sweep.

    ``lo[t]``/``hi[t]`` are the LCP bounds ``(x^L_{t+1}, x^U_{t+1})``
    of every prefix (Section 3.1) and ``opt`` is the offline optimum
    ``min_x hat-C^L_T(x)`` — bit-identical to
    :func:`repro.offline.dp.solve_dp`'s cost, because the ``hat-C^L``
    recurrence *is* the DP recurrence (see ``docs/KERNELS.md``).
    """

    lo: np.ndarray
    hi: np.ndarray
    opt: float


def active() -> str:
    """Currently selected kernel name (one of :data:`KERNELS`).

    Read from the environment on every call so the selection survives
    process forks and :func:`use` blocks without module-level state.
    """
    name = os.environ.get(ENV_VAR, _DEFAULT)
    if name not in KERNELS:
        raise ValueError(
            f"{ENV_VAR}={name!r} is not a known kernel; choose from "
            f"{KERNELS}")
    return name


def set_kernel(name: str) -> None:
    """Select the kernel process-wide (exported via ``os.environ`` so
    pool workers forked later inherit the choice)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {KERNELS}")
    os.environ[ENV_VAR] = name


@contextlib.contextmanager
def use(name: str):
    """Context manager pinning the kernel selection within a block."""
    before = os.environ.get(ENV_VAR)
    set_kernel(name)
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = before


def is_vectorized() -> bool:
    """Whether the active kernel runs the whole-table fast paths.

    True for ``"vector"`` and ``"batched"`` (the batched kernel *is*
    the vector kernel for single instances, plus stacking); False only
    for the ``"scalar"`` reference.  Gates the engine's shared-sweep
    machinery and the online layer's whole-trajectory replay.
    """
    return active() != "scalar"


def sweep_workfunction(costs: np.ndarray, beta: float) -> SweepResult:
    """One ``O(T m)`` work-function sweep over a ``(T, m+1)`` cost table.

    Dispatches to the selected kernel; all return bit-identical
    :class:`SweepResult` values (asserted by ``tests/test_kernels.py``).
    Under ``"batched"`` a single instance runs the vector kernel — the
    batched op sequence restricted to one lane is exactly that kernel.
    """
    if active() == "scalar":
        from . import scalar
        return scalar.sweep_workfunction(costs, beta)
    from . import vectorized
    return vectorized.sweep_workfunction(costs, beta)


def sweep_workfunction_many(costs, betas) -> list:
    """Sweep a stack of same-shape instances.

    ``costs`` is ``(B, T, m+1)``, ``betas`` length-``B``.  Under the
    ``"batched"`` kernel this is one stacked pass; under ``"vector"``
    and ``"scalar"`` it degenerates to per-instance sweeps.  Either
    way the results are bit-identical per slice.
    """
    if active() == "batched":
        from . import batched
        return batched.sweep_workfunction_many(costs, betas)
    return [sweep_workfunction(c, b) for c, b in zip(costs, betas)]


def backward_clamp(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Lemma 11's backward projection pass.

    With ``x-hat_{T+1} = 0``, clamp backwards:
    ``x-hat_t = [x-hat_{t+1}]^{hi_t}_{lo_t}``.  Shared by both kernels
    (the pass is ``O(T)`` scalar work on integer bounds).
    """
    T = len(lo)
    x = np.empty(T, dtype=np.int64)
    nxt = 0
    llo, lhi = np.asarray(lo).tolist(), np.asarray(hi).tolist()
    for t in range(T - 1, -1, -1):
        b_lo, b_hi = llo[t], lhi[t]
        if nxt < b_lo:
            nxt = b_lo
        elif nxt > b_hi:
            nxt = b_hi
        x[t] = nxt
    return x


def backward_lcp(costs: np.ndarray, beta: float) -> np.ndarray:
    """Lemma 11 optimal schedule of a ``(T, m+1)`` cost table.

    One forward sweep for the prefix bounds (through the selected
    kernel) plus the shared backward clamp.
    """
    sweep = sweep_workfunction(costs, beta)
    return backward_clamp(sweep.lo, sweep.hi)


# ----------------------------------------------------------------------
# Per-process sweep memo: the engine's phase 1 (offline optimum) and
# phase 2 (shared LCP-family replay + backward solver) both need the
# same sweep of the same instance; keying it by instance coordinates
# lets whichever phase runs first in a worker pay for it once.
# ----------------------------------------------------------------------

_SWEEP_CACHE: OrderedDict = OrderedDict()
_SWEEP_CACHE_SIZE = 16

# Monotonic per-process counters; consumers (run_grid) take before/after
# deltas, mirroring the instance-store stats pattern.
_SWEEP_STATS = {"sweep_memo_hits": 0, "sweep_memo_misses": 0}


def _memo_limit() -> int:
    """Sweep-memo capacity, read from ``REPRO_SWEEP_MEMO`` on every
    insertion (fork-safe, like the kernel selection itself)."""
    raw = os.environ.get(ENV_MEMO)
    if raw is None:
        return _SWEEP_CACHE_SIZE
    try:
        limit = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_MEMO}={raw!r} is not an integer memo size") from None
    if limit < 1:
        raise ValueError(f"{ENV_MEMO} must be >= 1, got {limit}")
    return limit


def _memo_store(full_key, result: SweepResult) -> None:
    limit = _memo_limit()
    _SWEEP_CACHE[full_key] = result
    while len(_SWEEP_CACHE) > limit:
        _SWEEP_CACHE.popitem(last=False)


def peek_sweep(key, *, touch: bool = True) -> SweepResult | None:
    """Return the memoized sweep for ``key`` under the active kernel,
    or ``None`` — never computes, never counts a miss.  Lets callers
    that would otherwise rebuild the cost table (e.g. the restricted
    phase-1 path) skip the rebuild when a prefetch already paid.
    ``touch=False`` makes it a pure membership probe: no LRU
    refresh, no hit counted (the prefetch pass filters with it)."""
    full_key = (active(), key)
    hit = _SWEEP_CACHE.get(full_key)
    if hit is not None and touch:
        _SWEEP_CACHE.move_to_end(full_key)
        _SWEEP_STATS["sweep_memo_hits"] += 1
    return hit


def cached_sweep(key, costs: np.ndarray, beta: float) -> SweepResult:
    """Memoized :func:`sweep_workfunction` keyed by ``key`` (hashable,
    e.g. the engine's instance coordinates) and the active kernel."""
    full_key = (active(), key)
    hit = _SWEEP_CACHE.get(full_key)
    if hit is not None:
        _SWEEP_CACHE.move_to_end(full_key)
        _SWEEP_STATS["sweep_memo_hits"] += 1
        return hit
    result = sweep_workfunction(costs, beta)
    _SWEEP_STATS["sweep_memo_misses"] += 1
    _memo_store(full_key, result)
    return result


def cached_sweep_many(items) -> list:
    """Memoized batch lookup: ``items`` is a sequence of
    ``(key, costs, beta)`` triples.

    Hits come straight from the memo; under the ``"batched"`` kernel
    the misses are grouped by table shape and each same-shape group
    runs as one stacked :func:`sweep_workfunction_many` launch (ragged
    shapes and singletons fall back to per-instance sweeps).  Every
    computed sweep lands in the memo, so the per-job paths that follow
    (phase-1 optimum, shared replay, backward solver) hit.
    """
    kernel = active()
    out: list = [None] * len(items)
    by_key: dict = {}
    for i, (key, _costs, _beta) in enumerate(items):
        full_key = (kernel, key)
        hit = _SWEEP_CACHE.get(full_key)
        if hit is not None:
            _SWEEP_CACHE.move_to_end(full_key)
            _SWEEP_STATS["sweep_memo_hits"] += 1
            out[i] = hit
        else:
            # Deduplicate repeated keys within one call; the first
            # occurrence computes, the rest share its result below.
            by_key.setdefault(key, []).append(i)
    if by_key:
        by_shape: dict = {}
        for idxs in by_key.values():
            rep = idxs[0]
            table = np.asarray(items[rep][1], dtype=np.float64)
            by_shape.setdefault(table.shape, []).append((idxs, table))
        for shape, group in by_shape.items():
            if kernel == "batched" and len(group) > 1:
                stack = np.stack([table for _idxs, table in group])
                betas = [items[idxs[0]][2] for idxs, _table in group]
                from . import batched
                sweeps = batched.sweep_workfunction_many(stack, betas)
            else:
                sweeps = [
                    sweep_workfunction(table, items[idxs[0]][2])
                    for idxs, table in group
                ]
            for (idxs, _table), sweep in zip(group, sweeps):
                _SWEEP_STATS["sweep_memo_misses"] += 1
                _memo_store((kernel, items[idxs[0]][0]), sweep)
                for i in idxs:
                    out[i] = sweep
    return out


def sweep_stats() -> dict:
    """Snapshot of the monotonic per-process memo counters
    (``sweep_memo_hits``/``sweep_memo_misses``)."""
    return dict(_SWEEP_STATS)


def clear_sweep_cache() -> None:
    """Drop the per-process sweep memo (benchmark/test hygiene).
    Counters are monotonic and unaffected — consumers take deltas."""
    _SWEEP_CACHE.clear()
