"""Sensitivity of the optimum to the model parameters.

The optimal cost has clean structure in the instance parameters, useful
both as analysis tooling and as strong test oracles:

* ``OPT(beta)`` is **concave and nondecreasing** in the switching cost:
  for a fixed schedule the objective is affine in ``beta`` (with slope
  = total power-ups), and the optimum is a pointwise minimum of affine
  functions.  The slope of ``OPT(beta)`` at any ``beta`` equals the
  optimal schedule's power-up count — an envelope-theorem reading that
  `beta_sweep` exposes.
* ``OPT(m)`` is **nonincreasing** in the fleet size (more states can
  only help).
* Scaling all operating costs by ``c`` while keeping ``beta`` fixed
  interpolates between follow-the-minimizer (``c`` large) and static
  provisioning (``c`` small).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..offline.dp import solve_dp

__all__ = ["beta_sweep", "capacity_sweep", "is_concave_sequence",
           "exact_beta_envelope", "evaluate_envelope"]


def beta_sweep(instance: Instance, betas) -> list[dict]:
    """``OPT``, optimal power-ups and switching share for each beta."""
    rows = []
    for beta in betas:
        res = solve_dp(instance.with_beta(float(beta)))
        d = np.diff(np.concatenate([[0], res.schedule]))
        ups = float(np.maximum(d, 0).sum())
        rows.append({
            "beta": float(beta),
            "opt_cost": res.cost,
            "power_ups": ups,
            "switching_share": (beta * ups / res.cost) if res.cost > 0
            else 0.0,
        })
    return rows


def capacity_sweep(instance: Instance, capacities) -> list[dict]:
    """``OPT`` restricted to fleets of size ``m' <= m`` for each m'."""
    rows = []
    for m in capacities:
        m = int(m)
        if not 0 <= m <= instance.m:
            raise ValueError(f"capacity {m} outside 0..{instance.m}")
        sub = Instance(beta=instance.beta, F=instance.F[:, :m + 1])
        res = solve_dp(sub, return_schedule=False)
        rows.append({"m": m, "opt_cost": res.cost})
    return rows


def _line_at(instance: Instance, beta: float) -> tuple[float, float]:
    """The optimal schedule's affine piece at ``beta``: (operating cost,
    power-ups), so ``OPT(beta') = op + beta' * ups`` locally."""
    res = solve_dp(instance.with_beta(float(beta)))
    d = np.diff(np.concatenate([[0], res.schedule]))
    ups = float(np.maximum(d, 0).sum())
    op = res.cost - beta * ups
    return op, ups


def exact_beta_envelope(instance: Instance, beta_min: float,
                        beta_max: float, tol: float = 1e-9) -> list[dict]:
    """The exact piecewise-linear concave envelope ``OPT(beta)`` on
    ``[beta_min, beta_max]``.

    Every schedule ``X`` contributes the line ``op(X) + beta * ups(X)``;
    ``OPT(beta)`` is their lower envelope, recovered with the standard
    parametric divide-and-conquer: solve at both endpoints, and if the
    two optimal lines disagree in the interior, recurse at their
    intersection.  Returns segments
    ``{beta_lo, beta_hi, operating, power_ups}`` ordered by beta, with
    ``power_ups`` strictly decreasing across segments (concavity).
    """
    if not 0 < beta_min <= beta_max:
        raise ValueError("need 0 < beta_min <= beta_max")
    lines: list[tuple[float, float]] = []

    def collect(b_lo, line_lo, b_hi, line_hi):
        op_lo, up_lo = line_lo
        op_hi, up_hi = line_hi
        # Same slope => same line on the whole interval (both optimal).
        if abs(up_lo - up_hi) <= tol:
            return
        cross = (op_hi - op_lo) / (up_lo - up_hi)
        if cross <= b_lo + tol or cross >= b_hi - tol:
            return
        line_mid = _line_at(instance, cross)
        op_m, up_m = line_mid
        val_m = op_m + cross * up_m
        val_lo_line = op_lo + cross * up_lo
        if val_m >= val_lo_line - max(tol, 1e-12 * abs(val_lo_line)):
            # The two endpoint lines meet on the envelope; record the
            # breakpoint by recursing no further.
            lines.append((op_lo, up_lo))
            return
        collect(b_lo, line_lo, cross, line_mid)
        collect(cross, line_mid, b_hi, line_hi)

    line_a = _line_at(instance, beta_min)
    line_b = _line_at(instance, beta_max)
    lines.append(line_a)
    collect(beta_min, line_a, beta_max, line_b)
    lines.append(line_b)
    # Deduplicate by slope, keep steepest-to-flattest order, then build
    # the segments between consecutive intersections.
    uniq: dict[float, float] = {}
    for op, up in lines:
        key = round(up, 9)
        if key not in uniq or op < uniq[key]:
            uniq[key] = op
    ordered = sorted(((op, up) for up, op in
                      ((u, o) for u, o in uniq.items())),
                     key=lambda t: -t[1])
    segments = []
    b_start = beta_min
    for i, (op, up) in enumerate(ordered):
        if i + 1 < len(ordered):
            op2, up2 = ordered[i + 1]
            b_end = (op2 - op) / (up - up2)
            b_end = min(max(b_end, b_start), beta_max)
        else:
            b_end = beta_max
        if b_end > b_start + tol or i == len(ordered) - 1:
            segments.append({"beta_lo": b_start, "beta_hi": b_end,
                             "operating": op, "power_ups": up})
            b_start = b_end
    return segments


def evaluate_envelope(segments: list[dict], beta: float) -> float:
    """Evaluate an :func:`exact_beta_envelope` result at ``beta``."""
    for seg in segments:
        if seg["beta_lo"] - 1e-9 <= beta <= seg["beta_hi"] + 1e-9:
            return seg["operating"] + beta * seg["power_ups"]
    raise ValueError(f"beta {beta} outside the envelope's range")


def is_concave_sequence(values, tol: float = 1e-9) -> bool:
    """Check discrete concavity of a sequence (second differences <= tol,
    scaled); used to verify the ``OPT(beta)`` envelope on *equally
    spaced* parameter grids."""
    v = np.asarray(values, dtype=np.float64)
    if v.size <= 2:
        return True
    d2 = np.diff(v, n=2)
    scale = max(1.0, float(np.abs(v).max()))
    return bool(np.all(d2 <= tol * scale))
