"""Discrete-time data-center simulator substrate.

The paper's operating-cost functions ``f_t`` abstract "e.g., energy cost
and service delay" of a data center.  This subpackage grounds that
abstraction: a job-level workload generator, a server-farm simulator
with queueing, energy and transition accounting, and a *bridge* that
tabulates the simulator's per-step cost into a problem instance — so
optimizing the abstract objective (eq. (1)) can be validated against
simulated, measured cost.

The closing-the-loop experiment (E13 in the benchmarks): schedules
computed by the Section 2 offline algorithm on the bridged instance
reduce *simulated* energy + latency cost relative to static
provisioning, and the abstract objective tracks the simulated cost.
"""

from .datacenter import DataCenter, ServerPowerModel, SimLog, StepMetrics
from .jobs import JobTrace, poisson_job_trace
from .bridge import (SimPolicy, SimulatorGame, bridge_instance,
                     replay_schedule, simulated_cost)

__all__ = [
    "DataCenter", "ServerPowerModel", "SimLog", "StepMetrics",
    "JobTrace", "poisson_job_trace",
    "SimPolicy", "SimulatorGame", "bridge_instance", "replay_schedule",
    "simulated_cost",
]
