"""Algorithm and solver registry.

Every offline solver and online algorithm of the reproduction is
registered under a stable name with the metadata of the paper's taxonomy
(paper section, problem variant, discrete vs fractional states,
competitive ratio, lookahead/seed support) — mirroring the "List of
Algorithms" tables of the related SOCO implementations.  The registry is
the single point the CLI, the batch engine and the benchmarks resolve
algorithms through, so a new algorithm becomes sweepable by adding one
:class:`AlgorithmSpec`.

Run ``python -m repro.runner.registry`` to print the Markdown algorithm
table embedded in the README.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

__all__ = [
    "AlgorithmSpec",
    "PIPELINES",
    "algorithm_names",
    "algorithm_table",
    "game_names",
    "get_spec",
    "make_algorithm",
    "make_solver",
    "pipeline_optimum",
    "solver_names",
]

#: problem variants, following the taxonomy of the related SOCO repos:
#: 1 — general model, convex ``f_t`` arrive over time (eq. (1));
#: 2 — restricted model, fixed per-server cost ``f`` (eq. (2));
#: 3 — variant 1 with a prediction window of length ``w`` (Section 5.4);
#: 4 — heterogeneous fleet, two server types (the paper's outlook).
VARIANTS = {1: "general", 2: "restricted", 3: "prediction window",
            4: "heterogeneous"}

#: engine pipelines: which instance representation an entry consumes —
#: ``general`` (:class:`~repro.core.instance.Instance`), ``restricted``
#: (:class:`~repro.core.instance.RestrictedInstance`, solved structurally),
#: ``hetero`` (:class:`~repro.extensions.HeterogeneousInstance`) or
#: ``game`` (adversarial games / simulator rollouts played per job:
#: :class:`~repro.lower_bounds.games.LowerBoundGame`,
#: :class:`~repro.simulator.bridge.SimulatorGame`).
PIPELINES = ("general", "restricted", "hetero", "game")


@dataclasses.dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: a named algorithm/solver plus its taxonomy.

    ``factory`` builds the runnable object: for ``kind="online"`` an
    :class:`~repro.online.base.OnlineAlgorithm`, for ``kind="offline"``
    a callable ``solver(instance) -> result`` with ``cost``/``schedule``
    attributes, for ``kind="game"`` a *player*
    ``player(game_instance) -> dict`` returning at least ``cost`` and
    ``opt`` (``None`` defers to the pipeline's hoisted baseline).
    Factories accept the keyword options the spec declares support for
    (``lookahead``, ``seed``).
    """

    name: str
    kind: str                       # "online" | "offline"
    factory: Callable
    section: str                    # paper section the algorithm is from
    variant: int                    # key into VARIANTS
    discrete: bool                  # integer states (vs fractional)
    competitive: float | None       # proven ratio; None for offline/heuristic
    optimal: bool                   # offline: exact optimum; online: ratio
    #                                 matches the model's lower bound
    supports_lookahead: bool = False
    supports_seed: bool = False
    pipeline: str = "general"       # key into PIPELINES
    summary: str = ""
    #: the entry's decisions factor through the work-function bounds
    #: ``(x^L, x^U)``: online consumers set
    #: :attr:`repro.online.OnlineAlgorithm.consumes_bounds`, and the
    #: offline ``backward_lcp`` solver accepts a precomputed bound
    #: trajectory — so the engine may serve several such jobs on one
    #: instance from a single shared work-function sweep.  The
    #: ``threshold``/``memoryless`` rules keep their own state and stay
    #: per-job.
    shares_workfunction: bool = False

    def make(self, *, lookahead: int = 0, seed=None):
        """Instantiate with only the options this spec supports."""
        kwargs = {}
        if self.supports_lookahead and lookahead:
            kwargs["lookahead"] = lookahead
        if self.supports_seed:
            kwargs["seed"] = 0 if seed is None else seed
        return self.factory(**kwargs)


_REGISTRY: dict[str, AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> AlgorithmSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate registry name {spec.name!r}")
    if spec.kind not in ("online", "offline", "game"):
        raise ValueError(f"bad kind {spec.kind!r} for {spec.name!r}")
    if spec.variant not in VARIANTS:
        raise ValueError(f"bad variant {spec.variant!r} for {spec.name!r}")
    if spec.pipeline not in PIPELINES:
        raise ValueError(f"bad pipeline {spec.pipeline!r} for "
                         f"{spec.name!r}")
    if spec.kind == "online" and spec.pipeline != "general":
        raise ValueError(f"online entry {spec.name!r} must use the "
                         "general pipeline (online algorithms consume "
                         "general instances)")
    if (spec.kind == "game") != (spec.pipeline == "game"):
        raise ValueError(f"entry {spec.name!r}: game players and the "
                         "game pipeline go together")
    if spec.shares_workfunction and (spec.pipeline != "general"
                                     or spec.kind == "game"):
        raise ValueError(f"entry {spec.name!r}: only general-pipeline "
                         "entries (online bound consumers or the "
                         "backward work-function solver) can share a "
                         "work-function sweep")
    _REGISTRY[spec.name] = spec
    return spec


# ----------------------------------------------------------------------
# Online algorithm factories (imports deferred so `import repro.runner`
# stays cheap and the workers pay only for what they run).
# ----------------------------------------------------------------------

def _make_lcp(lookahead: int = 0):
    from ..online import LCP
    return LCP(lookahead=lookahead)


def _make_threshold():
    from ..online import ThresholdFractional
    return ThresholdFractional()


def _make_randomized(seed=0):
    from ..online import RandomizedRounding, ThresholdFractional
    return RandomizedRounding(ThresholdFractional(), rng=seed)


def _make_algorithm_b():
    from ..online import AlgorithmB
    return AlgorithmB()


def _make_memoryless():
    from ..online import MemorylessBalance
    return MemorylessBalance()


def _make_followmin():
    from ..online import FollowTheMinimizer
    return FollowTheMinimizer()


def _make_never_switch():
    from ..online import NeverSwitchOn
    return NeverSwitchOn()


def _make_rhc(lookahead: int = 0):
    from ..online import RecedingHorizonControl
    return RecedingHorizonControl(lookahead=lookahead)


def _make_afhc(lookahead: int = 0):
    from ..online import AveragingFixedHorizonControl
    return AveragingFixedHorizonControl(lookahead=lookahead)


def _make_eager_lcp():
    from ..online import EagerLCP
    return EagerLCP()


# ----------------------------------------------------------------------
# Offline solver factories.
# ----------------------------------------------------------------------

def _make_binary_search():
    from ..offline import solve_binary_search
    return solve_binary_search


def _make_dp():
    from ..offline import solve_dp
    return solve_dp


def _make_dp_quadratic():
    from ..offline import solve_dp_quadratic
    return solve_dp_quadratic


def _make_graph():
    from ..offline import solve_graph
    return solve_graph


def _make_bruteforce():
    from ..offline import solve_bruteforce
    return solve_bruteforce


def _make_lp():
    from ..offline import solve_lp
    return solve_lp


def _make_backward_lcp():
    from ..offline import solve_backward_lcp
    return solve_backward_lcp


def _make_fractional():
    from ..offline import solve_fractional
    return solve_fractional


def _make_static():
    from ..online import solve_static
    return solve_static


# ----------------------------------------------------------------------
# Restricted-model and heterogeneous-pipeline solver factories.
# ----------------------------------------------------------------------

def _make_restricted():
    from ..offline import solve_restricted
    return solve_restricted


def _make_dp_hetero():
    from ..extensions import solve_dp_hetero
    return solve_dp_hetero


def _make_static_hetero():
    from ..extensions import solve_static_hetero
    return solve_static_hetero


def _make_greedy_hetero():
    from ..extensions import solve_greedy_hetero
    return solve_greedy_hetero


# ----------------------------------------------------------------------
# Game-pipeline player factories (Section 5 games, E13 rollouts).
# ----------------------------------------------------------------------

def _make_game_lcp(lookahead: int = 0):
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("lcp", lookahead=lookahead)


def _make_game_followmin():
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("followmin")


def _make_game_algorithm_b():
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("algorithm-b")


def _make_game_threshold():
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("threshold")


def _make_game_memoryless():
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("memoryless")


def _make_game_rounded():
    from ..lower_bounds.games import GamePlayer
    return GamePlayer("threshold", randomized=True)


def _make_sim_opt():
    from ..simulator import SimPolicy
    return SimPolicy("opt")


def _make_sim_lcp():
    from ..simulator import SimPolicy
    return SimPolicy("lcp")


def _make_sim_static():
    from ..simulator import SimPolicy
    return SimPolicy("static")


for _spec in (
    # -- online ---------------------------------------------------------
    AlgorithmSpec("lcp", "online", _make_lcp, "3", 1, True, 3.0, True,
                  supports_lookahead=True, shares_workfunction=True,
                  summary="lazy capacity provisioning (Theorem 2)"),
    AlgorithmSpec("threshold", "online", _make_threshold, "4", 1, False,
                  2.0, True,
                  summary="fractional threshold rule (Lemma 15)"),
    AlgorithmSpec("randomized", "online", _make_randomized, "4", 1, True,
                  2.0, True, supports_seed=True,
                  summary="threshold rule + randomized rounding "
                          "(Theorem 3)"),
    AlgorithmSpec("algorithm-b", "online", _make_algorithm_b, "5.3", 1,
                  False, 2.0, True,
                  summary="deterministic fractional algorithm B"),
    AlgorithmSpec("memoryless", "online", _make_memoryless, "related", 1,
                  False, 3.0, True,
                  summary="memoryless balance rule (optimal memoryless)"),
    AlgorithmSpec("followmin", "online", _make_followmin, "baseline", 1,
                  True, None, False,
                  summary="chase the per-step minimizer (unbounded)"),
    AlgorithmSpec("never-off", "online", _make_never_switch, "baseline", 1,
                  True, None, False,
                  summary="power everything up once, never power down"),
    AlgorithmSpec("rhc", "online", _make_rhc, "related", 3, True, None,
                  False, supports_lookahead=True,
                  summary="receding horizon control over the window"),
    AlgorithmSpec("afhc", "online", _make_afhc, "related", 3, True, None,
                  False, supports_lookahead=True,
                  summary="averaging fixed horizon control"),
    AlgorithmSpec("eager-lcp", "online", _make_eager_lcp, "ablation", 1,
                  True, None, False, shares_workfunction=True,
                  summary="anti-laziness LCP ablation (always jump to a "
                          "bound)"),
    # -- offline --------------------------------------------------------
    AlgorithmSpec("binary_search", "offline", _make_binary_search, "2.2",
                  1, True, None, True,
                  summary="O(T log m) binary-search optimum (Theorem 1)"),
    AlgorithmSpec("dp", "offline", _make_dp, "2.1", 1, True, None, True,
                  summary="O(T m) dynamic program"),
    AlgorithmSpec("dp_quadratic", "offline", _make_dp_quadratic, "2.1", 1,
                  True, None, True,
                  summary="naive O(T m^2) DP (ablation reference)"),
    AlgorithmSpec("graph", "offline", _make_graph, "2 (Fig. 1)", 1, True,
                  None, True,
                  summary="shortest path in the explicit layered graph"),
    AlgorithmSpec("bruteforce", "offline", _make_bruteforce, "verify", 1,
                  True, None, True,
                  summary="exhaustive enumeration (tiny instances)"),
    AlgorithmSpec("lp", "offline", _make_lp, "4", 1, False, None, True,
                  summary="LP over the fractional relaxation (HiGHS)"),
    AlgorithmSpec("backward_lcp", "offline", _make_backward_lcp, "3", 1,
                  True, None, True, shares_workfunction=True,
                  summary="backward work-function optimum (shares the "
                          "engine's per-instance sweep)"),
    AlgorithmSpec("fractional", "offline", _make_fractional, "4", 1,
                  False, None, True,
                  summary="optimal fractional schedule (Lemma 4)"),
    AlgorithmSpec("static", "offline", _make_static, "baseline", 1, True,
                  None, False,
                  summary="best constant provisioning in hindsight"),
    # -- restricted-model pipeline --------------------------------------
    AlgorithmSpec("restricted", "offline", _make_restricted, "eq. (2)", 2,
                  True, None, True, pipeline="restricted",
                  summary="exact restricted-model DP (states below the "
                          "load masked per column)"),
    # -- heterogeneous pipeline -----------------------------------------
    AlgorithmSpec("dp_hetero", "offline", _make_dp_hetero, "outlook", 4,
                  True, None, True, pipeline="hetero",
                  summary="exact two-type product DP (factorized "
                          "switching relaxations)"),
    AlgorithmSpec("static_hetero", "offline", _make_static_hetero,
                  "outlook", 4, True, None, False, pipeline="hetero",
                  summary="best static pair in hindsight"),
    AlgorithmSpec("greedy_hetero", "offline", _make_greedy_hetero,
                  "outlook", 4, True, None, False, pipeline="hetero",
                  summary="per-step minimizer of f_t (ignores switching)"),
    # -- game pipeline: Section 5 adversarial games ---------------------
    AlgorithmSpec("game-lcp", "game", _make_game_lcp, "5.1/5.2", 1, True,
                  None, False, supports_lookahead=True, pipeline="game",
                  summary="LCP vs the adaptive adversary (E6/E7 curves)"),
    AlgorithmSpec("game-followmin", "game", _make_game_followmin, "5.1",
                  1, True, None, False, pipeline="game",
                  summary="follow-the-minimizer vs the adversary "
                          "(the bound binds every algorithm)"),
    AlgorithmSpec("game-algorithm-b", "game", _make_game_algorithm_b,
                  "5.3", 1, False, None, False, pipeline="game",
                  summary="algorithm B vs the B-simulating adversary "
                          "(E8 curve)"),
    AlgorithmSpec("game-threshold", "game", _make_game_threshold, "5.3",
                  1, False, None, False, pipeline="game",
                  summary="fractional threshold rule vs the adversary "
                          "(Lemma 23 deviation)"),
    AlgorithmSpec("game-memoryless", "game", _make_game_memoryless,
                  "5.3", 1, False, None, False, pipeline="game",
                  summary="memoryless balance vs the adversary "
                          "(Lemma 23 deviation)"),
    AlgorithmSpec("game-rounded", "game", _make_game_rounded, "5.3", 1,
                  True, None, False, pipeline="game",
                  summary="Theorem 8 reduction: exact expected cost of "
                          "the rounded threshold rule (E9 curve)"),
    # -- game pipeline: E13 simulator rollouts --------------------------
    AlgorithmSpec("sim-opt", "game", _make_sim_opt, "E13", 1, True, None,
                  True, pipeline="game",
                  summary="Section-2 optimal schedule replayed through "
                          "the job-level simulator"),
    AlgorithmSpec("sim-lcp", "game", _make_sim_lcp, "E13", 1, True, None,
                  False, pipeline="game",
                  summary="LCP schedule replayed through the simulator"),
    AlgorithmSpec("sim-static", "game", _make_sim_static, "E13", 1, True,
                  None, False, pipeline="game",
                  summary="best static provisioning replayed through "
                          "the simulator"),
):
    _register(_spec)


#: per pipeline, the registry entry whose solver *is* the engine's
#: phase-1 optimum computation — re-running it in phase 2 would repeat
#: the identical call on the identical instance, so its cost is the
#: optimum by construction (the general pipeline is deliberately absent:
#: its exact solvers — binary_search, graph, ... — are *different*
#: algorithms from the phase-1 DP and cross-validate it)
_PIPELINE_OPTIMA = {"restricted": "restricted", "hetero": "dp_hetero"}


def pipeline_optimum(pipeline: str) -> str | None:
    """Name of the registry entry defining ``pipeline``'s offline
    optimum, or ``None`` when the optimum is computed independently."""
    return _PIPELINE_OPTIMA.get(pipeline)


def get_spec(name: str) -> AlgorithmSpec:
    """Resolve a registry entry; raises ``KeyError`` with choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; choose from "
                       f"{sorted(_REGISTRY)}") from None


def algorithm_names(pipeline: str | None = None) -> tuple[str, ...]:
    """Names of the registered online algorithms (optionally filtered by
    engine pipeline)."""
    return tuple(n for n, s in _REGISTRY.items() if s.kind == "online"
                 and (pipeline is None or s.pipeline == pipeline))


def solver_names(pipeline: str | None = None) -> tuple[str, ...]:
    """Names of the registered offline solvers (optionally filtered by
    engine pipeline)."""
    return tuple(n for n, s in _REGISTRY.items() if s.kind == "offline"
                 and (pipeline is None or s.pipeline == pipeline))


def game_names() -> tuple[str, ...]:
    """Names of the registered game-pipeline players."""
    return tuple(n for n, s in _REGISTRY.items() if s.kind == "game")


def make_algorithm(name: str, *, lookahead: int = 0, seed=None):
    """Instantiate a registered online algorithm."""
    spec = get_spec(name)
    if spec.kind != "online":
        raise ValueError(f"{name!r} is an offline solver, not an online "
                         "algorithm")
    return spec.make(lookahead=lookahead, seed=seed)


def make_solver(name: str) -> Callable:
    """Resolve a registered offline solver to ``solver(instance)``."""
    spec = get_spec(name)
    if spec.kind != "offline":
        raise ValueError(f"{name!r} is an online algorithm, not an "
                         "offline solver")
    return spec.make()


def algorithm_table() -> str:
    """The registry as a Markdown table (embedded in the README)."""
    header = ("| Name | Paper section | Variant | Discrete? | Online? | "
              "Lookahead? | Competitive ratio | Notes |")
    rule = "|" + " --- |" * 8
    lines = [header, rule]
    yes, no = "yes", "no"
    for spec in _REGISTRY.values():
        if spec.competitive is not None:
            ratio = f"{spec.competitive:g}-competitive"
            if spec.optimal:
                ratio += " (optimal)"
        elif spec.kind == "offline" and spec.optimal:
            ratio = "exact optimum"
        else:
            ratio = "—"
        lines.append(
            f"| `{spec.name}` | {spec.section} | "
            f"{VARIANTS[spec.variant]} | "
            f"{yes if spec.discrete else no} | "
            f"{yes if spec.kind == 'online' else no} | "
            f"{yes if spec.supports_lookahead else no} | "
            f"{ratio} | {spec.summary} |")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(algorithm_table())
