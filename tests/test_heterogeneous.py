"""Tests for the two-type heterogeneous extension."""

import itertools

import numpy as np
import pytest

from repro.extensions import (HeterogeneousInstance, hetero_cost,
                              hetero_instance_from_loads, solve_dp_hetero,
                              solve_greedy_hetero, solve_static_hetero)
from repro.offline import solve_dp


def random_hetero(rng, T, m1, m2, beta1=1.0, beta2=0.7):
    F = rng.uniform(0, 5, size=(T, m1 + 1, m2 + 1))
    return HeterogeneousInstance(beta1=beta1, beta2=beta2, F=F)


def brute_force_hetero(inst):
    best = np.inf
    arg = None
    states = list(itertools.product(range(inst.m1 + 1),
                                    range(inst.m2 + 1)))
    for combo in itertools.product(states, repeat=inst.T):
        X1 = np.array([c[0] for c in combo])
        X2 = np.array([c[1] for c in combo])
        c = hetero_cost(inst, X1, X2)
        if c < best:
            best, arg = c, (X1, X2)
    return arg[0], arg[1], best


class TestExactness:
    def test_dp_matches_bruteforce(self):
        rng = np.random.default_rng(230)
        for _ in range(12):
            T = int(rng.integers(1, 4))
            m1 = int(rng.integers(1, 3))
            m2 = int(rng.integers(1, 3))
            inst = random_hetero(rng, T, m1, m2,
                                 beta1=float(rng.uniform(0.3, 2)),
                                 beta2=float(rng.uniform(0.3, 2)))
            X1, X2, c = solve_dp_hetero(inst)
            _, _, bf = brute_force_hetero(inst)
            assert c == pytest.approx(bf), (T, m1, m2)
            assert hetero_cost(inst, X1, X2) == pytest.approx(c)

    def test_degenerate_type_recovers_homogeneous(self):
        """With m2 = 0 the product DP must equal the 1-D DP."""
        from tests.conftest import random_convex_instance
        rng = np.random.default_rng(231)
        for _ in range(8):
            T = int(rng.integers(1, 8))
            m = int(rng.integers(1, 6))
            beta = float(rng.uniform(0.3, 2))
            homo = random_convex_instance(rng, T, m, beta)
            rows = homo.F
            hetero = HeterogeneousInstance(beta1=beta, beta2=1.0,
                                           F=rows[:, :, None])
            X1, X2, c = solve_dp_hetero(hetero)
            assert c == pytest.approx(solve_dp(homo).cost)
            np.testing.assert_array_equal(X2, 0)

    def test_empty_horizon(self):
        inst = HeterogeneousInstance(beta1=1.0, beta2=1.0,
                                     F=np.zeros((0, 3, 3)))
        X1, X2, c = solve_dp_hetero(inst)
        assert c == 0.0 and X1.size == 0

    def test_separable_relaxation_equals_naive(self):
        """The two axis sweeps implement the joint min-convolution."""
        from repro.extensions.heterogeneous import _relax_axis
        rng = np.random.default_rng(232)
        D = rng.uniform(0, 10, size=(5, 4))
        b1, b2 = 1.3, 0.6
        fast = _relax_axis(_relax_axis(D, b1, 0), b2, 1)
        naive = np.empty_like(D)
        for v1 in range(5):
            for v2 in range(4):
                best = np.inf
                for u1 in range(5):
                    for u2 in range(4):
                        best = min(best, D[u1, u2]
                                   + b1 * max(v1 - u1, 0)
                                   + b2 * max(v2 - u2, 0))
                naive[v1, v2] = best
        np.testing.assert_allclose(fast, naive)


class TestBaselines:
    def test_static_minimizes_constant_pairs(self):
        rng = np.random.default_rng(233)
        inst = random_hetero(rng, 5, 3, 2)
        X1, X2, c = solve_static_hetero(inst)
        assert c == pytest.approx(hetero_cost(inst, X1, X2))
        for j1 in range(4):
            for j2 in range(3):
                other = hetero_cost(inst, np.full(5, j1), np.full(5, j2))
                assert c <= other + 1e-9

    def test_dp_beats_baselines(self):
        rng = np.random.default_rng(234)
        for _ in range(6):
            inst = random_hetero(rng, 6, 3, 3)
            _, _, c = solve_dp_hetero(inst)
            assert c <= solve_static_hetero(inst)[2] + 1e-9
            assert c <= solve_greedy_hetero(inst)[2] + 1e-9

    def test_greedy_cost_reported_consistently(self):
        rng = np.random.default_rng(235)
        inst = random_hetero(rng, 4, 2, 2)
        X1, X2, c = solve_greedy_hetero(inst)
        assert c == pytest.approx(hetero_cost(inst, X1, X2))


class TestBuilder:
    def test_shapes_and_validity(self):
        loads = np.array([0.0, 2.0, 5.0, 3.0])
        inst = hetero_instance_from_loads(loads, m1=4, m2=6, beta1=2.0,
                                          beta2=1.0)
        assert inst.T == 4 and inst.m1 == 4 and inst.m2 == 6
        assert np.all(np.isfinite(inst.F))

    def test_energy_latency_tradeoff(self):
        """Light load prefers the frugal type; it takes over entirely
        when it alone can serve."""
        loads = np.full(6, 1.0)
        inst = hetero_instance_from_loads(loads, m1=5, m2=5, beta1=1e-3,
                                          beta2=1e-3, rate2=0.9,
                                          power2=0.3)
        X1, X2, _ = solve_dp_hetero(inst)
        assert X2.sum() > X1.sum()

    def test_heavy_load_uses_fast_type(self):
        loads = np.full(6, 4.5)
        inst = hetero_instance_from_loads(loads, m1=6, m2=2, beta1=1e-3,
                                          beta2=1e-3)
        X1, X2, _ = solve_dp_hetero(inst)
        assert X1.max() >= 4

    def test_mixture_on_diurnal_loads(self):
        """Diurnal demand: the optimal fleet mix shifts between day and
        night."""
        from repro.workloads import diurnal_loads
        rng = np.random.default_rng(236)
        loads = diurnal_loads(48, peak=6.0, noise=0.0, rng=rng)
        inst = hetero_instance_from_loads(loads, m1=8, m2=8, beta1=3.0,
                                          beta2=1.0)
        X1, X2, c = solve_dp_hetero(inst)
        static = solve_static_hetero(inst)[2]
        assert c <= static + 1e-9
        assert X1.max() > X1.min() or X2.max() > X2.min()

    def test_zero_capacity_instances(self):
        inst = hetero_instance_from_loads(np.array([1.0]), m1=2, m2=2,
                                          beta1=1.0, beta2=1.0)
        # x = (0, 0) cannot serve: delay capped but huge.
        assert inst.F[0, 0, 0] > inst.F[0, 2, 2] - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousInstance(beta1=0.0, beta2=1.0,
                                  F=np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            HeterogeneousInstance(beta1=1.0, beta2=1.0, F=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            hetero_instance_from_loads(np.array([-1.0]), m1=1, m2=1,
                                       beta1=1.0, beta2=1.0)
        inst = hetero_instance_from_loads(np.array([1.0]), m1=1, m2=1,
                                          beta1=1.0, beta2=1.0)
        with pytest.raises(ValueError):
            hetero_cost(inst, [0, 0], [0])
        with pytest.raises(ValueError):
            hetero_cost(inst, [5], [0])
