"""Tests for the DP offline solvers against brute force and each other."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import (dp_value_table, solve_bruteforce, solve_dp,
                           solve_dp_quadratic)
from tests.conftest import bowl_instance, hinge_instance, random_convex_instance


class TestAgainstBruteForce:
    def test_random_instances(self):
        rng = np.random.default_rng(42)
        for _ in range(40):
            T = int(rng.integers(1, 7))
            m = int(rng.integers(1, 5))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 4.0)))
            bf = solve_bruteforce(inst)
            dp = solve_dp(inst)
            assert dp.cost == pytest.approx(bf.cost)
            assert cost(inst, dp.schedule) == pytest.approx(dp.cost)

    def test_quadratic_reference_agrees(self):
        rng = np.random.default_rng(43)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 9)),
                                          int(rng.integers(1, 8)),
                                          float(rng.uniform(0.2, 4.0)))
            a = solve_dp(inst)
            b = solve_dp_quadratic(inst)
            assert a.cost == pytest.approx(b.cost)
            assert cost(inst, b.schedule) == pytest.approx(b.cost)

    def test_hinge_instances(self):
        inst = hinge_instance([0, 3, 3, 0, 2], m=4, beta=1.5)
        assert solve_dp(inst).cost == pytest.approx(
            solve_bruteforce(inst).cost)

    def test_bowl_instances(self):
        inst = bowl_instance([1, 4, 4, 2], m=4, beta=0.8)
        assert solve_dp(inst).cost == pytest.approx(
            solve_bruteforce(inst).cost)


class TestStructure:
    def test_schedule_cost_consistency(self):
        rng = np.random.default_rng(44)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 20)),
                                          int(rng.integers(1, 15)),
                                          float(rng.uniform(0.2, 4.0)))
            res = solve_dp(inst)
            assert cost(inst, res.schedule) == pytest.approx(res.cost)

    def test_cost_only_mode_matches(self):
        rng = np.random.default_rng(45)
        inst = random_convex_instance(rng, 30, 20, 1.0)
        assert solve_dp(inst, return_schedule=False).cost == pytest.approx(
            solve_dp(inst).cost)
        assert solve_dp(inst, return_schedule=False).schedule is None

    def test_tie_rules_bracket_optima(self):
        """smallest-tie <= largest-tie pointwise need not hold in general,
        but both must be optimal."""
        rng = np.random.default_rng(46)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 6)),
                                          int(rng.integers(1, 4)), 1.0)
            lo = solve_dp(inst, tie="smallest")
            hi = solve_dp(inst, tie="largest")
            assert lo.cost == pytest.approx(hi.cost)
            assert cost(inst, lo.schedule) == pytest.approx(lo.cost)
            assert cost(inst, hi.schedule) == pytest.approx(hi.cost)

    def test_unknown_tie_rejected(self):
        inst = Instance(beta=1.0, F=np.zeros((1, 2)))
        with pytest.raises(ValueError):
            solve_dp(inst, tie="median")

    def test_empty_horizon(self):
        inst = Instance(beta=1.0, F=np.zeros((0, 3)))
        res = solve_dp(inst)
        assert res.cost == 0.0
        assert res.schedule.size == 0

    def test_single_step(self):
        inst = Instance(beta=2.0, F=np.array([[1.0, 0.5, 3.0]]))
        res = solve_dp(inst)
        # min over j of f(j) + beta j: j=0 -> 1, j=1 -> 2.5, j=2 -> 7.
        assert res.cost == pytest.approx(1.0)
        assert res.schedule[0] == 0

    def test_m_zero_single_state(self):
        inst = Instance(beta=1.0, F=np.array([[2.0], [3.0]]))
        res = solve_dp(inst)
        assert res.cost == pytest.approx(5.0)
        np.testing.assert_array_equal(res.schedule, [0, 0])

    def test_value_table_is_CL_workfunction(self):
        """D[t-1, j] must equal min over schedules ending at j of C^L_t."""
        rng = np.random.default_rng(47)
        inst = random_convex_instance(rng, 3, 2, 1.3)
        D = dp_value_table(inst)
        import itertools
        from repro.core.schedule import cost_L
        for t in range(1, inst.T + 1):
            for j in range(inst.m + 1):
                best = min(
                    cost_L(inst, list(pre) + [j] + [0] * (inst.T - t), t)
                    for pre in itertools.product(range(inst.m + 1),
                                                 repeat=t - 1))
                assert D[t - 1, j] == pytest.approx(best), (t, j)


class TestEconomics:
    def test_expensive_switching_freezes_schedule(self):
        """With huge beta the optimum is (near-)static."""
        inst = hinge_instance([0, 4, 0, 4, 0], m=4, beta=100.0)
        res = solve_dp(inst)
        assert np.all(np.diff(res.schedule) >= 0) or np.ptp(res.schedule) <= 1

    def test_free_switching_follows_minimizers(self):
        inst = hinge_instance([0, 4, 0, 4], m=4, beta=1e-9)
        res = solve_dp(inst)
        np.testing.assert_array_equal(res.schedule, [0, 4, 0, 4])

    def test_monotone_demand_powers_up_once(self):
        inst = bowl_instance([1, 2, 3, 4, 5], m=6, beta=0.5, a=2.0)
        res = solve_dp(inst)
        assert np.all(np.diff(res.schedule) >= 0)
