"""Parameter-sweep harness used by the benchmarks.

A sweep is the cartesian product of parameter axes; each grid point is
evaluated by a user function returning a dict of measurements, and the
results are collected as a list of flat row dicts ready for
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

__all__ = ["sweep"]


def sweep(fn: Callable[..., Mapping], grid: Mapping[str, Sequence]) -> list[dict]:
    """Evaluate ``fn(**point)`` on every point of the parameter grid.

    ``grid`` maps parameter names to value lists; the returned rows merge
    the grid point with ``fn``'s measurement dict (measurements win on
    key collisions being forbidden).
    """
    names = list(grid.keys())
    rows = []
    for values in itertools.product(*(grid[n] for n in names)):
        point = dict(zip(names, values))
        result = dict(fn(**point))
        clash = set(point) & set(result)
        if clash:
            raise ValueError(f"measurement keys collide with grid: {clash}")
        rows.append({**point, **result})
    return rows
