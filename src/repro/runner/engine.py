"""Zero-rebuild pipelined batch engine for experiment grids.

A :class:`GridSpec` names the cartesian product of
(scenario x algorithm x seed x horizon x params); the engine *streams*
it: job coordinates are generated lazily, submitted in bounded batches
(``batch_size``), and finished rows flow — in job order — into a
pluggable result sink (:mod:`repro.runner.sinks`), so a million-job
grid holds O(``pipeline_depth`` x batch) pending records in the parent
instead of the whole table.  Each batch runs through three phases —
in-process or on a persistent process pool with fused chunking:

* **Phase 0 — materialization.**  With a ``store_dir``, each distinct
  ``(scenario, pipeline, T, inst_seed)`` instance is built exactly once
  and its dense payload written to the content-addressed
  :class:`~repro.runner.instancestore.InstanceStore`; later phases (and
  every other grid sharing the store) reopen it read-only via ``mmap``
  instead of re-tabulating cost matrices.  Even without a store, a
  per-process memo guarantees no process builds the same instance twice.
* **Phase 1 — instances.**  Each distinct instance's offline optimum is
  solved exactly once, however many algorithms the grid runs on it.
  Optima are persisted when a cache directory is given, so a grid with
  ``A`` algorithms pays roughly ``1/A`` of the naive per-job cost.
* **Phase 2 — algorithms.**  Algorithm jobs fan out in *fused chunks*
  (``chunk_jobs`` jobs per worker round-trip, amortizing pickle/IPC),
  each reusing its instance's hoisted optimum; jobs of one instance
  whose algorithms consume work-function bounds (the LCP family) are
  replayed together from one shared ``O(T m)`` sweep
  (:func:`repro.online.base.run_online_many`).  A batch's rows are
  flushed to the sink — in job order — as soon as the batch completes
  *and* every earlier batch has flushed, and each job's row is written
  to the per-job cache the moment its chunk finishes — so a killed grid
  resumes from the cache paying only the jobs it never finished.

The double-buffer / in-order-drain scheduling itself lives in
:mod:`repro.runner.executor` (:func:`~repro.runner.executor.\
run_pipeline`), shared with :func:`repro.analysis.sweep.sweep` and the
multi-host lease-queue worker loop: this module contributes the grid
*consumer* — the three-phase stage machine each admitted batch runs
(:class:`_BatchState` driven by :class:`_GridRun`).  Up to
``pipeline_depth`` batches are in flight at once, so while batch N's
phase-2 chunks run, the parent is already generating batch N+1 and
submitting its phase-0 materializations and phase-1 solves — workers
never idle waiting for the parent to build the next batch.  The
``overlapped_batches`` and ``inflight_max`` stats counters prove the
overlap (both stay at 0/1 on the in-process path, where each batch
completes synchronously).

Three properties make this the substrate for every large experiment:

* **Determinism** — a job is reproducible from its coordinates alone:
  the scenario instance is seeded from ``(scenario, seed)`` and any
  algorithm randomness from a stable hash of the full coordinates, so
  ``n_jobs=1`` and ``n_jobs=8`` produce bit-identical rows — with or
  without the instance store (``np.save`` round-trips float64 exactly).
  The ``job_slice`` parameter hands a *contiguous sub-range* of the
  grid to one caller — the seam multi-host lease workers split a grid
  on — and slicing never changes a row's contents or order.
* **Caching** — results persist per *job* in a content-addressed store
  (:class:`~repro.runner.jobcache.JobCache`, JSON-dir or SQLite
  backend): one record per job key, plus one per instance optimum.
  Overlapping grids share work, and extending a grid by one seed
  executes only the new seed's jobs.
* **Pool reuse** — all phases share the executor's persistent
  module-level ``ProcessPoolExecutor`` (fork-else-spawn, grown never
  shrunk), reused across phases, grids and callers
  (``analysis/sweep``, ``repro lowerbound``, :func:`parallel_map`), so
  the many small grids the benches run don't pay a pool fork each;
  :func:`shutdown_pool` tears it down explicitly (and at interpreter
  exit), cancelling queued-but-unstarted tasks so an interrupted
  pipeline never leaks orphaned work.  Jobs are handed to workers in
  contiguous chunks to amortize IPC, while row order always matches
  job order.

Algorithms are resolved through :mod:`repro.runner.registry`; the
registry entry's ``pipeline`` selects the instance representation, so
restricted-model (``restricted``), heterogeneous (``dp_hetero``,
``static_hetero``, ``greedy_hetero``) and game (``game-*``/``sim-*``
players on the Section 5 adversaries and E13 simulator rollouts)
entries run under the same engine — and land in the same aggregate
tables — as the general-model algorithms.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import itertools
import json
import os
import traceback
import zlib
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from .. import kernels
from . import faults, instancestore, jobcache
from .executor import (EngineConfig, PipelineBatch, RetryPolicy, RunStats,
                       chunk_list, iter_batches, parallel_map,
                       pool_generation, resolve_config, respawn_pool,
                       retry_sleep, run_pipeline, shutdown_pool,
                       submit_task)
from .instancestore import InstanceStore, get_instance
from .jobcache import JobCache, content_key
from .sinks import ListSink

__all__ = [
    "GridSpec",
    "EngineConfig",
    "RunStats",
    "run_grid",
    "aggregate_rows",
    "job_key",
    "instance_key",
    "JobCache",
    "parallel_map",
    "shutdown_pool",
]

#: bump when row contents / seeding change, to invalidate stale caches
#: (v5: memoryless f-bar evaluation shared between the per-step and the
#: vectorized-kernel paths, which may shift cached costs by ulps)
ENGINE_VERSION = 5

# Historical names for the executor helpers.  The engine calls them
# through its own globals, so tests monkeypatching
# ``engine._submit_task`` / ``engine._batches`` keep intercepting.
_submit_task = submit_task
_chunk_list = chunk_list
_batches = iter_batches

_JOB_FIELDS = ("scenario", "algorithm", "T", "inst_seed", "seed",
               "lookahead", "params")


def _canonical_params(entry) -> str:
    """One ``params``-axis entry as a canonical JSON string (the form
    job tuples, cache keys and worker tasks carry)."""
    if isinstance(entry, str):
        entry = json.loads(entry)
    if not isinstance(entry, dict):
        raise ValueError(f"params entries must be dicts, got {entry!r}")
    return json.dumps(entry, sort_keys=True)


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A grid of experiment jobs.

    ``seeds`` seed the scenario builder (one instance per seed) unless
    ``instance_seed`` is set, in which case every job shares the one
    instance and the seeds only drive algorithm randomness — the shape
    Monte-Carlo experiments need.  ``algorithms`` may name online
    algorithms, offline solvers and game players interchangeably; all
    are resolved through :mod:`repro.runner.registry`.

    ``params`` is an extra axis of scenario-parameter dicts (each kept
    as a canonical JSON string), crossed with the other axes and passed
    to the scenario builder as keyword arguments — the shape the
    lower-bound eps grids (``{"eps": 0.1}``) and the case study's beta
    sweep (``{"beta": 4.0}``) need.  The default is one empty dict, so
    parameterless grids are unchanged.
    """

    scenarios: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    sizes: tuple[int, ...] = (168,)
    lookahead: int = 0
    instance_seed: int | None = None
    params: tuple = ("{}",)

    def __post_init__(self):
        """Canonicalize the axes and validate that none is empty."""
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "sizes", tuple(int(t) for t in self.sizes))
        object.__setattr__(self, "params",
                           tuple(_canonical_params(p) for p in self.params))
        if not (self.scenarios and self.algorithms and self.seeds
                and self.sizes and self.params):
            raise ValueError("grid axes must all be non-empty")
        if any(s < 0 for s in self.seeds) or (
                self.instance_seed is not None and self.instance_seed < 0):
            raise ValueError("seeds must be non-negative")
        if any(t < 1 for t in self.sizes):
            raise ValueError("sizes must be positive horizons")

    def to_dict(self) -> dict:
        """JSON-canonical form (lists, not tuples)."""
        d = {k: list(v) if isinstance(v, tuple) else v
             for k, v in dataclasses.asdict(self).items()}
        d["engine_version"] = ENGINE_VERSION
        return d

    @classmethod
    def from_dict(cls, d: dict) -> GridSpec:
        """Rebuild a spec from :meth:`to_dict` output (the form the
        lease queue and the sinks persist).  Keys that are not spec
        fields — e.g. the embedded ``engine_version`` — are ignored;
        validating the version against the running engine is the
        caller's job (:meth:`repro.runner.leasequeue.LeaseQueue.spec`
        does)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})

    def cache_key(self) -> str:
        """Stable content hash of the spec (used as a display id; the
        result cache is keyed per job, not per grid)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def iter_jobs(self):
        """Generate job coordinate tuples lazily, in deterministic
        order.  A job's instance coordinates vary slowest within one
        (T, scenario, params, seed) block — every job of one instance
        is contiguous, which is what lets the streaming core keep only
        a small window of solved optima alive."""
        for T in self.sizes:
            for scenario in self.scenarios:
                for params in self.params:
                    for seed in self.seeds:
                        inst_seed = (seed if self.instance_seed is None
                                     else self.instance_seed)
                        for algorithm in self.algorithms:
                            yield (scenario, algorithm, T, inst_seed,
                                   seed, self.lookahead, params)

    def jobs(self) -> list[tuple]:
        """Expand into job coordinate tuples, in deterministic order."""
        return list(self.iter_jobs())

    def __len__(self) -> int:
        """Number of jobs the spec expands to (product of the axes)."""
        return (len(self.scenarios) * len(self.algorithms)
                * len(self.seeds) * len(self.sizes) * len(self.params))


def _job_seed(job: tuple) -> int:
    """Stable per-job algorithm seed (hash() is salted; crc32 is not)."""
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    blob = (f"{scenario}|{algorithm}|{T}|{inst_seed}|{seed}|{lookahead}"
            f"|{params}")
    return zlib.crc32(blob.encode())


def job_key(job: tuple) -> str:
    """Content-addressed cache key of one grid job."""
    return content_key({"kind": "job",
                        "engine_version": ENGINE_VERSION,
                        **dict(zip(_JOB_FIELDS, job))})


def _instance_coords(job: tuple) -> tuple:
    """The phase-0/1 coordinates a job's instance is built from."""
    from .registry import get_spec
    scenario, algorithm, T, inst_seed, _seed, _lookahead, params = job
    return (scenario, get_spec(algorithm).pipeline, T, inst_seed, params)


def instance_key(coords: tuple) -> str:
    """Content-addressed cache key of one instance's offline optimum."""
    scenario, pipeline, T, inst_seed, params = \
        instancestore.split_coords(coords)
    return content_key({"kind": "instance",
                        "engine_version": ENGINE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed, "params": params})


def _solve_instance(task: tuple) -> dict:
    """Phase-1 job: resolve one instance, solve its offline optimum once.

    ``task`` is ``(coords, store_root)``; must stay module-level (pool
    pickling).  Returns the per-instance record reused by every phase-2
    job on the same instance.  Game instances delegate to their own
    ``baseline()`` — adaptive games have no algorithm-independent
    optimum (``opt`` is ``None``), simulator games hoist the simulated
    cost of the optimal schedule.
    """
    coords, store_root = task
    pipeline = coords[1]
    inst = get_instance(coords, store_root)
    if pipeline == "game":
        return inst.baseline()
    if pipeline == "general":
        if kernels.is_vectorized():
            # One memoized kernel sweep serves this optimum *and* the
            # phase-2 shared replay / backward solver on the same
            # instance (the final work-function row's minimum is the
            # Section 2 DP optimum, bit-identically — the recurrences
            # are the same ufunc sequence; see docs/KERNELS.md).
            opt = kernels.cached_sweep(coords, inst.F, inst.beta).opt
        else:
            from ..analysis import optimal_cost
            opt = optimal_cost(inst)
        m, beta = inst.m, inst.beta
    elif pipeline == "restricted":
        if kernels.is_vectorized():
            # The restricted forward DP is the work-function recurrence
            # on the masked cost table, so the sweep's final-row
            # minimum is solve_restricted's cost bit-identically — and
            # a batched-prefetch pass may already have memoized it
            # (peek first to skip rebuilding the cost table).
            sweep = kernels.peek_sweep(coords)
            if sweep is None:
                from ..offline.restricted import restricted_cost_matrix
                sweep = kernels.cached_sweep(
                    coords, restricted_cost_matrix(inst), inst.beta)
            opt = sweep.opt
            if opt == float("inf"):
                raise ValueError(
                    "restricted instance has no feasible schedule")
        else:
            from ..offline import solve_restricted
            opt = solve_restricted(inst).cost
        m, beta = inst.m, inst.beta
    else:  # hetero: report the pooled fleet size and the type-1 beta
        from ..extensions import solve_dp_hetero
        opt = solve_dp_hetero(inst)[2]
        m, beta = inst.m1 + inst.m2, inst.beta1
    return {"opt": float(opt), "m": int(m), "beta": float(beta)}


def _base_row(job: tuple, spec, inst_record: dict) -> dict:
    """The row columns shared by every pipeline.

    The job's ``params``-axis entries ride along as columns (core
    columns win name collisions, e.g. a ``beta`` override is reported
    as the instance's realized ``beta``), so :func:`aggregate_rows` can
    group on any swept parameter — the E11-style per-beta tables come
    straight out of one grid.
    """
    scenario, algorithm, T, _inst_seed, seed, _lookahead, params = job
    row = {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": spec.pipeline, "T": T,
        "m": inst_record["m"], "beta": inst_record["beta"], "seed": seed,
    }
    if params != "{}":
        for key, value in json.loads(params).items():
            row.setdefault(key, value)
    return row


def _online_row(job: tuple, spec, inst_record: dict, cost: float) -> dict:
    """Assemble one cost-vs-optimum result row (shared by the per-job
    and the shared-replay paths — online jobs and extras-free offline
    sharers alike — so both produce byte-identical rows)."""
    opt = inst_record["opt"]
    return {
        **_base_row(job, spec, inst_record),
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
    }


def _run_job(task: tuple) -> dict:
    """Phase-2 job: run one algorithm against its hoisted optimum.

    ``task`` is ``(job, inst_record, store_root)`` with the record
    produced by :func:`_solve_instance`; must stay module-level (pool
    pickling).
    """
    from .registry import get_spec, pipeline_optimum
    job, inst_record, store_root = task
    scenario, algorithm, T, inst_seed, seed, lookahead, params = job
    spec = get_spec(algorithm)
    if algorithm == pipeline_optimum(spec.pipeline) or (
            spec.pipeline == "game" and spec.optimal
            and inst_record.get("opt") is not None):
        # the phase-1 baseline *is* this entry's result (e.g. sim-opt):
        # synthesize the row — record keys beyond opt/m/beta are its
        # extra columns — instead of repeating the identical solve
        extras = {k: v for k, v in inst_record.items()
                  if k not in ("opt", "m", "beta")}
        return {
            **_base_row(job, spec, inst_record),
            "cost": inst_record["opt"],
            "opt": inst_record["opt"], "ratio": 1.0, **extras,
        }
    inst = get_instance((scenario, spec.pipeline, T, inst_seed, params),
                        store_root)
    extras: dict = {}
    if spec.pipeline == "game":
        out = spec.make(lookahead=lookahead, seed=_job_seed(job))(inst)
        cost = out.pop("cost")
        played_opt = out.pop("opt")
        extras = out
        opt = (inst_record["opt"] if inst_record.get("opt") is not None
               else played_opt)
    elif spec.pipeline == "hetero":
        cost, opt = spec.make()(inst)[2], inst_record["opt"]
    elif spec.kind == "online":
        from ..online.base import run_online
        alg = spec.make(lookahead=lookahead, seed=_job_seed(job))
        bounds = None
        if (spec.shares_workfunction and alg.consumes_bounds
                and alg.lookahead == 0 and kernels.is_vectorized()):
            # reuse (or seed) the per-process sweep memo phase 1 filled
            bounds = kernels.cached_sweep(_instance_coords(job),
                                          inst.F, inst.beta)
        return _online_row(job, spec, inst_record,
                           run_online(inst, alg, bounds=bounds).cost)
    elif spec.shares_workfunction and kernels.is_vectorized():
        # offline sweep sharer (backward_lcp): hand it the memoized
        # per-instance bound trajectory instead of a fresh sweep
        bounds = kernels.cached_sweep(_instance_coords(job),
                                      inst.F, inst.beta)
        cost, opt = (spec.make()(inst, bounds=bounds).cost,
                     inst_record["opt"])
    else:
        cost, opt = spec.make()(inst).cost, inst_record["opt"]
    return {
        **_base_row(job, spec, inst_record),
        "cost": float(cost), "opt": float(opt),
        "ratio": float(cost / opt) if opt > 0 else float("inf"),
        **extras,
    }


# ----------------------------------------------------------------------
# Fused multi-job tasks: one worker round-trip executes a whole chunk,
# amortizing pickle/IPC, and co-scheduled LCP-family jobs on the same
# instance share a single work-function sweep.
# ----------------------------------------------------------------------


def _prefetch_sweeps(entries) -> None:
    """Seed the sweep memo for a chunk's instances in one batched pass.

    ``entries`` is an iterable of ``(coords, store_root)`` pairs.  Under
    ``REPRO_KERNEL=batched``, the general and restricted instances among
    them are stacked by table shape and swept through
    :func:`repro.kernels.cached_sweep_many` — one kernel launch per
    same-shape group — so the per-item paths that follow (phase-1
    optimum, shared replay, backward solver) hit the memo.  A no-op
    under every other kernel.  Purely an accelerator: an instance that
    fails to resolve here is skipped, and the per-item path surfaces
    the error with its full retry/quarantine accounting.
    """
    if kernels.active() != "batched":
        return
    items = []
    for coords, store_root in dict.fromkeys(entries):
        if kernels.peek_sweep(coords, touch=False) is not None:
            continue
        try:
            inst = get_instance(coords, store_root)
            if coords[1] == "general":
                items.append((coords, inst.F, inst.beta))
            elif coords[1] == "restricted":
                from ..offline.restricted import restricted_cost_matrix
                items.append((coords, restricted_cost_matrix(inst),
                              inst.beta))
        except Exception:
            continue
    if items:
        kernels.cached_sweep_many(items)


def _solve_chunk(task: tuple) -> list[dict]:
    """Fused phase-1 job: solve several instances' optima in one
    round-trip (each through :func:`_solve_instance`, so per-item
    behavior — and test monkeypatching — is unchanged).  Under the
    batched kernel the chunk's sweeps run as one stacked launch first
    (:func:`_prefetch_sweeps`); the per-item solves then hit the memo."""
    coords_list, store_root = task
    _prefetch_sweeps((coords, store_root) for coords in coords_list)
    return [_solve_instance((coords, store_root)) for coords in coords_list]


def _sharing_coords(job: tuple):
    """The instance coordinates a job can share a work-function sweep
    on, or ``None`` when its algorithm keeps per-job state.

    Sharers are the general-pipeline entries flagged
    ``shares_workfunction`` in the registry: the online LCP family
    (bound consumers) and the offline ``backward_lcp`` solver, whose
    Lemma 11 forward pass is the same sweep.
    """
    from .registry import get_spec
    spec = get_spec(job[1])
    if spec.pipeline == "general" and spec.shares_workfunction:
        return _instance_coords(job)
    return None


def _run_shared(tasks: list[tuple]) -> list[dict]:
    """Serve several sweep-sharing jobs on one instance from a single
    ``O(T m)`` work-function sweep — bit-identical to running each
    through :func:`_run_job` (asserted by the test suite).

    Online consumers replay through
    :func:`~repro.online.base.run_online_many`; offline sharers (the
    ``backward_lcp`` solver) receive the same bound trajectory via
    their ``bounds=`` parameter.  Under the vectorized kernel the
    trajectory comes from the per-process memo phase 1 already filled;
    under the scalar reference each path keeps its own per-step sweep.
    """
    from .registry import get_spec
    from ..online.base import run_online_many
    job0, _rec0, store_root = tasks[0]
    coords = _instance_coords(job0)
    inst = get_instance(coords, store_root)
    bounds = (kernels.cached_sweep(coords, inst.F, inst.beta)
              if kernels.is_vectorized() else None)
    rows: list = [None] * len(tasks)
    online_idx = [i for i, (job, _rec, _root) in enumerate(tasks)
                  if get_spec(job[1]).kind == "online"]
    if online_idx:
        algorithms = [get_spec(tasks[i][0][1]).make(
            lookahead=tasks[i][0][5], seed=_job_seed(tasks[i][0]))
            for i in online_idx]
        results = run_online_many(inst, algorithms, bounds=bounds)
        for i, res in zip(online_idx, results):
            job, rec, _root = tasks[i]
            rows[i] = _online_row(job, get_spec(job[1]), rec, res.cost)
    for i, (job, rec, _root) in enumerate(tasks):
        if rows[i] is not None:
            continue
        solver = get_spec(job[1]).make()
        out = (solver(inst, bounds=bounds) if bounds is not None
               else solver(inst))
        rows[i] = _online_row(job, get_spec(job[1]), rec, out.cost)
    return rows


def _run_chunk(tasks: list[tuple]) -> list[dict]:
    """Fused phase-2 job: run a contiguous slice of a batch's pending
    jobs in one worker round-trip.  Within the chunk, jobs of one
    instance whose algorithms consume work-function bounds are grouped
    (in job order) and replayed through :func:`_run_shared`; everything
    else goes through :func:`_run_job` unchanged."""
    rows: list = [None] * len(tasks)
    groups: dict[tuple, list[int]] = {}
    for idx, (job, _rec, _root) in enumerate(tasks):
        coords = _sharing_coords(job)
        if coords is not None:
            groups.setdefault(coords, []).append(idx)
    _prefetch_sweeps((coords, tasks[idxs[0]][2])
                     for coords, idxs in groups.items())
    for idxs in groups.values():
        if len(idxs) < 2:
            continue  # nothing to share; take the ordinary path
        for idx, row in zip(idxs,
                            _run_shared([tasks[i] for i in idxs])):
            rows[idx] = row
    for idx, task in enumerate(tasks):
        if rows[idx] is None:
            rows[idx] = _run_job(task)
    return rows


# ----------------------------------------------------------------------
# Fault tolerance: per-job error capture, worker-side retry with
# deterministic backoff, and quarantine rows for jobs that stay broken.
# A failing job must never abort the grid — it becomes a structured
# ``status="failed"`` row and the remaining jobs complete untouched.
# ----------------------------------------------------------------------


def _job_token(job: tuple) -> str:
    """The fault-injection token of one job (``faults.fire`` matching)."""
    return "|".join(str(part) for part in job)


def _coords_token(coords: tuple) -> str:
    """The fault-injection token of one instance's coordinates."""
    return "|".join(str(part) for part in coords)


#: the per-failure columns a quarantine row (or failed record) carries
_FAILURE_KEYS = ("error", "error_message", "error_digest")


def _failure_info(exc: BaseException) -> dict:
    """Structured description of a captured exception: type name,
    truncated message and a short traceback digest (full tracebacks do
    not belong in result rows, but the digest identifies recurrences)."""
    tb = "".join(traceback.format_exception(type(exc), exc,
                                            exc.__traceback__))
    return {"error": type(exc).__name__,
            "error_message": str(exc)[:300],
            "error_digest": hashlib.sha256(tb.encode()).hexdigest()[:12]}


def _quarantine_row(job: tuple, phase: str, failure: dict,
                    attempts: int) -> dict:
    """The ``status="failed"`` row a quarantined job contributes.

    Carries the job's identity columns (so sinks, merges and ``repro
    work retry-failed`` can address it) with ``cost``/``opt``/``ratio``
    nulled — :func:`aggregate_rows` skips failed rows entirely.
    """
    from .registry import get_spec
    scenario, algorithm, T, _inst_seed, seed, _lookahead, params = job
    row = {
        "scenario": scenario, "algorithm": algorithm,
        "pipeline": get_spec(algorithm).pipeline, "T": T,
        "m": None, "beta": None, "seed": seed,
        "cost": None, "opt": None, "ratio": None,
        "status": "failed", "phase": phase, "attempts": int(attempts),
    }
    for key in _FAILURE_KEYS:
        row[key] = failure.get(key)
    if params != "{}":
        for key, value in json.loads(params).items():
            row.setdefault(key, value)
    return row


def _solve_with_retry(coords, store_root, policy: RetryPolicy):
    """Solve one instance's optimum, retrying transient failures.

    Returns ``(record, retries)``; a terminally failing solve yields a
    ``{"status": "failed", ...}`` record that quarantines every
    dependent job without running it (and is never cached, so the next
    run retries the solve).
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            faults.fire("solve_instance", _coords_token(coords))
            return _solve_instance((coords, store_root)), attempt - 1
        except Exception as exc:
            if attempt > policy.max_retries:
                return {"status": "failed", **_failure_info(exc),
                        "attempts": attempt}, attempt - 1
            retry_sleep(policy, attempt)


def _solve_chunk_retry(task: tuple) -> dict:
    """Fused, fault-tolerant phase-1 chunk.  ``task`` is
    ``(coords_list, store_root, policy)``; returns an envelope
    ``{"records": [...], "retries": n}`` so the parent can account
    retries without timestamps ever entering a record."""
    coords_list, store_root, policy = task
    _prefetch_sweeps((coords, store_root) for coords in coords_list)
    records, retries = [], 0
    for coords in coords_list:
        rec, r = _solve_with_retry(coords, store_root, policy)
        records.append(rec)
        retries += r
    return {"records": records, "retries": retries}


def _attempt_items(tasks, idxs, rows, done, errors) -> None:
    """Execute the chunk items ``idxs`` once, capturing per-item
    failures.  Sweep-sharing groups still replay together; a failure
    inside a shared replay degrades that group to per-item execution,
    so one poison job cannot fail its co-batched siblings."""
    groups: dict[tuple, list[int]] = {}
    solo: list[int] = []
    for i in idxs:
        coords = _sharing_coords(tasks[i][0])
        if coords is not None:
            groups.setdefault(coords, []).append(i)
        else:
            solo.append(i)
    fired: set[int] = set()
    for gidxs in groups.values():
        if len(gidxs) < 2:
            solo.extend(gidxs)
            continue
        ok = []
        for i in gidxs:
            fired.add(i)
            try:
                faults.fire("run_job", _job_token(tasks[i][0]))
                ok.append(i)
            except Exception as exc:
                errors[i] = exc
        shared_rows = None
        if len(ok) > 1:
            try:
                shared_rows = _run_shared([tasks[i] for i in ok])
            except Exception:
                shared_rows = None  # degrade to per-item execution
        if shared_rows is not None:
            for i, row in zip(ok, shared_rows):
                rows[i], done[i] = row, True
        else:
            solo.extend(ok)
    for i in solo:
        try:
            if i not in fired:
                faults.fire("run_job", _job_token(tasks[i][0]))
            rows[i] = _run_job(tasks[i])
            done[i] = True
        except Exception as exc:
            errors[i] = exc


def _run_chunk_retry(task: tuple) -> dict:
    """Fused, fault-tolerant phase-2 chunk.  ``task`` is
    ``(tasks, policy)`` with the same per-item tasks
    :func:`_run_chunk` takes; returns ``{"rows": [...], "retries": n}``.

    A failing item is retried (exponential backoff, in this worker so
    per-process fault counters stay deterministic) up to
    ``policy.max_retries`` times, then quarantined; successful rows —
    including successful-after-retry ones — are byte-identical to a
    fault-free run's, so retries never perturb the result set.  Items
    whose phase-1 record already failed are quarantined immediately.
    """
    tasks, policy = task
    if tasks:
        faults.fire("worker_exit", _job_token(tasks[0][0]))
    n = len(tasks)
    rows: list = [None] * n
    done = [False] * n
    errors: list = [None] * n
    attempts = [0] * n
    retries = 0
    pending = []
    for i, (job, rec, _root) in enumerate(tasks):
        if isinstance(rec, dict) and rec.get("status") == "failed":
            rows[i] = _quarantine_row(job, "solve_instance", rec,
                                      rec.get("attempts", 0))
            done[i] = True
        else:
            pending.append(i)
    _prefetch_sweeps(
        (coords, tasks[i][2]) for i in pending
        if (coords := _sharing_coords(tasks[i][0])) is not None)
    attempt = 0
    while pending:
        attempt += 1
        for i in pending:
            attempts[i] = attempt
        _attempt_items(tasks, pending, rows, done, errors)
        failed = [i for i in pending if not done[i]]
        pending = failed
        if not failed or attempt > policy.max_retries:
            break
        retries += len(failed)
        retry_sleep(policy, attempt)
    for i in pending:
        rows[i] = _quarantine_row(tasks[i][0], "run_job",
                                  _failure_info(errors[i]), attempts[i])
    return {"rows": rows, "retries": retries}


def _validate_pipelines(spec: GridSpec) -> None:
    """Fail fast (in the parent) when the grid pairs an algorithm with a
    scenario that cannot build its pipeline's instance representation."""
    from .registry import get_spec
    from .scenarios import get_scenario
    for scenario in spec.scenarios:
        supported = get_scenario(scenario).pipelines
        for algorithm in spec.algorithms:
            pipeline = get_spec(algorithm).pipeline
            if pipeline not in supported:
                raise ValueError(
                    f"algorithm {algorithm!r} needs the {pipeline!r} "
                    f"pipeline but scenario {scenario!r} only builds "
                    f"{supported}")
    _validate_params(spec)


def _validate_params(spec: GridSpec) -> None:
    """Fail fast (in the parent) when a grid's ``params`` axis names a
    keyword no builder of its scenarios accepts — a configuration
    error, so it must raise up front instead of quarantining every job
    at run time."""
    import inspect
    from .registry import get_spec
    from .scenarios import get_scenario
    param_keys = {key for blob in spec.params
                  for key in json.loads(blob)}
    if not param_keys:
        return
    pipelines = {get_spec(a).pipeline for a in spec.algorithms}
    for scenario in spec.scenarios:
        scn = get_scenario(scenario)
        for pipeline in pipelines:
            builder = {"general": scn.build,
                       "restricted": scn.build_restricted,
                       "hetero": scn.build_hetero,
                       "game": scn.build_game}.get(pipeline)
            if builder is None:
                continue
            try:
                sig = inspect.signature(builder)
            except (TypeError, ValueError):
                continue  # unintrospectable builder: let it run
            if any(p.kind == inspect.Parameter.VAR_KEYWORD
                   for p in sig.parameters.values()):
                continue
            unknown = param_keys - set(sig.parameters)
            if unknown:
                raise ValueError(
                    f"scenario {scenario!r} rejected params "
                    f"{sorted(unknown)!r}: not accepted by its "
                    f"{pipeline!r} builder")


class _RecordWindow:
    """Bounded LRU of solved instance records.

    Job order keeps every job of one instance contiguous
    (:meth:`GridSpec.iter_jobs`), so a window a little larger than the
    batch's distinct-instance count is enough for the streaming core to
    never re-solve an optimum it just solved — while a million-instance
    grid still holds O(batch) records in the parent.
    """

    def __init__(self):
        self._data: dict = collections.OrderedDict()
        self._bound = 64

    def fit(self, need: int) -> None:
        self._bound = max(self._bound, 2 * need)

    def get(self, coords):
        rec = self._data.get(coords)
        if rec is not None:
            self._data.move_to_end(coords)
        return rec

    def put(self, coords, rec) -> None:
        self._data[coords] = rec
        self._data.move_to_end(coords)
        while len(self._data) > self._bound:
            self._data.popitem(last=False)


class _Promise:
    """One instance's offline optimum, somewhere between *planned* and
    *solved*.  The owning batch fills in ``(future, pos)`` when it
    submits its phase-1 chunk and ``record`` at harvest; a later batch
    that needs the same instance (job order keeps them adjacent, so
    only batch boundaries overlap) borrows the promise instead of
    re-submitting the solve."""

    __slots__ = ("future", "pos", "record")

    def __init__(self):
        self.future: Future | None = None
        self.pos: int | None = None
        self.record: dict | None = None

    def ready(self) -> bool:
        return self.record is not None or (
            self.future is not None and self.future.done())

    def result(self) -> dict:
        if self.record is None:
            out = self.future.result()
            if isinstance(out, dict):  # _solve_chunk_retry envelope
                out = out["records"]
            self.record = out[self.pos]
        return self.record


#: batch pipeline stages, in order
_MAT, _SOLVE, _RUN, _DONE = range(4)


class _BatchState(PipelineBatch):
    """One in-flight batch's progress through the three phases.

    The stage machine itself (cache lookups, phase submissions,
    harvests) lives on the owning :class:`_GridRun`; this object holds
    the per-batch bookkeeping and satisfies the
    :class:`~repro.runner.executor.PipelineBatch` contract the shared
    scheduler drives.
    """

    __slots__ = ("run", "batch", "size", "rows", "pending", "stage",
                 "mat_futures", "mat_borrowed", "to_solve",
                 "own_promises", "borrowed", "records", "run_futures",
                 "solve_chunks")

    def __init__(self, run: "_GridRun", batch: list):
        self.run = run
        self.batch = batch
        self.size = len(batch)
        self.rows: list = [None] * len(batch)
        self.pending: list[tuple[int, tuple, str]] = []
        self.stage = _MAT
        self.mat_futures: list[tuple[list, Future]] = []
        self.mat_borrowed: list[Future] = []
        self.to_solve: list[tuple] = []
        self.own_promises: dict[tuple, _Promise] = {}
        self.borrowed: dict[tuple, _Promise] = {}
        self.records: dict[tuple, dict] = {}
        self.run_futures: list[tuple[list, Future]] = []
        #: mutable [coords_chunk, future] pairs — the future slot is
        #: rewired when a broken pool forces a chunk resubmission, and
        #: cleared (None) once the chunk's envelope is accounted
        self.solve_chunks: list[list] = []

    def advance(self) -> bool:
        return self.run.advance(self)

    def done(self) -> bool:
        return self.stage == _DONE

    def unfinished_futures(self) -> list[Future]:
        """Futures the scheduler may need to block on."""
        futures = [f for _c, f in self.mat_futures if not f.done()]
        futures += [f for f in self.mat_borrowed if not f.done()]
        futures += [p.future for p in self.own_promises.values()
                    if p.future is not None and not p.future.done()]
        futures += [f for _chunk, f in self.run_futures if not f.done()]
        return futures

    def all_futures(self) -> list[Future]:
        futures = [f for _c, f in self.mat_futures]
        futures += [p.future for p in self.own_promises.values()
                    if p.future is not None]
        futures += [f for _chunk, f in self.run_futures]
        return futures

    def flush(self) -> int:
        self.run.sink.write_many(self.rows)
        return len(self.rows)

    def flushable(self) -> bool:
        return all(r is not None for r in self.rows)

    def salvage(self) -> None:
        self.run.salvage(self)


class _GridRun:
    """Shared context of one :func:`run_grid` call.

    The grid *consumer* of :func:`~repro.runner.executor.run_pipeline`:
    plans each admitted batch (cache lookups, phase-0 submission) and
    moves its :class:`_BatchState` through the three-phase stage
    machine, sharing the optimum window, cross-batch solve promises and
    in-flight materialization dedupe across the whole run.
    """

    def __init__(self, spec: GridSpec, config: EngineConfig, cache,
                 sink, stats: RunStats, store_root):
        """Bind one run's spec, config, cache, sink and counters."""
        self.spec = spec
        self.config = config
        self.cache = cache
        self.sink = sink
        self.stats = stats
        self.store_root = store_root
        self.n_jobs = config.n_jobs
        self.chunk_jobs = config.chunk_jobs
        self.force = config.force
        self.window = _RecordWindow()
        self.promises: dict[tuple, _Promise] = {}
        self.materializing: dict[tuple, Future] = {}
        self.policy = RetryPolicy(max_retries=config.max_retries,
                                  backoff=config.retry_backoff)
        #: pool generation each in-flight future was submitted under
        self.future_gen: dict[Future, int] = {}
        #: pool respawns charged to THIS run (``stats`` may accumulate
        #: across runs — the lease-queue worker reuses one RunStats —
        #: so the per-run bound needs its own counter)
        self.pool_restarts = 0
        from .scenarios import get_scenario
        self.storable = {name: get_scenario(name).storable
                         for name in spec.scenarios}

    def _submit(self, fn, payload) -> Future:
        """Submit one chunk, recording the pool generation so a later
        ``BrokenProcessPool`` can be attributed to the right pool
        incarnation (and the chunk resubmitted on a fresh one)."""
        try:
            future = _submit_task(fn, payload, self.n_jobs)
        except BrokenProcessPool:
            # the pool died between harvests: retire it and retry the
            # submission once on the respawned pool
            self._pool_failure(pool_generation())
            future = _submit_task(fn, payload, self.n_jobs)
        if self.n_jobs > 1:
            self.future_gen[future] = pool_generation()
        return future

    def _pool_failure(self, gen: int | None) -> None:
        """A worker died (``BrokenProcessPool``): retire the dead pool
        incarnation so the next submission forks a fresh one.  Only the
        first observer of a generation counts a restart; the per-run
        bound turns a crash loop into a hard error instead of hanging."""
        if respawn_pool(pool_generation() if gen is None else gen):
            self.pool_restarts += 1
            self.stats.pool_restarts += 1
        if self.pool_restarts > self.config.max_pool_restarts:
            raise RuntimeError(
                f"worker pool died {self.pool_restarts} times in one "
                f"run (max_pool_restarts="
                f"{self.config.max_pool_restarts}); giving up")

    def _cache_put(self, kind: str, key: str, record) -> None:
        """Best-effort cache write: quarantined records are never
        cached (re-runs must retry them) and a failing cache write —
        real or injected — is absorbed and counted, never fatal (the
        record is already in hand; only re-runs pay for the loss)."""
        if self.cache is None or (isinstance(record, dict)
                                  and record.get("status") == "failed"):
            return
        try:
            faults.fire("cache_put", key)
            self.cache.put(kind, key, record)
        except Exception:
            self.stats.cache_put_failures += 1

    def _resubmit_solve(self, st: "_BatchState", broken: Future) -> bool:
        """Resubmit the phase-1 chunk whose future ``broken`` was lost
        to a dead pool, rewiring the chunk's unresolved promises to the
        new future (borrowing batches observe the rewire for free)."""
        for entry in st.solve_chunks:
            chunk_coords, future = entry
            if future is not broken:
                continue
            gen = self.future_gen.pop(broken, None)
            self._pool_failure(gen)
            fresh = self._submit(_solve_chunk_retry,
                                 (chunk_coords, self.store_root,
                                  self.policy))
            entry[1] = fresh
            for pos, coords in enumerate(chunk_coords):
                promise = st.own_promises[coords]
                if promise.record is None:
                    promise.future, promise.pos = fresh, pos
            return True
        return False

    def plan(self, batch: list) -> _BatchState:
        """Admit one batch: cache lookups, then submit phase 0 (and,
        via :meth:`advance`, everything that is already unblocked)."""
        st = _BatchState(self, batch)
        cache, force = self.cache, self.force
        for i, job in enumerate(batch):
            key = job_key(job)
            row = (cache.get("jobs", key)
                   if cache is not None and not force else None)
            if row is not None:
                st.rows[i] = row
                self.stats.job_hits += 1
            else:
                st.pending.append((i, job, key))
        self.stats.job_misses += len(st.pending)
        if not st.pending:
            st.stage = _DONE
            return st
        need = dict.fromkeys(_instance_coords(job)
                             for _, job, _ in st.pending)
        self.window.fit(len(need) * self.config.pipeline_depth)
        for coords in need:
            promise = self.promises.get(coords)
            if promise is not None:   # an earlier batch is solving it
                st.borrowed[coords] = promise
                continue
            rec = self.window.get(coords)
            if rec is None and cache is not None and not force:
                rec = cache.get("instances", instance_key(coords))
                if rec is not None:
                    self.window.put(coords, rec)
                    self.stats.opt_hits += 1
            if rec is not None:
                st.records[coords] = rec
            else:
                st.to_solve.append(coords)
                self.promises[coords] = st.own_promises[coords] = \
                    _Promise()
        # Phase 0: materialize each distinct pending instance once
        # (scenarios with dense payloads only).  Borrowed instances are
        # the previous batch's responsibility, and a materialization an
        # earlier in-flight batch already submitted is *waited on*, not
        # re-submitted — overlap must not duplicate instance builds.
        if self.store_root is not None:
            store = InstanceStore(self.store_root)
            missing = []
            for coords in need:
                if coords in st.borrowed or not self.storable[coords[0]]:
                    continue
                shared = self.materializing.get(coords)
                if shared is not None:
                    st.mat_borrowed.append(shared)
                elif not store.has(coords):
                    missing.append(coords)
            for chunk in _chunk_list(missing, self.n_jobs,
                                     self.chunk_jobs):
                future = self._submit(instancestore._materialize_chunk,
                                      (chunk, self.store_root))
                st.mat_futures.append((chunk, future))
                for coords in chunk:
                    self.materializing[coords] = future
        return st

    def submit_solves(self, st: _BatchState) -> None:
        """Submit the batch's phase-1 optimum solves as fused chunks."""
        for chunk in _chunk_list(st.to_solve, self.n_jobs,
                                 self.chunk_jobs):
            future = self._submit(_solve_chunk_retry,
                                  (chunk, self.store_root, self.policy))
            st.solve_chunks.append([chunk, future])
            for pos, coords in enumerate(chunk):
                promise = st.own_promises[coords]
                promise.future, promise.pos = future, pos

    def submit_runs(self, st: _BatchState) -> None:
        """Submit the batch's phase-2 algorithm jobs as fused chunks."""
        for chunk in _chunk_list(st.pending, self.n_jobs,
                                 self.chunk_jobs):
            tasks = [(job, st.records[_instance_coords(job)],
                      self.store_root)
                     for _i, job, _key in chunk]
            st.run_futures.append(
                (chunk, self._submit(_run_chunk_retry,
                                     (tasks, self.policy))))

    def advance(self, st: _BatchState) -> bool:
        """Move one batch through its stage machine; True on progress."""
        progressed = False
        if st.stage == _MAT and all(
                f.done() for _c, f in st.mat_futures) and all(
                f.done() for f in st.mat_borrowed):
            for chunk_coords, future in st.mat_futures:
                try:
                    self.stats.inst_materialized += sum(
                        map(bool, future.result()))
                except BrokenProcessPool:
                    self._pool_failure(self.future_gen.get(future))
                except Exception:
                    # phase 0 is best-effort: a failed (or injected)
                    # materialization only costs the mmap shortcut —
                    # phases 1/2 rebuild the instance in-process
                    pass
                self.future_gen.pop(future, None)
                for coords in chunk_coords:
                    self.materializing.pop(coords, None)
            st.mat_futures = []
            st.mat_borrowed = []
            self.submit_solves(st)
            st.stage = _SOLVE
            progressed = True
        if st.stage == _SOLVE:
            # account each solve chunk's envelope once (and resubmit
            # chunks a dead pool lost) before touching any promise
            for entry in st.solve_chunks:
                _chunk_coords, future = entry
                if future is None or not future.done():
                    continue
                try:
                    env = future.result()
                except BrokenProcessPool:
                    self._resubmit_solve(st, future)
                    progressed = True
                    continue
                self.future_gen.pop(future, None)
                if isinstance(env, dict):
                    self.stats.retries += env.get("retries", 0)
                entry[1] = None  # accounted; promises keep their ref
                progressed = True
            for coords, promise in st.own_promises.items():
                # harvest is keyed on THIS batch's bookkeeping, not on
                # promise.record: a borrowing batch may have resolved
                # the promise first, and that must not skip the owner's
                # window/cache writes and opt_solved count
                if coords in st.records or not promise.ready():
                    continue
                try:
                    rec = promise.result()
                except BrokenProcessPool:
                    # the pool broke after the chunk loop above ran:
                    # resubmit now; the rewired future finishes later
                    self._resubmit_solve(st, promise.future)
                    progressed = True
                    continue
                st.records[coords] = rec
                self.window.put(coords, rec)
                self.stats.opt_solved += 1
                self._cache_put("instances", instance_key(coords), rec)
                self.promises.pop(coords, None)
                progressed = True
            if (all(coords in st.records
                    for coords in st.own_promises)
                    and all(p.ready() for p in st.borrowed.values())):
                try:
                    for coords, promise in st.borrowed.items():
                        st.records[coords] = promise.result()
                except BrokenProcessPool:
                    # the owning batch (always earlier in pump order)
                    # resubmits and rewires; wait for the fresh future
                    pass
                else:
                    self.submit_runs(st)
                    st.stage = _RUN
                    progressed = True
        if st.stage == _RUN:
            remaining = []
            for chunk, future in st.run_futures:
                if not future.done():
                    remaining.append((chunk, future))
                    continue
                try:
                    env = future.result()
                except BrokenProcessPool:
                    # the chunk was in flight on a pool that died:
                    # respawn (bounded) and resubmit only this chunk
                    self._pool_failure(self.future_gen.pop(future, None))
                    tasks = [(job, st.records[_instance_coords(job)],
                              self.store_root)
                             for _i, job, _key in chunk]
                    remaining.append(
                        (chunk, self._submit(_run_chunk_retry,
                                             (tasks, self.policy))))
                    progressed = True
                    continue
                self.future_gen.pop(future, None)
                rows = env["rows"] if isinstance(env, dict) else env
                if isinstance(env, dict):
                    self.stats.retries += env.get("retries", 0)
                for (i, _job, key), row in zip(chunk, rows):
                    st.rows[i] = row
                    if isinstance(row, dict) and \
                            row.get("status") == "failed":
                        self.stats.quarantined += 1
                    else:
                        self._cache_put("jobs", key, row)
                progressed = True
            st.run_futures = remaining
            if not remaining:
                st.stage = _DONE
                progressed = True
        return progressed

    def salvage(self, st: _BatchState) -> None:
        """Abort path: harvest completed-but-unflushed phase-2 chunks.

        Rows land in the batch (so completed head batches still flush)
        and — best-effort — in the job cache: a killed grid must not
        recompute chunks it already paid for.
        """
        remaining = []
        for chunk, future in st.run_futures:
            if not (future.done() and not future.cancelled()):
                remaining.append((chunk, future))
                continue
            try:
                harvested = future.result()
            except Exception:
                remaining.append((chunk, future))
                continue
            rows = (harvested["rows"] if isinstance(harvested, dict)
                    else harvested)
            for (i, _job, key), row in zip(chunk, rows):
                st.rows[i] = row
                if isinstance(row, dict) and \
                        row.get("status") == "failed":
                    continue
                if self.cache is not None:
                    try:
                        self.cache.put("jobs", key, row)
                    except Exception:
                        pass
        st.run_futures = remaining


#: the stats-dict keys ``run_grid`` historically reported
_GRID_STAT_KEYS = (
    "job_hits", "job_misses", "opt_hits", "opt_solved",
    "inst_materialized", "batches", "max_pending", "rows_written",
    "overlapped_batches", "inflight_max", "inst_builds", "inst_loads",
    "inst_memo_hits", "sweep_memo_hits", "sweep_memo_misses",
    "retries", "quarantined", "pool_restarts", "cache_put_failures",
    "sqlite_busy_retries")

#: keyword arguments the pre-``EngineConfig`` ``run_grid`` accepted
_RUN_GRID_KWARGS = frozenset(
    {"n_jobs", "cache_dir", "store_dir", "force", "sink", "batch_size",
     "pipeline_depth", "chunk_jobs"})


def run_grid(spec: GridSpec, config: EngineConfig | None = None, *,
             stats=None, job_slice: tuple[int, int] | None = None,
             **legacy):
    """Stream every job of a grid through the pipelined three-phase
    engine.

    Execution is configured by an :class:`EngineConfig` (the legacy
    keyword arguments — ``n_jobs``, ``cache_dir``, ``store_dir``,
    ``force``, ``sink``, ``batch_size``, ``pipeline_depth``,
    ``chunk_jobs`` — still work through a deprecation shim that folds
    them into the config).  Jobs are generated lazily and executed in
    bounded batches of ``batch_size`` (``None`` = one batch); each
    batch's finished rows are flushed — in job order — to the result
    ``sink`` (:mod:`repro.runner.sinks`).  With the default
    ``sink=None`` an in-memory :class:`~repro.runner.sinks.ListSink`
    collects the rows and ``run_grid`` returns the historical
    ``list[dict]``; with a file-backed sink the parent holds at most
    O(``pipeline_depth`` x ``batch_size``) pending rows (the
    ``max_pending`` stat reports the observed peak) and ``run_grid``
    returns ``sink.result()``.

    With ``n_jobs > 1`` batches are *double-buffered* on the persistent
    pool (:func:`~repro.runner.executor.run_pipeline` — the scheduling
    loop shared with ``analysis/sweep`` and the lease-queue worker):
    up to ``pipeline_depth`` batches are in flight, so batch N+1's
    phase-0 materializations and phase-1 solves are submitted while
    batch N's phase-2 chunks still run — the pool stays saturated end
    to end instead of idling at three serial barriers per batch.  Phase
    dispatch is *fused*: ``chunk_jobs`` jobs ride one worker round-trip
    (``None`` auto-sizes, ``1`` disables fusion), and LCP-family jobs
    sharing an instance are replayed from one shared work-function
    sweep.  Rows are bit-identical for every
    ``(n_jobs, batch_size, pipeline_depth, chunk_jobs)`` combination.

    With ``cache_dir``, each job's row (and each instance's optimum) is
    read from the per-job content-addressed cache when present (unless
    ``force``) and written back the moment its chunk completes — so
    re-running any overlapping grid only executes the jobs it has not
    seen before, and a grid killed mid-run resumes paying only the
    unfinished jobs.  ``cache_dir`` may also be a ready-made
    :class:`JobCache` (e.g. one opened on the SQLite backend).  With
    ``store_dir``, phase 0 materializes each distinct pending instance
    into the shared :class:`~repro.runner.instancestore.InstanceStore`
    exactly once; phases 1 and 2 then mmap the payloads instead of
    rebuilding.

    ``job_slice=(start, stop)`` runs only that contiguous sub-range of
    the grid's job order — the seam the multi-host lease queue splits
    a grid on.  Slicing never changes a row's contents: every job is
    still seeded from its coordinates alone, so the concatenation of
    disjoint slices is bit-identical to the unsliced run.

    ``stats`` may be a :class:`RunStats` (typed counters, accumulated
    in place — pass the same object across calls to total a worker's
    leases) or a plain dict, which receives the historical key set:
    ``job_hits``, ``job_misses``, ``opt_hits``, ``opt_solved``,
    ``batches``, ``max_pending`` (peak result rows held in the parent
    at once — bounded by ``pipeline_depth x batch_size``),
    ``rows_written``, ``overlapped_batches`` (batches admitted while an
    earlier batch still had unfinished worker tasks — 0 on the serial
    path, > 0 proves pipeline overlap), ``inflight_max`` (peak
    simultaneously admitted batches), ``inst_materialized`` (instances
    newly written to the store this call, wherever the build ran), plus
    this process's instance-resolution deltas ``inst_builds`` (scenario
    builds — with a store, at most one per distinct instance
    end-to-end), ``inst_loads`` (store mmap loads) and
    ``inst_memo_hits``.
    """
    config = resolve_config(config, legacy, what="run_grid",
                            allowed=_RUN_GRID_KWARGS)
    cache = (config.cache_dir if isinstance(config.cache_dir, JobCache)
             else JobCache(config.cache_dir)
             if config.cache_dir is not None else None)
    store_root = (None if config.store_dir is None
                  else str(config.store_dir))
    _validate_pipelines(spec)
    if config.pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    jobs = spec.iter_jobs()
    if job_slice is not None:
        start, stop = job_slice
        if not 0 <= start <= stop <= len(spec):
            raise ValueError(f"job_slice {job_slice!r} out of range "
                             f"for a {len(spec)}-job grid")
        jobs = itertools.islice(jobs, start, stop)
    batches_iter = _batches(jobs, config.batch_size)
    run_stats = stats if isinstance(stats, RunStats) else RunStats()
    inst_stats_before = instancestore.build_stats()
    sweep_stats_before = kernels.sweep_stats()
    busy_stats_before = jobcache.busy_stats()
    sink = ListSink() if config.sink is None else config.sink
    run = _GridRun(spec, config, cache, sink, run_stats, store_root)
    fault_plan = (None if config.fault_plan is None
                  else faults.as_plan(config.fault_plan))
    prev_fault_env = os.environ.get(faults.ENV_VAR)
    if fault_plan is not None:
        # workers inherit the plan through the environment: tear the
        # pool down so faulted runs get freshly forked workers, and
        # again afterwards so no fault-injecting worker outlives us
        os.environ[faults.ENV_VAR] = fault_plan.to_json()
        faults.reset()   # fresh counters, like the freshly forked workers
        faults.activate(fault_plan)
        shutdown_pool()
    sink.open(spec.to_dict())
    try:
        run_pipeline(batches_iter, run.plan,
                     pipeline_depth=config.pipeline_depth,
                     stats=run_stats)
    finally:
        run.promises.clear()
        run.materializing.clear()
        sink.close()
        if fault_plan is not None:
            faults.deactivate()
            if prev_fault_env is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = prev_fault_env
            shutdown_pool()
    inst_stats = instancestore.build_stats()
    for key in inst_stats:
        setattr(run_stats, key, getattr(run_stats, key)
                + inst_stats[key] - inst_stats_before[key])
    sweep_stats = kernels.sweep_stats()
    for key in sweep_stats:
        setattr(run_stats, key, getattr(run_stats, key)
                + sweep_stats[key] - sweep_stats_before[key])
    busy_stats = jobcache.busy_stats()
    for key in busy_stats:
        setattr(run_stats, key, getattr(run_stats, key)
                + busy_stats[key] - busy_stats_before[key])
    if isinstance(stats, dict):
        stats.update({k: getattr(run_stats, k) for k in _GRID_STAT_KEYS})
    return sink.result()


def aggregate_rows(rows, by=("scenario", "algorithm", "T")) -> list[dict]:
    """Aggregate rows into mean/max competitive ratios per group.

    Groups preserve first-appearance order; each aggregate row carries
    the group keys plus ``n``, ``mean_ratio``, ``max_ratio`` and
    ``mean_cost``.  ``T`` is a default key so multi-size grids never
    average costs across horizons; when every row shares one horizon
    the column is constant and harmless.

    ``by`` is *param-aware*: any row column works, including the
    ``params``-axis columns the engine merges into each row (``beta``,
    ``eps``, ...), so ``by=("scenario", "algorithm", "T", "beta")``
    emits the E11-style per-beta tables from one grid (the CLI exposes
    this as ``--group-by``).  A key missing from a row groups under
    ``None`` rather than failing, so heterogeneous tables (e.g. game
    rows next to general rows) still aggregate.

    Quarantined rows (``status="failed"``) carry no cost/ratio and are
    skipped, so a grid with failures still aggregates its survivors.
    """
    by = tuple(by)
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        if row.get("status") == "failed":
            continue
        groups.setdefault(tuple(row.get(k) for k in by), []).append(row)
    out = []
    for key, members in groups.items():
        ratios = [r["ratio"] for r in members]
        out.append({
            **dict(zip(by, key)),
            "n": len(members),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "mean_cost": sum(r["cost"] for r in members) / len(members),
        })
    return out
