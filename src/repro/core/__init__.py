"""Core substrate: cost functions, problem instances, schedules, transforms."""

from .costs import (AbsCost, AffineEnergyCost, ConstantCost, CostFunction,
                    PerspectiveCost, PiecewiseLinearCost, QuadraticCost,
                    QueueingDelayCost, ScaledCost, SLAHingeCost, SumCost,
                    TabulatedCost, assert_convex_table, check_cost_matrix,
                    is_convex_table, phi0, phi1, tabulate, tabulate_many)
from .instance import Instance, RestrictedInstance
from .schedule import (cost, cost_L, cost_U, cost_breakdown, interp_operating,
                       operating_cost, switching_cost_down, switching_cost_up,
                       symmetric_cost, validate_schedule)
from .transforms import (continuous_extension, lift_schedule,
                         next_power_of_two, pad_to_power_of_two, padded_cost,
                         project_schedule, scale_down)

__all__ = [
    "AbsCost", "AffineEnergyCost", "ConstantCost", "CostFunction",
    "PerspectiveCost", "PiecewiseLinearCost", "QuadraticCost",
    "QueueingDelayCost", "ScaledCost", "SLAHingeCost", "SumCost",
    "TabulatedCost", "assert_convex_table", "check_cost_matrix",
    "is_convex_table", "phi0", "phi1", "tabulate", "tabulate_many",
    "Instance", "RestrictedInstance",
    "cost", "cost_L", "cost_U", "cost_breakdown", "interp_operating",
    "operating_cost", "switching_cost_down", "switching_cost_up",
    "symmetric_cost", "validate_schedule",
    "continuous_extension", "lift_schedule", "next_power_of_two",
    "pad_to_power_of_two", "padded_cost", "project_schedule", "scale_down",
]
