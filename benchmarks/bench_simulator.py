"""E13 — closing the loop: abstract optimization vs simulated cost.

The paper's cost functions abstract energy and service delay.  This
added validation experiment runs the Section-2 optimum (computed on the
bridged instance) through the job-level simulator and measures *real*
energy and latency:

* the optimized schedule beats static provisioning in simulated cost;
* the abstract objective is strongly rank-correlated with the simulated
  one across schedules;
* the β knob maps onto transition energy: higher transition energy makes
  the optimizer switch less.

The rollouts run as `game`-pipeline engine jobs: the `sim-diurnal`
scenario materializes the trace and the bridged cost matrix once
(phase 0), the simulated cost of the optimal schedule is hoisted as the
pipeline baseline (phase 1), and `sim-opt`/`sim-lcp`/`sim-static`
policies fan out and replay through the simulator (phase 2).
"""

import numpy as np

from repro.core.schedule import cost as abstract_cost
from repro.offline import solve_dp
from repro.runner import GridSpec, run_grid
from repro.simulator import (ServerPowerModel, bridge_instance,
                             poisson_job_trace, replay_schedule,
                             simulated_cost)
from repro.workloads import diurnal_loads

from conftest import record


def _trace(T=168, peak=12.0, seed=0):
    rng = np.random.default_rng(seed)
    rate = diurnal_loads(T, peak=peak, rng=rng)
    return poisson_job_trace(rate, rng=rng)


def test_e13_optimizer_beats_static_in_simulation(benchmark):
    spec = GridSpec(scenarios=("sim-diurnal",),
                    algorithms=("sim-opt", "sim-lcp", "sim-static"),
                    seeds=(0, 1, 2), sizes=(168,))
    cells: dict = {}
    for r in run_grid(spec):
        cells.setdefault(r["seed"], {})[r["algorithm"]] = r["cost"]
    rows = [{"seed": seed, "sim_opt": sims["sim-opt"],
             "sim_lcp": sims["sim-lcp"], "sim_static": sims["sim-static"],
             "saving_%": 100 * (1 - sims["sim-opt"] / sims["sim-static"])}
            for seed, sims in sorted(cells.items())]
    record("E13_simulated", rows,
           title="E13: simulated cost of optimized vs static schedules")
    for row in rows:
        assert row["sim_opt"] < row["sim_static"]
    trace = _trace(seed=0)
    inst = bridge_instance(trace, 18, beta=6.0)
    benchmark(solve_dp, inst)


def test_e13_abstract_tracks_simulated(benchmark):
    from scipy.stats import spearmanr
    trace = _trace(T=72, peak=10.0, seed=5)
    m = 15
    inst = bridge_instance(trace, m, beta=4.0)
    rng = np.random.default_rng(7)
    abstract, simulated = [], []
    for _ in range(40):
        level = int(rng.integers(1, m + 1))
        sched = np.clip(level + rng.integers(-2, 3, size=trace.T), 0, m)
        abstract.append(abstract_cost(inst, sched.astype(float)))
        simulated.append(simulated_cost(sched, trace, m))
    rho = float(spearmanr(abstract, simulated).statistic)
    record("E13_correlation", [{
        "schedules": 40, "spearman_rho": rho,
    }], title="E13: abstract vs simulated cost correlation")
    assert rho > 0.8
    benchmark(simulated_cost, np.full(trace.T, 10), trace, m)


def test_e13_transition_energy_freezes_schedules(benchmark):
    """Higher power-up energy (mapped into beta) yields fewer switches in
    the optimized schedule and fewer transition joules in simulation."""
    trace = _trace(T=168, peak=12.0, seed=2)
    m = 18
    rows = []
    for trans in (0.5, 4.0, 32.0):
        power = ServerPowerModel(transition_energy=trans)
        inst = bridge_instance(trace, m, beta=max(trans, 1e-6), power=power)
        sched = solve_dp(inst).schedule
        log = replay_schedule(sched, trace, m, power=power)
        changes = int(np.count_nonzero(np.diff(
            np.concatenate([[0], sched]))))
        rows.append({"transition_energy": trans, "schedule_changes": changes,
                     "sim_transition_energy":
                         float(sum(s.transition_energy for s in log.steps))})
    record("E13_transition_sweep", rows,
           title="E13: transition energy vs switching activity")
    assert rows[0]["schedule_changes"] >= rows[-1]["schedule_changes"]
    power = ServerPowerModel()
    benchmark(replay_schedule, np.full(trace.T, 10), trace, m)
